//! Microbenchmarks: bulkload throughput and query latency for FLAT and
//! every R-tree variant.
//!
//! These complement the figure binaries (which measure the paper's I/O
//! metrics at full scale) by tracking the wall-clock CPU cost of the
//! in-memory implementations at a fixed small scale. The harness is a
//! dependency-free timing loop (`cargo bench -p flat-bench`): each case
//! runs a warmup pass, then reports the best-of-N wall time.

use flat_bench::indexes::{BuiltIndex, IndexKind};
use flat_data::neuron::{NeuronConfig, NeuronModel};
use flat_data::workload::{range_queries, WorkloadConfig};
use flat_geom::Aabb;
use flat_rtree::Entry;
use std::time::{Duration, Instant};

const ELEMENTS: usize = 20_000;
const SAMPLES: usize = 5;

fn dataset() -> (Vec<Entry>, Aabb) {
    let config = NeuronConfig::bbp(20, 1000, 7);
    let model = NeuronModel::generate(&config);
    (model.entries(), config.domain)
}

/// Best-of-`SAMPLES` wall time of `f` (after one warmup run).
fn best_of<R>(mut f: impl FnMut() -> R) -> Duration {
    let _ = f(); // warmup
    (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            let result = f();
            let elapsed = start.elapsed();
            drop(result);
            elapsed
        })
        .min()
        .expect("SAMPLES > 0")
}

fn fmt(d: Duration) -> String {
    if d.as_secs_f64() >= 1.0 {
        format!("{:.3} s", d.as_secs_f64())
    } else {
        format!("{:.3} ms", d.as_secs_f64() * 1000.0)
    }
}

fn bench_build(entries: &[Entry], domain: Aabb) {
    println!("build_20k (best of {SAMPLES}):");
    for kind in [
        IndexKind::Flat,
        IndexKind::Str,
        IndexKind::Hilbert,
        IndexKind::PrTree,
        IndexKind::Tgs,
    ] {
        let time = best_of(|| BuiltIndex::build(kind, entries.to_vec(), domain, 1 << 16));
        println!("  {:>16}: {}", kind.label(), fmt(time));
    }
}

fn bench_queries(entries: &[Entry], domain: Aabb) {
    let sn = range_queries(
        &domain,
        &WorkloadConfig {
            count: 20,
            volume_fraction: 5e-7 * 1000.0 * (450_000.0 / ELEMENTS as f64),
            proportion_range: (1.0, 4.0),
            seed: 11,
        },
    );
    let lss = range_queries(
        &domain,
        &WorkloadConfig {
            count: 20,
            volume_fraction: 0.02,
            proportion_range: (1.0, 4.0),
            seed: 13,
        },
    );

    for (workload_name, queries) in [("sn", &sn), ("lss", &lss)] {
        println!("query_{workload_name}_20k, 20 queries (best of {SAMPLES}):");
        for kind in [IndexKind::Flat, IndexKind::Str, IndexKind::PrTree] {
            let built = BuiltIndex::build(kind, entries.to_vec(), domain, 1 << 16);
            let time = best_of(|| {
                let mut total = 0usize;
                for q in queries {
                    total += built.query(q).0;
                }
                total
            });
            println!("  {:>16}: {}", kind.label(), fmt(time));
        }
    }
}

fn main() {
    let (entries, domain) = dataset();
    println!("index microbenchmarks over {ELEMENTS} neuron segments\n");
    bench_build(&entries, domain);
    println!();
    bench_queries(&entries, domain);
}
