//! Criterion microbenchmarks: bulkload throughput and query latency for
//! FLAT and every R-tree variant.
//!
//! These complement the figure binaries (which measure the paper's I/O
//! metrics at full scale): Criterion measures wall-clock CPU cost of the
//! in-memory implementations at a fixed small scale, tracking regressions.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use flat_bench::indexes::{BuiltIndex, IndexKind};
use flat_data::neuron::{NeuronConfig, NeuronModel};
use flat_data::workload::{range_queries, WorkloadConfig};
use flat_geom::Aabb;
use flat_rtree::Entry;

const ELEMENTS: usize = 20_000;

fn dataset() -> (Vec<Entry>, Aabb) {
    let config = NeuronConfig::bbp(20, 1000, 7);
    let model = NeuronModel::generate(&config);
    (model.entries(), config.domain)
}

fn bench_build(c: &mut Criterion) {
    let (entries, domain) = dataset();
    let mut group = c.benchmark_group("build_20k");
    group.sample_size(10);
    for kind in [
        IndexKind::Flat,
        IndexKind::Str,
        IndexKind::Hilbert,
        IndexKind::PrTree,
        IndexKind::Tgs,
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, &kind| {
            b.iter_batched(
                || entries.clone(),
                |entries| BuiltIndex::build(kind, entries, domain, 1 << 16),
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let (entries, domain) = dataset();
    let sn = range_queries(
        &domain,
        &WorkloadConfig {
            count: 20,
            volume_fraction: 5e-7 * 1000.0 * (450_000.0 / ELEMENTS as f64),
            proportion_range: (1.0, 4.0),
            seed: 11,
        },
    );
    let lss = range_queries(
        &domain,
        &WorkloadConfig {
            count: 20,
            volume_fraction: 0.02,
            proportion_range: (1.0, 4.0),
            seed: 13,
        },
    );

    for (workload_name, queries) in [("sn", &sn), ("lss", &lss)] {
        let mut group = c.benchmark_group(format!("query_{workload_name}_20k"));
        group.sample_size(10);
        for kind in [IndexKind::Flat, IndexKind::Str, IndexKind::PrTree] {
            let mut built = BuiltIndex::build(kind, entries.clone(), domain, 1 << 16);
            group.bench_with_input(
                BenchmarkId::from_parameter(kind.label()),
                &(),
                |b, _| {
                    b.iter(|| {
                        let mut total = 0usize;
                        for q in queries {
                            total += built.query(q).0;
                        }
                        total
                    });
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_build, bench_queries);
criterion_main!(benches);
