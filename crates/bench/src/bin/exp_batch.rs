//! Batched query engine vs one-at-a-time execution on the SN workload.
use flat_bench::figures::{batch, Context};
use flat_bench::Scale;

fn main() {
    batch::exp_batch(&Context::new(Scale::from_env())).emit();
}
