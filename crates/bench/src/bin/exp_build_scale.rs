//! Streaming out-of-core build vs in-memory build: throughput, peak
//! resident entries/partitions, and spill volume at increasing N.
use flat_bench::figures::{build_scale, Context};
use flat_bench::Scale;

fn main() {
    build_scale::exp_build_scale(&Context::new(Scale::from_env())).emit();
}
