//! Bulkload vs dynamic-insertion ablation.
use flat_bench::figures::{ablation, Context};
use flat_bench::Scale;

fn main() {
    let ctx = Context::new(Scale::from_env());
    ablation::exp_bulk_vs_insert(&ctx, ctx.scale.densities[ctx.scale.densities.len() / 2]).emit();
}
