//! Bulkload strategy comparison including the TGS extension.
use flat_bench::figures::{ablation, Context};
use flat_bench::Scale;

fn main() {
    let ctx = Context::new(Scale::from_env());
    ablation::exp_bulkload_strategies(&ctx).emit();
}
