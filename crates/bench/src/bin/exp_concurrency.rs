//! Multi-threaded query throughput over one shared FLAT index.
use flat_bench::figures::{concurrency, Context};
use flat_bench::Scale;

fn main() {
    concurrency::exp_concurrency(&Context::new(Scale::from_env())).emit();
}
