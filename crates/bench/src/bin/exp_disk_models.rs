//! Ablation (extension): FLAT vs PR-tree across storage device models.
use flat_bench::figures::{analysis, Context};
use flat_bench::Scale;

fn main() {
    let ctx = Context::new(Scale::from_env());
    analysis::exp_disk_models(&ctx).emit();
}
