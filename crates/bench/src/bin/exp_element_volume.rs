//! §VII-E.1a: element volume vs neighbor pointers.
use flat_bench::figures::analysis;
use flat_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let elements = scale.max_density().min(100_000);
    analysis::exp_element_volume(elements, scale.seed).emit();
}
