//! ε-distance join: link-graph co-crawl vs R-tree nested loop on the
//! mesh-vs-nbody pairing. Writes `BENCH_join.json`.
use flat_bench::figures::{join, Context};
use flat_bench::Scale;

fn main() {
    let table = join::exp_join(&Context::new(Scale::from_env()));
    join::emit_with_json(&table);
}
