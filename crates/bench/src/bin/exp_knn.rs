//! k-nearest-neighbor workload over one shared FLAT index.
use flat_bench::figures::{knn, Context};
use flat_bench::Scale;

fn main() {
    knn::exp_knn(&Context::new(Scale::from_env())).emit();
}
