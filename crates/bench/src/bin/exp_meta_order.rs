//! Metadata packing order ablation.
use flat_bench::figures::{ablation, Context};
use flat_bench::Scale;

fn main() {
    let ctx = Context::new(Scale::from_env());
    ablation::exp_meta_order(&ctx).emit();
}
