//! MVCC snapshot reads under live ingest: 64-client read fleet vs an
//! idle, a concurrent (epoch-versioned), and an exclusive-locking churn
//! writer. Writes `BENCH_mvcc.json`.
use flat_bench::figures::{mvcc, Context};
use flat_bench::Scale;

fn main() {
    let table = mvcc::exp_mvcc(&Context::new(Scale::from_env()));
    mvcc::emit_with_json(&table);
}
