//! §VII-E.2: FLAT memory & computation overheads during queries.
use flat_bench::figures::{analysis, Context};
use flat_bench::Scale;

fn main() {
    let ctx = Context::new(Scale::from_env());
    analysis::exp_overheads(&ctx).emit();
}
