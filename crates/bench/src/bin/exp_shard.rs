//! Sharded serving throughput: mixed traffic over per-shard disk
//! schedulers vs the unsharded façade. Writes `BENCH_shard.json`.
use flat_bench::figures::{shard, Context};
use flat_bench::Scale;

fn main() {
    let table = shard::exp_shard(&Context::new(Scale::from_env()));
    shard::emit_with_json(&table);
}
