//! Dynamic updates: churn throughput, query slowdown vs delta fraction,
//! and post-compaction recovery (verified byte-identical to a rebuild).
use flat_bench::figures::{update, Context};
use flat_bench::Scale;

fn main() {
    update::exp_update(&Context::new(Scale::from_env())).emit();
}
