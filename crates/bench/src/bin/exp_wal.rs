//! Durability sweep: churn throughput vs WAL mode, checkpoint pause and
//! crash-recovery time. Writes `BENCH_wal.json`.
use flat_bench::figures::{wal, Context};
use flat_bench::Scale;

fn main() {
    let table = wal::exp_wal(&Context::new(Scale::from_env()));
    wal::emit_with_json(&table);
}
