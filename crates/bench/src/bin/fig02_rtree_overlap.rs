//! Figure 2: point-query page reads on the R-tree baselines vs density.
use flat_bench::figures::{motivation, Context};
use flat_bench::Scale;

fn main() {
    let ctx = Context::new(Scale::from_env());
    motivation::fig02_rtree_overlap(&ctx).emit();
}
