//! One table of the SN benchmark suite (see `flat_bench::figures::sn`).
use flat_bench::figures::{sn, Context};
use flat_bench::Scale;

fn main() {
    let ctx = Context::new(Scale::from_env());
    sn::sn_suite(&ctx)[0].emit();
}
