//! One table of the LSS benchmark suite (see `flat_bench::figures::lss`).
use flat_bench::figures::{lss, Context};
use flat_bench::Scale;

fn main() {
    let ctx = Context::new(Scale::from_env());
    lss::lss_suite(&ctx)[0].emit();
}
