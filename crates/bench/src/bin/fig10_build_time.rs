//! One table of the build suite (see `flat_bench::figures::build`).
use flat_bench::figures::{build, Context};
use flat_bench::Scale;

fn main() {
    let ctx = Context::new(Scale::from_env());
    build::build_suite(&ctx)[0].emit();
}
