//! Figure 20: neighbor-pointer distribution vs density.
use flat_bench::figures::{analysis, Context};
use flat_bench::Scale;

fn main() {
    let ctx = Context::new(Scale::from_env());
    analysis::fig20_pointer_distribution(&ctx).emit();
}
