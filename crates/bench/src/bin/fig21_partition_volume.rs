//! Figure 21: partition volume vs neighbor pointers (uniform data).
use flat_bench::figures::analysis;
use flat_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let elements = scale.max_density().min(100_000);
    analysis::fig21_partition_volume(elements, scale.seed).emit();
}
