//! Figure 23: query speedup on the §VIII datasets.
use flat_bench::figures::other;
use flat_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let per_million = (1000.0 * scale.max_density() as f64 / 450_000.0) as usize;
    let (_, fig23) = other::other_datasets_suite(per_million.max(10), scale.queries, scale.seed);
    fig23.emit();
}
