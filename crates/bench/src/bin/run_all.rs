//! Regenerates every table and figure of the paper in one run.
//!
//! Respects `FLAT_SCALE`, `FLAT_QUERIES` and `FLAT_RESULTS_DIR`.
use flat_bench::figures::{
    ablation, analysis, batch, build, build_scale, concurrency, join, knn, lss, motivation, mvcc,
    other, shard, sn, update, wal, Context,
};
use flat_bench::Scale;
use std::time::Instant;

/// The experiment suites this binary runs, with their dedicated binaries.
const SUITES: &[(&str, &str)] = &[
    ("motivation", "fig02_rtree_overlap"),
    ("build", "fig10_build_time, fig11_index_size"),
    ("build-scale", "exp_build_scale"),
    ("sn", "fig03/12/13/14/15"),
    ("lss", "fig04/16/17/18/19"),
    (
        "analysis",
        "fig20/21, exp_element_volume, exp_aspect_ratio, exp_overheads, exp_disk_models",
    ),
    (
        "ablation",
        "exp_meta_order, exp_bulk_vs_insert, exp_bulkload_strategies",
    ),
    ("concurrency", "exp_concurrency"),
    ("sharded-serving", "exp_shard"),
    ("join", "exp_join"),
    ("batch", "exp_batch, exp_knn"),
    ("update", "exp_update"),
    ("mvcc", "exp_mvcc"),
    ("durability", "exp_wal"),
    ("other-datasets", "fig22, fig23"),
];

fn main() {
    // `--list`/`--help`: print the suite map and exit without building
    // anything — cheap wiring for CI smoke checks.
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args
        .iter()
        .any(|a| a == "--list" || a == "--help" || a == "-h")
    {
        println!("run_all — regenerates every table and figure of the paper in one run.");
        println!(
            "Env knobs: FLAT_SCALE, FLAT_QUERIES, FLAT_RESULTS_DIR, FLAT_TAIL, FLAT_SPILL_BUDGET."
        );
        println!("Suites (each also available as its own binary):");
        for (suite, bins) in SUITES {
            println!("  {suite:<14} {bins}");
        }
        return;
    }
    if let Some(unknown) = args.first() {
        eprintln!("unknown argument {unknown:?}; try --list");
        std::process::exit(2);
    }

    let start = Instant::now();
    let scale = Scale::from_env();
    println!(
        "FLAT reproduction — full evaluation run (densities {:?}, {} queries per workload)\n",
        scale.densities, scale.queries
    );
    let ctx = Context::new(scale.clone());

    println!("=== Motivation (Section III) ===\n");
    motivation::fig02_rtree_overlap(&ctx).emit();

    println!("=== Time to index & index size (Sections VII-B, VII-C) ===\n");
    for table in build::build_suite(&ctx) {
        table.emit();
    }

    println!("=== Streaming out-of-core build (extension) ===\n");
    build_scale::exp_build_scale(&ctx).emit();

    println!("=== SN benchmark (Sections III-A, VII-D) ===\n");
    for table in sn::sn_suite(&ctx) {
        table.emit();
    }

    println!("=== LSS benchmark (Sections III-B, VII-D) ===\n");
    for table in lss::lss_suite(&ctx) {
        table.emit();
    }

    println!("=== FLAT analysis (Section VII-E) ===\n");
    analysis::fig20_pointer_distribution(&ctx).emit();
    let analysis_elements = scale.max_density().min(100_000);
    analysis::fig21_partition_volume(analysis_elements, scale.seed).emit();
    analysis::exp_element_volume(analysis_elements, scale.seed).emit();
    analysis::exp_aspect_ratio(analysis_elements, scale.seed).emit();
    analysis::exp_overheads(&ctx).emit();
    analysis::exp_disk_models(&ctx).emit();

    println!("=== Ablations (extensions, see DESIGN.md) ===\n");
    ablation::exp_meta_order(&ctx).emit();
    ablation::exp_bulk_vs_insert(&ctx, scale.densities[scale.densities.len() / 2]).emit();
    ablation::exp_bulkload_strategies(&ctx).emit();

    println!("=== Concurrent query streams (extension) ===\n");
    concurrency::exp_concurrency(&ctx).emit();

    println!("=== Sharded serving layer (extension) ===\n");
    shard::emit_with_json(&shard::exp_shard(&ctx));

    println!("=== Spatial joins (extension) ===\n");
    join::emit_with_json(&join::exp_join(&ctx));

    println!("=== Batched execution & kNN (extensions) ===\n");
    batch::exp_batch(&ctx).emit();
    knn::exp_knn(&ctx).emit();

    println!("=== Dynamic updates & compaction (extension) ===\n");
    update::exp_update(&ctx).emit();

    println!("=== MVCC snapshots under live ingest (extension) ===\n");
    mvcc::emit_with_json(&mvcc::exp_mvcc(&ctx));

    println!("=== Durability: WAL & crash recovery (extension) ===\n");
    wal::emit_with_json(&wal::exp_wal(&ctx));

    println!("=== Other data sets (Section VIII) ===\n");
    let per_million = (1000.0 * scale.max_density() as f64 / 450_000.0) as usize;
    let (fig22, fig23) =
        other::other_datasets_suite(per_million.max(10), scale.queries, scale.seed);
    fig22.emit();
    fig23.emit();

    println!(
        "Done in {:.1}s. CSVs in {}.",
        start.elapsed().as_secs_f64(),
        flat_bench::report::results_dir().display()
    );
}
