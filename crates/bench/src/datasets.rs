//! Dataset construction for the benchmark sweeps.
//!
//! Density sweeps follow the paper's protocol (§VII-A): the element count
//! grows while the volume stays fixed — "we progressively increase the
//! density of the data set in each experiment by adding more neurons to the
//! same volume". Generators are prefix-stable, so the sweep materializes
//! the densest model once and serves prefixes of it. The long-element tail
//! is selected by [`crate::TailProfile`] (`FLAT_TAIL=light|heavy`).

use crate::Scale;
use flat_data::neuron::{NeuronConfig, NeuronModel};
use flat_geom::Aabb;
use flat_rtree::Entry;

/// Cylinder segments per generated neuron. 1000 segments per neuron with
/// 50–450 neurons reproduces the paper's 100 k neurons × ~4 500 segments at
/// 1/1000 scale while keeping whole-neuron granularity for the sweep.
pub const SEGMENTS_PER_NEURON: usize = 1000;

/// The neuron-model density sweep: the densest model plus the prefix sizes.
pub struct DensitySweep {
    entries: Vec<Entry>,
    domain: Aabb,
    densities: Vec<usize>,
}

impl DensitySweep {
    /// Generates the sweep for `scale`.
    ///
    /// **Domain scaling.** The paper packs up to 450 M cylinders into the
    /// (285 µm)³ tissue block. Running with 1000× fewer elements in the
    /// *same* volume would change the geometric regime entirely (elements
    /// would be tiny relative to the page tiles, hiding the stretching and
    /// overlap effects every figure is about). The sweep therefore shrinks
    /// the domain edge by the cube root of the element-count ratio —
    /// (285 µm)·∛(max/450 M) — so the **density in elements per µm³, and
    /// with it the element-size-to-page-tile ratio, matches the paper at
    /// every sweep step**.
    pub fn generate(scale: &Scale) -> DensitySweep {
        let max = scale.max_density();
        let neurons = max.div_ceil(SEGMENTS_PER_NEURON);
        let edge = 285.0 * (max as f64 / 450e6).cbrt();
        let mut config = NeuronConfig::bbp(neurons, SEGMENTS_PER_NEURON, scale.seed);
        config.domain = flat_geom::Aabb::new(
            flat_geom::Point3::splat(0.0),
            flat_geom::Point3::splat(edge),
        );
        // Element geometry is sized relative to the page-tile edge at max
        // density (≈1.64 µm for the paper's 85-element pages, invariant
        // under `FLAT_SCALE` thanks to the density-preserving domain):
        // ordinary segments span ~0.4 tiles, which puts FLAT's
        // neighbor-pointer median in the paper's Fig-20 range (~15–25,
        // converging with density). The optional long-tail profile
        // (`FLAT_TAIL=extreme`) adds multi-tile axonal stretches — the
        // extreme elements that give the PR-tree its edge over STR/Hilbert
        // at the cost of hub partitions that flood FLAT's crawl.
        let tile_edge = edge * (85.0 / max as f64).cbrt();
        config.segment_length = tile_edge * 0.4;
        config.radius_range = (tile_edge * 0.05, tile_edge * 0.12);
        let (long_probability, long_stretch) = scale.tail.parameters();
        config.long_probability = long_probability;
        config.long_stretch = long_stretch;
        let model = NeuronModel::generate(&config);
        DensitySweep {
            entries: model.entries(),
            domain: config.domain,
            densities: scale.densities.clone(),
        }
    }

    /// The model domain ((285 µm)³).
    pub fn domain(&self) -> Aabb {
        self.domain
    }

    /// The density steps.
    pub fn densities(&self) -> &[usize] {
        &self.densities
    }

    /// The first `density` elements — the dataset at one sweep step.
    pub fn at(&self, density: usize) -> Vec<Entry> {
        assert!(
            density <= self.entries.len(),
            "sweep holds {} elements, asked for {density}",
            self.entries.len()
        );
        self.entries[..density].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_serves_prefixes() {
        let scale = Scale::smoke();
        let sweep = DensitySweep::generate(&scale);
        let small = sweep.at(5_000);
        let large = sweep.at(15_000);
        assert_eq!(small.len(), 5_000);
        assert_eq!(&large[..5_000], &small[..]);
    }

    #[test]
    fn sweep_covers_the_max_density() {
        let scale = Scale::smoke();
        let sweep = DensitySweep::generate(&scale);
        let all = sweep.at(scale.max_density());
        assert_eq!(all.len(), scale.max_density());
    }

    #[test]
    #[should_panic(expected = "asked for")]
    fn oversized_prefix_is_rejected() {
        let sweep = DensitySweep::generate(&Scale::smoke());
        let _ = sweep.at(10_000_000);
    }
}
