//! Design-choice ablations (extensions beyond the paper's figures,
//! called out in DESIGN.md).

use super::Context;
use crate::indexes::{BuiltIndex, IndexKind};
use crate::report::{fmt_f64, fmt_mb, fmt_secs, Table};
use crate::runner::run_workload;
use flat_core::{FlatIndex, FlatOptions, MetaOrder};
use flat_rtree::{leaf_capacity, BulkLoad, LeafLayout, RTree, RTreeConfig};
use flat_storage::{BufferPool, MemStore, PageKind};

/// Metadata packing order ablation: the paper requires "spatially close
/// records on the same leaf page" (§V-B.2) without fixing an order. This
/// measures the SN-benchmark I/O of Hilbert-ordered records (our default)
/// against raw STR output order.
pub fn exp_meta_order(ctx: &Context) -> Table {
    let mut table = Table::new(
        "exp_meta_order",
        "SN benchmark, densest data set: metadata record order ablation",
        &[
            "record order",
            "total page reads",
            "metadata page reads",
            "object page reads",
        ],
    );
    let domain = ctx.sweep.domain();
    let queries = ctx.scale.sn_workload(&domain);
    let entries = ctx.sweep.at(ctx.scale.max_density());

    for (name, order) in [
        ("Hilbert (default)", MetaOrder::Hilbert),
        ("STR output", MetaOrder::StrOutput),
    ] {
        let mut pool = BufferPool::new(MemStore::new(), ctx.scale.pool_pages);
        let (index, _) = FlatIndex::build(
            &mut pool,
            entries.clone(),
            FlatOptions {
                domain: Some(domain),
                meta_order: order,
                ..FlatOptions::default()
            },
        )
        .expect("in-memory build");
        let mut total = 0u64;
        let mut meta = 0u64;
        let mut object = 0u64;
        for q in &queries {
            pool.clear_cache();
            let snapshot = pool.snapshot();
            let _ = index.range_query(&pool, q).expect("in-memory query");
            let delta = pool.stats().since(&snapshot);
            total += delta.total_physical_reads();
            meta += delta.kind(PageKind::SeedLeaf).physical_reads;
            object += delta.kind(PageKind::ObjectPage).physical_reads;
        }
        table.push_row(vec![
            name.to_string(),
            total.to_string(),
            meta.to_string(),
            object.to_string(),
        ]);
    }
    table
}

/// Bulkload-vs-insertion ablation, quantifying the paper's claim that
/// "bulkloaded trees outperform other R-Tree variants such as the R*-Tree,
/// primarily due to better page utilization" (§VII).
pub fn exp_bulk_vs_insert(ctx: &Context, elements: usize) -> Table {
    let mut table = Table::new(
        "exp_bulk_vs_insert",
        "STR bulkload vs dynamic (Guttman) insertion: utilization and SN I/O",
        &[
            "construction",
            "leaf pages",
            "fill factor [%]",
            "index size [MB]",
            "build time [s]",
            "SN page reads",
        ],
    );
    let domain = ctx.sweep.domain();
    let entries = ctx.sweep.at(elements);
    let queries = ctx.scale.sn_workload(&domain);
    let cap = leaf_capacity(LeafLayout::MbrOnly) as f64;

    // Bulkloaded.
    {
        let built = BuiltIndex::build(
            IndexKind::Str,
            entries.clone(),
            domain,
            ctx.scale.pool_pages,
        );
        let outcome = run_workload(&built, &queries, ctx.model);
        let tree = built.as_rtree().expect("STR is an R-tree");
        let fill = elements as f64 / (tree.num_leaf_pages() as f64 * cap) * 100.0;
        table.push_row(vec![
            "STR bulkload".to_string(),
            tree.num_leaf_pages().to_string(),
            fmt_f64(fill),
            fmt_mb(tree.size_bytes()),
            fmt_secs(built.build_time),
            outcome.page_reads().to_string(),
        ]);
    }

    // Insertion-built.
    {
        let mut pool = BufferPool::new(MemStore::new(), ctx.scale.pool_pages);
        let start = std::time::Instant::now();
        let mut tree = RTree::new_empty(RTreeConfig::default());
        for e in &entries {
            tree.insert(&mut pool, *e).expect("in-memory insert");
        }
        let build_time = start.elapsed();
        pool.reset_stats();
        let mut total = 0u64;
        for q in &queries {
            pool.clear_cache();
            let snapshot = pool.snapshot();
            let _ = tree.range_query(&pool, q).expect("in-memory query");
            total += pool.stats().since(&snapshot).total_physical_reads();
        }
        let fill = elements as f64 / (tree.num_leaf_pages() as f64 * cap) * 100.0;
        table.push_row(vec![
            "Guttman insertion".to_string(),
            tree.num_leaf_pages().to_string(),
            fmt_f64(fill),
            fmt_mb(tree.size_bytes()),
            fmt_secs(build_time),
            total.to_string(),
        ]);
    }
    table
}

/// Bulkload-strategy ablation on the neuron data: all four packing
/// strategies side by side (TGS is the extension the paper discusses but
/// does not measure).
pub fn exp_bulkload_strategies(ctx: &Context) -> Table {
    let mut table = Table::new(
        "exp_bulkload_strategies",
        "Bulkload strategies on the densest neuron data set",
        &[
            "strategy",
            "build time [s]",
            "leaf pages",
            "SN page reads",
            "LSS page reads",
        ],
    );
    let domain = ctx.sweep.domain();
    let entries = ctx.sweep.at(ctx.scale.max_density());
    let sn = ctx.scale.sn_workload(&domain);
    let lss = ctx.scale.lss_workload(&domain);

    for method in [
        BulkLoad::Str,
        BulkLoad::Hilbert,
        BulkLoad::PrTree,
        BulkLoad::Tgs,
    ] {
        let kind = match method {
            BulkLoad::Str => IndexKind::Str,
            BulkLoad::Hilbert => IndexKind::Hilbert,
            BulkLoad::PrTree => IndexKind::PrTree,
            BulkLoad::Tgs => IndexKind::Tgs,
        };
        let built = BuiltIndex::build(kind, entries.clone(), domain, ctx.scale.pool_pages);
        let sn_outcome = run_workload(&built, &sn, ctx.model);
        let lss_outcome = run_workload(&built, &lss, ctx.model);
        let tree = built.as_rtree().expect("R-tree ablation");
        table.push_row(vec![
            method.label().to_string(),
            fmt_secs(built.build_time),
            tree.num_leaf_pages().to_string(),
            sn_outcome.page_reads().to_string(),
            lss_outcome.page_reads().to_string(),
        ]);
    }
    table
}
