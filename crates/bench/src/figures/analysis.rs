//! §VII-E: FLAT analysis — pointer distributions (Figure 20), partition
//! size (Figure 21), element volume and aspect ratio effects, and the
//! memory/computation overhead measurements.

use super::Context;
use crate::indexes::{BuiltIndex, IndexKind};
use crate::report::{fmt_f64, Table};
use crate::runner::run_workload;
use flat_core::{neighbors::compute_neighbors, partition::partition, QueryStats};
use flat_data::uniform::{uniform_entries, UniformConfig};
use flat_rtree::{leaf_capacity, LeafLayout};

/// Figure 20: the distribution of neighbor-pointer counts per partition for
/// data sets of increasing density. The paper's observation: "the median
/// stays the same … and appears to converge at 30".
pub fn fig20_pointer_distribution(ctx: &Context) -> Table {
    // The paper plots 5 of the 9 densities.
    let densities: Vec<usize> = ctx.sweep.densities().iter().copied().step_by(2).collect();
    let mut columns: Vec<String> = vec!["pointer bin".to_string()];
    columns.extend(densities.iter().map(|&d| ctx.scale.density_label(d)));
    let mut table = Table::new(
        "fig20_pointer_distribution",
        "Partitions per neighbor-pointer bin, for increasing density",
        &columns.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );

    let mut histograms: Vec<Vec<u32>> = Vec::new();
    let mut medians = Vec::new();
    let mut means = Vec::new();
    for &density in &densities {
        let domain = ctx.sweep.domain();
        let built = BuiltIndex::build(
            IndexKind::Flat,
            ctx.sweep.at(density),
            domain,
            ctx.scale.pool_pages,
        );
        let stats = built.flat_stats.as_ref().expect("FLAT build stats");
        histograms.push(stats.neighbor_counts.clone());
        medians.push(stats.median_neighbor_pointers());
        means.push(stats.avg_neighbor_pointers());
    }

    let max_count = histograms
        .iter()
        .flat_map(|h| h.iter().copied())
        .max()
        .unwrap_or(0) as usize;
    let bin_width = 5usize;
    for bin_start in (0..=max_count).step_by(bin_width) {
        let mut row = vec![format!("{}-{}", bin_start, bin_start + bin_width - 1)];
        for hist in &histograms {
            let count = hist
                .iter()
                .filter(|&&c| (c as usize) >= bin_start && (c as usize) < bin_start + bin_width)
                .count();
            row.push(count.to_string());
        }
        table.push_row(row);
    }
    let mut median_row = vec!["median".to_string()];
    median_row.extend(medians.iter().map(|m| m.to_string()));
    table.push_row(median_row);
    let mut mean_row = vec!["mean".to_string()];
    mean_row.extend(means.iter().map(|m| fmt_f64(*m)));
    table.push_row(mean_row);
    table
}

/// Figure 21: average partition volume vs average number of neighbor
/// pointers, on uniform data with artificially inflated partitions.
pub fn fig21_partition_volume(elements: usize, seed: u64) -> Table {
    let mut table = Table::new(
        "fig21_partition_volume",
        "Avg partition volume vs avg neighbor pointers (uniform data, inflated partitions)",
        &[
            "volume scale",
            "avg partition volume [µm³]",
            "avg neighbor pointers",
        ],
    );
    let config = UniformConfig::scaled_baseline(elements, seed);
    let entries = uniform_entries(&config);
    let capacity = leaf_capacity(LeafLayout::MbrOnly);
    let base = partition(entries, capacity, Some(config.domain));
    for scale in [1.0, 1.5, 2.0, 3.0, 4.0] {
        let mut parts = base.clone();
        if scale > 1.0 {
            for p in &mut parts {
                p.partition_mbr = p.partition_mbr.scale_volume(scale);
            }
        }
        let total = compute_neighbors(&mut parts).expect("in-memory neighbors");
        let avg_volume =
            parts.iter().map(|p| p.partition_mbr.volume()).sum::<f64>() / parts.len() as f64;
        table.push_row(vec![
            fmt_f64(scale),
            fmt_f64(avg_volume),
            fmt_f64(total as f64 / parts.len() as f64),
        ]);
    }
    table
}

/// §VII-E.1, first experiment: growing the element volume grows the
/// pointer count ("increasing the object size by a factor of 5 incurs a
/// 10% increase in pointers").
pub fn exp_element_volume(elements: usize, seed: u64) -> Table {
    let mut table = Table::new(
        "exp_element_volume",
        "Avg neighbor pointers vs element volume (uniform data)",
        &[
            "element volume [µm³]",
            "avg neighbor pointers",
            "increase vs baseline [%]",
        ],
    );
    let capacity = leaf_capacity(LeafLayout::MbrOnly);
    let mut baseline = None;
    for factor in [1.0, 2.0, 3.0, 4.0, 5.0] {
        let config = UniformConfig {
            element_volume: 18.0 * factor,
            ..UniformConfig::scaled_baseline(elements, seed)
        };
        let entries = uniform_entries(&config);
        let mut parts = partition(entries, capacity, Some(config.domain));
        let total = compute_neighbors(&mut parts).expect("in-memory neighbors");
        let avg = total as f64 / parts.len() as f64;
        let base = *baseline.get_or_insert(avg);
        table.push_row(vec![
            fmt_f64(18.0 * factor),
            fmt_f64(avg),
            fmt_f64((avg / base - 1.0) * 100.0),
        ]);
    }
    table
}

/// §VII-E.1, second experiment: element aspect ratio vs pointer count
/// ("the average number increases linearly from 17.4 to 22.9").
pub fn exp_aspect_ratio(elements: usize, seed: u64) -> Table {
    let mut table = Table::new(
        "exp_aspect_ratio",
        "Avg neighbor pointers vs element aspect ratio (uniform data, constant volume)",
        &[
            "length range [µm]",
            "max aspect ratio",
            "avg neighbor pointers",
        ],
    );
    let capacity = leaf_capacity(LeafLayout::MbrOnly);
    for (lo, hi) in [
        (1.0, 1.0),
        (5.0, 10.0),
        (5.0, 20.0),
        (5.0, 28.0),
        (5.0, 35.0),
    ] {
        let config = UniformConfig {
            length_range: (lo, hi),
            ..UniformConfig::scaled_baseline(elements, seed)
        };
        let entries = uniform_entries(&config);
        let mut parts = partition(entries, capacity, Some(config.domain));
        let total = compute_neighbors(&mut parts).expect("in-memory neighbors");
        table.push_row(vec![
            format!("{lo}-{hi}"),
            fmt_f64(hi / lo),
            fmt_f64(total as f64 / parts.len() as f64),
        ]);
    }
    table
}

/// §VII-E.2: memory and computation overhead of FLAT query evaluation —
/// crawl bookkeeping relative to the result size ("remains at 0.9 % of the
/// size of the result set") and the simulated disk share of execution time
/// ("between 97.8 % and 98.8 %").
pub fn exp_overheads(ctx: &Context) -> Table {
    let mut table = Table::new(
        "exp_overheads",
        "FLAT memory & computation overhead during query evaluation (densest data set)",
        &[
            "benchmark",
            "bookkeeping / result size [%]",
            "disk share of time [%]",
            "MBR tests per result",
        ],
    );
    let domain = ctx.sweep.domain();
    let density = ctx.scale.max_density();
    let built = BuiltIndex::build(
        IndexKind::Flat,
        ctx.sweep.at(density),
        domain,
        ctx.scale.pool_pages,
    );
    let flat = built.as_flat().expect("built FLAT").clone();

    for (name, queries) in [
        ("SN", ctx.scale.sn_workload(&domain)),
        ("LSS", ctx.scale.lss_workload(&domain)),
    ] {
        let mut stats = QueryStats::default();
        for q in &queries {
            built.pool.clear_cache();
            let _ = flat
                .range_query_with_stats(&built.pool, q, &mut stats)
                .expect("in-memory query");
        }
        // Disk share from the same workload re-run through the runner (to
        // price the I/O with the disk model).
        let fresh = BuiltIndex::build(
            IndexKind::Flat,
            ctx.sweep.at(density),
            domain,
            ctx.scale.pool_pages,
        );
        let outcome = run_workload(&fresh, &queries, ctx.model);

        let result_bytes = (stats.result_count * 48).max(1);
        table.push_row(vec![
            name.to_string(),
            fmt_f64(stats.bookkeeping_bytes() as f64 / result_bytes as f64 * 100.0),
            fmt_f64(outcome.disk_share() * 100.0),
            fmt_f64(stats.mbr_tests as f64 / stats.result_count.max(1) as f64),
        ]);
    }
    table
}

/// Extension ablation: the same SN workload priced on different storage
/// devices — FLAT's *time* advantage shrinks on an SSD while the page-read
/// advantage is device-independent.
pub fn exp_disk_models(ctx: &Context) -> Table {
    use flat_storage::DiskModel;
    let mut table = Table::new(
        "exp_disk_models",
        "SN benchmark, densest data set: FLAT vs PR-Tree across storage devices",
        &["device", "FLAT time [s]", "PR-Tree time [s]", "speedup"],
    );
    let domain = ctx.sweep.domain();
    let queries = ctx.scale.sn_workload(&domain);
    let density = ctx.scale.max_density();

    let flat = BuiltIndex::build(
        IndexKind::Flat,
        ctx.sweep.at(density),
        domain,
        ctx.scale.pool_pages,
    );
    let pr = BuiltIndex::build(
        IndexKind::PrTree,
        ctx.sweep.at(density),
        domain,
        ctx.scale.pool_pages,
    );

    for (name, model) in [
        ("SAS 10k (paper)", DiskModel::sas_10k()),
        ("SATA 7.2k", DiskModel::sata_7200()),
        ("SSD", DiskModel::ssd()),
    ] {
        let flat_outcome = run_workload(&flat, &queries, model);
        let pr_outcome = run_workload(&pr, &queries, model);
        let speedup = pr_outcome.total_time().as_secs_f64()
            / flat_outcome.total_time().as_secs_f64().max(1e-12);
        table.push_row(vec![
            name.to_string(),
            crate::report::fmt_secs(flat_outcome.total_time()),
            crate::report::fmt_secs(pr_outcome.total_time()),
            format!("{:.2}x", speedup),
        ]);
    }
    table
}
