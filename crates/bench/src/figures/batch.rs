//! Batched query execution vs one-at-a-time (extension).
//!
//! The concurrency experiment overlaps I/O by adding *threads*; this one
//! keeps a single query stream and overlaps I/O by *batching*: the
//! [`flat_core::QueryEngine`] runs the SN workload as one batch — seeds
//! first, crawls interleaved round-robin through a per-batch page cache,
//! crawl-ahead hints feeding readahead workers that prefetch through the
//! shared pool. The device model is the same throttled store as
//! `exp_concurrency` (150 µs per physical read, SSD-class); the baseline
//! issues the identical queries serially against the identical pool.
//!
//! Results are checked bit-identical between the two modes, and the
//! prefetch columns separate speculative I/O (and its wasted share) from
//! demand reads, so the speedup can't hide behind overcounted useful I/O.

use super::Context;
use crate::report::{fmt_f64, Table};
use flat_core::{EngineConfig, FlatIndex, FlatOptions, QueryEngine};
use flat_storage::{BufferPool, ConcurrentBufferPool, MemStore, PageStore, ThrottledStore};
use std::time::{Duration, Instant};

/// Per-physical-read device latency (matches `exp_concurrency`).
pub const READ_LATENCY: Duration = Duration::from_micros(150);

/// Readahead worker counts measured for the batched mode.
pub const READAHEAD_STEPS: [usize; 3] = [0, 4, 8];

/// SN-workload throughput: one-at-a-time vs batched execution over one
/// FLAT index on a 150 µs/read device, at several readahead depths.
///
/// # Panics
/// Panics if the batched engine's results diverge from serial execution —
/// that would invalidate the comparison (and the engine).
pub fn exp_batch(ctx: &Context) -> Table {
    let mut table = Table::new(
        "exp_batch",
        "SN throughput, batched engine vs one-at-a-time (150 µs/read device)",
        &[
            "mode",
            "wall ms",
            "queries/sec",
            "speedup",
            "demand reads",
            "prefetch reads",
            "prefetch unused",
            "results",
        ],
    );
    let domain = ctx.sweep.domain();
    let queries = ctx.scale.sn_workload(&domain);
    let density = ctx.scale.max_density();

    let mut build_pool = BufferPool::new(MemStore::new(), ctx.scale.pool_pages);
    let options = FlatOptions {
        domain: Some(domain),
        ..FlatOptions::default()
    };
    let (index, _) = FlatIndex::build(&mut build_pool, ctx.sweep.at(density), options)
        .expect("in-memory build cannot fail");
    // Re-house the pages behind the throttled device with a cache an order
    // of magnitude smaller than the index (the cold-cache regime).
    let store = ThrottledStore::new(build_pool.into_store(), READ_LATENCY);
    let cache_pages = (store.num_pages() as usize / 10).max(64);
    let pool = ConcurrentBufferPool::new(store, cache_pages);

    // Baseline: the same queries, one at a time, same pool.
    pool.clear_cache();
    pool.reset_stats();
    let start = Instant::now();
    let serial_results: Vec<Vec<flat_rtree::Hit>> = queries
        .iter()
        .map(|q| {
            index
                .range_query(&pool, q)
                .expect("in-memory query cannot fail")
        })
        .collect();
    let serial_wall = start.elapsed();
    let serial_stats = pool.stats();
    let serial_qps = queries.len() as f64 / serial_wall.as_secs_f64().max(1e-9);
    let total_results: u64 = serial_results.iter().map(|r| r.len() as u64).sum();
    table.push_row(vec![
        "one-at-a-time".to_string(),
        fmt_f64(serial_wall.as_secs_f64() * 1e3),
        fmt_f64(serial_qps),
        "1.00x".to_string(),
        serial_stats.total_physical_reads().to_string(),
        serial_stats.total_prefetch_reads().to_string(),
        serial_stats.total_prefetched_unused().to_string(),
        total_results.to_string(),
    ]);

    for readahead in READAHEAD_STEPS {
        pool.clear_cache();
        pool.reset_stats();
        let engine = QueryEngine::with_config(
            &index,
            &pool,
            EngineConfig {
                readahead_threads: readahead,
                ..EngineConfig::default()
            },
        );
        let start = Instant::now();
        let outcome = engine
            .run_range_batch(&queries)
            .expect("in-memory batch cannot fail");
        let wall = start.elapsed();
        assert_eq!(
            outcome.results, serial_results,
            "batched results (readahead={readahead}) diverged from serial"
        );
        let stats = pool.stats();
        let qps = queries.len() as f64 / wall.as_secs_f64().max(1e-9);
        let speedup = if serial_qps > 0.0 {
            format!("{:.2}x", qps / serial_qps)
        } else {
            "-".to_string() // degenerate run (e.g. FLAT_QUERIES=0)
        };
        table.push_row(vec![
            format!("batched, readahead={readahead}"),
            fmt_f64(wall.as_secs_f64() * 1e3),
            fmt_f64(qps),
            speedup,
            stats.total_physical_reads().to_string(),
            stats.total_prefetch_reads().to_string(),
            stats.total_prefetched_unused().to_string(),
            total_results.to_string(),
        ]);
    }
    table
}
