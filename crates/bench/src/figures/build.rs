//! Figures 10 and 11: time to index and index size, per density.

use super::Context;
use crate::indexes::{BuiltIndex, IndexKind};
use crate::report::{fmt_mb, fmt_secs, Table};
use flat_storage::PAGE_SIZE;

/// Builds every index at every density once and derives:
///
/// * `fig10` — build time per variant, with FLAT broken into its
///   partitioning / neighbor-finding / writing phases (§VII-B),
/// * `fig11` — index size with the paper's component breakdown: FLAT's
///   object pages and seed-tree+metadata vs the PR-tree's leaf and
///   non-leaf pages (§VII-C).
pub fn build_suite(ctx: &Context) -> Vec<Table> {
    let domain = ctx.sweep.domain();
    let mut fig10 = Table::new(
        "fig10_build_time",
        "Overall time to index [s] for data sets of increasing density",
        &[
            "density",
            "Hilbert R-Tree",
            "STR R-Tree",
            "PR-Tree",
            "TGS R-Tree",
            "FLAT",
            "FLAT partitioning",
            "FLAT neighbors",
        ],
    );
    let mut fig11 = Table::new(
        "fig11_index_size",
        "Index size [MB]: FLAT (object pages, seed tree + metadata) vs PR-Tree (leaf, non-leaf)",
        &[
            "density",
            "FLAT total",
            "FLAT object pages",
            "FLAT seed+metadata",
            "PR total",
            "PR leaf",
            "PR non-leaf",
        ],
    );

    for &density in ctx.sweep.densities() {
        let label = ctx.scale.density_label(density);
        let entries = ctx.sweep.at(density);

        let hilbert = BuiltIndex::build(
            IndexKind::Hilbert,
            entries.clone(),
            domain,
            ctx.scale.pool_pages,
        );
        let str_tree = BuiltIndex::build(
            IndexKind::Str,
            entries.clone(),
            domain,
            ctx.scale.pool_pages,
        );
        let pr = BuiltIndex::build(
            IndexKind::PrTree,
            entries.clone(),
            domain,
            ctx.scale.pool_pages,
        );
        let tgs = BuiltIndex::build(
            IndexKind::Tgs,
            entries.clone(),
            domain,
            ctx.scale.pool_pages,
        );
        let flat = BuiltIndex::build(IndexKind::Flat, entries, domain, ctx.scale.pool_pages);
        let flat_stats = flat.flat_stats.as_ref().expect("FLAT reports build stats");

        fig10.push_row(vec![
            label.clone(),
            fmt_secs(hilbert.build_time),
            fmt_secs(str_tree.build_time),
            fmt_secs(pr.build_time),
            fmt_secs(tgs.build_time),
            fmt_secs(flat.build_time),
            fmt_secs(flat_stats.partition_time),
            fmt_secs(flat_stats.neighbor_time),
        ]);

        let pr_tree = pr.as_rtree().expect("PR is an R-tree");
        fig11.push_row(vec![
            label,
            fmt_mb(flat.size_bytes()),
            fmt_mb(flat.data_bytes()),
            fmt_mb(flat.overhead_bytes()),
            fmt_mb(pr.size_bytes()),
            fmt_mb(pr_tree.num_leaf_pages() * PAGE_SIZE as u64),
            fmt_mb(pr_tree.num_inner_pages() * PAGE_SIZE as u64),
        ]);
    }
    vec![fig10, fig11]
}
