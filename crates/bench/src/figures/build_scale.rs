//! `exp_build_scale` (extension): the streaming out-of-core build vs the
//! in-memory build at increasing dataset size.
//!
//! For every density step the driver builds the FLAT index twice — fully
//! resident (`FlatIndex::build`) and through the streaming
//! `FlatIndexBuilder` pipeline (external sort → slab tiling → neighbor
//! sweep → streamed metadata) — then
//!
//! * verifies the two indexes are **bit-identical**, page by page (the
//!   run aborts if they are not);
//! * reports build throughput for both paths; and
//! * reports the streaming build's **peak resident state**: entries in
//!   memory at once, partitions held *with their elements* (one slab's
//!   worth by construction), the neighbor sweep's window, and how much
//!   was spilled to scratch pages.
//!
//! The interesting shape: total partitions grow linearly with N while the
//! peak-resident columns grow like N^⅔ (one slab) — the memory bound that
//! lets the build scale to the paper's "bigger than main memory" datasets.
//!
//! The spill budget (entries buffered per sort run) defaults to 32 768 so
//! the external-sort machinery is actually exercised at bench scale;
//! override with `FLAT_SPILL_BUDGET`.

use super::Context;
use crate::report::{fmt_mb, fmt_secs, Table};
use flat_core::{FlatIndex, FlatIndexBuilder, FlatOptions};
use flat_storage::{BufferPool, MemStore, Page, PageId, PageStore};
use std::time::Instant;

/// Default entries buffered per external-sort run.
pub const DEFAULT_SPILL_BUDGET: usize = 32_768;

/// The spill budget, honoring `FLAT_SPILL_BUDGET`.
pub fn spill_budget_from_env() -> usize {
    std::env::var("FLAT_SPILL_BUDGET")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(DEFAULT_SPILL_BUDGET)
}

/// `true` if every page of both stores holds identical bytes.
fn stores_identical(a: &BufferPool<MemStore>, b: &BufferPool<MemStore>) -> bool {
    if a.store().num_pages() != b.store().num_pages() {
        return false;
    }
    let (mut pa, mut pb) = (Page::new(), Page::new());
    for i in 0..a.store().num_pages() {
        a.store().read_page(PageId(i), &mut pa).unwrap();
        b.store().read_page(PageId(i), &mut pb).unwrap();
        if pa.bytes() != pb.bytes() {
            return false;
        }
    }
    true
}

/// Runs the experiment over the context's density sweep.
pub fn exp_build_scale(ctx: &Context) -> Table {
    let budget = spill_budget_from_env();
    let mut table = Table::new(
        "exp_build_scale",
        "Streaming vs in-memory build: throughput and peak resident state \
         (streamed index verified bit-identical per row)",
        &[
            "density",
            "in-mem [s]",
            "streamed [s]",
            "streamed [kelem/s]",
            "partitions",
            "peak res. entries",
            "peak res. partitions",
            "sweep window",
            "slabs",
            "spilled",
            "runs",
            "identical",
        ],
    );

    let options = FlatOptions {
        domain: Some(ctx.sweep.domain()),
        ..FlatOptions::default()
    };
    for &density in ctx.sweep.densities() {
        let entries = ctx.sweep.at(density);

        let mut pool_mem = BufferPool::new(MemStore::new(), 1 << 17);
        let t0 = Instant::now();
        let (_, _) = FlatIndex::build(&mut pool_mem, entries.clone(), options).unwrap();
        let mem_time = t0.elapsed();

        let mut pool_str = BufferPool::new(MemStore::new(), 1 << 17);
        let t1 = Instant::now();
        let (_, stats, streaming) = FlatIndexBuilder::new(options)
            .spill_budget(budget)
            .build(&mut pool_str, entries)
            .unwrap();
        let str_time = t1.elapsed();

        let identical = stores_identical(&pool_mem, &pool_str);
        assert!(
            identical,
            "streamed build diverged from the in-memory build at density {density}"
        );

        table.push_row(vec![
            ctx.scale.density_label(density),
            fmt_secs(mem_time),
            fmt_secs(str_time),
            format!("{:.0}", density as f64 / str_time.as_secs_f64() / 1000.0),
            stats.num_partitions.to_string(),
            streaming.peak_resident_entries.to_string(),
            streaming.peak_resident_partitions.to_string(),
            streaming.peak_sweep_window.to_string(),
            streaming.num_slabs.to_string(),
            fmt_mb(streaming.spill.spilled_bytes),
            streaming.spill.runs.to_string(),
            if identical { "yes" } else { "NO" }.to_string(),
        ]);
    }
    table
}
