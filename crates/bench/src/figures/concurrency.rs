//! Concurrent query throughput (extension): many query streams over one
//! shared FLAT index.
//!
//! The paper evaluates single-stream latency; a deployed index serves many
//! clients at once. This experiment runs the SN workload from 1/2/4/8
//! worker threads sharing one [`flat_storage::ConcurrentBufferPool`] over a
//! throttled store that charges a device latency per physical page read
//! (queries are I/O-bound, §VII-E.2 — 97.8–98.8 % disk time). Aggregate
//! throughput rising with the thread count is the direct payoff of the
//! `&self` read path: overlapped I/O waits, no serialization through an
//! exclusive pool.

use super::Context;
use crate::report::{fmt_f64, Table};
use crate::runner::query_throughput;
use flat_core::{FlatIndex, FlatOptions};
use flat_storage::{BufferPool, ConcurrentBufferPool, MemStore, PageStore, ThrottledStore};
use std::time::Duration;

/// Per-physical-read device latency for the throttled store (SSD-class).
pub const READ_LATENCY: Duration = Duration::from_micros(150);

/// Thread counts measured.
pub const THREAD_STEPS: [usize; 4] = [1, 2, 4, 8];

/// Multi-threaded SN throughput on the neuron dataset: queries/sec at
/// 1/2/4/8 threads plus the speedup over the single-threaded run.
pub fn exp_concurrency(ctx: &Context) -> Table {
    let mut table = Table::new(
        "exp_concurrency",
        "SN throughput over one shared FLAT index (150 µs/read device)",
        &["threads", "queries/sec", "speedup vs 1 thread", "results"],
    );
    let domain = ctx.sweep.domain();
    let queries = ctx.scale.sn_workload(&domain);
    let density = ctx.scale.max_density();

    // Build in the exclusive pool, then re-house the pages behind the
    // throttled device with a cache an order of magnitude smaller than the
    // index, so queries keep paying for I/O like the paper's cold-cache
    // protocol demands.
    let mut build_pool = BufferPool::new(MemStore::new(), ctx.scale.pool_pages);
    let options = FlatOptions {
        domain: Some(domain),
        ..FlatOptions::default()
    };
    let (index, _) = FlatIndex::build(&mut build_pool, ctx.sweep.at(density), options)
        .expect("in-memory build cannot fail");
    let store = ThrottledStore::new(build_pool.into_store(), READ_LATENCY);
    let cache_pages = (store.num_pages() as usize / 10).max(64);
    let pool = ConcurrentBufferPool::new(store, cache_pages);

    let mut baseline_qps = None;
    for threads in THREAD_STEPS {
        pool.clear_cache();
        let outcome = query_throughput(&index, &pool, &queries, threads, 1);
        let qps = outcome.qps();
        let base = *baseline_qps.get_or_insert(qps);
        let speedup = if base > 0.0 {
            format!("{:.2}x", qps / base)
        } else {
            "-".to_string() // degenerate run (e.g. FLAT_QUERIES=0)
        };
        table.push_row(vec![
            threads.to_string(),
            fmt_f64(qps),
            speedup,
            outcome.results.to_string(),
        ]);
    }
    table
}
