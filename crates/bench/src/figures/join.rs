//! ε-distance join (extension): the link-graph co-crawl
//! ([`flat_core::JoinEngine`]) vs the classical R-tree index
//! nested-loop join, on the paired mesh-vs-nbody workload.
//!
//! The baseline indexes the inner (particle) dataset with an STR-packed
//! R-tree and, for every outer (mesh) element, runs one ε-inflated
//! range query through the tree — paying the root-to-leaf descent per
//! element. The co-crawl instead sweeps the outer dataset's partitions
//! in storage order and crawls the inner link graph from the previous
//! partition's partners, so most sweep steps touch no directory at all
//! ([`flat_core::JoinStats::frontier_reuses`]). Both methods are exact;
//! the driver asserts their pair sets are identical before timing wins
//! are reported. A sharded fan-out row shows the same join routed
//! through [`flat_core::ShardedDb`] coverage pairs.

use super::Context;
use crate::report::{fmt_f64, Table};
use flat_core::{FlatIndex, FlatOptions, JoinEngine, JoinInput, ShardOptions, ShardedDb};
use flat_data::join::{mesh_vs_nbody, JoinWorkload, JoinWorkloadConfig};
use flat_rtree::{BulkLoad, LeafLayout, RTree, RTreeConfig, TraversalStats};
use flat_storage::{BufferPool, MemStore};
use std::time::Instant;

/// Shards of the fan-out row.
pub const JOIN_SHARDS: usize = 4;

/// The paired workload at the context's scale: half the sweep's maximum
/// element count per side.
pub fn workload(ctx: &Context) -> JoinWorkload {
    let per_side = (ctx.scale.max_density() / 2).max(500);
    mesh_vs_nbody(&JoinWorkloadConfig::mesh_vs_nbody(
        per_side,
        per_side,
        ctx.scale.seed ^ 0x4a4f_494e,
    ))
}

/// One method's run: the sorted pair set plus cost counters.
struct JoinRun {
    pairs: Vec<(u64, u64)>,
    millis: f64,
    pages: u64,
}

/// The R-tree index nested-loop join: one ε-inflated range query per
/// outer element, Euclidean-verified. Pages = tree nodes visited.
fn rtree_nested(w: &JoinWorkload, pool: &BufferPool<MemStore>, tree: &RTree) -> JoinRun {
    let eps2 = w.eps * w.eps;
    let mut stats = TraversalStats::default();
    let mut pairs = Vec::new();
    let start = Instant::now();
    for ea in &w.outer {
        let q = ea.mbr.inflate(w.eps);
        for hit in tree
            .range_query_with_stats(pool, &q, &mut stats)
            .expect("in-memory query cannot fail")
        {
            if ea.mbr.distance_sq(&hit.mbr) <= eps2 {
                pairs.push((ea.id, hit.id));
            }
        }
    }
    let millis = start.elapsed().as_secs_f64() * 1e3;
    pairs.sort_unstable();
    JoinRun {
        pairs,
        millis,
        pages: stats.inner_visits + stats.leaf_visits,
    }
}

/// Join comparison: co-crawl vs R-tree nested loop, plus the sharded
/// fan-out. Writes `BENCH_join.json` when emitted through
/// [`emit_with_json`].
pub fn exp_join(ctx: &Context) -> Table {
    let w = workload(ctx);
    let mut table = Table::new(
        "exp_join",
        "ε-distance join, mesh vs n-body: link-graph co-crawl vs R-tree \
         index nested loop (both exact, identical pair sets)",
        &[
            "method",
            "outer",
            "inner",
            "eps",
            "pairs",
            "time ms",
            "pages touched",
            "seed descents",
            "frontier reuses",
            "speedup vs R-tree",
        ],
    );
    let options = FlatOptions {
        layout: LeafLayout::WithIds,
        domain: Some(w.domain),
        ..FlatOptions::default()
    };

    // The baseline: STR R-tree over the inner side, id-carrying leaves.
    let mut rtree_pool = BufferPool::new(MemStore::new(), ctx.scale.pool_pages);
    let rtree = RTree::bulk_load(
        &mut rtree_pool,
        w.inner.clone(),
        BulkLoad::Str,
        RTreeConfig {
            layout: LeafLayout::WithIds,
            ..RTreeConfig::default()
        },
    )
    .expect("in-memory build cannot fail");
    let baseline = rtree_nested(&w, &rtree_pool, &rtree);

    // The co-crawl over two FLAT indexes.
    let mut pool_outer = BufferPool::new(MemStore::new(), ctx.scale.pool_pages);
    let (index_outer, _) = FlatIndex::build(&mut pool_outer, w.outer.clone(), options)
        .expect("in-memory build cannot fail");
    let mut pool_inner = BufferPool::new(MemStore::new(), ctx.scale.pool_pages);
    let (index_inner, _) = FlatIndex::build(&mut pool_inner, w.inner.clone(), options)
        .expect("in-memory build cannot fail");
    let start = Instant::now();
    let cocrawl = JoinEngine::new(w.eps)
        .join(
            &pool_outer,
            JoinInput::Flat(&index_outer),
            &pool_inner,
            JoinInput::Flat(&index_inner),
        )
        .expect("in-memory join cannot fail");
    let cocrawl_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        cocrawl.pairs, baseline.pairs,
        "co-crawl and nested-loop joins must agree exactly"
    );

    // The sharded fan-out: the same join over coverage pairs.
    let shard_options = ShardOptions {
        index: options,
        ..ShardOptions::default()
    };
    let db_outer = ShardedDb::build_in_memory(JOIN_SHARDS, w.outer.clone(), shard_options)
        .expect("in-memory build cannot fail");
    let db_inner = ShardedDb::build_in_memory(JOIN_SHARDS, w.inner.clone(), shard_options)
        .expect("in-memory build cannot fail");
    let start = Instant::now();
    let sharded = db_outer
        .join(&db_inner, w.eps)
        .expect("in-memory join cannot fail");
    let sharded_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        sharded.pairs, baseline.pairs,
        "sharded fan-out must agree with the flat join"
    );

    let speedup = |ms: f64| {
        if ms > 0.0 {
            format!("{:.2}x", baseline.millis / ms)
        } else {
            "-".to_string()
        }
    };
    let mut push = |method: &str,
                    pairs: usize,
                    ms: f64,
                    pages: u64,
                    descents: String,
                    reuses: String,
                    speedup: String| {
        table.push_row(vec![
            method.to_string(),
            w.outer.len().to_string(),
            w.inner.len().to_string(),
            fmt_f64(w.eps),
            pairs.to_string(),
            fmt_f64(ms),
            pages.to_string(),
            descents,
            reuses,
            speedup,
        ]);
    };
    push(
        "R-tree nested loop",
        baseline.pairs.len(),
        baseline.millis,
        baseline.pages,
        "-".into(),
        "-".into(),
        "1.00x".into(),
    );
    push(
        "FLAT co-crawl",
        cocrawl.pairs.len(),
        cocrawl_ms,
        cocrawl.stats.object_pages_read + cocrawl.stats.crawl_records,
        cocrawl.stats.seed_descents.to_string(),
        cocrawl.stats.frontier_reuses.to_string(),
        speedup(cocrawl_ms),
    );
    push(
        &format!("sharded co-crawl K={JOIN_SHARDS}"),
        sharded.pairs.len(),
        sharded_ms,
        sharded.stats.object_pages_read + sharded.stats.crawl_records,
        sharded.stats.seed_descents.to_string(),
        sharded.stats.frontier_reuses.to_string(),
        speedup(sharded_ms),
    );
    table
}

/// Prints/saves the table as every figure does, plus the
/// machine-readable `BENCH_join.json` the join benchmarks are tracked
/// by.
pub fn emit_with_json(table: &Table) {
    table.emit();
    match table.save_json("BENCH_join") {
        Ok(path) => println!("[saved {}]\n", path.display()),
        Err(e) => println!("[json not saved: {e}]\n"),
    }
}
