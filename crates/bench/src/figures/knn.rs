//! k-nearest-neighbor workload (extension): a second query type on the
//! same index.
//!
//! The kNN query ([`flat_core::FlatIndex::knn_query`]) reuses FLAT's two
//! ingredients — seed-tree descent, then neighbor-link expansion — with a
//! best-first frontier instead of a BFS queue. This experiment runs a kNN
//! workload (random locations, k ∈ [8, 128]) over the neuron model on the
//! 150 µs/read device, serial vs batched through the
//! [`flat_core::QueryEngine`], and verifies exactness against a
//! brute-force scan on the smallest sweep density.

use super::batch::READ_LATENCY;
use super::Context;
use crate::report::{fmt_f64, Table};
use flat_core::{EngineConfig, FlatIndex, FlatOptions, QueryEngine};
use flat_data::workload::{knn_queries, KnnConfig};
use flat_geom::Point3;
use flat_rtree::Entry;
use flat_storage::{BufferPool, ConcurrentBufferPool, MemStore, PageStore, ThrottledStore};
use std::time::Instant;

/// Readahead worker counts measured for the batched mode.
pub const READAHEAD_STEPS: [usize; 2] = [0, 4];

/// Brute-force kNN distances (the verification oracle).
fn brute_force_dists(entries: &[Entry], p: &Point3, k: usize) -> Vec<f64> {
    let mut dists: Vec<f64> = entries
        .iter()
        .map(|e| e.mbr.distance_sq_to_point(p))
        .collect();
    dists.sort_by(|a, b| a.total_cmp(b));
    dists.truncate(k);
    dists
}

/// kNN throughput on the neuron dataset, serial vs batched, plus a
/// brute-force exactness check at the smallest density.
///
/// # Panics
/// Panics if kNN results diverge from the brute-force oracle (small
/// dataset) or between serial and batched execution (full dataset).
pub fn exp_knn(ctx: &Context) -> Table {
    let mut table = Table::new(
        "exp_knn",
        "kNN workload over one FLAT index (150 µs/read device)",
        &[
            "mode",
            "wall ms",
            "queries/sec",
            "speedup",
            "demand reads",
            "prefetch reads",
            "neighbors",
        ],
    );
    let domain = ctx.sweep.domain();
    let queries = knn_queries(
        &domain,
        &KnnConfig {
            count: ctx.scale.queries,
            k_range: (8, 128),
            seed: ctx.scale.seed ^ 0x4b4e_4e51,
        },
    );

    // Exactness first: on the smallest density a full scan is affordable,
    // so every query is checked against the brute-force oracle.
    let small_density = ctx.scale.densities[0];
    let small_entries = ctx.sweep.at(small_density);
    let mut small_pool = BufferPool::new(MemStore::new(), ctx.scale.pool_pages);
    let options = FlatOptions {
        domain: Some(domain),
        ..FlatOptions::default()
    };
    let (small_index, _) = FlatIndex::build(&mut small_pool, small_entries.clone(), options)
        .expect("in-memory build cannot fail");
    for (p, k) in &queries {
        let got = small_index
            .knn_query(&small_pool, *p, *k)
            .expect("in-memory query cannot fail");
        let got_dists: Vec<f64> = got.iter().map(|n| n.dist_sq).collect();
        assert_eq!(
            got_dists,
            brute_force_dists(&small_entries, p, *k),
            "kNN diverged from brute force at k={k}, p={p}"
        );
    }

    // Throughput at max density over the throttled device.
    let density = ctx.scale.max_density();
    let mut build_pool = BufferPool::new(MemStore::new(), ctx.scale.pool_pages);
    let (index, _) = FlatIndex::build(&mut build_pool, ctx.sweep.at(density), options)
        .expect("in-memory build cannot fail");
    let store = ThrottledStore::new(build_pool.into_store(), READ_LATENCY);
    let cache_pages = (store.num_pages() as usize / 10).max(64);
    let pool = ConcurrentBufferPool::new(store, cache_pages);

    pool.clear_cache();
    pool.reset_stats();
    let start = Instant::now();
    let serial_results: Vec<Vec<flat_core::Neighbor>> = queries
        .iter()
        .map(|&(p, k)| {
            index
                .knn_query(&pool, p, k)
                .expect("in-memory query cannot fail")
        })
        .collect();
    let serial_wall = start.elapsed();
    let serial_stats = pool.stats();
    let serial_qps = queries.len() as f64 / serial_wall.as_secs_f64().max(1e-9);
    let neighbors: u64 = serial_results.iter().map(|r| r.len() as u64).sum();
    table.push_row(vec![
        "one-at-a-time".to_string(),
        fmt_f64(serial_wall.as_secs_f64() * 1e3),
        fmt_f64(serial_qps),
        "1.00x".to_string(),
        serial_stats.total_physical_reads().to_string(),
        serial_stats.total_prefetch_reads().to_string(),
        neighbors.to_string(),
    ]);

    for readahead in READAHEAD_STEPS {
        pool.clear_cache();
        pool.reset_stats();
        let engine = QueryEngine::with_config(
            &index,
            &pool,
            EngineConfig {
                readahead_threads: readahead,
                ..EngineConfig::default()
            },
        );
        let start = Instant::now();
        let outcome = engine
            .run_knn_batch(&queries)
            .expect("in-memory batch cannot fail");
        let wall = start.elapsed();
        assert_eq!(
            outcome.results, serial_results,
            "batched kNN (readahead={readahead}) diverged from serial"
        );
        let stats = pool.stats();
        let qps = queries.len() as f64 / wall.as_secs_f64().max(1e-9);
        let speedup = if serial_qps > 0.0 {
            format!("{:.2}x", qps / serial_qps)
        } else {
            "-".to_string() // degenerate run (e.g. FLAT_QUERIES=0)
        };
        table.push_row(vec![
            format!("batched, readahead={readahead}"),
            fmt_f64(wall.as_secs_f64() * 1e3),
            fmt_f64(qps),
            speedup,
            stats.total_physical_reads().to_string(),
            stats.total_prefetch_reads().to_string(),
            neighbors.to_string(),
        ]);
    }
    table
}
