//! The LSS (large spatial subvolumes) benchmark suite: Figures 4, 16, 17,
//! 18 and 19 from one measurement sweep.

use super::sn::{run_paper_set, tables_from_outcomes};
use super::Context;
use crate::indexes::IndexKind;

/// Runs the LSS workload for every index at every density and derives:
///
/// 1. `fig04` — PR-tree retrieved bytes vs result bytes (§III-B's
///    motivation; the full per-variant view is in the breakdown table),
/// 2. `fig16` — total page reads (thousands),
/// 3. `fig17` — execution time,
/// 4. `fig18` — data-retrieved breakdown,
/// 5. `fig19` — page reads per result element.
pub fn lss_suite(ctx: &Context) -> Vec<Table> {
    let domain = ctx.sweep.domain();
    let queries = ctx.scale.lss_workload(&domain);

    let outcomes = run_paper_set(ctx, &queries);

    let mut tables = tables_from_outcomes(
        ctx,
        &outcomes,
        "lss",
        "LSS benchmark",
        &["fig04", "fig16", "fig17", "fig18", "fig19"],
    );

    // Figure 4 proper: total data retrieved per R-tree variant vs result
    // size (the motivation experiment of §III-B).
    let mut fig04 = Table::new(
        "fig04_lss_retrieved",
        "LSS: total data retrieved [MB] vs result size, per R-tree variant",
        &[
            "density",
            "result size",
            "PR-Tree",
            "STR R-Tree",
            "Hilbert R-Tree",
        ],
    );
    for &density in ctx.sweep.densities() {
        let get = |kind: IndexKind| &outcomes[&(density, kind)];
        fig04.push_row(vec![
            ctx.scale.density_label(density),
            crate::report::fmt_mb(get(IndexKind::PrTree).result_bytes()),
            crate::report::fmt_mb(get(IndexKind::PrTree).bytes_read()),
            crate::report::fmt_mb(get(IndexKind::Str).bytes_read()),
            crate::report::fmt_mb(get(IndexKind::Hilbert).bytes_read()),
        ]);
    }
    tables[0] = fig04;
    tables
}

use crate::report::Table;
