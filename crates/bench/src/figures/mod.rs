//! One driver per figure/table of the paper.
//!
//! Figures that share a measurement pass are produced together: the SN
//! suite yields Figures 3, 12, 13, 14 and 15 from a single sweep; the LSS
//! suite yields Figures 4, 16, 17, 18 and 19; the build suite yields
//! Figures 10 and 11.

pub mod ablation;
pub mod analysis;
pub mod batch;
pub mod build;
pub mod build_scale;
pub mod concurrency;
pub mod join;
pub mod knn;
pub mod lss;
pub mod motivation;
pub mod mvcc;
pub mod other;
pub mod shard;
pub mod sn;
pub mod update;
pub mod wal;

use crate::datasets::DensitySweep;
use crate::Scale;
use flat_storage::DiskModel;

/// Shared state for a benchmarking session: the scale, the generated
/// density sweep, and the disk model pricing the I/O.
pub struct Context {
    /// Experiment scale.
    pub scale: Scale,
    /// The neuron-model density sweep (generated once).
    pub sweep: DensitySweep,
    /// Disk cost model (the paper's 10 kRPM SAS array by default).
    pub model: DiskModel,
}

impl Context {
    /// Generates the sweep for `scale`.
    pub fn new(scale: Scale) -> Context {
        let sweep = DensitySweep::generate(&scale);
        Context {
            scale,
            sweep,
            model: DiskModel::sas_10k(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end smoke test: every figure driver runs at smoke scale and
    /// produces non-empty, well-formed tables. This is the cross-crate
    /// integration test for the whole harness.
    #[test]
    fn all_figures_run_at_smoke_scale() {
        let ctx = Context::new(Scale::smoke());

        let fig02 = motivation::fig02_rtree_overlap(&ctx);
        assert_eq!(fig02.rows.len(), ctx.scale.densities.len());

        let sn_tables = sn::sn_suite(&ctx);
        assert_eq!(sn_tables.len(), 5);
        for t in &sn_tables {
            assert_eq!(t.rows.len(), ctx.scale.densities.len(), "{}", t.name);
        }

        let lss_tables = lss::lss_suite(&ctx);
        assert_eq!(lss_tables.len(), 5);

        let build_tables = build::build_suite(&ctx);
        assert_eq!(build_tables.len(), 2);

        // Asserts the streamed build is bit-identical per density step.
        let scale_table = build_scale::exp_build_scale(&ctx);
        assert_eq!(scale_table.rows.len(), ctx.scale.densities.len());
        assert!(scale_table.rows.iter().all(|r| r.last().unwrap() == "yes"));

        let fig20 = analysis::fig20_pointer_distribution(&ctx);
        assert!(!fig20.rows.is_empty());

        let fig21 = analysis::fig21_partition_volume(1_000, ctx.scale.seed);
        assert_eq!(fig21.rows.len(), 5);

        let volume = analysis::exp_element_volume(1_000, ctx.scale.seed);
        assert_eq!(volume.rows.len(), 5);

        let aspect = analysis::exp_aspect_ratio(1_000, ctx.scale.seed);
        assert!(aspect.rows.len() >= 4);

        let overheads = analysis::exp_overheads(&ctx);
        assert_eq!(overheads.rows.len(), 2); // SN and LSS

        let (fig22, fig23) = other::other_datasets_suite(50, 10, ctx.scale.seed);
        assert_eq!(fig22.rows.len(), 5);
        assert_eq!(fig23.rows.len(), 5);

        let meta_order = ablation::exp_meta_order(&ctx);
        assert_eq!(meta_order.rows.len(), 2);

        let batched = batch::exp_batch(&ctx);
        // One serial baseline row plus one per readahead depth; the driver
        // itself asserts batched results are bit-identical to serial.
        assert_eq!(batched.rows.len(), 1 + batch::READAHEAD_STEPS.len());

        let knn = knn::exp_knn(&ctx);
        assert_eq!(knn.rows.len(), 1 + knn::READAHEAD_STEPS.len());
        // Every mode answers the same workload: identical neighbor counts.
        let counts: Vec<&String> = knn.rows.iter().map(|r| &r[6]).collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]));

        let concurrent = concurrency::exp_concurrency(&ctx);
        assert_eq!(concurrent.rows.len(), concurrency::THREAD_STEPS.len());
        // Every thread count answers the same workload identically.
        let results: Vec<&String> = concurrent.rows.iter().map(|r| &r[3]).collect();
        assert!(
            results.windows(2).all(|w| w[0] == w[1]),
            "thread counts disagree: {results:?}"
        );

        let sharded = shard::exp_shard(&ctx);
        // Unsharded baseline plus one row per shard count.
        assert_eq!(sharded.rows.len(), 1 + shard::SHARD_STEPS.len());
        // Scheduler lanes actually carried traffic on the sharded rows.
        for row in sharded.rows.iter().skip(1) {
            assert_ne!(row[6], "-", "missing scheduler stats: {row:?}");
        }
        assert!(sharded.to_json().contains("\"rows\""));

        // R-tree nested loop, FLAT co-crawl, sharded co-crawl; the driver
        // itself asserts all three produce identical pair sets.
        let joined = join::exp_join(&ctx);
        assert_eq!(joined.rows.len(), 3);
        assert_ne!(joined.rows[0][4], "0", "join selected no pairs");
        let counts: Vec<&String> = joined.rows.iter().map(|r| &r[4]).collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]));
        // The sweep reuses the frontier far more often than it reseeds.
        let reuses: u64 = joined.rows[1][8].parse().unwrap();
        let descents: u64 = joined.rows[1][7].parse().unwrap();
        assert!(
            reuses > descents,
            "co-crawl reseeded more than it reused ({descents} vs {reuses})"
        );
        assert!(joined.to_json().contains("\"rows\""));

        let bulk_vs_insert = ablation::exp_bulk_vs_insert(&ctx, 5_000);
        assert_eq!(bulk_vs_insert.rows.len(), 2);

        let strategies = ablation::exp_bulkload_strategies(&ctx);
        assert_eq!(strategies.rows.len(), 4);

        // Base + churn steps + compact; the driver itself asserts the
        // compacted pages are byte-identical to a fresh rebuild.
        let updates = update::exp_update(&ctx);
        assert_eq!(updates.rows.len(), 2 + update::CHURN_STEPS);
        assert_eq!(updates.rows.last().unwrap().last().unwrap(), "yes");

        // One row per durability mode plus the group-commit reruns; every
        // durable run recovered from a simulated crash to the non-durable
        // baseline's query answers (the driver itself asserts the
        // equivalence).
        let durability = wal::exp_wal(&ctx);
        assert_eq!(
            durability.rows.len(),
            wal::modes().len() + wal::grouped_modes().len()
        );
        for row in durability.rows.iter().skip(1) {
            assert_eq!(row.last().unwrap(), "yes", "{row:?}");
        }
        assert!(durability.to_json().contains("\"rows\""));

        // Idle / mvcc / exclusive writer regimes; the driver itself
        // asserts every regime's final answers match the brute-force
        // serial-path oracle, and the mvcc churn writer committed batches
        // while the fleet was reading.
        let snapshots = mvcc::exp_mvcc(&ctx);
        assert_eq!(snapshots.rows.len(), 3);
        for row in &snapshots.rows {
            assert_eq!(row.last().unwrap(), "yes", "{row:?}");
        }
        assert_ne!(snapshots.rows[1][3], "0", "mvcc writer never committed");
        assert!(snapshots.to_json().contains("\"rows\""));
    }
}
