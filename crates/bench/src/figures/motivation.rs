//! Figure 2: point-query page reads on the R-tree baselines — the paper's
//! motivation that overlap grows with density.
//!
//! "The point query is an excellent indication of overlap in an R-Tree:
//! the number of disk pages read to execute this query in an R-Tree
//! without overlap is equal to the height of the tree" (§III).

use super::Context;
use crate::indexes::{BuiltIndex, IndexKind};
use crate::report::{fmt_f64, Table};
use flat_data::workload::point_queries;
use flat_geom::Aabb;

/// Runs Figure 2: average page reads per point query, per density, for the
/// Hilbert, STR and PR trees (tree height shown for reference — the no-
/// overlap lower bound).
pub fn fig02_rtree_overlap(ctx: &Context) -> Table {
    let mut table = Table::new(
        "fig02_rtree_overlap",
        "Point query performance on R-Tree variants (avg page reads per query)",
        &[
            "density",
            "Hilbert R-Tree",
            "STR R-Tree",
            "PR-Tree",
            "tree height",
        ],
    );
    let domain = ctx.sweep.domain();
    let points = point_queries(&domain, ctx.scale.queries, ctx.scale.seed ^ 0x9021);

    for &density in ctx.sweep.densities() {
        let mut row = vec![ctx.scale.density_label(density)];
        let mut height = 0;
        for kind in IndexKind::RTREE_BASELINES {
            let built =
                BuiltIndex::build(kind, ctx.sweep.at(density), domain, ctx.scale.pool_pages);
            let mut total_reads = 0u64;
            for p in &points {
                let (_, io, _) = built.query(&Aabb::point(*p));
                total_reads += io.total_physical_reads();
            }
            row.push(fmt_f64(total_reads as f64 / points.len() as f64));
            height = built.as_rtree().expect("baseline is an R-tree").height();
        }
        row.push(height.to_string());
        table.push_row(row);
    }
    table
}
