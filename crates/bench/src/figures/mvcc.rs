//! `exp_mvcc` (extension): wait-free snapshot reads under live ingest —
//! the payoff of epoch-based page versioning.
//!
//! A fleet of read clients runs the same mixed range + kNN script against
//! one [`FlatDb`] over a queue-depth-limited device
//! ([`ThrottledStore::with_parallelism`]) in three regimes:
//!
//! 1. **idle writer** — no updates; the read-throughput baseline.
//! 2. **mvcc writer** — a churn writer commits grouped
//!    delete+insert batches ([`flat_core::Writer::apply`]) the whole
//!    time; readers pin snapshots and never block (the tentpole claim:
//!    reads during a batch stay within 1.5× of idle).
//! 3. **exclusive writer** — the pre-versioning discipline, modelled by
//!    an [`RwLock`] the writer holds exclusively across every batch, so
//!    reads queue behind updates.
//!
//! Every regime's final answers are checked against a brute-force scan
//! over the churn generator's live population (the serial-path oracle);
//! the run aborts on divergence. The same guarantee at assertion scale
//! lives in `tests/concurrent_queries.rs` and
//! `tests/property_invariants.rs`; this driver measures what those tests
//! prove.

use super::Context;
use crate::report::{fmt_f64, Table};
use flat_core::{DbOptions, FlatDb, WriteOp};
use flat_data::update::{ChurnConfig, ChurnWorkload};
use flat_data::workload::{knn_queries, KnnConfig};
use flat_geom::{Aabb, Point3};
use flat_rtree::Entry;
use flat_storage::{MemStore, ThrottledStore};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::RwLock;
use std::time::{Duration, Instant};

/// Concurrent read clients per regime.
pub const CLIENTS: usize = 64;

/// Timed workload passes each client performs (after one untimed warm-up
/// pass that fills the cache identically in every regime). The writer
/// commits exactly one churn batch per pass — the simulation-timestep
/// cadence of the paper's workload — so the overlap structure is
/// identical across regimes and runs.
const PASSES: usize = 3;

/// Fraction of the live population replaced per churn batch.
const CHURN_FRACTION: f64 = 0.005;

/// Device model: per-read latency (the concurrency figure's device) and
/// internal parallelism. Cold misses and the writer's copy-on-write
/// pre-image reads pay it; warmed read traffic measures the locking
/// discipline itself, which is what separates regimes 2 and 3.
const DEVICE_LATENCY: Duration = Duration::from_micros(150);
const DEVICE_PARALLELISM: usize = 8;

/// The three measured regimes, in row order.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Regime {
    Idle,
    Mvcc,
    Exclusive,
}

/// One regime's measurement.
struct Measurement {
    reads: usize,
    batches: usize,
    reads_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    in_batch_reads: usize,
    in_batch_p99_ms: Option<f64>,
}

/// The percentile of a sorted latency sample, in milliseconds.
fn percentile_ms(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let at = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[at] as f64 / 1e6
}

/// Brute-force serial-path oracle: `db`'s answers over the mixed script
/// must match a linear scan of `live`. Aborts the run on divergence.
fn assert_matches_oracle(
    db: &FlatDb<ThrottledStore<MemStore>>,
    live: &[Entry],
    queries: &[Aabb],
    probes: &[(Point3, usize)],
) {
    for (i, q) in queries.iter().enumerate() {
        let mut got: Vec<u64> = db
            .reader()
            .range(q)
            .expect("range query failed")
            .into_iter()
            .map(|h| h.id)
            .collect();
        got.sort_unstable();
        let mut expected: Vec<u64> = live
            .iter()
            .filter(|e| q.intersects(&e.mbr))
            .map(|e| e.id)
            .collect();
        expected.sort_unstable();
        assert_eq!(got, expected, "range query {i} diverged from brute force");
    }
    for (i, (p, k)) in probes.iter().enumerate() {
        let got: Vec<f64> = db
            .reader()
            .knn(*p, *k)
            .expect("knn query failed")
            .into_iter()
            .map(|n| n.dist_sq)
            .collect();
        let mut brute: Vec<f64> = live.iter().map(|e| e.mbr.distance_sq_to_point(p)).collect();
        brute.sort_by(|a, b| a.partial_cmp(b).expect("NaN distance"));
        brute.truncate(*k);
        assert_eq!(got, brute, "kNN probe {i} diverged from brute force");
    }
}

fn run_regime(
    ctx: &Context,
    domain: Aabb,
    entries: &[Entry],
    queries: &[Aabb],
    probes: &[(Point3, usize)],
    regime: Regime,
) -> Measurement {
    let mut options = DbOptions::updatable(domain);
    options.pool_pages = ctx.scale.pool_pages;
    let store =
        ThrottledStore::with_parallelism(MemStore::new(), DEVICE_LATENCY, DEVICE_PARALLELISM);
    let mut db = FlatDb::create(store, options);
    db.build_from(entries.to_vec()).expect("build failed");

    let churn_per_step = ((entries.len() as f64 * CHURN_FRACTION) as usize).max(32);
    let churn_seed = ctx.scale.seed ^ 0x4d56_4343;
    let mut churn = ChurnWorkload::new(
        entries.to_vec(),
        domain,
        ChurnConfig::steady(churn_per_step, churn_seed),
    );
    // Priming batch in *every* regime (idle included): the first update
    // promotes the base index to the delta layer, and reads over a delta
    // crawl cost more than over a pristine base. Promoting up front means
    // all three regimes read the same index shape, so the comparison
    // isolates the locking discipline rather than the index structure.
    let prime = churn.step();
    db.writer()
        .expect("updatable database")
        .apply(vec![
            WriteOp::Delete(prime.deletes),
            WriteOp::Insert(prime.inserts),
        ])
        .expect("priming batch failed");
    let primed_live: Vec<Entry> = churn.live().to_vec();

    let in_batch = AtomicBool::new(false);
    let stop = AtomicBool::new(false);
    let done = AtomicU64::new(0);
    let t0_ns = AtomicU64::new(0);
    let wall_ns = AtomicU64::new(0);
    // Pass barrier: the fleet starts each timed pass together, and the
    // pass leader releases one churn batch to the writer (`go`).
    let barrier = std::sync::Barrier::new(CLIENTS);
    let go = AtomicU64::new(0);
    // The pre-versioning discipline: readers share, each batch excludes.
    let gate = RwLock::new(());
    let exclusive = regime == Regime::Exclusive;

    // One read of the whole script: every range query, then every kNN
    // probe, rotated by the client index so the fleet decorrelates.
    // Timed per query; a read that overlapped a batch window is tagged.
    let read_pass = |client: usize, lat: Option<&mut Vec<(u64, bool)>>| {
        let mut sink = 0usize;
        let mut lat = lat;
        let mut timed = |during_before: bool, start: Instant, hits: usize| {
            if let Some(lat) = lat.as_deref_mut() {
                let during = during_before || in_batch.load(Ordering::Relaxed);
                lat.push((start.elapsed().as_nanos() as u64, during));
            }
            sink += hits;
        };
        for i in 0..queries.len() {
            let q = &queries[(i + client) % queries.len()];
            let during = in_batch.load(Ordering::Relaxed);
            let start = Instant::now();
            let guard = exclusive.then(|| gate.read().expect("gate poisoned"));
            let hits = db.reader().range(q).expect("range query failed").len();
            drop(guard);
            timed(during, start, hits);
        }
        for i in 0..probes.len() {
            let (p, k) = probes[(i + client) % probes.len()];
            let during = in_batch.load(Ordering::Relaxed);
            let start = Instant::now();
            let guard = exclusive.then(|| gate.read().expect("gate poisoned"));
            let hits = db.reader().knn(p, k).expect("knn query failed").len();
            drop(guard);
            timed(during, start, hits);
        }
        sink
    };

    let start = Instant::now();
    let (latencies, batches, live) = std::thread::scope(|s| {
        let writer = if regime == Regime::Idle {
            None
        } else {
            let (db, gate, go, stop, in_batch) = (&db, &gate, &go, &stop, &in_batch);
            Some(s.spawn(move || {
                let mut churn = churn;
                let mut batches = 0usize;
                // One batch per fleet pass, released by the pass leader:
                // the simulation-timestep cadence, and a deterministic
                // overlap structure (`batches == PASSES` every run).
                for k in 1..=PASSES as u64 {
                    while go.load(Ordering::Acquire) < k {
                        if stop.load(Ordering::Acquire) {
                            return (batches, churn.live().to_vec());
                        }
                        std::thread::sleep(Duration::from_micros(500));
                    }
                    let step = churn.step();
                    let guard = exclusive.then(|| gate.write().expect("gate poisoned"));
                    in_batch.store(true, Ordering::Release);
                    db.writer()
                        .expect("updatable database")
                        .apply(vec![
                            WriteOp::Delete(step.deletes),
                            WriteOp::Insert(step.inserts),
                        ])
                        .expect("update batch failed");
                    in_batch.store(false, Ordering::Release);
                    drop(guard);
                    batches += 1;
                }
                (batches, churn.live().to_vec())
            }))
        };
        let (read_pass, wall_ns, done, stop) = (&read_pass, &wall_ns, &done, &stop);
        let (barrier, go, t0_ns) = (&barrier, &go, &t0_ns);
        let readers: Vec<_> = (0..CLIENTS)
            .map(|client| {
                s.spawn(move || {
                    read_pass(client, None); // warm-up, untimed
                    let mut lat = Vec::with_capacity(PASSES * (queries.len() + probes.len()));
                    for pass in 0..PASSES {
                        if barrier.wait().is_leader() {
                            if pass == 0 {
                                t0_ns.store(start.elapsed().as_nanos() as u64, Ordering::SeqCst);
                            }
                            go.fetch_add(1, Ordering::Release);
                        }
                        read_pass(client, Some(&mut lat));
                    }
                    wall_ns.fetch_max(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    if done.fetch_add(1, Ordering::Relaxed) + 1 == CLIENTS as u64 {
                        stop.store(true, Ordering::Release);
                    }
                    lat
                })
            })
            .collect();
        let mut latencies = Vec::new();
        for handle in readers {
            latencies.extend(handle.join().expect("read client panicked"));
        }
        let (batches, live) = writer
            .map(|h| h.join().expect("churn writer panicked"))
            .unwrap_or((0, primed_live));
        (latencies, batches, live)
    });

    assert_matches_oracle(&db, &live, queries, probes);

    let timed_ns = wall_ns
        .load(Ordering::Relaxed)
        .saturating_sub(t0_ns.load(Ordering::SeqCst));
    let wall_s = timed_ns as f64 / 1e9;
    let mut all: Vec<u64> = latencies.iter().map(|&(ns, _)| ns).collect();
    all.sort_unstable();
    let mut during: Vec<u64> = latencies
        .iter()
        .filter(|&&(_, d)| d)
        .map(|&(ns, _)| ns)
        .collect();
    during.sort_unstable();
    Measurement {
        reads: all.len(),
        batches,
        reads_per_sec: all.len() as f64 / wall_s.max(1e-9),
        p50_ms: percentile_ms(&all, 0.50),
        p99_ms: percentile_ms(&all, 0.99),
        in_batch_reads: during.len(),
        in_batch_p99_ms: (!during.is_empty()).then(|| percentile_ms(&during, 0.99)),
    }
}

/// Runs the three-regime comparison at the sweep's middle density.
pub fn exp_mvcc(ctx: &Context) -> Table {
    let mut table = Table::new(
        "exp_mvcc",
        "MVCC snapshots: read throughput and latency for a 64-client \
         mixed range+kNN fleet with an idle, a concurrent (epoch-versioned), \
         and an exclusive-locking churn writer (answers verified against a \
         brute-force serial-path oracle)",
        &[
            "writer",
            "clients",
            "reads",
            "batches",
            "reads/sec",
            "vs idle",
            "p50 ms",
            "p99 ms",
            "in-batch reads",
            "in-batch p99 ms",
            "oracle",
        ],
    );
    let density = ctx.scale.densities[ctx.scale.densities.len() / 2];
    let domain = ctx.sweep.domain();
    let entries = ctx.sweep.at(density);
    let queries = ctx.scale.sn_workload(&domain);
    let probes = knn_queries(
        &domain,
        &KnnConfig {
            count: (ctx.scale.queries / 2).max(4),
            k_range: (8, 64),
            seed: ctx.scale.seed ^ 0x4d56_4b4e,
        },
    );

    let regimes = [
        ("idle", Regime::Idle),
        ("mvcc", Regime::Mvcc),
        ("exclusive", Regime::Exclusive),
    ];
    let mut rows: Vec<(&'static str, Measurement)> = Vec::new();
    for (label, regime) in regimes {
        rows.push((
            label,
            run_regime(ctx, domain, &entries, &queries, &probes, regime),
        ));
    }

    let idle_rate = rows[0].1.reads_per_sec;
    for (label, m) in rows {
        table.push_row(vec![
            label.to_string(),
            CLIENTS.to_string(),
            m.reads.to_string(),
            m.batches.to_string(),
            fmt_f64(m.reads_per_sec),
            format!("{:.2}x", m.reads_per_sec / idle_rate.max(1e-9)),
            format!("{:.3}", m.p50_ms),
            format!("{:.3}", m.p99_ms),
            m.in_batch_reads.to_string(),
            m.in_batch_p99_ms
                .map_or("-".to_string(), |ms| format!("{ms:.3}")),
            // `assert_matches_oracle` already aborted on divergence.
            "yes".to_string(),
        ]);
    }
    table
}

/// Prints/saves the table as every figure does, plus the machine-readable
/// `BENCH_mvcc.json` the concurrency claim is tracked by.
pub fn emit_with_json(table: &Table) {
    table.emit();
    match table.save_json("BENCH_mvcc") {
        Ok(path) => println!("[saved {}]\n", path.display()),
        Err(e) => println!("[json not saved: {e}]\n"),
    }
}
