//! §VIII / Figures 22–23: FLAT vs the PR-tree on the other scientific data
//! sets (Nuage n-body snapshots, the brain surface mesh, the Lucy statue).

use crate::indexes::{BuiltIndex, IndexKind};
use crate::report::{fmt_mb, fmt_secs, Table};
use crate::runner::run_workload;
use flat_data::mesh::{mesh_entries, MeshConfig};
use flat_data::nbody::{nbody_entries, NBodyConfig};
use flat_data::workload::{range_queries, WorkloadConfig};
use flat_geom::Aabb;
use flat_rtree::Entry;
use flat_storage::DiskModel;

/// The five §VIII datasets with their paper sizes in millions of elements.
/// `per_million` elements are generated per paper-million (1000 =
/// 1/1000 scale).
fn datasets(per_million: usize, seed: u64) -> Vec<(&'static str, Vec<Entry>, Aabb)> {
    let n = |millions: f64| (millions * per_million as f64) as usize;
    let mut out = Vec::new();

    let dm = NBodyConfig::dark_matter(n(16.8), seed ^ 1);
    out.push(("Nuage (dark matter)", nbody_entries(&dm), dm.domain));

    let stars = NBodyConfig::stars(n(16.8), seed ^ 2);
    out.push(("Nuage (stars)", nbody_entries(&stars), stars.domain));

    let gas = NBodyConfig::gas(n(12.4), seed ^ 3);
    out.push(("Nuage (gas)", nbody_entries(&gas), gas.domain));

    let brain = MeshConfig::brain(n(173.0), seed ^ 4);
    out.push(("Brain Mesh", mesh_entries(&brain), brain.domain));

    let lucy = MeshConfig::statue(n(252.0), seed ^ 5);
    out.push(("Lucy Statue", mesh_entries(&lucy), lucy.domain));

    out
}

/// Runs the §VIII comparison and returns `(fig22, fig23)`:
///
/// * Figure 22 — index size and building time for FLAT vs the PR-tree on
///   each dataset;
/// * Figure 23 — execution time and speedup for "small volume" and "large
///   volume" query sets (fractions scaled like the main benchmarks).
pub fn other_datasets_suite(per_million: usize, queries: usize, seed: u64) -> (Table, Table) {
    let mut fig22 = Table::new(
        "fig22_other_datasets",
        "Index size [MB] and building time [s] for each data set",
        &[
            "dataset",
            "elements",
            "FLAT size",
            "PR size",
            "FLAT build",
            "PR build",
        ],
    );
    let mut fig23 = Table::new(
        "fig23_other_speedup",
        "Execution time [s] and speedup of small and large volume queries",
        &[
            "dataset",
            "small FLAT",
            "small PR",
            "small speedup %",
            "large FLAT",
            "large PR",
            "large speedup %",
        ],
    );

    // Query volumes: the paper's fractions (5·10⁻⁷ / 5·10⁻⁴ of the data
    // set volume) scaled by the same 1000/per_million factor as the main
    // benchmarks so per-query result sizes stay in the paper's regime.
    let volume_scale = 1000.0 / per_million as f64 * 1000.0;
    let small_fraction = (flat_data::workload::SN_VOLUME_FRACTION * volume_scale).min(0.05);
    let large_fraction = (flat_data::workload::LSS_VOLUME_FRACTION * volume_scale).min(0.05);
    let model = DiskModel::sas_10k();

    for (name, entries, domain) in datasets(per_million, seed) {
        let count = entries.len();
        let flat = BuiltIndex::build(IndexKind::Flat, entries.clone(), domain, 1 << 17);
        let pr = BuiltIndex::build(IndexKind::PrTree, entries, domain, 1 << 17);

        fig22.push_row(vec![
            name.to_string(),
            count.to_string(),
            fmt_mb(flat.size_bytes()),
            fmt_mb(pr.size_bytes()),
            fmt_secs(flat.build_time),
            fmt_secs(pr.build_time),
        ]);

        let mut row = vec![name.to_string()];
        for fraction in [small_fraction, large_fraction] {
            let config = WorkloadConfig {
                count: queries,
                volume_fraction: fraction,
                proportion_range: (1.0, 4.0),
                seed: seed ^ fraction.to_bits(),
            };
            let qs = range_queries(&domain, &config);
            let flat_outcome = run_workload(&flat, &qs, model);
            let pr_outcome = run_workload(&pr, &qs, model);
            let speedup = (pr_outcome.total_time().as_secs_f64()
                - flat_outcome.total_time().as_secs_f64())
                / pr_outcome.total_time().as_secs_f64().max(1e-12)
                * 100.0;
            row.push(fmt_secs(flat_outcome.total_time()));
            row.push(fmt_secs(pr_outcome.total_time()));
            row.push(format!("{speedup:.0}"));
        }
        fig23.push_row(row);
    }
    (fig22, fig23)
}
