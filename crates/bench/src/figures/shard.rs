//! Sharded serving throughput (extension): mixed range/kNN/update traffic
//! from many clients over K spatial shards, each behind its own
//! [`flat_storage::DiskScheduler`], vs the unsharded [`FlatDb`] façade.
//!
//! Every configuration serves the same workload over [`ThrottledStore`]
//! devices with a queue-depth model (reads admitted `parallelism` at a
//! time, so piling clients onto one store stops paying off past the
//! device's concurrency — exactly the regime sharding is for). Each shard
//! owns its own store: K shards command K independent device queues, the
//! way a deployment spreads shards over spindles. The client count is
//! 10–100× the per-index thread counts of `exp_concurrency`
//! (`FLAT_CLIENTS`, default 64).

use super::Context;
use crate::report::{fmt_f64, Table};
use flat_core::{DbOptions, FlatDb, FlatIndex, FlatOptions, ShardOptions, ShardedDb};
use flat_data::workload::{knn_queries, KnnConfig};
use flat_geom::{Aabb, Point3};
use flat_rtree::{Entry, LeafLayout};
use flat_storage::{
    BufferPool, IoStats, MemStore, PageStore, SchedulerConfig, SchedulerStats, ThrottledStore,
};
use std::time::{Duration, Instant};

/// Per-physical-read device latency (SSD-class, as in `exp_concurrency`).
pub const READ_LATENCY: Duration = Duration::from_micros(120);

/// Reads a device admits concurrently (the queue-depth model's
/// parallelism); also the scheduler worker count per shard, so the worker
/// pool exactly covers the device.
pub const DEVICE_PARALLELISM: usize = 4;

/// Shard counts measured.
pub const SHARD_STEPS: [usize; 4] = [1, 2, 4, 8];

/// Elements inserted (then deleted) per update round.
const UPDATE_BATCH: usize = 64;

/// Client threads (`FLAT_CLIENTS` overrides).
pub fn client_count() -> usize {
    std::env::var("FLAT_CLIENTS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&c| c > 0)
        .unwrap_or(64)
}

/// One client operation of the mixed workload.
enum Op {
    Range(Aabb),
    Knn(Point3, usize),
}

/// The mixed read workload: the SN ranges interleaved with a quarter as
/// many kNN probes.
fn mixed_ops(ctx: &Context, domain: &Aabb) -> Vec<Op> {
    let ranges = ctx.scale.sn_workload(domain);
    let knns = knn_queries(
        domain,
        &KnnConfig {
            count: (ctx.scale.queries / 4).max(1),
            k_range: (8, 64),
            seed: ctx.scale.seed ^ 0x5348_4b4e,
        },
    );
    // Interleave deterministically: one kNN after every few ranges.
    let stride = ranges.len().div_ceil(knns.len()).max(1);
    let mut ops = Vec::with_capacity(ranges.len() + knns.len());
    let mut knn_it = knns.into_iter();
    for (i, q) in ranges.into_iter().enumerate() {
        ops.push(Op::Range(q));
        if (i + 1) % stride == 0 {
            if let Some((p, k)) = knn_it.next() {
                ops.push(Op::Knn(p, k));
            }
        }
    }
    ops.extend(knn_it.map(|(p, k)| Op::Knn(p, k)));
    ops
}

/// The update round: a batch of fresh elements (ids far above the
/// dataset's) inserted and then deleted, leaving the data unchanged for
/// the next configuration.
fn update_batch(domain: &Aabb) -> Vec<Entry> {
    let extent = domain.max.x - domain.min.x;
    (0..UPDATE_BATCH as u64)
        .map(|i| {
            let x = domain.min.x + extent * (i as f64 + 0.5) / UPDATE_BATCH as f64;
            let c = Point3::new(x, domain.center().y, domain.center().z);
            Entry::new(1 << 40 | i, Aabb::cube(c, extent / 200.0))
        })
        .collect()
}

/// One measured row: operations/second plus the I/O and scheduler
/// counters behind it.
struct Measurement {
    ops_per_sec: f64,
    io: IoStats,
    sched: Option<SchedulerStats>,
}

/// Total operations a run executes: every range, kNN, inserted and
/// deleted element counts as one.
fn op_count(ops: &[Op]) -> usize {
    ops.len() + 2 * UPDATE_BATCH
}

fn throttled_store() -> ThrottledStore<MemStore> {
    ThrottledStore::with_parallelism(MemStore::new(), READ_LATENCY, DEVICE_PARALLELISM)
}

/// Runs the mixed workload against the unsharded façade: `clients`
/// threads share the snapshot read path, then one writer applies the
/// update round (the façade's writer is exclusive by design).
fn run_unsharded(
    db: &mut FlatDb<ThrottledStore<MemStore>>,
    ops: &[Op],
    clients: usize,
    update: &[Entry],
) -> Measurement {
    db.clear_cache();
    db.reset_stats();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..clients {
            let reader = db.reader();
            scope.spawn(move || {
                for op in ops.iter().skip(t).step_by(clients) {
                    match op {
                        Op::Range(q) => drop(reader.range(q).expect("range query failed")),
                        Op::Knn(p, k) => drop(reader.knn(*p, *k).expect("knn query failed")),
                    }
                }
            });
        }
    });
    {
        let mut writer = db.writer().expect("updatable database");
        writer.insert(update.to_vec()).expect("insert failed");
        let ids: Vec<u64> = update.iter().map(|e| e.id).collect();
        writer.delete(&ids).expect("delete failed");
    }
    let wall = start.elapsed();
    Measurement {
        ops_per_sec: op_count(ops) as f64 / wall.as_secs_f64().max(1e-9),
        io: db.io_stats(),
        sched: None,
    }
}

/// Runs the same workload against a [`ShardedDb`]; updates go through the
/// same `&self` entry points the clients use.
fn run_sharded(
    db: &ShardedDb<ThrottledStore<MemStore>>,
    ops: &[Op],
    clients: usize,
    update: &[Entry],
) -> Measurement {
    db.clear_cache();
    db.reset_stats();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..clients {
            scope.spawn(move || {
                for op in ops.iter().skip(t).step_by(clients) {
                    match op {
                        Op::Range(q) => drop(db.range_query(q).expect("range query failed")),
                        Op::Knn(p, k) => drop(db.knn_query(*p, *k).expect("knn query failed")),
                    }
                }
            });
        }
    });
    db.insert(update.to_vec()).expect("insert failed");
    let ids: Vec<u64> = update.iter().map(|e| e.id).collect();
    db.delete(&ids).expect("delete failed");
    let wall = start.elapsed();
    Measurement {
        ops_per_sec: op_count(ops) as f64 / wall.as_secs_f64().max(1e-9),
        io: db.io_stats(),
        sched: Some(db.scheduler_stats()),
    }
}

/// Throughput scaling of the sharded serving layer: the unsharded façade
/// as baseline, then K = 1, 2, 4, 8 shards, all over queue-depth-modelled
/// throttled devices. Writes `BENCH_shard.json` next to the CSV when
/// emitted through [`emit_with_json`].
pub fn exp_shard(ctx: &Context) -> Table {
    let mut table = Table::new(
        "exp_shard",
        "Sharded serving: mixed traffic over per-shard disk schedulers \
         (120 µs reads, device depth 4)",
        &[
            "config",
            "clients",
            "ops/sec",
            "vs unsharded",
            "vs K=1",
            "physical reads",
            "coalesced",
            "prefetch dropped",
            "prefetch unused",
            "mean demand wait µs",
        ],
    );
    let domain = ctx.sweep.domain();
    let entries = ctx.sweep.at(ctx.scale.max_density());
    let ops = mixed_ops(ctx, &domain);
    let update = update_batch(&domain);
    let clients = client_count();
    let index_options = FlatOptions {
        layout: LeafLayout::WithIds,
        domain: Some(domain),
        ..FlatOptions::default()
    };

    // Unsharded baseline: build in memory, re-house behind one throttled
    // device, open through the façade (cache one order below the index).
    let mut build_pool = BufferPool::new(MemStore::new(), ctx.scale.pool_pages);
    let (index, _) = FlatIndex::build(&mut build_pool, entries.clone(), index_options)
        .expect("in-memory build cannot fail");
    let descriptor = index.save(&mut build_pool).expect("save cannot fail");
    let store =
        ThrottledStore::with_parallelism(build_pool.into_store(), READ_LATENCY, DEVICE_PARALLELISM);
    let cache_pages = (store.num_pages() as usize / 10).max(64);
    let db_options = DbOptions {
        index: index_options,
        pool_pages: cache_pages,
        ..DbOptions::default()
    };
    let mut db = FlatDb::open(store, descriptor, db_options).expect("open cannot fail");
    let baseline = run_unsharded(&mut db, &ops, clients, &update);
    drop(db);

    let mut rows = vec![("unsharded".to_string(), baseline)];
    let mut k1_qps = None;
    for k in SHARD_STEPS {
        let options = ShardOptions {
            index: index_options,
            // Fixed total cache budget: K shards split what the baseline had.
            pool_pages: (cache_pages / k).max(64),
            scheduler: SchedulerConfig {
                workers: DEVICE_PARALLELISM,
                ..SchedulerConfig::default()
            },
        };
        let sharded = ShardedDb::build(k, entries.clone(), options, |_| throttled_store())
            .expect("in-memory build cannot fail");
        let m = run_sharded(&sharded, &ops, clients, &update);
        if k == 1 {
            k1_qps = Some(m.ops_per_sec);
        }
        rows.push((format!("K={k}"), m));
    }

    let base_qps = rows[0].1.ops_per_sec;
    let k1_qps = k1_qps.expect("SHARD_STEPS contains 1");
    for (config, m) in rows {
        let speedup = |base: f64| {
            if base > 0.0 {
                format!("{:.2}x", m.ops_per_sec / base)
            } else {
                "-".to_string()
            }
        };
        let (coalesced, dropped, wait) = match &m.sched {
            Some(s) => (
                s.demand_coalesced.to_string(),
                s.prefetch_dropped.to_string(),
                fmt_f64(s.mean_demand_wait_us()),
            ),
            None => ("-".into(), "-".into(), "-".into()),
        };
        table.push_row(vec![
            config,
            clients.to_string(),
            fmt_f64(m.ops_per_sec),
            speedup(base_qps),
            speedup(k1_qps),
            m.io.total_physical_reads().to_string(),
            coalesced,
            dropped,
            m.io.total_prefetched_unused().to_string(),
            wait,
        ]);
    }
    table
}

/// Prints/saves the table as every figure does, plus the machine-readable
/// `BENCH_shard.json` the serving-layer benchmarks are tracked by.
pub fn emit_with_json(table: &Table) {
    table.emit();
    match table.save_json("BENCH_shard") {
        Ok(path) => println!("[saved {}]\n", path.display()),
        Err(e) => println!("[json not saved: {e}]\n"),
    }
}
