//! The SN (structural neighborhood) benchmark suite: Figures 3, 12, 13, 14
//! and 15 from one measurement sweep.

use super::Context;
use crate::indexes::{BuiltIndex, IndexKind};
use crate::report::{fmt_f64, fmt_mb, fmt_secs, Table};
use crate::runner::{run_workload, WorkloadOutcome};
use flat_storage::PageKind;
use std::collections::HashMap;

/// Runs the SN workload for every index at every density and derives the
/// five SN tables:
///
/// 1. `fig03` — PR-tree page reads per result element (the motivation
///    table of §III-A),
/// 2. `fig12` — total page reads (thousands),
/// 3. `fig13` — execution time (simulated I/O + measured CPU),
/// 4. `fig14` — data-retrieved breakdown (FLAT: seed/metadata/object;
///    PR-tree: non-leaf/leaf), in MB,
/// 5. `fig15` — page reads per result element for all indexes.
pub fn sn_suite(ctx: &Context) -> Vec<Table> {
    let domain = ctx.sweep.domain();
    let queries = ctx.scale.sn_workload(&domain);

    let outcomes = run_paper_set(ctx, &queries);
    tables_from_outcomes(
        ctx,
        &outcomes,
        "sn",
        "SN benchmark",
        &["fig03", "fig12", "fig13", "fig14", "fig15"],
    )
}

/// Builds the four paper indexes and runs `queries` against each, at every
/// density. The four contenders of one density run on scoped worker
/// threads: each owns its private pool and store, so the paper's
/// single-threaded query protocol is preserved per index while the suite
/// finishes sooner on multi-core machines.
pub(super) fn run_paper_set(
    ctx: &Context,
    queries: &[flat_geom::Aabb],
) -> HashMap<(usize, IndexKind), WorkloadOutcome> {
    let domain = ctx.sweep.domain();
    let mut outcomes: HashMap<(usize, IndexKind), WorkloadOutcome> = HashMap::new();
    for &density in ctx.sweep.densities() {
        let entries = ctx.sweep.at(density);
        std::thread::scope(|scope| {
            let handles: Vec<_> = IndexKind::PAPER_SET
                .into_iter()
                .map(|kind| {
                    let entries = entries.clone();
                    scope.spawn(move || {
                        let built = BuiltIndex::build(kind, entries, domain, ctx.scale.pool_pages);
                        (kind, run_workload(&built, queries, ctx.model))
                    })
                })
                .collect();
            for handle in handles {
                let (kind, outcome) = handle.join().expect("bench worker panicked");
                outcomes.insert((density, kind), outcome);
            }
        });
    }
    outcomes
}

/// Shared table derivation for the SN and LSS suites (the two benchmarks
/// report the same five views).
pub(super) fn tables_from_outcomes(
    ctx: &Context,
    outcomes: &HashMap<(usize, IndexKind), WorkloadOutcome>,
    tag: &str,
    title: &str,
    names: &[&str; 5],
) -> Vec<Table> {
    let densities = ctx.sweep.densities();

    let mut per_result_pr = Table::new(
        &format!("{}_{}_pr_per_result", names[0], tag),
        &format!("{title}: page reads per result element on the PR-Tree"),
        &["density", "page reads per result", "results per query"],
    );
    let mut total_reads = Table::new(
        &format!("{}_{}_page_reads", names[1], tag),
        &format!("{title}: total page reads [thousands]"),
        &["density", "FLAT", "PR-Tree", "STR R-Tree", "Hilbert R-Tree"],
    );
    let mut time = Table::new(
        &format!("{}_{}_time", names[2], tag),
        &format!("{title}: execution time [s] (simulated SAS disk + measured CPU)"),
        &["density", "FLAT", "PR-Tree", "STR R-Tree", "Hilbert R-Tree"],
    );
    let mut breakdown = Table::new(
        &format!("{}_{}_breakdown", names[3], tag),
        &format!(
            "{title}: data retrieved [MB] — FLAT (seed tree / metadata / object) vs PR-Tree (non-leaf / leaf)"
        ),
        &[
            "density",
            "FLAT seed",
            "FLAT metadata",
            "FLAT object",
            "PR non-leaf",
            "PR leaf",
            "result size",
        ],
    );
    let mut per_result = Table::new(
        &format!("{}_{}_per_result", names[4], tag),
        &format!("{title}: page reads per result element"),
        &["density", "FLAT", "PR-Tree", "STR R-Tree", "Hilbert R-Tree"],
    );

    for &density in densities {
        let label = ctx.scale.density_label(density);
        let get = |kind: IndexKind| &outcomes[&(density, kind)];

        let pr = get(IndexKind::PrTree);
        per_result_pr.push_row(vec![
            label.clone(),
            fmt_f64(pr.reads_per_result()),
            fmt_f64(pr.results as f64 / pr.queries.max(1) as f64),
        ]);

        let order = [
            IndexKind::Flat,
            IndexKind::PrTree,
            IndexKind::Str,
            IndexKind::Hilbert,
        ];
        let mut reads_row = vec![label.clone()];
        let mut time_row = vec![label.clone()];
        let mut per_result_row = vec![label.clone()];
        for kind in order {
            let o = get(kind);
            reads_row.push(fmt_f64(o.page_reads() as f64 / 1000.0));
            time_row.push(fmt_secs(o.total_time()));
            per_result_row.push(fmt_f64(o.reads_per_result()));
        }
        total_reads.push_row(reads_row);
        time.push_row(time_row);
        per_result.push_row(per_result_row);

        let flat = get(IndexKind::Flat);
        breakdown.push_row(vec![
            label,
            fmt_mb(flat.bytes_read_of(PageKind::SeedInner)),
            fmt_mb(flat.bytes_read_of(PageKind::SeedLeaf)),
            fmt_mb(flat.bytes_read_of(PageKind::ObjectPage)),
            fmt_mb(pr.bytes_read_of(PageKind::RTreeInner)),
            fmt_mb(pr.bytes_read_of(PageKind::RTreeLeaf)),
            fmt_mb(flat.result_bytes()),
        ]);
    }
    vec![per_result_pr, total_reads, time, breakdown, per_result]
}
