//! `exp_update` (extension): dynamic updates over a FLAT index — update
//! throughput, query slowdown as the delta fraction grows, and
//! post-compaction recovery.
//!
//! The driver builds a FLAT index over the neuron model (WithIds layout —
//! the dynamic layer addresses elements by id), then applies timestep
//! churn batches (`flat_data::update::ChurnWorkload`: delete a sample,
//! re-insert displaced replacements) through a `DeltaIndex`. After each
//! step it runs the SN workload cold-cache over (a) the updated index and
//! (b) a fresh rebuild over the same surviving elements, reporting
//! physical page reads per query for both — the honest price of the delta
//! layer at that delta fraction. The final step compacts and re-measures:
//! the compacted pages are verified **byte-identical** to the fresh
//! rebuild (the run aborts if not), so recovery is exact by construction.

use super::Context;
use crate::report::Table;
use flat_core::{DeltaIndex, FlatIndex, FlatOptions};
use flat_data::update::{ChurnConfig, ChurnWorkload};
use flat_geom::Aabb;
use flat_rtree::{Entry, LeafLayout};
use flat_storage::{BufferPool, MemStore};
use std::time::Instant;

/// Churn steps measured (each replaces [`CHURN_FRACTION`] of the model).
pub const CHURN_STEPS: usize = 4;

/// Fraction of the live population replaced per churn step.
pub const CHURN_FRACTION: f64 = 0.05;

fn options(domain: Aabb) -> FlatOptions {
    FlatOptions {
        layout: LeafLayout::WithIds,
        domain: Some(domain),
        ..FlatOptions::default()
    }
}

/// Cold-cache physical page reads per query of the SN workload.
fn reads_per_query<I>(pool: &BufferPool<MemStore>, queries: &[Aabb], mut run: I) -> f64
where
    I: FnMut(&BufferPool<MemStore>, &Aabb),
{
    pool.clear_cache();
    pool.reset_stats();
    for q in queries {
        pool.clear_cache(); // the paper's protocol: every query starts cold
        run(pool, q);
    }
    pool.stats().total_physical_reads() as f64 / queries.len() as f64
}

/// A fresh bulkload over `entries` in its own pool.
fn fresh_build(entries: Vec<Entry>, domain: Aabb) -> (BufferPool<MemStore>, FlatIndex) {
    let mut pool = BufferPool::new(MemStore::new(), 1 << 17);
    let (index, _) = FlatIndex::build(&mut pool, entries, options(domain)).unwrap();
    (pool, index)
}

/// Runs the experiment at the sweep's middle density.
pub fn exp_update(ctx: &Context) -> Table {
    let mut table = Table::new(
        "exp_update",
        "Dynamic updates: churn throughput, SN reads vs delta fraction, \
         post-compaction recovery (verified byte-identical to a rebuild)",
        &[
            "step",
            "live",
            "delta parts",
            "tombstones",
            "delta frac",
            "update [kelem/s]",
            "SN reads/q",
            "rebuilt reads/q",
            "slowdown",
            "identical",
        ],
    );

    let density = ctx.scale.densities[ctx.scale.densities.len() / 2];
    let domain = ctx.sweep.domain();
    let entries = ctx.sweep.at(density);
    let queries = ctx.scale.sn_workload(&domain);

    let mut pool = BufferPool::new(MemStore::new(), ctx.scale.pool_pages);
    let (index, _) = FlatIndex::build(&mut pool, entries.clone(), options(domain)).unwrap();
    let mut delta = DeltaIndex::new(&pool, index, options(domain)).unwrap();
    let mut churn = ChurnWorkload::new(
        entries,
        domain,
        ChurnConfig::steady(
            (density as f64 * CHURN_FRACTION) as usize,
            ctx.scale.seed ^ 0x5550,
        ),
    );

    let measure = |label: &str,
                   delta: &DeltaIndex,
                   pool: &BufferPool<MemStore>,
                   live: &[Entry],
                   upd: String,
                   expect_identical: bool|
     -> Vec<String> {
        let updated = reads_per_query(pool, &queries, |p, q| {
            delta.range_query(p, q).unwrap();
        });
        let (fresh_pool, fresh_index) = fresh_build(live.to_vec(), domain);
        let rebuilt = reads_per_query(&fresh_pool, &queries, |p, q| {
            fresh_index.range_query(p, q).unwrap();
        });
        let identical = if expect_identical {
            flat_core::verify_compacted_store(pool.store(), fresh_pool.store())
                .unwrap_or_else(|e| panic!("compacted index diverged from the rebuild: {e}"));
            "yes"
        } else {
            "-"
        };
        vec![
            label.to_string(),
            delta.num_live_elements().to_string(),
            delta.num_delta_partitions().to_string(),
            delta.num_tombstones().to_string(),
            format!("{:.2}", delta.delta_fraction()),
            upd,
            format!("{updated:.1}"),
            format!("{rebuilt:.1}"),
            format!("{:.2}x", updated / rebuilt.max(1e-9)),
            identical.to_string(),
        ]
    };

    table.push_row(measure(
        "base",
        &delta,
        &pool,
        churn.live(),
        "-".into(),
        false,
    ));
    for step in 1..=CHURN_STEPS {
        let batch = churn.step();
        let touched = batch.deletes.len() + batch.inserts.len();
        let t = Instant::now();
        delta.delete_batch(&mut pool, &batch.deletes).unwrap();
        delta.insert_batch(&mut pool, batch.inserts).unwrap();
        let elapsed = t.elapsed();
        let upd = format!("{:.0}", touched as f64 / elapsed.as_secs_f64() / 1000.0);
        table.push_row(measure(
            &format!("churn {step}"),
            &delta,
            &pool,
            churn.live(),
            upd,
            false,
        ));
    }
    let t = Instant::now();
    delta.compact(&mut pool).unwrap();
    let upd = format!(
        "{:.0}",
        delta.num_live_elements() as f64 / t.elapsed().as_secs_f64() / 1000.0
    );
    table.push_row(measure("compact", &delta, &pool, churn.live(), upd, true));
    table
}
