//! `exp_wal` (extension): the price of durability — update throughput
//! under [`Durability::Off`] / [`Durability::Wal`] /
//! [`Durability::WalCheckpoint`] at two checkpoint cadences, the pause a
//! checkpoint inserts, and crash-recovery (reopen + replay) time.
//!
//! Every mode runs the *same* deterministic churn script
//! (`flat_data::update::ChurnWorkload`) over the sweep's middle density.
//! The non-durable run is the baseline; each durable run then simulates a
//! crash (`FlatDb::into_store` drops the RAM overlay, exactly what power
//! loss leaves on the device), reopens through `FlatDb::open_durable`,
//! and is verified to answer the SN workload identically to the baseline
//! — the run aborts if recovery diverges. The same discipline at matrix
//! scale lives in `tests/crash_recovery.rs`; this driver measures what
//! the tests prove.

use super::Context;
use crate::report::{fmt_f64, Table};
use flat_core::{DbOptions, Durability, FlatDb, WriteOp};
use flat_data::update::{ChurnConfig, ChurnWorkload};
use flat_geom::Aabb;
use flat_rtree::Entry;
use flat_storage::{MemStore, PageStore};
use std::time::Instant;

/// Churn rounds per mode; each round commits two batches (deletes, then
/// the displaced re-inserts).
pub const CHURN_ROUNDS: usize = 5;

/// Fraction of the live population replaced per churn round.
const CHURN_FRACTION: f64 = 0.05;

/// The durability modes measured, in row order.
pub fn modes() -> Vec<(&'static str, Durability)> {
    vec![
        ("off", Durability::Off),
        ("wal", Durability::Wal),
        ("wal+ckpt/8", Durability::WalCheckpoint { every_batches: 8 }),
        ("wal+ckpt/2", Durability::WalCheckpoint { every_batches: 2 }),
    ]
}

/// The durable modes re-run with *group commit*: each churn round's
/// delete and re-insert are coalesced into one [`Writer::apply`] call —
/// one WAL record group, one head-slot publish, one sync — instead of
/// two independently synced batches. Same logical script, half the
/// commits; the recovery check still runs.
///
/// [`Writer::apply`]: flat_core::Writer::apply
pub fn grouped_modes() -> Vec<(&'static str, Durability)> {
    vec![
        ("wal grouped", Durability::Wal),
        (
            "wal+ckpt/8 grouped",
            Durability::WalCheckpoint { every_batches: 8 },
        ),
        (
            "wal+ckpt/2 grouped",
            Durability::WalCheckpoint { every_batches: 2 },
        ),
    ]
}

/// Sorted hit ids per query — the layout-independent answer key (durable
/// recovery promises logical equivalence, not physical page identity).
fn answers<S: PageStore>(db: &FlatDb<S>, queries: &[Aabb]) -> Vec<Vec<u64>> {
    let reader = db.reader();
    queries
        .iter()
        .map(|q| {
            let mut ids: Vec<u64> = reader
                .range(q)
                .expect("range query failed")
                .into_iter()
                .map(|h| h.id)
                .collect();
            ids.sort_unstable();
            ids
        })
        .collect()
}

/// One measured mode.
struct Measurement {
    batches: usize,
    elements: usize,
    updates_per_sec: f64,
    max_batch_ms: f64,
    checkpoint_ms: Option<f64>,
    recovery_ms: Option<f64>,
    replayed: Option<usize>,
    recovered_matches: Option<bool>,
}

fn run_mode(
    ctx: &Context,
    domain: Aabb,
    entries: &[Entry],
    durability: Durability,
    grouped: bool,
    baseline: Option<&Vec<Vec<u64>>>,
    queries: &[Aabb],
) -> (Measurement, Vec<Vec<u64>>) {
    let options = DbOptions::updatable(domain).with_durability(durability);
    let durable = !matches!(durability, Durability::Off);
    let mut db = if durable {
        FlatDb::create_durable(MemStore::new(), options).expect("create durable session")
    } else {
        FlatDb::create(MemStore::new(), options)
    };
    db.build_from(entries.to_vec()).expect("build failed");

    let mut churn = ChurnWorkload::new(
        entries.to_vec(),
        domain,
        ChurnConfig::steady(
            ((entries.len() as f64 * CHURN_FRACTION) as usize).max(32),
            ctx.scale.seed ^ 0x5741_4c00,
        ),
    );
    let mut batches = 0usize;
    let mut elements = 0usize;
    let mut update_time = 0.0f64;
    let mut max_batch_ms = 0.0f64;
    let mut checkpoint_ms = None;
    for round in 0..CHURN_ROUNDS {
        let batch = churn.step();
        if grouped {
            // Group commit: both logical batches ride one WAL record
            // group and one publish/sync.
            let start = Instant::now();
            let counts = db
                .writer()
                .expect("updatable database")
                .apply(vec![
                    WriteOp::Delete(batch.deletes.clone()),
                    WriteOp::Insert(batch.inserts.clone()),
                ])
                .expect("grouped commit failed");
            let ms = start.elapsed().as_secs_f64() * 1e3;
            update_time += ms / 1e3;
            max_batch_ms = max_batch_ms.max(ms);
            batches += 1;
            elements += counts.iter().sum::<usize>();
        } else {
            for half in 0..2 {
                let start = Instant::now();
                let mut writer = db.writer().expect("updatable database");
                let n = if half == 0 {
                    writer.delete(&batch.deletes).expect("delete failed")
                } else {
                    let n = batch.inserts.len();
                    writer.insert(batch.inserts.clone()).expect("insert failed");
                    n
                };
                let ms = start.elapsed().as_secs_f64() * 1e3;
                update_time += ms / 1e3;
                max_batch_ms = max_batch_ms.max(ms);
                batches += 1;
                elements += n;
            }
        }
        if durable && round == CHURN_ROUNDS / 2 {
            // The pause an explicit mid-run checkpoint inserts (the
            // auto-cadence pauses are folded into max-batch).
            let start = Instant::now();
            db.checkpoint().expect("checkpoint failed");
            checkpoint_ms = Some(start.elapsed().as_secs_f64() * 1e3);
        }
    }
    let live_answers = answers(&db, queries);

    let (recovery_ms, replayed, recovered_matches) = if durable {
        // Simulated power loss: drop the session (and its RAM overlay),
        // keeping only what the device holds, then recover.
        let store = db.into_store();
        let start = Instant::now();
        let (recovered, report) = FlatDb::open_durable(store, options).expect("recovery failed");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let matches = baseline.map(|b| {
            let recovered_answers = answers(&recovered, queries);
            assert_eq!(
                &recovered_answers, b,
                "recovered database diverged from the non-durable baseline"
            );
            recovered_answers == *b
        });
        (Some(ms), Some(report.replayed), matches)
    } else {
        (None, None, None)
    };

    (
        Measurement {
            batches,
            elements,
            updates_per_sec: elements as f64 / update_time.max(1e-9),
            max_batch_ms,
            checkpoint_ms,
            recovery_ms,
            replayed,
            recovered_matches,
        },
        live_answers,
    )
}

/// Runs the durability sweep at the sweep's middle density.
pub fn exp_wal(ctx: &Context) -> Table {
    let mut table = Table::new(
        "exp_wal",
        "Durability: churn throughput vs WAL mode, checkpoint pause, \
         crash-recovery time (recovered answers verified against the \
         non-durable baseline); 'grouped' rows coalesce each round's \
         delete+insert into one group commit (one WAL sync)",
        &[
            "durability",
            "batches",
            "elements",
            "updates/sec",
            "vs off",
            "max batch ms",
            "checkpoint ms",
            "recovery ms",
            "replayed",
            "recovered == off",
        ],
    );
    let density = ctx.scale.densities[ctx.scale.densities.len() / 2];
    let domain = ctx.sweep.domain();
    let entries = ctx.sweep.at(density);
    let queries = ctx.scale.sn_workload(&domain);

    let mut baseline: Option<Vec<Vec<u64>>> = None;
    let mut rows: Vec<(&'static str, Measurement)> = Vec::new();
    let runs = modes()
        .into_iter()
        .map(|(label, d)| (label, d, false))
        .chain(
            grouped_modes()
                .into_iter()
                .map(|(label, d)| (label, d, true)),
        );
    for (label, durability, grouped) in runs {
        let (m, live) = run_mode(
            ctx,
            domain,
            &entries,
            durability,
            grouped,
            baseline.as_ref(),
            &queries,
        );
        if baseline.is_none() {
            baseline = Some(live);
        }
        rows.push((label, m));
    }

    let off_rate = rows[0].1.updates_per_sec;
    let opt_ms = |v: Option<f64>| v.map_or("-".to_string(), |ms| format!("{ms:.2}"));
    for (label, m) in rows {
        table.push_row(vec![
            label.to_string(),
            m.batches.to_string(),
            m.elements.to_string(),
            fmt_f64(m.updates_per_sec),
            format!("{:.2}x", m.updates_per_sec / off_rate.max(1e-9)),
            format!("{:.2}", m.max_batch_ms),
            opt_ms(m.checkpoint_ms),
            opt_ms(m.recovery_ms),
            m.replayed.map_or("-".to_string(), |r| r.to_string()),
            m.recovered_matches.map_or("baseline".to_string(), |ok| {
                if ok { "yes" } else { "no" }.to_string()
            }),
        ]);
    }
    table
}

/// Prints/saves the table as every figure does, plus the machine-readable
/// `BENCH_wal.json` the durability benchmarks are tracked by.
pub fn emit_with_json(table: &Table) {
    table.emit();
    match table.save_json("BENCH_wal") {
        Ok(path) => println!("[saved {}]\n", path.display()),
        Err(e) => println!("[json not saved: {e}]\n"),
    }
}
