//! Uniform handle over FLAT and the R-tree baselines.
//!
//! Measurement is **generic over [`SpatialIndex`]**: one
//! [`measure_range`] / [`measure_knn`] pair runs the paper's cold-cache
//! protocol for any index kind, and [`BuiltIndex`] only dispatches which
//! concrete index to hand it.

use flat_core::{BuildStats, FlatIndex, FlatOptions, IndexStats, Neighbor, SpatialIndex};
use flat_geom::{Aabb, Point3};
use flat_rtree::{BulkLoad, Entry, RTree, RTreeConfig};
use flat_storage::{BufferPool, IoStats, MemStore, PageKind};
use std::time::{Duration, Instant};

/// Runs one range query over any index kind under the paper's protocol:
/// caches cleared first, I/O counted from zero. Returns `(result size,
/// I/O delta, CPU time)`.
pub fn measure_range<I: SpatialIndex>(
    index: &I,
    pool: &BufferPool<MemStore>,
    query: &Aabb,
) -> (usize, IoStats, Duration) {
    pool.clear_cache();
    let snapshot = pool.snapshot();
    let start = Instant::now();
    let results = index
        .range(pool, query)
        .expect("in-memory query cannot fail")
        .len();
    let cpu = start.elapsed();
    (results, pool.stats().since(&snapshot), cpu)
}

/// Runs one kNN query over any index kind under the same protocol.
pub fn measure_knn<I: SpatialIndex>(
    index: &I,
    pool: &BufferPool<MemStore>,
    point: Point3,
    k: usize,
) -> (Vec<Neighbor>, IoStats, Duration) {
    pool.clear_cache();
    let snapshot = pool.snapshot();
    let start = Instant::now();
    let neighbors = index
        .nearest(pool, point, k)
        .expect("in-memory query cannot fail");
    let cpu = start.elapsed();
    (neighbors, pool.stats().since(&snapshot), cpu)
}

/// Which index to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// FLAT (the paper's contribution).
    Flat,
    /// Hilbert-bulkloaded R-tree.
    Hilbert,
    /// STR-bulkloaded R-tree.
    Str,
    /// Priority R-tree.
    PrTree,
    /// TGS R-tree (extension, not in the paper's figures).
    Tgs,
}

impl IndexKind {
    /// The four contenders of the paper's figures, in plotting order.
    pub const PAPER_SET: [IndexKind; 4] = [
        IndexKind::Flat,
        IndexKind::PrTree,
        IndexKind::Str,
        IndexKind::Hilbert,
    ];

    /// The three R-tree baselines.
    pub const RTREE_BASELINES: [IndexKind; 3] =
        [IndexKind::Hilbert, IndexKind::Str, IndexKind::PrTree];

    /// Legend label matching the paper.
    pub fn label(&self) -> &'static str {
        match self {
            IndexKind::Flat => "FLAT",
            IndexKind::Hilbert => "Hilbert R-Tree",
            IndexKind::Str => "STR R-Tree",
            IndexKind::PrTree => "PR-Tree",
            IndexKind::Tgs => "TGS R-Tree",
        }
    }

    fn bulk(&self) -> Option<BulkLoad> {
        match self {
            IndexKind::Flat => None,
            IndexKind::Hilbert => Some(BulkLoad::Hilbert),
            IndexKind::Str => Some(BulkLoad::Str),
            IndexKind::PrTree => Some(BulkLoad::PrTree),
            IndexKind::Tgs => Some(BulkLoad::Tgs),
        }
    }
}

/// A built index together with its pool and build metadata.
pub struct BuiltIndex {
    /// Which index this is.
    pub kind: IndexKind,
    /// The pool all of the index's pages live in.
    pub pool: BufferPool<MemStore>,
    flat: Option<FlatIndex>,
    rtree: Option<RTree>,
    /// Wall-clock build time.
    pub build_time: Duration,
    /// FLAT's phase breakdown (None for R-trees).
    pub flat_stats: Option<BuildStats>,
}

impl BuiltIndex {
    /// Builds an index of `kind` over `entries` (paper-faithful MbrOnly
    /// layout, 85 elements per page).
    pub fn build(
        kind: IndexKind,
        entries: Vec<Entry>,
        domain: Aabb,
        pool_pages: usize,
    ) -> BuiltIndex {
        let mut pool = BufferPool::new(MemStore::new(), pool_pages);
        let start = Instant::now();
        let (flat, rtree, flat_stats) = match kind.bulk() {
            None => {
                let options = FlatOptions {
                    domain: Some(domain),
                    ..FlatOptions::default()
                };
                let (index, stats) = FlatIndex::build(&mut pool, entries, options)
                    .expect("in-memory build cannot fail");
                (Some(index), None, Some(stats))
            }
            Some(method) => {
                let tree = RTree::bulk_load(&mut pool, entries, method, RTreeConfig::default())
                    .expect("in-memory build cannot fail");
                (None, Some(tree), None)
            }
        };
        let build_time = start.elapsed();
        pool.reset_stats();
        pool.clear_cache();
        BuiltIndex {
            kind,
            pool,
            flat,
            rtree,
            build_time,
            flat_stats,
        }
    }

    /// Runs one range query under the paper's protocol, dispatching to
    /// the generic [`measure_range`] driver. Returns `(result size, I/O
    /// delta, CPU time)`.
    ///
    /// Queries are shared reads — `&self` all the way down — so a harness
    /// can interleave measurements without exclusive access.
    pub fn query(&self, query: &Aabb) -> (usize, IoStats, Duration) {
        match (&self.flat, &self.rtree) {
            (Some(flat), None) => measure_range(flat, &self.pool, query),
            (None, Some(tree)) => measure_range(tree, &self.pool, query),
            _ => unreachable!("exactly one index is set"),
        }
    }

    /// Runs one kNN query under the same protocol, via [`measure_knn`].
    pub fn knn(&self, point: Point3, k: usize) -> (Vec<Neighbor>, IoStats, Duration) {
        match (&self.flat, &self.rtree) {
            (Some(flat), None) => measure_knn(flat, &self.pool, point, k),
            (None, Some(tree)) => measure_knn(tree, &self.pool, point, k),
            _ => unreachable!("exactly one index is set"),
        }
    }

    /// Uniform size/composition stats through the [`SpatialIndex`] trait.
    pub fn index_stats(&self) -> IndexStats {
        match (&self.flat, &self.rtree) {
            (Some(flat), None) => flat.index_stats(),
            (None, Some(tree)) => tree.index_stats(),
            _ => unreachable!("exactly one index is set"),
        }
    }

    /// The FLAT index, if this is one.
    pub fn as_flat(&self) -> Option<&FlatIndex> {
        self.flat.as_ref()
    }

    /// The R-tree, if this is one.
    pub fn as_rtree(&self) -> Option<&RTree> {
        self.rtree.as_ref()
    }

    /// Total index size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.index_stats().size_bytes()
    }

    /// Size of the element-bearing pages (object pages / R-tree leaves).
    pub fn data_bytes(&self) -> u64 {
        self.index_stats().data_bytes()
    }

    /// Size of everything else (directory, seed tree, metadata).
    pub fn overhead_bytes(&self) -> u64 {
        self.size_bytes() - self.data_bytes()
    }

    /// Page kinds whose reads count as "overhead" for this index
    /// (directory / seed+metadata), vs the data pages.
    pub fn overhead_kinds(&self) -> &'static [PageKind] {
        match self.kind {
            IndexKind::Flat => &[PageKind::SeedInner, PageKind::SeedLeaf],
            _ => &[PageKind::RTreeInner],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flat_data::uniform::{uniform_entries, UniformConfig};

    fn sample_entries(n: usize) -> (Vec<Entry>, Aabb) {
        let config = UniformConfig::paper_baseline(n, 3);
        (uniform_entries(&config), config.domain)
    }

    #[test]
    fn all_kinds_build_and_agree_on_results() {
        let (entries, domain) = sample_entries(20_000);
        let query = Aabb::cube(domain.center(), domain.extents().x * 0.2);
        let mut counts = Vec::new();
        for kind in [
            IndexKind::Flat,
            IndexKind::Hilbert,
            IndexKind::Str,
            IndexKind::PrTree,
            IndexKind::Tgs,
        ] {
            let built = BuiltIndex::build(kind, entries.clone(), domain, 1 << 16);
            let (n, io, _) = built.query(&query);
            assert!(io.total_physical_reads() > 0, "{kind:?} read nothing");
            counts.push(n);
        }
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "indexes disagree: {counts:?}"
        );
        assert!(counts[0] > 0);
    }

    #[test]
    fn query_protocol_clears_caches() {
        let (entries, domain) = sample_entries(10_000);
        let built = BuiltIndex::build(IndexKind::Str, entries, domain, 1 << 16);
        let query = Aabb::cube(domain.center(), domain.extents().x * 0.1);
        let (_, io1, _) = built.query(&query);
        let (_, io2, _) = built.query(&query);
        // Same query twice: identical physical reads (no warm-cache help).
        assert_eq!(io1.total_physical_reads(), io2.total_physical_reads());
    }

    #[test]
    fn size_breakdown_adds_up() {
        let (entries, domain) = sample_entries(20_000);
        for kind in [IndexKind::Flat, IndexKind::PrTree] {
            let built = BuiltIndex::build(kind, entries.clone(), domain, 1 << 16);
            assert_eq!(
                built.data_bytes() + built.overhead_bytes(),
                built.size_bytes()
            );
            assert!(built.data_bytes() > built.overhead_bytes());
        }
    }

    #[test]
    fn flat_reports_build_breakdown() {
        let (entries, domain) = sample_entries(5_000);
        let built = BuiltIndex::build(IndexKind::Flat, entries.clone(), domain, 1 << 16);
        let stats = built.flat_stats.as_ref().unwrap();
        assert!(stats.num_partitions > 0);
        let rt = BuiltIndex::build(IndexKind::Str, entries, domain, 1 << 16);
        assert!(rt.flat_stats.is_none());
    }
}
