//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§III, §VII, §VIII).
//!
//! Each figure/table has a function in [`figures`] and a matching binary in
//! `src/bin/` (e.g. `cargo run --release -p flat-bench --bin
//! fig12_sn_page_reads`); `--bin run_all` executes everything and writes
//! CSVs next to the printed tables.
//!
//! # Scaling
//!
//! The paper's datasets hold 50–450 **million** elements and its queries
//! run against a disk array for thousands of minutes. The harness defaults
//! to a 1/1000 scale — 50–450 **thousand** elements on the same 9-point
//! density axis — and scales the query volumes *up* by the same factor so
//! the per-query result sizes (and therefore every mechanism the figures
//! demonstrate: overlap growth, seed amortization, leaf/non-leaf ratios)
//! match the paper's regime. See `EXPERIMENTS.md` for the full
//! correspondence argument. Scale knobs:
//!
//! * `FLAT_SCALE` — multiplies the element counts (default 1.0 =
//!   50k–450k; 10 would be 500k–4.5M).
//! * `FLAT_QUERIES` — queries per workload (default 200, the paper's
//!   count).
//! * `FLAT_RESULTS_DIR` — where CSVs are written (default
//!   `experiments-results/`).
//! * `FLAT_TAIL` — `compact` (default) or `extreme`; selects the
//!   long-element tail profile of the neuron sweep (see [`TailProfile`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod datasets;
pub mod figures;
pub mod indexes;
pub mod report;
pub mod runner;

use flat_geom::Aabb;

/// Long-element tail profile of the neuron sweep (see
/// `datasets::DensitySweep`). The paper's data contains both tiny dendrite
/// segments and long axonal stretches; how heavy that tail is decides
/// which fidelity trade-off the scaled-down sweep makes:
///
/// * [`TailProfile::Compact`] (default) — no extreme elements. FLAT's
///   neighbor-pointer median lands in the paper's Fig-20 range (~15–25,
///   converging as density grows) and FLAT beats the PR-tree (the paper's
///   "best R-Tree") on the SN benchmark at every density. At this scale
///   the PR-tree's priority-page overhead makes it the *worst* R-tree on
///   point queries instead of the best.
/// * [`TailProfile::Extreme`] — 0.8 % of segments are 12–28× long axonal
///   stretches. The data becomes "extreme" in the PR-tree paper's sense:
///   the PR-tree overtakes STR/Hilbert with growing density (the paper's
///   Fig-2 ordering). The cost: the stretched partitions act as crawl
///   hubs, inflating FLAT's Fig-20 median and its SN I/O.
///
/// The two profiles bracket the paper's (unavailable) testbed; see
/// EXPERIMENTS.md. Select with `FLAT_TAIL=compact|extreme`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailProfile {
    /// No long stretches (default).
    Compact,
    /// 0.8 % of segments stretched 12–28×.
    Extreme,
}

impl TailProfile {
    /// `(probability, stretch range)` for the neuron generator.
    pub fn parameters(self) -> (f64, (f64, f64)) {
        match self {
            TailProfile::Compact => (0.0, (1.0, 1.0)),
            TailProfile::Extreme => (0.008, (12.0, 28.0)),
        }
    }
}

/// Scaled experiment parameters (see the crate docs).
#[derive(Debug, Clone)]
pub struct Scale {
    /// Element counts of the density sweep (the x-axis of most figures).
    pub densities: Vec<usize>,
    /// Queries per workload run.
    pub queries: usize,
    /// SN query volume fraction, already re-scaled for the element counts.
    pub sn_fraction: f64,
    /// LSS query volume fraction, already re-scaled.
    pub lss_fraction: f64,
    /// Base RNG seed for datasets and workloads.
    pub seed: u64,
    /// Buffer-pool capacity in pages while *querying* (caches are cleared
    /// before every query anyway; the pool just has to hold one query's
    /// working set).
    pub pool_pages: usize,
    /// Long-element tail profile of the neuron sweep.
    pub tail: TailProfile,
}

impl Scale {
    /// The default 1/1000-scale configuration.
    pub fn default_scale() -> Scale {
        Scale::with_factor(1.0)
    }

    /// A configuration with element counts multiplied by `factor` relative
    /// to the default 50k–450k sweep. Query volumes are adjusted to keep
    /// per-query result sizes at the paper's level (≈225 elements for SN,
    /// ≈225·10³·`factor` for LSS at max density).
    pub fn with_factor(factor: f64) -> Scale {
        assert!(factor > 0.0, "scale factor must be positive");
        let densities: Vec<usize> = (1..=9)
            .map(|i| ((i * 50_000) as f64 * factor) as usize)
            .collect();
        // The paper's fractions apply to 450 M elements; ours hold
        // 450 k · factor, so multiply the volume by the element-count
        // ratio to preserve expected results per query. The LSS fraction
        // is capped: a query can't exceed the domain.
        let ratio = 450e6 / (450_000.0 * factor);
        Scale {
            densities,
            queries: flat_data::workload::QUERIES_PER_RUN,
            sn_fraction: flat_data::workload::SN_VOLUME_FRACTION * ratio,
            lss_fraction: (flat_data::workload::LSS_VOLUME_FRACTION * ratio).min(0.05),
            seed: 42,
            pool_pages: 1 << 17,
            tail: TailProfile::Compact,
        }
    }

    /// Reads `FLAT_SCALE` / `FLAT_QUERIES` from the environment.
    pub fn from_env() -> Scale {
        let factor = std::env::var("FLAT_SCALE")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(1.0);
        let mut scale = Scale::with_factor(factor);
        if let Some(q) = std::env::var("FLAT_QUERIES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            scale.queries = q;
        }
        match std::env::var("FLAT_TAIL").as_deref() {
            Ok("extreme" | "heavy") => scale.tail = TailProfile::Extreme,
            Ok("compact" | "light") | Err(_) => {}
            Ok(other) => eprintln!("FLAT_TAIL={other} not recognized; using compact"),
        }
        scale
    }

    /// A tiny configuration for the crate's own tests (3 densities,
    /// 20 queries).
    pub fn smoke() -> Scale {
        let mut scale = Scale::with_factor(0.1);
        scale.densities = vec![5_000, 10_000, 15_000];
        scale.queries = 20;
        scale
    }

    /// Maximum density of the sweep.
    pub fn max_density(&self) -> usize {
        *self.densities.last().expect("densities is non-empty")
    }

    /// The density label used in figure tables, matching the paper's axis
    /// ("Density [Million Elements per 285µm³]" — here in thousands).
    pub fn density_label(&self, elements: usize) -> String {
        format!("{}k", elements / 1000)
    }

    /// SN workload over `domain`.
    pub fn sn_workload(&self, domain: &Aabb) -> Vec<Aabb> {
        let config = flat_data::workload::WorkloadConfig {
            count: self.queries,
            volume_fraction: self.sn_fraction,
            proportion_range: (1.0, 4.0),
            seed: self.seed ^ 0x535f_5348,
        };
        flat_data::workload::range_queries(domain, &config)
    }

    /// LSS workload over `domain`.
    pub fn lss_workload(&self, domain: &Aabb) -> Vec<Aabb> {
        let config = flat_data::workload::WorkloadConfig {
            count: self.queries,
            volume_fraction: self.lss_fraction,
            proportion_range: (1.0, 4.0),
            seed: self.seed ^ 0x4c53_5353,
        };
        flat_data::workload::range_queries(domain, &config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_matches_the_paper_axis() {
        let s = Scale::default_scale();
        assert_eq!(s.densities.len(), 9);
        assert_eq!(s.densities[0], 50_000);
        assert_eq!(s.max_density(), 450_000);
        assert_eq!(s.queries, 200);
    }

    #[test]
    fn query_volumes_rescale_inversely_with_elements() {
        let small = Scale::with_factor(1.0);
        let big = Scale::with_factor(10.0);
        assert!(small.sn_fraction > big.sn_fraction);
        // Expected results per query stay constant: fraction × max elements.
        let r_small = small.sn_fraction * small.max_density() as f64;
        let r_big = big.sn_fraction * big.max_density() as f64;
        assert!((r_small - r_big).abs() < 1e-6);
    }

    #[test]
    fn lss_fraction_is_capped() {
        let s = Scale::with_factor(0.001);
        assert!(s.lss_fraction <= 0.05);
    }

    #[test]
    fn workloads_have_the_configured_size() {
        let s = Scale::smoke();
        let domain = flat_data::bbp_domain();
        assert_eq!(s.sn_workload(&domain).len(), 20);
        assert_eq!(s.lss_workload(&domain).len(), 20);
    }

    #[test]
    fn density_labels_are_readable() {
        let s = Scale::default_scale();
        assert_eq!(s.density_label(50_000), "50k");
    }
}
