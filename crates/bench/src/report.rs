//! Table formatting and CSV output for the figure binaries.

use std::fmt::Write as _;
use std::path::PathBuf;

/// A simple column-oriented table: one row per density step (or dataset),
/// one column per measured series.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table identifier, e.g. `fig12_sn_page_reads`.
    pub name: String,
    /// Human title, e.g. the paper's caption.
    pub title: String,
    /// Column headers (first column is the key/axis).
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: &str, title: &str, columns: &[&str]) -> Table {
        Table {
            name: name.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the arity doesn't match the header.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row arity {} != column count {}",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Renders an aligned text table (what the binaries print).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {} — {}", self.name, self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    /// Renders RFC-4180-ish CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.columns
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Renders the table as a JSON document: `name`, `title`, `columns`,
    /// and `rows` as an array of column-keyed objects. Cells that are
    /// plain finite numbers are emitted as JSON numbers, everything else
    /// as strings. Hand-rolled — the workspace takes no serialization
    /// dependency.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"name\": {},", json_string(&self.name));
        let _ = writeln!(out, "  \"title\": {},", json_string(&self.title));
        let cols: Vec<String> = self.columns.iter().map(|c| json_string(c)).collect();
        let _ = writeln!(out, "  \"columns\": [{}],", cols.join(", "));
        let _ = writeln!(out, "  \"rows\": [");
        for (r, row) in self.rows.iter().enumerate() {
            let fields: Vec<String> = self
                .columns
                .iter()
                .zip(row.iter())
                .map(|(c, cell)| format!("{}: {}", json_string(c), json_value(cell)))
                .collect();
            let comma = if r + 1 == self.rows.len() { "" } else { "," };
            let _ = writeln!(out, "    {{{}}}{comma}", fields.join(", "));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON rendering into the results directory as
    /// `<file_stem>.json`, returning the path.
    pub fn save_json(&self, file_stem: &str) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{file_stem}.json"));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Writes the CSV into the results directory (`FLAT_RESULTS_DIR`,
    /// default `experiments-results/`), returning the path.
    pub fn save_csv(&self) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.csv", self.name));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }

    /// Prints the table and saves the CSV (the figure binaries' tail call).
    pub fn emit(&self) {
        print!("{}", self.render());
        match self.save_csv() {
            Ok(path) => println!("[saved {}]\n", path.display()),
            Err(e) => println!("[csv not saved: {e}]\n"),
        }
    }
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A cell as a JSON value: finite numbers pass through as numbers
/// (re-rendered canonically, so `"0.50"` becomes `0.5`), everything else
/// becomes a string.
fn json_value(cell: &str) -> String {
    match cell.parse::<f64>() {
        Ok(v) if v.is_finite() => {
            if v == v.trunc() && v.abs() < 1e15 {
                format!("{}", v as i64)
            } else {
                format!("{v}")
            }
        }
        _ => json_string(cell),
    }
}

/// The directory CSVs are saved into.
pub fn results_dir() -> PathBuf {
    std::env::var("FLAT_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("experiments-results"))
}

/// Formats a float with sensible precision for tables.
pub fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Formats a byte count as MB with two decimals.
pub fn fmt_mb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / 1e6)
}

/// Formats a duration in seconds.
pub fn fmt_secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("test_table", "A test", &["density", "a", "b"]);
        t.push_row(vec!["50k".into(), "1.0".into(), "2.0".into()]);
        t.push_row(vec!["100k".into(), "10.5".into(), "20.25".into()]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let text = sample().render();
        assert!(text.contains("test_table"));
        assert!(text.contains("density"));
        let lines: Vec<&str> = text.lines().collect();
        // Header, separator and rows all have equal width.
        assert_eq!(lines[1].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("x", "t", &["k", "v"]);
        t.push_row(vec!["a,b".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = sample();
        t.push_row(vec!["oops".into()]);
    }

    #[test]
    fn float_formatting_scales_precision() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(0.1234567), "0.1235");
        assert_eq!(fmt_f64(12.345), "12.35");
        assert_eq!(fmt_f64(1234.6), "1235");
    }

    #[test]
    fn json_renders_numbers_and_escapes_strings() {
        let mut t = Table::new("bench_x", "quote \"me\"", &["k", "qps", "note"]);
        t.push_row(vec!["4".into(), "1250.50".into(), "2.1x".into()]);
        let json = t.to_json();
        assert!(json.contains("\"name\": \"bench_x\""));
        assert!(json.contains("\"quote \\\"me\\\"\""));
        // Numeric cells become numbers, suffixed ones stay strings.
        assert!(json.contains("\"k\": 4,"));
        assert!(json.contains("\"qps\": 1250.5,"));
        assert!(json.contains("\"note\": \"2.1x\""));
        // No trailing comma before the closing bracket.
        assert!(!json.contains(",\n  ]"));
    }

    #[test]
    fn csv_roundtrips_through_fs() {
        let dir = std::env::temp_dir().join("flat-bench-report-test");
        std::env::set_var("FLAT_RESULTS_DIR", &dir);
        let path = sample().save_csv().unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("density,a,b"));
        std::fs::remove_dir_all(&dir).ok();
        std::env::remove_var("FLAT_RESULTS_DIR");
    }
}
