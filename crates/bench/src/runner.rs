//! Workload execution and aggregation.

use crate::indexes::BuiltIndex;
use flat_geom::Aabb;
use flat_storage::{DiskModel, IoStats, PageKind};
use std::time::Duration;

/// Aggregated outcome of running a workload against one index.
#[derive(Debug, Clone)]
pub struct WorkloadOutcome {
    /// Number of queries executed.
    pub queries: usize,
    /// Total result elements over all queries.
    pub results: u64,
    /// Accumulated physical I/O (per page kind).
    pub io: IoStats,
    /// Total CPU time spent evaluating queries.
    pub cpu_time: Duration,
    /// Simulated disk time for the physical reads ([`DiskModel`]).
    pub io_time: Duration,
}

impl WorkloadOutcome {
    /// Total physical page reads — the paper's headline metric.
    pub fn page_reads(&self) -> u64 {
        self.io.total_physical_reads()
    }

    /// Physical page reads per result element (Figures 3, 15, 19).
    pub fn reads_per_result(&self) -> f64 {
        if self.results == 0 {
            0.0
        } else {
            self.page_reads() as f64 / self.results as f64
        }
    }

    /// Bytes physically read (Figures 4, 14, 18).
    pub fn bytes_read(&self) -> u64 {
        self.io.physical_bytes_read()
    }

    /// Bytes physically read for one page kind.
    pub fn bytes_read_of(&self, kind: PageKind) -> u64 {
        self.io.physical_bytes_read_of(kind)
    }

    /// Result-set size in bytes under the paper's 48-byte MBR encoding.
    pub fn result_bytes(&self) -> u64 {
        self.results * 48
    }

    /// Total simulated execution time: disk time plus measured CPU time
    /// (the paper measures a 97.8–98.8 % disk share, §VII-E.2).
    pub fn total_time(&self) -> Duration {
        self.io_time + self.cpu_time
    }

    /// The simulated fraction of time spent on disk I/O.
    pub fn disk_share(&self) -> f64 {
        let total = self.total_time().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.io_time.as_secs_f64() / total
        }
    }
}

/// Runs `queries` against `index` under the paper's protocol (cold cache
/// per query) and aggregates the outcome with `model` pricing the I/O.
pub fn run_workload(
    index: &mut BuiltIndex,
    queries: &[Aabb],
    model: DiskModel,
) -> WorkloadOutcome {
    let mut io = IoStats::new();
    let mut results = 0u64;
    let mut cpu_time = Duration::ZERO;
    for query in queries {
        let (n, delta, cpu) = index.query(query);
        results += n as u64;
        cpu_time += cpu;
        io.accumulate(&delta);
    }
    let io_time = model.io_time(&io);
    WorkloadOutcome { queries: queries.len(), results, io, cpu_time, io_time }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::indexes::IndexKind;
    use flat_data::uniform::{uniform_entries, UniformConfig};

    #[test]
    fn outcome_aggregates_queries() {
        let config = UniformConfig::paper_baseline(10_000, 5);
        let entries = uniform_entries(&config);
        let mut index = BuiltIndex::build(IndexKind::Flat, entries, config.domain, 1 << 16);
        let queries: Vec<Aabb> = (0..5)
            .map(|i| Aabb::cube(config.domain.center(), 100.0 + i as f64 * 50.0))
            .collect();
        let outcome = run_workload(&mut index, &queries, DiskModel::sas_10k());
        assert_eq!(outcome.queries, 5);
        assert!(outcome.results > 0);
        assert!(outcome.page_reads() > 0);
        assert!(outcome.reads_per_result() > 0.0);
        assert_eq!(outcome.result_bytes(), outcome.results * 48);
        assert!(outcome.io_time > Duration::ZERO);
        assert!(outcome.disk_share() > 0.5, "simulated I/O should dominate");
    }

    #[test]
    fn empty_workload_is_zeroes() {
        let config = UniformConfig::paper_baseline(1_000, 5);
        let entries = uniform_entries(&config);
        let mut index = BuiltIndex::build(IndexKind::Str, entries, config.domain, 1 << 16);
        let outcome = run_workload(&mut index, &[], DiskModel::sas_10k());
        assert_eq!(outcome.queries, 0);
        assert_eq!(outcome.page_reads(), 0);
        assert_eq!(outcome.reads_per_result(), 0.0);
    }
}
