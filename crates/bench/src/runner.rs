//! Workload execution and aggregation: the paper's cold-cache protocol
//! ([`run_workload`]) and the multi-threaded query-throughput runner
//! ([`query_throughput`]) demonstrating concurrent streams over one index.

use crate::indexes::BuiltIndex;
use flat_core::FlatIndex;
use flat_geom::Aabb;
use flat_storage::{DiskModel, IoStats, PageKind, PageRead};
use std::time::{Duration, Instant};

/// Aggregated outcome of running a workload against one index.
#[derive(Debug, Clone)]
pub struct WorkloadOutcome {
    /// Number of queries executed.
    pub queries: usize,
    /// Total result elements over all queries.
    pub results: u64,
    /// Accumulated physical I/O (per page kind).
    pub io: IoStats,
    /// Total CPU time spent evaluating queries.
    pub cpu_time: Duration,
    /// Simulated disk time for the physical reads ([`DiskModel`]).
    pub io_time: Duration,
}

impl WorkloadOutcome {
    /// Total physical page reads — the paper's headline metric.
    pub fn page_reads(&self) -> u64 {
        self.io.total_physical_reads()
    }

    /// Physical page reads per result element (Figures 3, 15, 19).
    pub fn reads_per_result(&self) -> f64 {
        if self.results == 0 {
            0.0
        } else {
            self.page_reads() as f64 / self.results as f64
        }
    }

    /// Bytes physically read (Figures 4, 14, 18).
    pub fn bytes_read(&self) -> u64 {
        self.io.physical_bytes_read()
    }

    /// Bytes physically read for one page kind.
    pub fn bytes_read_of(&self, kind: PageKind) -> u64 {
        self.io.physical_bytes_read_of(kind)
    }

    /// Result-set size in bytes under the paper's 48-byte MBR encoding.
    pub fn result_bytes(&self) -> u64 {
        self.results * 48
    }

    /// Total simulated execution time: disk time plus measured CPU time
    /// (the paper measures a 97.8–98.8 % disk share, §VII-E.2).
    pub fn total_time(&self) -> Duration {
        self.io_time + self.cpu_time
    }

    /// The simulated fraction of time spent on disk I/O.
    pub fn disk_share(&self) -> f64 {
        let total = self.total_time().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.io_time.as_secs_f64() / total
        }
    }
}

/// Runs `queries` against `index` under the paper's protocol (cold cache
/// per query) and aggregates the outcome with `model` pricing the I/O.
pub fn run_workload(index: &BuiltIndex, queries: &[Aabb], model: DiskModel) -> WorkloadOutcome {
    let mut io = IoStats::new();
    let mut results = 0u64;
    let mut cpu_time = Duration::ZERO;
    for query in queries {
        let (n, delta, cpu) = index.query(query);
        results += n as u64;
        cpu_time += cpu;
        io.accumulate(&delta);
    }
    let io_time = model.io_time(&io);
    WorkloadOutcome {
        queries: queries.len(),
        results,
        io,
        cpu_time,
        io_time,
    }
}

/// Outcome of one multi-threaded throughput run.
#[derive(Debug, Clone)]
pub struct ThroughputOutcome {
    /// Worker threads used.
    pub threads: usize,
    /// Total queries executed across all threads.
    pub queries: usize,
    /// Total result elements across all queries.
    pub results: u64,
    /// Wall-clock time for the whole run.
    pub wall: Duration,
}

impl ThroughputOutcome {
    /// Aggregate queries per second.
    pub fn qps(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.queries as f64 / self.wall.as_secs_f64()
        }
    }
}

/// Runs `queries` against one [`FlatIndex`] from `threads` worker threads
/// sharing a single pool, `rounds` times each, and measures aggregate
/// throughput.
///
/// This is the workload the `PageRead` refactor exists for: every thread
/// holds only `&index` and `&pool`. Queries are distributed round-robin;
/// with an I/O-bound store (e.g. [`flat_storage::ThrottledStore`] pricing
/// each physical read like a device would) the threads overlap their I/O
/// waits, so aggregate throughput grows with the thread count — the same
/// effect concurrent query streams see on a real disk array.
///
/// # Panics
/// Panics if `threads` or `rounds` is zero, or if a query fails.
pub fn query_throughput<P: PageRead + Sync>(
    index: &FlatIndex,
    pool: &P,
    queries: &[Aabb],
    threads: usize,
    rounds: usize,
) -> ThroughputOutcome {
    assert!(threads > 0, "at least one thread required");
    assert!(rounds > 0, "at least one round required");
    let start = Instant::now();
    let results: u64 = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut local = 0u64;
                    for _ in 0..rounds {
                        for query in queries.iter().skip(t).step_by(threads) {
                            local += index
                                .range_query(pool, query)
                                .expect("in-memory query cannot fail")
                                .len() as u64;
                        }
                    }
                    local
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("worker panicked"))
            .sum()
    });
    let wall = start.elapsed();
    // Round-robin splitting covers every query exactly once per round.
    ThroughputOutcome {
        threads,
        queries: queries.len() * rounds,
        results,
        wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::indexes::IndexKind;
    use flat_core::FlatOptions;
    use flat_data::uniform::{uniform_entries, UniformConfig};
    use flat_storage::{BufferPool, MemStore, ThrottledStore};

    #[test]
    fn outcome_aggregates_queries() {
        let config = UniformConfig::paper_baseline(10_000, 5);
        let entries = uniform_entries(&config);
        let index = BuiltIndex::build(IndexKind::Flat, entries, config.domain, 1 << 16);
        let queries: Vec<Aabb> = (0..5)
            .map(|i| Aabb::cube(config.domain.center(), 100.0 + i as f64 * 50.0))
            .collect();
        let outcome = run_workload(&index, &queries, DiskModel::sas_10k());
        assert_eq!(outcome.queries, 5);
        assert!(outcome.results > 0);
        assert!(outcome.page_reads() > 0);
        assert!(outcome.reads_per_result() > 0.0);
        assert_eq!(outcome.result_bytes(), outcome.results * 48);
        assert!(outcome.io_time > Duration::ZERO);
        assert!(outcome.disk_share() > 0.5, "simulated I/O should dominate");
    }

    #[test]
    fn empty_workload_is_zeroes() {
        let config = UniformConfig::paper_baseline(1_000, 5);
        let entries = uniform_entries(&config);
        let index = BuiltIndex::build(IndexKind::Str, entries, config.domain, 1 << 16);
        let outcome = run_workload(&index, &[], DiskModel::sas_10k());
        assert_eq!(outcome.queries, 0);
        assert_eq!(outcome.page_reads(), 0);
        assert_eq!(outcome.reads_per_result(), 0.0);
    }

    #[test]
    fn throughput_runner_counts_all_work_at_any_thread_count() {
        let config = UniformConfig::paper_baseline(5_000, 5);
        let entries = uniform_entries(&config);
        let mut pool = BufferPool::new(MemStore::new(), 1 << 16);
        let options = FlatOptions {
            domain: Some(config.domain),
            ..FlatOptions::default()
        };
        let (index, _) = FlatIndex::build(&mut pool, entries, options).unwrap();
        let pool = pool.into_concurrent();
        let queries: Vec<Aabb> = (0..8)
            .map(|i| Aabb::cube(config.domain.center(), 80.0 + i as f64 * 40.0))
            .collect();

        let serial = query_throughput(&index, &pool, &queries, 1, 2);
        let parallel = query_throughput(&index, &pool, &queries, 4, 2);
        assert_eq!(serial.queries, 16);
        assert_eq!(parallel.queries, 16);
        // Same queries → same total results regardless of thread count.
        assert_eq!(serial.results, parallel.results);
        assert!(serial.results > 0);
        assert!(serial.qps() > 0.0);
    }

    #[test]
    fn io_bound_throughput_scales_with_threads() {
        // The refactor's payoff: with a store that charges a device
        // latency per physical read, threads overlap their waits and
        // aggregate throughput rises well past 1×.
        let config = UniformConfig::paper_baseline(4_000, 9);
        let entries = uniform_entries(&config);
        let mut pool = BufferPool::new(MemStore::new(), 4);
        let options = FlatOptions {
            domain: Some(config.domain),
            ..FlatOptions::default()
        };
        let (index, _) = FlatIndex::build(&mut pool, entries, options).unwrap();
        // Re-house the pages behind a 200 µs/read device, with a tiny
        // cache so queries keep missing.
        let store = ThrottledStore::new(pool.into_store(), Duration::from_micros(200));
        let pool = flat_storage::ConcurrentBufferPool::new(store, 64);
        let queries: Vec<Aabb> = (0..8)
            .map(|i| Aabb::cube(config.domain.center(), 60.0 + i as f64 * 30.0))
            .collect();

        let serial = query_throughput(&index, &pool, &queries, 1, 1);
        let parallel = query_throughput(&index, &pool, &queries, 4, 1);
        let speedup = parallel.qps() / serial.qps();
        assert_eq!(serial.results, parallel.results);
        // Overlapped sleeps give ~3x here even on one core; the bound is
        // kept loose (just past the >1x acceptance line) so a contended CI
        // runner can't flake it. `exp_concurrency` reports the real curve.
        assert!(
            speedup > 1.2,
            "4 threads over an I/O-bound store must overlap waits: {speedup:.2}x"
        );
    }
}
