//! Aggregate queries over the neighbor-link graph: [`FlatIndex::aggregate_count`]
//! and [`FlatIndex::aggregate_density`] (extension).
//!
//! An aggregate crawl visits exactly the records a range crawl would —
//! same seed, same expansion rule — but materializes no hits. Its payoff
//! is the **containment early-exit**: when a record's page MBR is fully
//! contained in the query region, every element on the page matches (the
//! build guarantees element MBR ⊆ page MBR), so the per-element
//! intersection tests are skipped. The delta layer goes one step further:
//! its resident summary table already knows each partition's live count,
//! so a contained partition contributes without reading its object page
//! at all — for large query regions most of the result is counted from
//! memory and only the query's *boundary* pages are read.

use crate::delta::DeltaIndex;
use crate::index::FlatIndex;
use crate::meta::{decode_meta_record, MetaRecordId};
use crate::query::{is_live, CrawlState, QueryStats, Tombstones};
use flat_geom::Aabb;
use flat_rtree::node::decode_leaf;
use flat_storage::{PageKind, PageRead, StorageError};

/// Per-aggregate counters: the crawl side plus the early-exit bookkeeping
/// (how much work the containment rule saved).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AggregateStats {
    /// Metadata records dequeued and processed by the crawl.
    pub records_processed: u64,
    /// Object pages read.
    pub object_pages_read: u64,
    /// Partitions whose page MBR was fully contained in the query — their
    /// elements were counted without per-element intersection tests.
    pub contained_partitions: u64,
    /// Contained partitions counted from the resident summary table
    /// without reading the object page at all (delta layer only).
    pub pages_skipped: u64,
    /// MBR–query tests performed.
    pub mbr_tests: u64,
}

/// The shared aggregate crawl: a range crawl with hit materialization
/// replaced by counting and the containment early-exit. `live_count`
/// resolves a primary record to its resident live-element count, when the
/// index keeps one (the delta layer); `None` falls back to reading the
/// page.
fn aggregate_crawl(
    pool: &impl PageRead,
    query: &Aabb,
    seed: MetaRecordId,
    tombstones: Option<&Tombstones>,
    live_count: Option<&dyn Fn(MetaRecordId) -> Option<u64>>,
    stats: &mut AggregateStats,
) -> Result<u64, StorageError> {
    let mut state = CrawlState::start(seed);
    let mut count = 0u64;
    while let Some(addr) = state.queue.pop_front() {
        stats.records_processed += 1;
        let record = {
            let page = pool.read_page(addr.page, PageKind::SeedLeaf)?;
            decode_meta_record(&page, addr.slot)?
        };
        if record.is_dead {
            continue;
        }

        stats.mbr_tests += 1;
        if record.page_mbr.intersects(query) {
            stats.mbr_tests += 1;
            if query.contains(&record.page_mbr) {
                // Containment early-exit: every live element on the page
                // matches (element ⊆ page MBR ⊆ query).
                stats.contained_partitions += 1;
                if let Some(live) = live_count.and_then(|f| f(addr)) {
                    // The resident summary already excludes tombstones:
                    // no I/O at all for this partition.
                    stats.pages_skipped += 1;
                    count += live;
                } else {
                    stats.object_pages_read += 1;
                    let page = pool.read_page(record.object_page, PageKind::ObjectPage)?;
                    let (_, entries) = decode_leaf(&page)?;
                    count += entries
                        .iter()
                        .enumerate()
                        .filter(|&(slot, _)| is_live(tombstones, record.object_page, slot))
                        .count() as u64;
                }
            } else {
                stats.object_pages_read += 1;
                let page = pool.read_page(record.object_page, PageKind::ObjectPage)?;
                let (_, entries) = decode_leaf(&page)?;
                stats.mbr_tests += entries.len() as u64;
                count += entries
                    .iter()
                    .enumerate()
                    .filter(|&(slot, e)| {
                        is_live(tombstones, record.object_page, slot) && query.intersects(&e.mbr)
                    })
                    .count() as u64;
            }
        }

        stats.mbr_tests += 1;
        if record.partition_mbr.intersects(query) {
            for neighbor in record.neighbors {
                if state.seen.insert(neighbor) {
                    state.queue.push_back(neighbor);
                }
            }
            let mut next = record.continuation;
            while let Some(chunk_addr) = next {
                let chunk = {
                    let page = pool.read_page(chunk_addr.page, PageKind::SeedLeaf)?;
                    decode_meta_record(&page, chunk_addr.slot)?
                };
                for neighbor in chunk.neighbors {
                    if state.seen.insert(neighbor) {
                        state.queue.push_back(neighbor);
                    }
                }
                next = chunk.continuation;
            }
        }
    }
    Ok(count)
}

/// Density = count / query volume; zero-volume queries (points, slabs)
/// have no meaningful density and report zero.
fn density(count: u64, query: &Aabb) -> f64 {
    let volume = query.volume();
    if volume > 0.0 {
        count as f64 / volume
    } else {
        0.0
    }
}

impl FlatIndex {
    /// Counts the elements intersecting `query` — the same answer as
    /// `range_query(..).len()`, without materializing the hits and with
    /// per-element tests skipped for partitions fully contained in the
    /// query (the containment early-exit).
    pub fn aggregate_count(&self, pool: &impl PageRead, query: &Aabb) -> Result<u64, StorageError> {
        let mut stats = AggregateStats::default();
        self.aggregate_count_with_stats(pool, query, &mut stats)
    }

    /// Like [`FlatIndex::aggregate_count`], accumulating counters.
    pub fn aggregate_count_with_stats(
        &self,
        pool: &impl PageRead,
        query: &Aabb,
        stats: &mut AggregateStats,
    ) -> Result<u64, StorageError> {
        let mut seed_stats = QueryStats::default();
        let Some(seed) = self.seed(pool, query, &mut seed_stats, None, None)? else {
            return Ok(0);
        };
        stats.object_pages_read += seed_stats.object_pages_read;
        stats.mbr_tests += seed_stats.mbr_tests;
        aggregate_crawl(pool, query, seed, None, None, stats)
    }

    /// Elements per unit volume inside `query` (zero for degenerate
    /// query boxes).
    pub fn aggregate_density(
        &self,
        pool: &impl PageRead,
        query: &Aabb,
    ) -> Result<f64, StorageError> {
        Ok(density(self.aggregate_count(pool, query)?, query))
    }
}

impl DeltaIndex {
    /// Counts the live elements intersecting `query`, exactly as a fresh
    /// rebuild over the survivors would. Partitions fully contained in
    /// the query are counted from the resident summary table without any
    /// object-page I/O.
    pub fn aggregate_count(&self, pool: &impl PageRead, query: &Aabb) -> Result<u64, StorageError> {
        let mut stats = AggregateStats::default();
        self.aggregate_count_with_stats(pool, query, &mut stats)
    }

    /// Like [`DeltaIndex::aggregate_count`], accumulating counters.
    pub fn aggregate_count_with_stats(
        &self,
        pool: &impl PageRead,
        query: &Aabb,
        stats: &mut AggregateStats,
    ) -> Result<u64, StorageError> {
        let mut seed_stats = QueryStats::default();
        let Some(seed) = self.seed(pool, query, &mut seed_stats, None)? else {
            return Ok(0);
        };
        stats.object_pages_read += seed_stats.object_pages_read;
        stats.mbr_tests += seed_stats.mbr_tests;
        let live_count = |addr: MetaRecordId| self.live_count_at(addr);
        aggregate_crawl(
            pool,
            query,
            seed,
            Some(self.tombstones()),
            Some(&live_count),
            stats,
        )
    }

    /// Live elements per unit volume inside `query` (zero for degenerate
    /// query boxes).
    pub fn aggregate_density(
        &self,
        pool: &impl PageRead,
        query: &Aabb,
    ) -> Result<f64, StorageError> {
        Ok(density(self.aggregate_count(pool, query)?, query))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::tests::random_entries;
    use crate::index::FlatOptions;
    use flat_geom::Point3;
    use flat_rtree::{Entry, LeafLayout};
    use flat_storage::{BufferPool, MemStore};

    fn build(n: usize, seed: u64) -> (BufferPool<MemStore>, FlatIndex, Vec<Entry>) {
        let entries = random_entries(n, seed);
        let mut pool = BufferPool::new(MemStore::new(), 1 << 16);
        let (index, _) =
            FlatIndex::build(&mut pool, entries.clone(), FlatOptions::default()).unwrap();
        (pool, index, entries)
    }

    #[test]
    fn counts_match_range_query_and_brute_force() {
        let (pool, index, entries) = build(15_000, 71);
        for (c, side) in [(50.0, 10.0), (30.0, 45.0), (50.0, 300.0), (90.0, 2.0)] {
            let q = Aabb::cube(Point3::splat(c), side);
            let expected = entries.iter().filter(|e| q.intersects(&e.mbr)).count() as u64;
            assert_eq!(index.aggregate_count(&pool, &q).unwrap(), expected);
            assert_eq!(index.range_query(&pool, &q).unwrap().len() as u64, expected);
        }
    }

    #[test]
    fn large_queries_trigger_the_containment_early_exit() {
        let (pool, index, entries) = build(15_000, 72);
        let q = Aabb::cube(Point3::splat(50.0), 300.0);
        let mut stats = AggregateStats::default();
        let count = index
            .aggregate_count_with_stats(&pool, &q, &mut stats)
            .unwrap();
        assert_eq!(count, entries.len() as u64);
        assert!(
            stats.contained_partitions > 0,
            "whole-domain query contained no partition: {stats:?}"
        );
    }

    #[test]
    fn density_is_count_over_volume_and_zero_for_degenerate_boxes() {
        let (pool, index, _) = build(5_000, 73);
        let q = Aabb::cube(Point3::splat(50.0), 20.0);
        let count = index.aggregate_count(&pool, &q).unwrap();
        let d = index.aggregate_density(&pool, &q).unwrap();
        assert!((d - count as f64 / q.volume()).abs() < 1e-12);
        let point = Aabb::point(Point3::splat(50.0));
        assert_eq!(index.aggregate_density(&pool, &point).unwrap(), 0.0);
    }

    #[test]
    fn empty_region_counts_zero() {
        let (pool, index, _) = build(2_000, 74);
        let q = Aabb::cube(Point3::splat(-500.0), 3.0);
        assert_eq!(index.aggregate_count(&pool, &q).unwrap(), 0);
    }

    #[test]
    fn delta_counts_survive_churn_and_skip_contained_pages() {
        let entries = random_entries(8_000, 75);
        let options = FlatOptions {
            layout: LeafLayout::WithIds,
            domain: Some(Aabb::new(Point3::splat(0.0), Point3::splat(100.0))),
            ..FlatOptions::default()
        };
        let mut pool = BufferPool::new(MemStore::new(), 1 << 16);
        let (index, _) = FlatIndex::build(&mut pool, entries.clone(), options).unwrap();
        let mut delta = DeltaIndex::new(&pool, index, options).unwrap();
        let doomed: Vec<u64> = entries
            .iter()
            .map(|e| e.id)
            .filter(|i| i % 5 == 0)
            .collect();
        delta.delete_batch(&mut pool, &doomed).unwrap();
        let fresh: Vec<Entry> = random_entries(900, 76)
            .into_iter()
            .map(|e| Entry::new(e.id + 1_000_000, e.mbr))
            .collect();
        let mut live: Vec<Entry> = entries.iter().filter(|e| e.id % 5 != 0).copied().collect();
        live.extend(fresh.iter().copied());
        delta.insert_batch(&mut pool, fresh).unwrap();

        for (c, side) in [(50.0, 15.0), (40.0, 60.0), (50.0, 300.0)] {
            let q = Aabb::cube(Point3::splat(c), side);
            let expected = live.iter().filter(|e| q.intersects(&e.mbr)).count() as u64;
            assert_eq!(delta.aggregate_count(&pool, &q).unwrap(), expected);
        }
        // Whole-domain aggregate: contained partitions come straight from
        // the summary table.
        let q = Aabb::cube(Point3::splat(50.0), 300.0);
        let mut stats = AggregateStats::default();
        let count = delta
            .aggregate_count_with_stats(&pool, &q, &mut stats)
            .unwrap();
        assert_eq!(count, live.len() as u64);
        assert!(stats.pages_skipped > 0, "no page read skipped: {stats:?}");
        assert!(stats.object_pages_read < delta.num_live_partitions() as u64);
    }
}
