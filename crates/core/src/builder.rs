//! The streaming, out-of-core bulkload: [`FlatIndexBuilder`].
//!
//! [`FlatIndex::build`] materializes everything — the entry vector, the
//! full partition set, and a temporary R-tree over all partition MBRs.
//! FLAT's datasets are "considerably bigger than main memory", so this
//! module rebuilds Algorithm 1 as a pipeline whose resident state is
//! bounded by one *slab* of the STR tiling plus fixed-size per-partition
//! planning tables, never by the dataset:
//!
//! 1. **Ingest + external x-sort** — entries stream in (any
//!    `Iterator<Item = Entry>`, e.g. a `flat_data` source) and are pushed
//!    into an [`ExternalSorter`] keyed exactly like the in-memory STR
//!    x-sort (center.x in `total_cmp` order, then id, then input
//!    position). Memory: the sorter's run buffer.
//! 2. **Slab tiling** — the merged stream is consumed `slab_size` entries
//!    at a time; each slab runs the *same* per-slab STR code as the
//!    in-memory path (`partition_slab`), its object pages are written
//!    immediately, and the slab's elements are dropped. Only a fixed-size
//!    summary (index + MBRs) survives, spilled into a second sorter keyed
//!    by `partition_mbr.min.x`. Memory: one slab of entries/partitions.
//! 3. **Neighbor sweep** — the summaries stream through the exact
//!    plane-sweep [`NeighborSweep`] (replacing the global temporary
//!    R-tree); each retired partition carries its finished neighbor list
//!    into a third sorter keyed by the metadata order (Hilbert key of the
//!    partition center). Memory: the sweep window — two adjacent slabs of
//!    summaries plus stretch stragglers.
//! 4. **Metadata + seed tree** — the Hilbert-ordered stream feeds the
//!    shared [`write_meta_and_seed`] serializer. Memory: the planning
//!    tables (neighbor counts, record plan, primary addresses — tens of
//!    bytes per partition, no elements).
//!
//! Spill pages live in scratch [`MemStore`]s owned by the sorters — they
//! never mix with index pages, so for identical input the streamed build
//! allocates identical index pages with identical contents as
//! [`FlatIndex::build`] (`tests/build_streaming.rs` compares byte by
//! byte; `exp_build_scale` re-verifies per run and reports the peaks).

use crate::index::{
    write_meta_and_seed, BuildStats, FlatIndex, FlatOptions, MetaOrder, MetaPartition,
};
use crate::neighbors::NeighborSweep;
use crate::partition::{axis_tile, partition_plan, partition_slab, Partition};
use flat_geom::{Aabb, Axis, Point3};
use flat_rtree::node::encode_leaf;
use flat_rtree::{leaf_capacity, Entry};
use flat_storage::{
    ExternalSorter, MemStore, Page, PageId, PageKind, PageWrite, SpillRecord, SpillStats,
    StorageError,
};
use std::time::{Duration, Instant};

/// Default [`FlatIndexBuilder::spill_budget`]: entries buffered per sort
/// run (~75 MB of entry records).
pub const DEFAULT_SPILL_BUDGET: usize = 1 << 20;

/// What the streaming build held resident and spilled — the evidence for
/// its memory bounds, reported by the `exp_build_scale` benchmark.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamingStats {
    /// Peak entries resident at once: the sort-run buffer, or one slab
    /// plus the per-run merge heads, whichever was larger. When the
    /// budget exceeded the dataset nothing spilled and this honestly
    /// reports the whole dataset resident — shrink the budget to bound
    /// it.
    pub peak_resident_entries: u64,
    /// Peak partitions resident *with their elements* — the heavy state;
    /// one slab's worth by construction.
    pub peak_resident_partitions: u64,
    /// Peak partitions in the neighbor sweep's active window (summaries
    /// only: MBRs plus a growing neighbor list, no elements).
    pub peak_sweep_window: u64,
    /// Number of x-slabs the tiling produced.
    pub num_slabs: u64,
    /// Spill accounting summed over the pipeline's three external sorts
    /// (entries, partition summaries, metadata records).
    pub spill: SpillStats,
}

/// Monotone `u64` image of an `f64`: `key(a) < key(b)` iff
/// `a.total_cmp(&b)` is `Less` — the trick that lets the external sort
/// reproduce the in-memory `total_cmp` sort order on integer keys.
fn f64_key(v: f64) -> u64 {
    let bits = v.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits ^ (1 << 63)
    }
}

/// Spilled entry: STR x-sort key plus the entry itself. Ordered exactly
/// like the in-memory path's stable sort — center.x (`total_cmp`), then
/// id, then input position (`seq`), which makes the key unique and the
/// order total.
struct EntryRec {
    key: u64,
    seq: u64,
    entry: Entry,
}

impl EntryRec {
    fn rank(&self) -> (u64, u64, u64) {
        (self.key, self.entry.id, self.seq)
    }
}

impl PartialEq for EntryRec {
    fn eq(&self, other: &Self) -> bool {
        self.rank() == other.rank()
    }
}
impl Eq for EntryRec {}
impl PartialOrd for EntryRec {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EntryRec {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.rank().cmp(&other.rank())
    }
}

fn put_aabb(out: &mut Vec<u8>, b: &Aabb) {
    for v in [b.min.x, b.min.y, b.min.z, b.max.x, b.max.y, b.max.z] {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn get_u64(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().expect("bounds checked"))
}

fn get_aabb(buf: &[u8], at: usize) -> Aabb {
    let f = |i: usize| f64::from_bits(get_u64(buf, at + 8 * i));
    Aabb {
        min: Point3::new(f(0), f(1), f(2)),
        max: Point3::new(f(3), f(4), f(5)),
    }
}

fn check_len(buf: &[u8], want: usize, what: &str) -> Result<(), StorageError> {
    if buf.len() != want {
        return Err(StorageError::Corrupt(format!(
            "bad spilled {what} record: {} bytes, expected {want}",
            buf.len()
        )));
    }
    Ok(())
}

impl SpillRecord for EntryRec {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.key.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.entry.id.to_le_bytes());
        put_aabb(out, &self.entry.mbr);
    }

    fn decode(buf: &[u8]) -> Result<Self, StorageError> {
        check_len(buf, 72, "entry")?;
        Ok(EntryRec {
            key: get_u64(buf, 0),
            seq: get_u64(buf, 8),
            entry: Entry::new(get_u64(buf, 16), get_aabb(buf, 24)),
        })
    }
}

/// Spilled partition summary: sweep key (`partition_mbr.min.x`) plus the
/// two MBRs. No elements — those already live on the object page.
struct SummaryRec {
    key: u64,
    index: u32,
    page_mbr: Aabb,
    partition_mbr: Aabb,
}

impl PartialEq for SummaryRec {
    fn eq(&self, other: &Self) -> bool {
        (self.key, self.index) == (other.key, other.index)
    }
}
impl Eq for SummaryRec {}
impl PartialOrd for SummaryRec {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SummaryRec {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.key, self.index).cmp(&(other.key, other.index))
    }
}

impl SpillRecord for SummaryRec {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.key.to_le_bytes());
        out.extend_from_slice(&self.index.to_le_bytes());
        put_aabb(out, &self.page_mbr);
        put_aabb(out, &self.partition_mbr);
    }

    fn decode(buf: &[u8]) -> Result<Self, StorageError> {
        check_len(buf, 108, "summary")?;
        Ok(SummaryRec {
            key: get_u64(buf, 0),
            index: u32::from_le_bytes(buf[8..12].try_into().expect("bounds checked")),
            page_mbr: get_aabb(buf, 12),
            partition_mbr: get_aabb(buf, 60),
        })
    }
}

/// Spilled metadata input: a retired partition with its finished neighbor
/// list, keyed by the metadata packing order (Hilbert key of the
/// partition center; ties broken by index — the same order the in-memory
/// path's stable sort produces).
struct MetaRec {
    key: u64,
    index: u32,
    page_mbr: Aabb,
    partition_mbr: Aabb,
    neighbors: Vec<u32>,
}

impl PartialEq for MetaRec {
    fn eq(&self, other: &Self) -> bool {
        (self.key, self.index) == (other.key, other.index)
    }
}
impl Eq for MetaRec {}
impl PartialOrd for MetaRec {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MetaRec {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.key, self.index).cmp(&(other.key, other.index))
    }
}

impl SpillRecord for MetaRec {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.key.to_le_bytes());
        out.extend_from_slice(&self.index.to_le_bytes());
        put_aabb(out, &self.page_mbr);
        put_aabb(out, &self.partition_mbr);
        out.extend_from_slice(&(self.neighbors.len() as u32).to_le_bytes());
        for &n in &self.neighbors {
            out.extend_from_slice(&n.to_le_bytes());
        }
    }

    fn decode(buf: &[u8]) -> Result<Self, StorageError> {
        if buf.len() < 112 {
            return Err(StorageError::Corrupt(format!(
                "truncated spilled meta record: {} bytes",
                buf.len()
            )));
        }
        let count = u32::from_le_bytes(buf[108..112].try_into().expect("bounds checked")) as usize;
        check_len(buf, 112 + count * 4, "meta")?;
        let neighbors = (0..count)
            .map(|i| {
                let at = 112 + 4 * i;
                u32::from_le_bytes(buf[at..at + 4].try_into().expect("bounds checked"))
            })
            .collect();
        Ok(MetaRec {
            key: get_u64(buf, 0),
            index: u32::from_le_bytes(buf[8..12].try_into().expect("bounds checked")),
            page_mbr: get_aabb(buf, 12),
            partition_mbr: get_aabb(buf, 60),
            neighbors,
        })
    }
}

/// Streaming bulkload of a [`FlatIndex`] with bounded resident memory.
///
/// Produces a **bit-identical** index to [`FlatIndex::build`] for the
/// same entry sequence and options; see the module docs for the pipeline
/// and its memory bounds.
#[derive(Debug, Clone)]
pub struct FlatIndexBuilder {
    options: FlatOptions,
    spill_budget: usize,
}

impl FlatIndexBuilder {
    /// A builder with the given index options and the default spill
    /// budget.
    pub fn new(options: FlatOptions) -> FlatIndexBuilder {
        FlatIndexBuilder {
            options,
            spill_budget: DEFAULT_SPILL_BUDGET,
        }
    }

    /// Sets the spill budget: the number of *entries* buffered in memory
    /// per sort run. The partition-level sorts scale their budgets down
    /// proportionally (one partition per `capacity` entries).
    ///
    /// The floor on resident entries is one slab (`⌈n / pn⌉ ≈ n^⅔ ·
    /// capacity^⅓`), which must fit in memory regardless of the budget —
    /// the standard external-STR bound.
    ///
    /// # Panics
    /// Panics if `budget` is zero.
    pub fn spill_budget(mut self, budget: usize) -> FlatIndexBuilder {
        assert!(budget > 0, "spill budget must be positive");
        self.spill_budget = budget;
        self
    }

    /// Streams `entries` into a new index.
    ///
    /// Equivalent to `FlatIndex::build(pool, entries.collect(), options)`
    /// — same pages, same bytes — without ever holding the collection.
    pub fn build(
        &self,
        pool: &mut impl PageWrite,
        entries: impl IntoIterator<Item = Entry>,
    ) -> Result<(FlatIndex, BuildStats, StreamingStats), StorageError> {
        let options = self.options;
        assert!(
            options.partition_volume_scale >= 1.0,
            "partition inflation must not shrink partitions (got {})",
            options.partition_volume_scale
        );
        let capacity = leaf_capacity(options.layout);
        let partition_budget = (self.spill_budget / capacity).max(1024);
        let mut streaming = StreamingStats::default();

        // Phase 1: ingest + external sort by the STR x key.
        let t0 = Instant::now();
        let mut entry_sorter: ExternalSorter<EntryRec, MemStore> =
            ExternalSorter::in_memory(self.spill_budget);
        let mut mbr_union = Aabb::empty();
        let mut seq = 0u64;
        for entry in entries {
            mbr_union = mbr_union.union(&entry.mbr);
            entry_sorter.push(EntryRec {
                key: f64_key(entry.mbr.center().x),
                seq,
                entry,
            })?;
            seq += 1;
        }
        let n = seq as usize;
        if n == 0 {
            return Ok((
                FlatIndex::empty(options.layout),
                BuildStats {
                    partition_time: t0.elapsed(),
                    neighbor_time: Duration::ZERO,
                    write_time: Duration::ZERO,
                    num_partitions: 0,
                    neighbor_counts: Vec::new(),
                    avg_partition_volume: 0.0,
                },
                streaming,
            ));
        }
        let bounds = options.domain.unwrap_or(mbr_union);
        let (pn, slab_size) = partition_plan(n, capacity);
        let mut merged = entry_sorter.finish()?;
        let entry_spill = merged.stats();
        streaming.spill.accumulate(&entry_spill);
        // Phase-1 peak: the sort-run buffer (the whole dataset when
        // nothing spilled).
        streaming.peak_resident_entries = entry_spill.peak_buffered;

        // Phase 2: consume slabs, tile them, write object pages, spill
        // fixed-size partition summaries.
        let mut summary_sorter: ExternalSorter<SummaryRec, MemStore> =
            ExternalSorter::in_memory(partition_budget);
        let mut slab: Vec<Entry> = Vec::with_capacity(slab_size.min(n));
        let mut parts: Vec<Partition> = Vec::new();
        let mut consumed = 0u64;
        let mut page = Page::new();
        // Actual object-page ids in partition order: stores may hand out
        // non-contiguous ids (a durable store's log pages interleave with
        // reusable frees), so phase 4 maps partition index -> id through
        // this table instead of assuming a dense range. 8 bytes per
        // partition, same order as the phase-3 planning directory.
        let mut object_ids: Vec<PageId> = Vec::new();
        let mut num_partitions = 0u32;
        let mut pmbr_union = Aabb::empty();
        let mut volume_sum = 0.0f64;
        let mut lo_x = bounds.min.coord(Axis::X);
        loop {
            debug_assert!(slab.is_empty());
            while slab.len() < slab_size {
                match merged.next()? {
                    Some(rec) => slab.push(rec.entry),
                    None => break,
                }
            }
            if slab.is_empty() {
                break;
            }
            // Resident entries right now: the current slab, one merge head
            // per spilled run, and — when nothing spilled — whatever part
            // of the fully-buffered sort output is still unconsumed.
            consumed += slab.len() as u64;
            let unconsumed_buffer = if entry_spill.runs == 0 {
                n as u64 - consumed
            } else {
                0
            };
            streaming.peak_resident_entries = streaming
                .peak_resident_entries
                .max(slab.len() as u64 + entry_spill.runs + unconsumed_buffer);
            // The x cut between this slab and the next: the midpoint of
            // the adjacent centers, exactly as the in-memory chop places
            // it; the last slab's tile ends at the domain edge.
            let hi_x = match merged.peek() {
                Some(next) => {
                    let last = slab.last().expect("slab is non-empty").mbr.center().x;
                    (last + next.entry.mbr.center().x) / 2.0
                }
                None => bounds.max.coord(Axis::X),
            };
            let x_tile = axis_tile(&bounds, Axis::X, lo_x, hi_x);
            lo_x = hi_x;
            streaming.num_slabs += 1;

            let slab_entries = std::mem::replace(&mut slab, Vec::with_capacity(slab_size));
            partition_slab(slab_entries, x_tile, pn, capacity, &mut parts);
            streaming.peak_resident_partitions =
                streaming.peak_resident_partitions.max(parts.len() as u64);
            for mut p in parts.drain(..) {
                if options.partition_volume_scale > 1.0 {
                    p.partition_mbr = p.partition_mbr.scale_volume(options.partition_volume_scale);
                }
                encode_leaf(&p.elements, options.layout, &mut page);
                let id = pool.alloc()?;
                pool.write(id, &page, PageKind::ObjectPage)?;
                object_ids.push(id);
                pmbr_union = pmbr_union.union(&p.partition_mbr);
                volume_sum += p.partition_mbr.volume();
                summary_sorter.push(SummaryRec {
                    key: f64_key(p.partition_mbr.min.x),
                    index: num_partitions,
                    page_mbr: p.page_mbr,
                    partition_mbr: p.partition_mbr,
                })?;
                num_partitions += 1;
            }
        }
        assert!(!object_ids.is_empty(), "n > 0 produces partitions");
        let partition_time = t0.elapsed();

        // Phase 3: plane-sweep neighbor computation over the summaries,
        // keyed for the metadata order on the way out.
        let t1 = Instant::now();
        let disc = flat_sfc::Discretizer::new(pmbr_union.min.into(), pmbr_union.max.into(), 16);
        let meta_key = |mbr: &Aabb| match options.meta_order {
            MetaOrder::Hilbert => disc.hilbert_key(mbr.center().into()),
            // STR output order: the key is the partition index itself.
            MetaOrder::StrOutput => 0,
        };
        let mut meta_sorter: ExternalSorter<MetaRec, MemStore> =
            ExternalSorter::in_memory(partition_budget);
        let mut neighbor_counts = vec![0u32; num_partitions as usize];
        // The planning directory: (meta key, index, count) per partition —
        // the in-memory table (16 bytes each, no elements) that phase 4's
        // record plan is computed from.
        let mut directory: Vec<(u64, u32, u32)> = Vec::with_capacity(num_partitions as usize);
        let mut sweep = NeighborSweep::new();
        let mut retired = Vec::new();
        let mut summaries = summary_sorter.finish()?;
        streaming.spill.accumulate(&summaries.stats());
        let mut retire = |retired: &mut Vec<crate::neighbors::SweptPartition>| {
            for r in retired.drain(..) {
                let key = meta_key(&r.partition_mbr);
                neighbor_counts[r.index as usize] = r.neighbors.len() as u32;
                directory.push((key, r.index, r.neighbors.len() as u32));
                meta_sorter.push(MetaRec {
                    key,
                    index: r.index,
                    page_mbr: r.page_mbr,
                    partition_mbr: r.partition_mbr,
                    neighbors: r.neighbors,
                })?;
            }
            Ok::<(), StorageError>(())
        };
        while let Some(s) = summaries.next()? {
            sweep.push(s.index, s.page_mbr, s.partition_mbr, &mut retired);
            retire(&mut retired)?;
        }
        streaming.peak_sweep_window = sweep.peak_window() as u64;
        sweep.finish(&mut retired);
        retire(&mut retired)?;
        let neighbor_time = t1.elapsed();

        // Phase 4: stream the metadata records through the shared writer.
        let t2 = Instant::now();
        directory.sort_unstable();
        let order: Vec<u32> = directory.iter().map(|&(_, i, _)| i).collect();
        let counts: Vec<usize> = directory.iter().map(|&(_, _, c)| c as usize).collect();
        let mut meta_stream = meta_sorter.finish()?;
        streaming.spill.accumulate(&meta_stream.stats());
        let stream = std::iter::from_fn(|| {
            meta_stream.next().transpose().map(|r| {
                r.map(|m| MetaPartition {
                    index: m.index,
                    page_mbr: m.page_mbr,
                    partition_mbr: m.partition_mbr,
                    object_page: object_ids[m.index as usize],
                    neighbors: std::borrow::Cow::Owned(m.neighbors),
                })
            })
        });
        let index = write_meta_and_seed(
            pool,
            &order,
            &counts,
            stream,
            options.layout,
            n as u64,
            num_partitions as u64,
        )?;
        let write_time = t2.elapsed();

        let stats = BuildStats {
            partition_time,
            neighbor_time,
            write_time,
            num_partitions: num_partitions as usize,
            neighbor_counts,
            avg_partition_volume: volume_sum / num_partitions as f64,
        };
        Ok((index, stats, streaming))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::tests::random_entries;
    use flat_storage::{BufferPool, PageStore};

    fn pages_of(pool: &BufferPool<MemStore>) -> Vec<Vec<u8>> {
        let store = pool.store();
        let mut page = Page::new();
        (0..store.num_pages())
            .map(|i| {
                store.read_page(PageId(i), &mut page).unwrap();
                page.bytes().to_vec()
            })
            .collect()
    }

    fn assert_bit_identical(entries: Vec<Entry>, options: FlatOptions, budget: usize) {
        let mut pool_mem = BufferPool::new(MemStore::new(), 1 << 16);
        let (index_mem, stats_mem) =
            FlatIndex::build(&mut pool_mem, entries.clone(), options).unwrap();

        let mut pool_str = BufferPool::new(MemStore::new(), 1 << 16);
        let (index_str, stats_str, _) = FlatIndexBuilder::new(options)
            .spill_budget(budget)
            .build(&mut pool_str, entries)
            .unwrap();

        assert_eq!(index_str.num_elements(), index_mem.num_elements());
        assert_eq!(index_str.num_object_pages(), index_mem.num_object_pages());
        assert_eq!(index_str.num_meta_pages(), index_mem.num_meta_pages());
        assert_eq!(
            index_str.num_seed_inner_pages(),
            index_mem.num_seed_inner_pages()
        );
        assert_eq!(index_str.seed_height(), index_mem.seed_height());
        assert_eq!(stats_str.num_partitions, stats_mem.num_partitions);
        assert_eq!(stats_str.neighbor_counts, stats_mem.neighbor_counts);
        assert_eq!(
            stats_str.avg_partition_volume,
            stats_mem.avg_partition_volume
        );

        let pages_mem = pages_of(&pool_mem);
        let pages_str = pages_of(&pool_str);
        assert_eq!(pages_str.len(), pages_mem.len());
        for (i, (a, b)) in pages_str.iter().zip(&pages_mem).enumerate() {
            assert_eq!(a, b, "page {i} differs");
        }
    }

    #[test]
    fn streamed_build_is_bit_identical_with_spilling() {
        // Budget far below n forces every sorter through its spill path.
        assert_bit_identical(random_entries(20_000, 21), FlatOptions::default(), 1500);
    }

    #[test]
    fn streamed_build_is_bit_identical_without_spilling() {
        assert_bit_identical(random_entries(8_000, 33), FlatOptions::default(), 1 << 20);
    }

    #[test]
    fn streamed_build_matches_under_str_output_order() {
        let options = FlatOptions {
            meta_order: MetaOrder::StrOutput,
            ..FlatOptions::default()
        };
        assert_bit_identical(random_entries(10_000, 5), options, 2000);
    }

    #[test]
    fn streamed_build_matches_with_inflated_partitions() {
        let options = FlatOptions {
            partition_volume_scale: 2.0,
            ..FlatOptions::default()
        };
        assert_bit_identical(random_entries(10_000, 9), options, 2000);
    }

    #[test]
    fn streamed_build_matches_with_explicit_domain() {
        let options = FlatOptions {
            domain: Some(Aabb::new(Point3::splat(-10.0), Point3::splat(160.0))),
            ..FlatOptions::default()
        };
        assert_bit_identical(random_entries(6_000, 41), options, 1000);
    }

    #[test]
    fn empty_stream_builds_an_empty_index() {
        let mut pool = BufferPool::new(MemStore::new(), 16);
        let (index, stats, streaming) = FlatIndexBuilder::new(FlatOptions::default())
            .build(&mut pool, std::iter::empty())
            .unwrap();
        assert_eq!(index.num_elements(), 0);
        assert_eq!(index.seed_height(), 0);
        assert_eq!(stats.num_partitions, 0);
        assert_eq!(pool.store().num_pages(), 0);
        assert_eq!(streaming.num_slabs, 0);
    }

    #[test]
    fn tiny_stream_builds_a_single_partition() {
        assert_bit_identical(random_entries(10, 7), FlatOptions::default(), 4);
    }

    #[test]
    fn duplicate_centers_stream_deterministically() {
        let entries: Vec<Entry> = (0..500)
            .map(|i| Entry::new(i, Aabb::cube(Point3::splat(5.0), 1.0)))
            .collect();
        assert_bit_identical(entries, FlatOptions::default(), 64);
    }

    #[test]
    fn resident_state_is_bounded_by_the_slab() {
        let n = 40_000usize;
        let mut pool = BufferPool::new(MemStore::new(), 1 << 16);
        let budget = 2_000;
        let (_, stats, streaming) = FlatIndexBuilder::new(FlatOptions::default())
            .spill_budget(budget)
            .build(&mut pool, random_entries(n, 3))
            .unwrap();
        let capacity = leaf_capacity(FlatOptions::default().layout);
        let (pn, slab_size) = partition_plan(n, capacity);
        assert_eq!(streaming.num_slabs, pn as u64);
        // Entries resident: the run buffer or one slab + merge heads.
        assert!(
            streaming.peak_resident_entries <= (slab_size + 64).max(budget) as u64,
            "peak entries {} vs slab {slab_size}",
            streaming.peak_resident_entries
        );
        // Partitions with elements: one slab's worth, far below the total.
        let slab_partitions = slab_size.div_ceil(capacity) + pn * pn;
        assert!(
            streaming.peak_resident_partitions <= slab_partitions as u64,
            "peak partitions {} vs per-slab bound {slab_partitions}",
            streaming.peak_resident_partitions
        );
        assert!(streaming.peak_resident_partitions < stats.num_partitions as u64 / 2);
        assert!(streaming.spill.runs > 0, "budget should force spilling");
        assert!(streaming.spill.spill_pages > 0);
    }

    #[test]
    #[should_panic(expected = "must not shrink")]
    fn shrinking_inflation_is_rejected() {
        let mut pool = BufferPool::new(MemStore::new(), 16);
        let _ = FlatIndexBuilder::new(FlatOptions {
            partition_volume_scale: 0.5,
            ..FlatOptions::default()
        })
        .build(&mut pool, random_entries(10, 1));
    }

    #[test]
    fn f64_key_orders_like_total_cmp() {
        let values = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -0.0,
            0.0,
            1e-300,
            3.7,
            f64::INFINITY,
        ];
        for w in values.windows(2) {
            assert!(
                f64_key(w[0]) <= f64_key(w[1]),
                "key order broken at {} vs {}",
                w[0],
                w[1]
            );
        }
        assert!(f64_key(-0.0) < f64_key(0.0), "total_cmp separates -0.0/0.0");
    }
}
