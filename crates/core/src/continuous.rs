//! Continuous (standing) range queries over a live-updated database.
//!
//! A subscriber registers a range box and an initial result set; from
//! then on every committed writer batch produces **exactly one**
//! [`QueryDelta`] per subscription — the net `+id` / `−id` effect of
//! that batch on the subscription's result, stamped with the epoch the
//! batch published at. Replaying the initial result plus the delta
//! stream in epoch order reconstructs the range query's answer after
//! any prefix of commits.
//!
//! The registry itself is storage-agnostic: the database's commit path
//! stages an owned copy of each batch's logical ops
//! ([`StagedOp`]) before applying them to pages, and feeds the staged
//! ops to [`ContinuousQueries::apply_batch`] *inside* the publish
//! critical section (under the published-state write lock). Since
//! registration runs under the matching read lock around its baseline
//! snapshot query, a subscriber can never observe a gap or an overlap:
//! the baseline and the delta stream tile the commit history exactly.

use flat_geom::Aabb;
use std::collections::{HashMap, HashSet, VecDeque};

/// Handle to one registered continuous query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContinuousQueryId(pub(crate) u64);

/// The net effect of one committed batch on one subscription.
///
/// `added` and `removed` are disjoint and sorted; a batch that does not
/// touch the subscribed range produces a delta with both empty (the
/// subscriber still learns the epoch advanced).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryDelta {
    /// The epoch the batch published at (see
    /// [`crate::FlatDb`]'s snapshot epochs — a snapshot pinned at epoch
    /// `e` reflects exactly the deltas with `epoch <= e`).
    pub epoch: u64,
    /// Ids that entered the result set, ascending.
    pub added: Vec<u64>,
    /// Ids that left the result set, ascending.
    pub removed: Vec<u64>,
}

impl QueryDelta {
    /// `true` when the batch left the result set unchanged.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// An owned, resident copy of one logical op of a commit group — just
/// the fields subscription matching needs, cloned off the write path
/// before the ops are consumed by the page apply.
#[derive(Debug, Clone)]
pub(crate) enum StagedOp {
    /// Inserted elements as `(application id, MBR)`.
    Insert(Vec<(u64, Aabb)>),
    /// Deleted application ids (whether or not they were live).
    Delete(Vec<u64>),
    /// A compaction: rewrites pages, preserves the live set.
    Compact,
}

struct Subscription {
    range: Aabb,
    /// Ids currently in the subscription's result set.
    live: HashSet<u64>,
    /// Deltas committed but not yet polled.
    pending: VecDeque<QueryDelta>,
}

/// The registry of live subscriptions of one database.
#[derive(Default)]
pub(crate) struct ContinuousQueries {
    next_id: u64,
    subs: HashMap<u64, Subscription>,
}

impl ContinuousQueries {
    pub(crate) fn new() -> ContinuousQueries {
        ContinuousQueries::default()
    }

    /// Registers a subscription whose baseline result is `initial`.
    /// The caller must hold the publish lock (shared) around the
    /// baseline query *and* this call, so no batch commits in between.
    pub(crate) fn register(
        &mut self,
        range: Aabb,
        initial: impl IntoIterator<Item = u64>,
    ) -> ContinuousQueryId {
        let id = self.next_id;
        self.next_id += 1;
        self.subs.insert(
            id,
            Subscription {
                range,
                live: initial.into_iter().collect(),
                pending: VecDeque::new(),
            },
        );
        ContinuousQueryId(id)
    }

    /// Drops a subscription; `false` if the id was never registered or
    /// already dropped.
    pub(crate) fn unregister(&mut self, id: ContinuousQueryId) -> bool {
        self.subs.remove(&id.0).is_some()
    }

    /// Drains the undelivered deltas of `id` (oldest first); `None` for
    /// an unknown subscription.
    pub(crate) fn poll(&mut self, id: ContinuousQueryId) -> Option<Vec<QueryDelta>> {
        self.subs
            .get_mut(&id.0)
            .map(|s| s.pending.drain(..).collect())
    }

    /// The current result set of `id`, ascending — the baseline plus
    /// every delta applied so far (including undelivered ones).
    pub(crate) fn result(&self, id: ContinuousQueryId) -> Option<Vec<u64>> {
        self.subs.get(&id.0).map(|s| {
            let mut ids: Vec<u64> = s.live.iter().copied().collect();
            ids.sort_unstable();
            ids
        })
    }

    /// Folds one committed batch into every subscription, pushing
    /// exactly one delta (possibly empty) per subscription. Ops are
    /// walked in group order so delete-then-reinsert (and the reverse)
    /// net out exactly as they do in the index.
    pub(crate) fn apply_batch(&mut self, ops: &[StagedOp], epoch: u64) {
        for sub in self.subs.values_mut() {
            let mut added: HashSet<u64> = HashSet::new();
            let mut removed: HashSet<u64> = HashSet::new();
            for op in ops {
                match op {
                    StagedOp::Insert(entries) => {
                        for (id, mbr) in entries {
                            if !mbr.intersects(&sub.range) {
                                continue;
                            }
                            if !removed.remove(id) {
                                added.insert(*id);
                            }
                        }
                    }
                    StagedOp::Delete(ids) => {
                        for id in ids {
                            if !added.remove(id) && sub.live.contains(id) {
                                removed.insert(*id);
                            }
                        }
                    }
                    StagedOp::Compact => {}
                }
            }
            for id in &removed {
                sub.live.remove(id);
            }
            sub.live.extend(added.iter().copied());
            let mut added: Vec<u64> = added.into_iter().collect();
            let mut removed: Vec<u64> = removed.into_iter().collect();
            added.sort_unstable();
            removed.sort_unstable();
            sub.pending.push_back(QueryDelta {
                epoch,
                added,
                removed,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flat_geom::Point3;

    fn boxed(min: f64, max: f64) -> Aabb {
        Aabb::new(Point3::new(min, min, min), Point3::new(max, max, max))
    }

    fn point(v: f64) -> Aabb {
        boxed(v, v)
    }

    #[test]
    fn inserts_and_deletes_stream_as_deltas() {
        let mut reg = ContinuousQueries::new();
        let sub = reg.register(boxed(0.0, 10.0), [1, 2]);
        reg.apply_batch(
            &[StagedOp::Insert(vec![(3, point(5.0)), (4, point(50.0))])],
            7,
        );
        reg.apply_batch(&[StagedOp::Delete(vec![2, 4])], 8);
        let deltas = reg.poll(sub).unwrap();
        assert_eq!(
            deltas,
            vec![
                QueryDelta {
                    epoch: 7,
                    added: vec![3],
                    removed: vec![]
                },
                QueryDelta {
                    epoch: 8,
                    added: vec![],
                    removed: vec![2]
                },
            ]
        );
        assert_eq!(reg.result(sub).unwrap(), vec![1, 3]);
        // Polling again returns nothing new.
        assert!(reg.poll(sub).unwrap().is_empty());
    }

    #[test]
    fn groups_net_out_in_op_order() {
        let mut reg = ContinuousQueries::new();
        let sub = reg.register(boxed(0.0, 10.0), [1]);
        // Delete-then-reinsert of a live id inside one group: no net
        // change. Insert-then-delete of a fresh id: no net change either.
        reg.apply_batch(
            &[
                StagedOp::Delete(vec![1]),
                StagedOp::Insert(vec![(1, point(2.0)), (9, point(3.0))]),
                StagedOp::Delete(vec![9]),
            ],
            3,
        );
        let deltas = reg.poll(sub).unwrap();
        assert_eq!(deltas.len(), 1, "one delta per committed batch");
        assert!(deltas[0].is_empty());
        assert_eq!(deltas[0].epoch, 3);
        assert_eq!(reg.result(sub).unwrap(), vec![1]);
    }

    #[test]
    fn reinsert_outside_the_range_is_a_removal() {
        let mut reg = ContinuousQueries::new();
        let sub = reg.register(boxed(0.0, 10.0), [5]);
        reg.apply_batch(
            &[
                StagedOp::Delete(vec![5]),
                StagedOp::Insert(vec![(5, point(99.0))]),
            ],
            2,
        );
        let deltas = reg.poll(sub).unwrap();
        assert_eq!(deltas[0].removed, vec![5]);
        assert!(deltas[0].added.is_empty());
        assert!(reg.result(sub).unwrap().is_empty());
    }

    #[test]
    fn compaction_and_unrelated_batches_produce_empty_deltas() {
        let mut reg = ContinuousQueries::new();
        let sub = reg.register(boxed(0.0, 1.0), [7]);
        reg.apply_batch(&[StagedOp::Compact], 4);
        reg.apply_batch(&[StagedOp::Insert(vec![(8, point(70.0))])], 5);
        let deltas = reg.poll(sub).unwrap();
        assert_eq!(deltas.len(), 2);
        assert!(deltas.iter().all(QueryDelta::is_empty));
        assert_eq!(deltas[0].epoch, 4);
        assert_eq!(deltas[1].epoch, 5);
    }

    #[test]
    fn unregister_stops_delivery_and_poll_reports_unknown() {
        let mut reg = ContinuousQueries::new();
        let sub = reg.register(boxed(0.0, 1.0), []);
        assert!(reg.unregister(sub));
        assert!(!reg.unregister(sub));
        assert!(reg.poll(sub).is_none());
        assert!(reg.result(sub).is_none());
    }
}
