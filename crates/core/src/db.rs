//! [`FlatDb`]: one session façade over build, query, update and persist.
//!
//! PRs 1–4 grew one capability each, and each got its own entry point:
//! [`FlatIndex::build`] vs the streaming [`FlatIndexBuilder`], serial
//! queries vs the batched [`QueryEngine`], the mutable [`DeltaIndex`],
//! exclusive [`flat_storage::BufferPool`] vs shared
//! [`ConcurrentBufferPool`], and descriptor persistence in `persist.rs`.
//! A caller had to know all of them and wire them together correctly
//! (which pool flavor, when to promote to a delta index, where the
//! descriptor page lives). `FlatDb` is the one handle that owns that
//! wiring:
//!
//! ```text
//!   FlatDb::create(store, DbOptions)      FlatDb::open_file(path, ..)
//!                  │                                   │
//!                  ▼                                   │
//!        db.build_from(entries)  ◄── auto-selects ─────┘
//!        (in-memory │ streaming      by memory budget)
//!                  │
//!      ┌───────────┼─────────────────────┐
//!      ▼           ▼                     ▼
//!  db.reader()  db.query()           db.writer()
//!  Snapshot     QueryBuilder         Writer (&mut)
//!  range/knn    .range(..).readahead(4)  insert/delete/compact
//!  (&self)      .run_batch()         (promotes to DeltaIndex)
//!      │           │                     │
//!      └───────────┴──────────┬──────────┘
//!                             ▼
//!                     db.persist(path) ──► FlatDb::open_file(path)
//! ```
//!
//! The façade adds **no new machinery**: every method routes to the
//! pre-existing entry point (the serial query path, the batched engine,
//! the delta layer, the descriptor save/load), so results are bit-for-bit
//! identical to hand-written low-level code — `tests/db_api.rs` asserts
//! this for every path. Reads are shared (`&self`, through the owned
//! [`ConcurrentBufferPool`]); mutations take `&mut self`, giving the
//! RwLock-style reader/updater discipline the delta layer documents.
//!
//! # Example
//!
//! ```
//! use flat_core::{DbOptions, FlatDb};
//! use flat_geom::{Aabb, Point3};
//! use flat_rtree::Entry;
//! use flat_storage::MemStore;
//!
//! let entries: Vec<Entry> = (0..2000)
//!     .map(|i| Entry::new(i, Aabb::cube(Point3::splat((i % 100) as f64), 1.5)))
//!     .collect();
//!
//! let mut db = FlatDb::create(MemStore::new(), DbOptions::default());
//! db.build_from(entries).unwrap();
//!
//! // Serial reads through a cheap snapshot handle.
//! let query = Aabb::cube(Point3::splat(50.0), 8.0);
//! let hits = db.reader().range(&query).unwrap();
//! assert!(!hits.is_empty());
//!
//! // The same queries, batched with crawl-ahead readahead.
//! let outcome = db.query().range(query).readahead(2).run_batch().unwrap();
//! assert_eq!(outcome.results[0], hits);
//! ```

use crate::builder::{FlatIndexBuilder, StreamingStats, DEFAULT_SPILL_BUDGET};
use crate::delta::{DeltaIndex, DeltaReport};
use crate::durable::{decode_logical, encode_logical, DbSnapshot, DbStore, LogicalOp};
pub use crate::durable::{Durability, RecoveryReport};
use crate::engine::{BatchOutcome, EngineConfig, KnnBatchOutcome, QueryEngine};
use crate::error::FlatError;
use crate::index::{BuildStats, FlatIndex, FlatOptions};
use crate::knn::{KnnStats, Neighbor};
use crate::query::{QueryStats, Tombstones};
use flat_geom::{Aabb, Point3};
use flat_rtree::{Entry, Hit, LeafLayout};
use flat_storage::{
    BufferPool, ConcurrentBufferPool, DurableStore, FileStore, IoStats, Page, PageId, PageStore,
};
use std::collections::HashSet;
use std::path::Path;

/// Configuration of a [`FlatDb`] session.
#[derive(Debug, Clone, Copy)]
pub struct DbOptions {
    /// Index build options (layout, domain, inflation, metadata order).
    pub index: FlatOptions,
    /// Page capacity of the owned buffer pool.
    pub pool_pages: usize,
    /// Default tuning for batched queries (overridable per batch through
    /// the [`QueryBuilder`]).
    pub engine: EngineConfig,
    /// Memory budget for [`FlatDb::build_from`], in *entries*: inputs
    /// larger than this stream through the out-of-core
    /// [`FlatIndexBuilder`] (with this budget as its spill budget) instead
    /// of the in-memory bulkload. Both paths write bit-identical pages,
    /// so the switch only affects peak memory.
    pub memory_budget: usize,
    /// Crash durability of committed writer batches. Anything other than
    /// [`Durability::Off`] requires the database to be created with
    /// [`FlatDb::create_durable`] (or opened with
    /// [`FlatDb::open_durable`]): every batch is then committed to a
    /// write-ahead log before any page mutates, and a crash recovers to
    /// exactly the committed prefix.
    pub durability: Durability,
}

impl Default for DbOptions {
    fn default() -> Self {
        DbOptions {
            index: FlatOptions::default(),
            pool_pages: 1 << 16,
            engine: EngineConfig::default(),
            memory_budget: DEFAULT_SPILL_BUDGET,
            durability: Durability::Off,
        }
    }
}

impl DbOptions {
    /// Options for an updatable database over `domain`: stable element
    /// ids ([`LeafLayout::WithIds`]) and the fixed tiling domain that
    /// [`FlatDb::writer`] requires.
    pub fn updatable(domain: Aabb) -> DbOptions {
        DbOptions {
            index: FlatOptions {
                layout: LeafLayout::WithIds,
                domain: Some(domain),
                ..FlatOptions::default()
            },
            ..DbOptions::default()
        }
    }

    /// Replaces the index build options.
    pub fn with_index(mut self, index: FlatOptions) -> DbOptions {
        self.index = index;
        self
    }

    /// Replaces the entry memory budget (see [`DbOptions::memory_budget`]).
    pub fn with_memory_budget(mut self, entries: usize) -> DbOptions {
        self.memory_budget = entries;
        self
    }

    /// Replaces the durability mode (see [`DbOptions::durability`]).
    pub fn with_durability(mut self, durability: Durability) -> DbOptions {
        self.durability = durability;
        self
    }
}

/// What [`FlatDb::build_from`] did.
#[derive(Debug, Clone)]
pub struct BuildReport {
    /// The bulkload's phase timings and pointer statistics.
    pub stats: BuildStats,
    /// Present when the streaming (out-of-core) path was selected.
    pub streaming: Option<StreamingStats>,
}

impl BuildReport {
    /// `true` when the build streamed through the out-of-core pipeline.
    pub fn streamed(&self) -> bool {
        self.streaming.is_some()
    }
}

/// The index behind the façade: a pristine bulkload until the first
/// writer promotes it to a delta index.
enum DbIndex {
    Base(FlatIndex),
    Delta(Box<DeltaIndex>),
}

/// A FLAT database: one handle owning the buffer pool and the index
/// lifecycle. See the [module docs](self) for the session diagram and
/// the crate docs for the underlying machinery.
pub struct FlatDb<S: PageStore> {
    pool: ConcurrentBufferPool<DbStore<S>>,
    state: DbIndex,
    options: DbOptions,
    built: bool,
    /// Uncompacted writer mutations (delta partitions, tombstones, dead
    /// records) — state [`FlatDb::persist`] must fold away first.
    dirty: bool,
    /// Sequence number the next committed writer batch will log under.
    next_seq: u64,
    /// Committed batches since the last checkpoint (drives the automatic
    /// [`Durability::WalCheckpoint`] cadence).
    batches_since_ckpt: usize,
    /// Set when a durable commit failed between the log append and the
    /// page apply: the in-memory state may disagree with the committed
    /// log, so further writes are refused — reopening recovers.
    poisoned: bool,
}

impl<S: PageStore> std::fmt::Debug for FlatDb<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlatDb")
            .field("built", &self.built)
            .field("dirty", &self.dirty)
            .field("live_elements", &self.num_live_elements())
            .field("delta", &self.delta().is_some())
            .field("pool", &self.pool)
            .finish()
    }
}

impl<S: PageStore> std::fmt::Debug for Snapshot<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Snapshot({:?})", self.db)
    }
}

impl<S: PageStore> std::fmt::Debug for QueryBuilder<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryBuilder")
            .field("ranges", &self.ranges.len())
            .field("knns", &self.knns.len())
            .field("config", &self.config)
            .finish()
    }
}

impl<S: PageStore> std::fmt::Debug for Writer<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Writer({:?})", self.db)
    }
}

impl FlatDb<flat_storage::MemStore> {
    /// A database over a fresh in-memory store — the common test and
    /// benchmark substrate.
    pub fn create_in_memory(options: DbOptions) -> FlatDb<flat_storage::MemStore> {
        FlatDb::create(flat_storage::MemStore::new(), options)
    }
}

impl FlatDb<FileStore> {
    /// Opens a database file written by [`FlatDb::persist`].
    ///
    /// The descriptor is the file's last page (that is where `persist`
    /// puts it); everything else is validated by the descriptor's magic.
    /// As with [`FlatDb::open`], pass the build-time
    /// `options.index.domain` when the session will write — the domain
    /// is not stored in the file.
    pub fn open_file<P: AsRef<Path>>(
        path: P,
        options: DbOptions,
    ) -> Result<FlatDb<FileStore>, FlatError> {
        if options.durability != Durability::Off {
            return FlatDb::open_file_durable(path, options).map(|(db, _)| db);
        }
        let store = FileStore::open(path)?;
        let num_pages = store.num_pages();
        if num_pages == 0 {
            return Err(FlatError::Persist(
                "file holds no pages, so no descriptor".into(),
            ));
        }
        FlatDb::open(store, PageId(num_pages - 1), options)
    }

    /// Opens a durable database file (one created through
    /// [`FlatDb::create_durable`] over a [`FileStore`]), recovering the
    /// last committed checkpoint and replaying the write-ahead log past
    /// it. Returns the [`RecoveryReport`] alongside the database; the
    /// plain [`FlatDb::open_file`] routes here (and discards the report)
    /// whenever `options.durability` is on.
    pub fn open_file_durable<P: AsRef<Path>>(
        path: P,
        options: DbOptions,
    ) -> Result<(FlatDb<FileStore>, RecoveryReport), FlatError> {
        let store = FileStore::open(path)?;
        FlatDb::open_durable(store, options)
    }
}

impl<S: PageStore> FlatDb<S> {
    /// A database over `store`, ready for [`FlatDb::build_from`].
    ///
    /// # Panics
    /// Panics if `options.durability` is on — a durable database needs
    /// the write-ahead-logged store layout that only the fallible
    /// [`FlatDb::create_durable`] can lay down.
    pub fn create(store: S, options: DbOptions) -> FlatDb<S> {
        assert_eq!(
            options.durability,
            Durability::Off,
            "durability needs the logged store layout: use FlatDb::create_durable"
        );
        let pool = ConcurrentBufferPool::new(DbStore::Plain(store), options.pool_pages);
        FlatDb {
            pool,
            state: DbIndex::Base(FlatIndex::empty(options.index.layout)),
            options,
            built: false,
            dirty: false,
            next_seq: 1,
            batches_since_ckpt: 0,
            poisoned: false,
        }
    }

    /// A crash-durable database over an **empty** `store`: lays down the
    /// write-ahead-log layout and commits an initial (empty) checkpoint,
    /// so every subsequent committed batch is recoverable.
    ///
    /// `options.durability` selects the logging mode and must not be
    /// [`Durability::Off`]. Reopen with [`FlatDb::open_durable`] (or
    /// [`FlatDb::open_file`] with the same durable options).
    pub fn create_durable(store: S, options: DbOptions) -> Result<FlatDb<S>, FlatError> {
        assert_ne!(
            options.durability,
            Durability::Off,
            "create_durable needs a durability mode (see DbOptions::durability)"
        );
        let mut durable = DurableStore::create(store)?;
        let initial = DbSnapshot {
            last_seq: 0,
            built: false,
            index: FlatIndex::empty(options.index.layout),
            delta: None,
        };
        durable.checkpoint(&initial.encode())?;
        let pool =
            ConcurrentBufferPool::new(DbStore::Durable(Box::new(durable)), options.pool_pages);
        Ok(FlatDb {
            pool,
            state: DbIndex::Base(FlatIndex::empty(options.index.layout)),
            options,
            built: false,
            dirty: false,
            next_seq: 1,
            batches_since_ckpt: 0,
            poisoned: false,
        })
    }

    /// Opens a durable database left by a previous session — or a crash:
    /// recovers the last committed checkpoint (redoing its dirty-page
    /// write-back), rebuilds the resident index state from the recovered
    /// pages, and replays every committed writer batch logged after the
    /// checkpoint. The result is query-equivalent to the state after the
    /// last batch whose commit reached the log; a torn or corrupt log
    /// tail (a crash mid-append) is truncated, never replayed.
    ///
    /// As with [`FlatDb::open`], the file does not record the tiling
    /// domain: pass the same `options.index.domain` the database was
    /// created with whenever the log may hold updates or the session
    /// will write.
    pub fn open_durable(
        store: S,
        mut options: DbOptions,
    ) -> Result<(FlatDb<S>, RecoveryReport), FlatError> {
        assert_ne!(
            options.durability,
            Durability::Off,
            "open_durable needs a durability mode (see DbOptions::durability)"
        );
        let (durable, log) = DurableStore::open(store)?;
        let snapshot = DbSnapshot::decode(&log.snapshot)?;
        options.index.layout = snapshot.index.layout();
        let pool =
            ConcurrentBufferPool::new(DbStore::Durable(Box::new(durable)), options.pool_pages);
        let state = match snapshot.delta {
            None => DbIndex::Base(snapshot.index),
            Some((meta_pages, tombstones)) => {
                let tombstones: Tombstones = tombstones
                    .into_iter()
                    .map(|(page, slot)| (PageId(page), slot))
                    .collect();
                DbIndex::Delta(Box::new(DeltaIndex::reopen(
                    &pool,
                    snapshot.index,
                    options.index,
                    meta_pages,
                    tombstones,
                )?))
            }
        };
        // Uncompacted mutations survive a checkpoint on its pages; the
        // dirty flag must survive with them so persist() still compacts.
        let dirty = match &state {
            DbIndex::Base(_) => false,
            DbIndex::Delta(delta) => {
                delta.num_delta_partitions() > 0
                    || delta.num_tombstones() > 0
                    || (delta.num_live_partitions() as u64) < delta.base().num_object_pages()
            }
        };
        let mut db = FlatDb {
            pool,
            state,
            options,
            built: snapshot.built,
            dirty,
            next_seq: snapshot.last_seq + 1,
            batches_since_ckpt: 0,
            poisoned: false,
        };
        // Replay the committed batches past the checkpoint — applying
        // them directly, *without* re-logging: the records are already
        // in the log, so a crash during recovery just recovers again.
        let mut replayed = 0usize;
        for payload in &log.logical {
            let (seq, op) = decode_logical(payload)?;
            if seq != db.next_seq {
                return Err(FlatError::Persist(format!(
                    "log replay expected batch {}, found {seq}",
                    db.next_seq
                )));
            }
            db.replay(op)?;
            db.next_seq = seq + 1;
            replayed += 1;
        }
        db.batches_since_ckpt = replayed;
        let report = RecoveryReport {
            last_committed_seq: db.next_seq - 1,
            replayed,
            torn_tail_truncated: log.torn_truncated,
        };
        Ok((db, report))
    }

    /// Applies one recovered logical record, promoting to a delta index
    /// first if the checkpoint predates the first writer.
    fn replay(&mut self, op: LogicalOp) -> Result<(), FlatError> {
        if let DbIndex::Base(base) = &self.state {
            if self.options.index.domain.is_none() {
                return Err(FlatError::Update(
                    "replaying logged updates needs the build-time tiling domain: \
                     set FlatOptions::domain (see DbOptions::updatable)"
                        .into(),
                ));
            }
            let delta = DeltaIndex::new(&self.pool, base.clone(), self.options.index)?;
            self.state = DbIndex::Delta(Box::new(delta));
            self.built = true;
        }
        let DbIndex::Delta(delta) = &mut self.state else {
            unreachable!("promoted above")
        };
        match op {
            LogicalOp::Insert(entries) => {
                delta.insert_batch(&mut self.pool, entries)?;
                self.dirty = true;
            }
            LogicalOp::Delete(ids) => {
                if delta.delete_batch(&mut self.pool, &ids)? > 0 {
                    self.dirty = true;
                }
            }
            LogicalOp::Compact => {
                delta.compact(&mut self.pool)?;
                self.dirty = false;
            }
        }
        Ok(())
    }

    /// Adopts an already-built index whose descriptor page is
    /// `descriptor` (written by [`FlatIndex::save`] or a previous
    /// [`FlatDb::persist`]).
    ///
    /// The stored layout overrides `options.index.layout` — the pages on
    /// disk are the source of truth. The descriptor does **not** record
    /// the tiling domain, so for a database you intend to write into,
    /// `options.index.domain` must be the same domain the index was
    /// built with: the delta layer STR-tiles every insert batch (and the
    /// compaction rebuild) over this domain, and a different one would
    /// silently produce a differently-tiled index than the one
    /// persisted. Read-only sessions may pass any options.
    pub fn open(
        store: S,
        descriptor: PageId,
        mut options: DbOptions,
    ) -> Result<FlatDb<S>, FlatError> {
        if options.durability != Durability::Off {
            return Err(FlatError::Persist(
                "a descriptor-page store is plain-format; durable databases are \
                 opened with FlatDb::open_durable"
                    .into(),
            ));
        }
        let pool = ConcurrentBufferPool::new(DbStore::Plain(store), options.pool_pages);
        let index = FlatIndex::load(&pool, descriptor)?;
        options.index.layout = index.layout();
        Ok(FlatDb {
            pool,
            state: DbIndex::Base(index),
            options,
            built: true,
            dirty: false,
            next_seq: 1,
            batches_since_ckpt: 0,
            poisoned: false,
        })
    }

    /// Bulk-loads the database from `entries`, auto-selecting the build
    /// path: inputs within [`DbOptions::memory_budget`] use the in-memory
    /// bulkload, larger ones stream through the out-of-core
    /// [`FlatIndexBuilder`] with that budget. Both paths produce
    /// bit-identical pages.
    ///
    /// A database can be built once; building into a non-empty database
    /// is an error (open a fresh one instead).
    pub fn build_from(&mut self, entries: Vec<Entry>) -> Result<BuildReport, FlatError> {
        self.check_buildable()?;
        if entries.len() > self.options.memory_budget {
            return self.stream_build(entries);
        }
        let (index, stats) = FlatIndex::build(&mut self.pool, entries, self.options.index)?;
        self.state = DbIndex::Base(index);
        self.built = true;
        self.rebase_after_build()?;
        Ok(BuildReport {
            stats,
            streaming: None,
        })
    }

    /// Bulk-loads the database from an entry *stream*, always through the
    /// out-of-core pipeline (see [`FlatIndexBuilder`]) — for inputs that
    /// never exist as a `Vec`, e.g. a chunked dataset generator.
    pub fn build_streaming(
        &mut self,
        entries: impl IntoIterator<Item = Entry>,
    ) -> Result<BuildReport, FlatError> {
        self.check_buildable()?;
        self.stream_build(entries)
    }

    fn check_buildable(&self) -> Result<(), FlatError> {
        if self.built {
            return Err(FlatError::Build(
                "database already holds an index; create a fresh database to rebuild".into(),
            ));
        }
        Ok(())
    }

    fn stream_build(
        &mut self,
        entries: impl IntoIterator<Item = Entry>,
    ) -> Result<BuildReport, FlatError> {
        let (index, stats, streaming) = FlatIndexBuilder::new(self.options.index)
            .spill_budget(self.options.memory_budget)
            .build(&mut self.pool, entries)?;
        self.state = DbIndex::Base(index);
        self.built = true;
        self.rebase_after_build()?;
        Ok(BuildReport {
            stats,
            streaming: Some(streaming),
        })
    }

    /// Durable mode: folds the freshly built pages onto the backing store
    /// and starts a new log generation. A build only ever runs over the
    /// initial (empty) checkpoint — `check_buildable` refuses anything
    /// else — so the previous durable snapshot references none of the
    /// pages being written back, which is exactly the precondition of the
    /// cheap rebase checkpoint (no page images ahead of the write-back).
    fn rebase_after_build(&mut self) -> Result<(), FlatError> {
        if self.options.durability == Durability::Off {
            return Ok(());
        }
        let snapshot = self.snapshot_bytes();
        let result = self
            .durable_store()
            .checkpoint_rebase(&snapshot)
            .map_err(FlatError::from);
        if let Err(e) = result {
            return Err(self.poison(e));
        }
        self.batches_since_ckpt = 0;
        Ok(())
    }

    /// A cheap read handle for serial queries. Snapshots borrow the
    /// database shared, so any number can be out at once (and, through a
    /// [`flat_storage::PoolHandle`]-style scoped spawn, on any number of
    /// threads).
    pub fn reader(&self) -> Snapshot<'_, S> {
        Snapshot { db: self }
    }

    /// Starts a fluent batched query: accumulate range and kNN queries,
    /// tune readahead, then run the batch through the [`QueryEngine`].
    pub fn query(&self) -> QueryBuilder<'_, S> {
        QueryBuilder {
            db: self,
            config: self.options.engine,
            ranges: Vec::new(),
            knns: Vec::new(),
        }
    }

    /// An exclusive write session. The first writer promotes the pristine
    /// index to a [`DeltaIndex`] (a one-time resident-table scan); this
    /// requires the database to have stable element ids
    /// ([`LeafLayout::WithIds`]) and a fixed domain — see
    /// [`DbOptions::updatable`].
    pub fn writer(&mut self) -> Result<Writer<'_, S>, FlatError> {
        if self.options.index.layout != LeafLayout::WithIds {
            return Err(FlatError::Update(
                "updates need stable element ids: build with LeafLayout::WithIds \
                 (see DbOptions::updatable)"
                    .into(),
            ));
        }
        if self.options.index.domain.is_none() {
            return Err(FlatError::Update(
                "updates need a fixed tiling domain: set FlatOptions::domain \
                 (see DbOptions::updatable)"
                    .into(),
            ));
        }
        if let DbIndex::Base(base) = &self.state {
            let delta = DeltaIndex::new(&self.pool, base.clone(), self.options.index)?;
            self.state = DbIndex::Delta(Box::new(delta));
            self.built = true; // a delta-only database counts as built
        }
        Ok(Writer { db: self })
    }

    /// Persists the database to a file that [`FlatDb::open_file`] can
    /// open: every live page, id-for-id, with the index descriptor
    /// appended as the last page.
    ///
    /// Uncompacted writer mutations are folded away first (tombstones and
    /// delta summaries live in memory, so a dirty index is compacted —
    /// producing the same pages as a fresh bulkload over the survivors —
    /// before the copy). Returns the descriptor's page id.
    pub fn persist<P: AsRef<Path>>(&mut self, path: P) -> Result<PageId, FlatError> {
        if self.dirty {
            if matches!(self.state, DbIndex::Delta(_)) {
                // In durable mode the fold-away is a committed batch like
                // any other, so a crash mid-persist replays it.
                self.check_writable()?;
                self.log_op(&LogicalOp::Compact)?;
                let DbIndex::Delta(delta) = &mut self.state else {
                    unreachable!("matched above")
                };
                if let Err(e) = delta.compact(&mut self.pool) {
                    return Err(self.poison(e.into()));
                }
                self.after_commit()?;
            }
            self.dirty = false;
        }
        let src = self.pool.store();
        let mut dst = FileStore::create(path)?;
        let free: HashSet<u64> = src.free_pages().iter().map(|p| p.0).collect();
        let mut page = Page::new();
        for id in 0..src.num_pages() {
            let copied = dst.alloc()?;
            debug_assert_eq!(copied.0, id, "fresh FileStore allocates densely");
            if free.contains(&id) {
                continue; // freed pages stay zeroed in the copy
            }
            src.read_page(PageId(id), &mut page)?;
            dst.write_page(copied, &page)?;
        }
        // The descriptor goes last — that is where open_file looks.
        let mut descriptor_pool = BufferPool::new(dst, 16);
        let descriptor = self.index().save(&mut descriptor_pool)?;
        Ok(descriptor)
    }

    /// Checkpoints the write-ahead log: every dirty page is logged as a
    /// page image, a checkpoint record commits the batch, the pages are
    /// written back to the backing store and the log is truncated to a
    /// fresh generation. Recovery cost drops to zero replayed batches;
    /// [`Durability::WalCheckpoint`] runs this automatically.
    ///
    /// Errors with [`FlatError::Update`] when the database is not
    /// durable.
    pub fn checkpoint(&mut self) -> Result<(), FlatError> {
        if self.options.durability == Durability::Off {
            return Err(FlatError::Update(
                "checkpointing needs a durable database (see DbOptions::durability)".into(),
            ));
        }
        self.check_writable()?;
        let snapshot = self.snapshot_bytes();
        let result = self
            .durable_store()
            .checkpoint(&snapshot)
            .map_err(FlatError::from);
        if let Err(e) = result {
            return Err(self.poison(e));
        }
        self.batches_since_ckpt = 0;
        Ok(())
    }

    /// The durable wrapper (callers guarantee durability is on).
    fn durable_store(&mut self) -> &mut DurableStore<S> {
        self.pool
            .store_mut()
            .durable_mut()
            .expect("durability on implies a durable store")
    }

    /// Encodes the checkpoint snapshot of the current resident state.
    fn snapshot_bytes(&self) -> Vec<u8> {
        let delta = match &self.state {
            DbIndex::Base(_) => None,
            DbIndex::Delta(delta) => {
                let mut tombstones: Vec<(u64, u16)> = delta
                    .tombstones()
                    .iter()
                    .map(|&(page, slot)| (page.0, slot))
                    .collect();
                tombstones.sort_unstable();
                Some((delta.meta_page_list().to_vec(), tombstones))
            }
        };
        DbSnapshot {
            last_seq: self.next_seq - 1,
            built: self.built,
            index: self.index().clone(),
            delta,
        }
        .encode()
    }

    /// Refuses writes after a failed durable commit.
    fn check_writable(&self) -> Result<(), FlatError> {
        if self.poisoned {
            return Err(FlatError::Update(
                "a durable commit failed mid-batch, so the in-memory state may \
                 disagree with the committed log; reopen the database to recover"
                    .into(),
            ));
        }
        Ok(())
    }

    /// Marks the session poisoned (durable mode only) and passes the
    /// error through.
    fn poison(&mut self, e: FlatError) -> FlatError {
        if self.options.durability != Durability::Off {
            self.poisoned = true;
        }
        e
    }

    /// Commits `op` to the write-ahead log ahead of applying it — the
    /// atomic commit point of a durable writer batch. A no-op with
    /// durability off.
    fn log_op(&mut self, op: &LogicalOp) -> Result<(), FlatError> {
        if self.options.durability == Durability::Off {
            return Ok(());
        }
        let bytes = encode_logical(self.next_seq, op);
        let result = self.durable_store().append_record(&bytes);
        if let Err(e) = result {
            // The in-memory log tail may now disagree with the store.
            return Err(self.poison(e.into()));
        }
        self.next_seq += 1;
        Ok(())
    }

    /// Post-batch bookkeeping: counts the committed batch and runs the
    /// automatic checkpoint cadence.
    fn after_commit(&mut self) -> Result<(), FlatError> {
        if self.options.durability == Durability::Off {
            return Ok(());
        }
        self.batches_since_ckpt += 1;
        if let Durability::WalCheckpoint { every_batches } = self.options.durability {
            if self.batches_since_ckpt >= every_batches.max(1) {
                self.checkpoint()?;
            }
        }
        Ok(())
    }

    /// The index descriptor (the delta layer's base when a writer has
    /// been opened).
    pub fn index(&self) -> &FlatIndex {
        match &self.state {
            DbIndex::Base(index) => index,
            DbIndex::Delta(delta) => delta.base(),
        }
    }

    /// The delta layer, once a writer has promoted the index.
    pub fn delta(&self) -> Option<&DeltaIndex> {
        match &self.state {
            DbIndex::Base(_) => None,
            DbIndex::Delta(delta) => Some(delta),
        }
    }

    /// Live (non-deleted) elements.
    pub fn num_live_elements(&self) -> u64 {
        match &self.state {
            DbIndex::Base(index) => index.num_elements(),
            DbIndex::Delta(delta) => delta.num_live_elements(),
        }
    }

    /// `true` once the database holds an index (built, opened, or written
    /// into).
    pub fn is_built(&self) -> bool {
        self.built
    }

    /// Runs the delta layer's structural invariant checker against the
    /// session pool: symmetric neighbor links, MBR containment, no freed
    /// page reachable from a crawl. Returns `Ok(None)` while no writer
    /// has promoted the index (a pristine bulkload has nothing to check).
    pub fn check_invariants(&self) -> Result<Option<DeltaReport>, String> {
        match &self.state {
            DbIndex::Base(_) => Ok(None),
            DbIndex::Delta(delta) => delta
                .check_invariants(&self.pool, &self.pool.store().free_pages())
                .map(Some),
        }
    }

    /// The session's configuration.
    pub fn options(&self) -> &DbOptions {
        &self.options
    }

    /// The backing page store (behind the durable wrapper, if any — so a
    /// durable session's store view does **not** include uncheckpointed
    /// overlay pages).
    pub fn store(&self) -> &S {
        self.pool.store().backing()
    }

    /// Unwraps the database into its backing store. For a durable
    /// database this drops any uncheckpointed overlay — deliberately the
    /// same state a crash would leave, which the fault-injection tests
    /// lean on; call [`FlatDb::checkpoint`] first to keep everything.
    pub fn into_store(self) -> S {
        self.pool.into_store().into_backing()
    }

    /// Cumulative I/O statistics of the owned pool.
    pub fn io_stats(&self) -> IoStats {
        self.pool.stats()
    }

    /// Drops every cached page (the paper's cold-cache protocol).
    pub fn clear_cache(&self) {
        self.pool.clear_cache()
    }

    /// Zeroes the I/O statistics.
    pub fn reset_stats(&self) {
        self.pool.reset_stats()
    }
}

/// A cheap serial read handle over a [`FlatDb`] — plain borrows, so
/// copying one is free.
///
/// Results are identical to calling the underlying index directly:
/// range queries route to [`FlatIndex::range_query`] (or the
/// tombstone-aware [`DeltaIndex::range_query`] once a writer exists) and
/// kNN to the matching `knn_query`.
pub struct Snapshot<'db, S: PageStore> {
    db: &'db FlatDb<S>,
}

// Manual impls: a derive would demand `S: Clone`/`S: Copy`, but the
// snapshot only holds a reference — it is copyable for every store.
impl<S: PageStore> Clone for Snapshot<'_, S> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<S: PageStore> Copy for Snapshot<'_, S> {}

impl<S: PageStore> Snapshot<'_, S> {
    /// Every live element whose MBR intersects `query`.
    pub fn range(&self, query: &Aabb) -> Result<Vec<Hit>, FlatError> {
        let mut stats = QueryStats::default();
        self.range_with_stats(query, &mut stats)
    }

    /// Like [`Snapshot::range`], accumulating crawl counters.
    pub fn range_with_stats(
        &self,
        query: &Aabb,
        stats: &mut QueryStats,
    ) -> Result<Vec<Hit>, FlatError> {
        Ok(match &self.db.state {
            DbIndex::Base(index) => index.range_query_with_stats(&self.db.pool, query, stats)?,
            DbIndex::Delta(delta) => delta.range_query_with_stats(&self.db.pool, query, stats)?,
        })
    }

    /// The `k` live elements nearest to `point`, ascending, exact.
    pub fn knn(&self, point: Point3, k: usize) -> Result<Vec<Neighbor>, FlatError> {
        let mut stats = KnnStats::default();
        self.knn_with_stats(point, k, &mut stats)
    }

    /// Like [`Snapshot::knn`], accumulating expansion counters.
    pub fn knn_with_stats(
        &self,
        point: Point3,
        k: usize,
        stats: &mut KnnStats,
    ) -> Result<Vec<Neighbor>, FlatError> {
        Ok(match &self.db.state {
            DbIndex::Base(index) => index.knn_query_with_stats(&self.db.pool, point, k, stats)?,
            DbIndex::Delta(delta) => delta.knn_query_with_stats(&self.db.pool, point, k, stats)?,
        })
    }

    /// Cumulative I/O statistics of the database's pool, including the
    /// prefetch-effectiveness split: of all prefetched pages,
    /// [`IoStats::total_prefetch_hits`] were used by a later demand read,
    /// [`IoStats::total_prefetched_unused`] were not, and — within the
    /// unused — [`IoStats::total_prefetch_evicted`] were already evicted
    /// before anything touched them (pure waste: a physical read whose
    /// page never served anyone).
    pub fn stats(&self) -> IoStats {
        self.db.io_stats()
    }

    /// The index descriptor this snapshot reads.
    pub fn index(&self) -> &FlatIndex {
        self.db.index()
    }

    /// Live elements visible to this snapshot.
    pub fn num_live_elements(&self) -> u64 {
        self.db.num_live_elements()
    }
}

/// A fluent batched query over a [`FlatDb`].
///
/// Accumulates range and/or kNN queries, then executes them through the
/// batched [`QueryEngine`] — per-batch page cache, wave-scheduled crawl
/// turns, crawl-ahead readahead — with per-query results identical to the
/// serial [`Snapshot`] paths.
pub struct QueryBuilder<'db, S: PageStore> {
    db: &'db FlatDb<S>,
    config: EngineConfig,
    ranges: Vec<Aabb>,
    knns: Vec<(Point3, usize)>,
}

impl<S: PageStore> QueryBuilder<'_, S> {
    /// Queues one range query.
    pub fn range(mut self, query: Aabb) -> Self {
        self.ranges.push(query);
        self
    }

    /// Queues a batch of range queries.
    pub fn ranges(mut self, queries: impl IntoIterator<Item = Aabb>) -> Self {
        self.ranges.extend(queries);
        self
    }

    /// Queues one kNN query.
    pub fn knn(mut self, point: Point3, k: usize) -> Self {
        self.knns.push((point, k));
        self
    }

    /// Queues a batch of kNN queries.
    pub fn knns(mut self, queries: impl IntoIterator<Item = (Point3, usize)>) -> Self {
        self.knns.extend(queries);
        self
    }

    /// Sets the readahead depth (worker threads serving crawl-ahead
    /// prefetch hints; `0` disables prefetching but keeps the batch page
    /// cache).
    pub fn readahead(mut self, threads: usize) -> Self {
        self.config.readahead_threads = threads;
        self
    }

    /// Bounds how many queries crawl concurrently (see
    /// [`EngineConfig::wave_size`]).
    pub fn wave_size(mut self, wave: usize) -> Self {
        self.config.wave_size = Some(wave);
        self
    }
}

impl<S: PageStore + Sync> QueryBuilder<'_, S> {
    /// Runs the queued **range** queries as one batch. Results are
    /// index-aligned with the queueing order and identical to serial
    /// evaluation.
    pub fn run_batch(self) -> Result<BatchOutcome, FlatError> {
        if !self.knns.is_empty() {
            return Err(FlatError::Query(
                "kNN queries are queued; run them with run_knn_batch".into(),
            ));
        }
        let before = self.db.io_stats();
        let mut outcome = self.engine().run_range_batch(&self.ranges)?;
        outcome.io = self.db.io_stats().since(&before);
        Ok(outcome)
    }

    /// Runs the queued **kNN** queries as one batch.
    pub fn run_knn_batch(self) -> Result<KnnBatchOutcome, FlatError> {
        if !self.ranges.is_empty() {
            return Err(FlatError::Query(
                "range queries are queued; run them with run_batch".into(),
            ));
        }
        let before = self.db.io_stats();
        let mut outcome = self.engine().run_knn_batch(&self.knns)?;
        outcome.io = self.db.io_stats().since(&before);
        Ok(outcome)
    }

    fn engine(&self) -> QueryEngine<'_, ConcurrentBufferPool<DbStore<S>>> {
        match &self.db.state {
            DbIndex::Base(index) => QueryEngine::with_config(index, &self.db.pool, self.config),
            DbIndex::Delta(delta) => {
                QueryEngine::for_delta_with_config(delta, &self.db.pool, self.config)
            }
        }
    }
}

/// An exclusive write session over a [`FlatDb`].
///
/// Holding a writer borrows the database mutably, so no snapshot or query
/// can observe a half-applied batch — the reader/updater discipline the
/// delta layer documents, enforced by the borrow checker.
pub struct Writer<'db, S: PageStore> {
    db: &'db mut FlatDb<S>,
}

impl<S: PageStore> Writer<'_, S> {
    /// Inserts a batch of new elements (see [`DeltaIndex::insert_batch`]).
    ///
    /// Unlike the low-level call, colliding application ids are reported
    /// as a [`FlatError::Update`] instead of a panic.
    pub fn insert(&mut self, entries: Vec<Entry>) -> Result<(), FlatError> {
        self.db.check_writable()?;
        {
            // Validate *before* the commit point: a rejected batch must
            // reach neither the log nor the pages.
            let DbIndex::Delta(delta) = &self.db.state else {
                unreachable!("writer() promoted the index")
            };
            let mut batch_ids = HashSet::with_capacity(entries.len());
            for e in &entries {
                if delta.contains_id(e.id) || !batch_ids.insert(e.id) {
                    return Err(FlatError::Update(format!(
                        "insert of id {} which is already live",
                        e.id
                    )));
                }
            }
        }
        if entries.is_empty() {
            return Ok(());
        }
        let op = LogicalOp::Insert(entries);
        self.db.log_op(&op)?;
        let LogicalOp::Insert(entries) = op else {
            unreachable!("constructed above")
        };
        let DbIndex::Delta(delta) = &mut self.db.state else {
            unreachable!("writer() promoted the index")
        };
        if let Err(e) = delta.insert_batch(&mut self.db.pool, entries) {
            return Err(self.db.poison(e.into()));
        }
        self.db.dirty = true;
        self.db.after_commit()
    }

    /// Deletes elements by application id, returning how many were live
    /// (see [`DeltaIndex::delete_batch`]).
    pub fn delete(&mut self, ids: &[u64]) -> Result<usize, FlatError> {
        self.db.check_writable()?;
        if ids.is_empty() {
            return Ok(0);
        }
        self.db.log_op(&LogicalOp::Delete(ids.to_vec()))?;
        let DbIndex::Delta(delta) = &mut self.db.state else {
            unreachable!("writer() promoted the index")
        };
        let deleted = match delta.delete_batch(&mut self.db.pool, ids) {
            Ok(deleted) => deleted,
            Err(e) => return Err(self.db.poison(e.into())),
        };
        if deleted > 0 {
            self.db.dirty = true;
        }
        self.db.after_commit()?;
        Ok(deleted)
    }

    /// Merges all deltas back into a pristine bulkload — pages
    /// byte-identical to a fresh build over the surviving elements (see
    /// [`DeltaIndex::compact`]).
    pub fn compact(&mut self) -> Result<BuildStats, FlatError> {
        self.db.check_writable()?;
        self.db.log_op(&LogicalOp::Compact)?;
        let DbIndex::Delta(delta) = &mut self.db.state else {
            unreachable!("writer() promoted the index")
        };
        let stats = match delta.compact(&mut self.db.pool) {
            Ok(stats) => stats,
            Err(e) => return Err(self.db.poison(e.into())),
        };
        self.db.dirty = false;
        self.db.after_commit()?;
        Ok(stats)
    }

    /// The delta layer this writer mutates.
    pub fn delta(&self) -> &DeltaIndex {
        match &self.db.state {
            DbIndex::Delta(delta) => delta,
            DbIndex::Base(_) => unreachable!("writer() promoted the index"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::tests::random_entries;

    fn updatable_options() -> DbOptions {
        DbOptions::updatable(Aabb::cube(Point3::splat(50.0), 110.0))
    }

    #[test]
    fn double_build_is_rejected() {
        let mut db = FlatDb::create_in_memory(DbOptions::default());
        db.build_from(random_entries(500, 1)).unwrap();
        let err = db.build_from(random_entries(500, 2)).unwrap_err();
        assert!(matches!(err, FlatError::Build(_)), "{err}");
    }

    #[test]
    fn build_auto_selects_streaming_above_the_budget() {
        let options = DbOptions::default().with_memory_budget(2_000);
        let mut db = FlatDb::create_in_memory(options);
        let report = db.build_from(random_entries(5_000, 3)).unwrap();
        assert!(report.streamed(), "5k entries over a 2k budget must stream");

        let mut db = FlatDb::create_in_memory(DbOptions::default());
        let report = db.build_from(random_entries(5_000, 3)).unwrap();
        assert!(!report.streamed(), "5k entries fit the default budget");
    }

    #[test]
    fn streamed_and_resident_builds_are_byte_identical() {
        let entries = random_entries(4_000, 4);
        let mut resident = FlatDb::create_in_memory(DbOptions::default());
        resident.build_from(entries.clone()).unwrap();
        let mut streamed = FlatDb::create_in_memory(DbOptions::default().with_memory_budget(500));
        streamed.build_from(entries).unwrap();
        let (a, b) = (resident.store(), streamed.store());
        assert_eq!(a.num_pages(), b.num_pages());
        let (mut pa, mut pb) = (Page::new(), Page::new());
        for id in 0..a.num_pages() {
            a.read_page(PageId(id), &mut pa).unwrap();
            b.read_page(PageId(id), &mut pb).unwrap();
            assert_eq!(pa.bytes(), pb.bytes(), "page {id} differs");
        }
    }

    #[test]
    fn writer_requires_ids_and_domain() {
        let mut db = FlatDb::create_in_memory(DbOptions::default());
        db.build_from(random_entries(500, 5)).unwrap();
        let err = db.writer().unwrap_err();
        assert!(matches!(err, FlatError::Update(_)), "{err}");

        let mut db = FlatDb::create_in_memory(DbOptions::default().with_index(FlatOptions {
            layout: LeafLayout::WithIds,
            ..FlatOptions::default()
        }));
        db.build_from(random_entries(500, 5)).unwrap();
        let err = db.writer().unwrap_err();
        assert!(err.to_string().contains("domain"), "{err}");
    }

    #[test]
    fn writer_promotes_once_and_rejects_duplicate_ids() {
        let mut db = FlatDb::create_in_memory(updatable_options());
        db.build_from(random_entries(2_000, 6)).unwrap();
        assert!(db.delta().is_none());
        let pages_before = db.store().num_pages();
        let free_before = db.store().free_pages();
        {
            let mut writer = db.writer().unwrap();
            // One fresh id rides along with the duplicate: the whole
            // batch must be rejected atomically.
            let err = writer
                .insert(vec![
                    Entry::new(777_777, Aabb::cube(Point3::splat(2.0), 0.5)),
                    Entry::new(0, Aabb::cube(Point3::splat(1.0), 0.5)),
                ])
                .unwrap_err();
            assert!(matches!(err, FlatError::Update(_)), "{err}");
            // A rejected batch must not have touched anything.
            assert_eq!(writer.delta().num_live_elements(), 2_000);
            assert!(!writer.delta().contains_id(777_777));
        }
        // ...including the store: no pages appended or leaked onto (or
        // off) the free list by the failed batch.
        assert_eq!(db.store().num_pages(), pages_before);
        assert_eq!(db.store().free_pages(), free_before);
        {
            let mut writer = db.writer().unwrap();
            writer
                .insert(vec![Entry::new(9_999, Aabb::cube(Point3::splat(1.0), 0.5))])
                .unwrap();
        }
        assert!(db.delta().is_some());
        assert_eq!(db.num_live_elements(), 2_001);
    }

    #[test]
    #[should_panic(expected = "create_durable")]
    fn durable_options_are_rejected_by_plain_create() {
        let options = updatable_options().with_durability(Durability::Wal);
        let _ = FlatDb::create(flat_storage::MemStore::new(), options);
    }

    #[test]
    fn checkpoint_requires_a_durable_database() {
        let mut db = FlatDb::create_in_memory(updatable_options());
        let err = db.checkpoint().unwrap_err();
        assert!(matches!(err, FlatError::Update(_)), "{err}");
    }

    #[test]
    fn durable_database_recovers_uncheckpointed_batches() {
        let options = updatable_options().with_durability(Durability::Wal);
        let entries = random_entries(1_500, 21);

        // Reference session: the same operations, durability off.
        let mut reference = FlatDb::create_in_memory(updatable_options());
        reference.build_from(entries.clone()).unwrap();

        let mut db = FlatDb::create_durable(flat_storage::MemStore::new(), options).unwrap();
        db.build_from(entries).unwrap();
        let fresh: Vec<Entry> = random_entries(300, 22)
            .into_iter()
            .map(|e| Entry::new(e.id + 1_000_000, e.mbr))
            .collect();
        let doomed: Vec<u64> = (0..1_500).filter(|i| i % 5 == 0).collect();
        for session in [&mut reference, &mut db] {
            let mut writer = session.writer().unwrap();
            writer.insert(fresh.clone()).unwrap();
            writer.delete(&doomed).unwrap();
        }

        // "Crash": drop the session without a checkpoint. The WAL pages
        // live on the backing store; the overlay is lost with the RAM.
        let store = db.into_store();
        let (recovered, report) = FlatDb::open_durable(store, options).unwrap();
        assert_eq!(report.replayed, 2, "insert + delete past the rebase");
        assert_eq!(report.last_committed_seq, 2);
        assert!(!report.torn_tail_truncated);
        assert_eq!(recovered.num_live_elements(), reference.num_live_elements());
        // The durable layout shifts page ids (header + log pages), so the
        // crawl emits hits in a different order: compare as id sets.
        let ids = |hits: Vec<flat_rtree::Hit>| {
            let mut ids: Vec<u64> = hits.iter().map(|h| h.id).collect();
            ids.sort_unstable();
            ids
        };
        for side in [8.0, 30.0, 240.0] {
            let q = Aabb::cube(Point3::splat(50.0), side);
            assert_eq!(
                ids(recovered.reader().range(&q).unwrap()),
                ids(reference.reader().range(&q).unwrap()),
                "query side {side}"
            );
        }
        let delta = recovered.delta().expect("replay promotes");
        delta
            .check_invariants(
                // The pool reads through the durable overlay.
                &recovered.pool,
                &recovered.store().free_pages(),
            )
            .unwrap_or_else(|e| panic!("invariants violated after recovery: {e}"));
    }

    #[test]
    fn durable_database_survives_a_checkpointed_shutdown() {
        let options =
            updatable_options().with_durability(Durability::WalCheckpoint { every_batches: 2 });
        let mut db = FlatDb::create_durable(flat_storage::MemStore::new(), options).unwrap();
        db.build_from(random_entries(1_000, 23)).unwrap();
        {
            let mut writer = db.writer().unwrap();
            writer
                .insert(vec![Entry::new(
                    700_000,
                    Aabb::cube(Point3::splat(9.0), 1.0),
                )])
                .unwrap();
            writer.delete(&[3, 4, 5]).unwrap(); // second batch: auto-checkpoint
        }
        let expected = db.num_live_elements();
        let q = Aabb::cube(Point3::splat(50.0), 160.0);
        let hits = db.reader().range(&q).unwrap();

        let (recovered, report) = FlatDb::open_durable(db.into_store(), options).unwrap();
        assert_eq!(report.replayed, 0, "the auto-checkpoint truncated the log");
        assert_eq!(recovered.num_live_elements(), expected);
        assert_eq!(recovered.reader().range(&q).unwrap(), hits);
        assert!(
            recovered.delta().is_some(),
            "delta state survives via the snapshot"
        );
    }

    #[test]
    fn durable_delta_only_database_recovers_from_the_initial_checkpoint() {
        let options = updatable_options().with_durability(Durability::Wal);
        let mut db = FlatDb::create_durable(flat_storage::MemStore::new(), options).unwrap();
        {
            let mut writer = db.writer().unwrap();
            writer
                .insert(vec![
                    Entry::new(1, Aabb::cube(Point3::splat(10.0), 1.0)),
                    Entry::new(2, Aabb::cube(Point3::splat(20.0), 1.0)),
                ])
                .unwrap();
        }
        let (recovered, report) = FlatDb::open_durable(db.into_store(), options).unwrap();
        assert_eq!(report.replayed, 1);
        assert!(recovered.is_built());
        assert_eq!(recovered.num_live_elements(), 2);
        assert_eq!(
            recovered
                .reader()
                .range(&Aabb::cube(Point3::splat(10.0), 3.0))
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn mixed_batches_must_pick_the_matching_terminal() {
        let mut db = FlatDb::create_in_memory(DbOptions::default());
        db.build_from(random_entries(1_000, 7)).unwrap();
        let err = db
            .query()
            .range(Aabb::cube(Point3::splat(50.0), 5.0))
            .knn(Point3::splat(50.0), 3)
            .run_batch()
            .unwrap_err();
        assert!(matches!(err, FlatError::Query(_)), "{err}");
        let err = db
            .query()
            .range(Aabb::cube(Point3::splat(50.0), 5.0))
            .knn(Point3::splat(50.0), 3)
            .run_knn_batch()
            .unwrap_err();
        assert!(matches!(err, FlatError::Query(_)), "{err}");
    }

    #[test]
    fn snapshot_matches_batched_results() {
        let mut db = FlatDb::create_in_memory(DbOptions::default());
        db.build_from(random_entries(20_000, 8)).unwrap();
        let queries: Vec<Aabb> = (0..12)
            .map(|i| Aabb::cube(Point3::splat(8.0 * i as f64), 6.0))
            .collect();
        let serial: Vec<Vec<Hit>> = queries
            .iter()
            .map(|q| db.reader().range(q).unwrap())
            .collect();
        let outcome = db
            .query()
            .ranges(queries.iter().copied())
            .readahead(2)
            .run_batch()
            .unwrap();
        assert_eq!(outcome.results, serial);

        let points: Vec<(Point3, usize)> = (0..6)
            .map(|i| (Point3::splat(15.0 * i as f64), 9))
            .collect();
        let serial: Vec<Vec<Neighbor>> = points
            .iter()
            .map(|&(p, k)| db.reader().knn(p, k).unwrap())
            .collect();
        let outcome = db
            .query()
            .knns(points.iter().copied())
            .run_knn_batch()
            .unwrap();
        assert_eq!(outcome.results, serial);
    }

    #[test]
    fn batch_outcomes_carry_the_pool_io_delta() {
        let mut db = FlatDb::create_in_memory(DbOptions::default());
        db.build_from(random_entries(20_000, 11)).unwrap();
        db.clear_cache();
        db.reset_stats();
        let queries: Vec<Aabb> = (0..10)
            .map(|i| Aabb::cube(Point3::splat(9.0 * i as f64), 6.0))
            .collect();
        let outcome = db
            .query()
            .ranges(queries.iter().copied())
            .readahead(2)
            .run_batch()
            .unwrap();
        // The delta covers exactly this batch: cold cache, so physical
        // reads happened, and the prefetch split is internally consistent.
        assert!(outcome.io.total_physical_reads() > 0);
        assert_eq!(
            outcome.io.total_physical_reads(),
            db.io_stats().total_physical_reads()
        );
        assert!(outcome.io.total_prefetched_unused() >= outcome.io.total_prefetch_evicted());
        assert_eq!(
            outcome.io.total_prefetch_reads(),
            outcome.io.total_prefetch_hits() + outcome.io.total_prefetched_unused()
        );
        // Snapshot::stats exposes the same cumulative counters.
        assert_eq!(
            db.reader().stats().total_physical_reads(),
            db.io_stats().total_physical_reads()
        );
        // A second identical batch over the warm cache adds no physical
        // reads but still reports its (all-logical) delta.
        let warm = db
            .query()
            .ranges(queries.iter().copied())
            .run_batch()
            .unwrap();
        assert_eq!(warm.io.total_physical_reads(), 0);
        assert!(warm.io.total_logical_reads() > 0);
    }

    #[test]
    fn fresh_database_serves_empty_results() {
        let db = FlatDb::create_in_memory(DbOptions::default());
        assert!(!db.is_built());
        let q = Aabb::cube(Point3::splat(1.0), 5.0);
        assert!(db.reader().range(&q).unwrap().is_empty());
        assert!(db.reader().knn(Point3::ORIGIN, 4).unwrap().is_empty());
        let outcome = db.query().range(q).run_batch().unwrap();
        assert!(outcome.results[0].is_empty());
    }

    #[test]
    fn writer_on_a_fresh_updatable_database_is_delta_only() {
        let mut db = FlatDb::create_in_memory(updatable_options());
        {
            let mut writer = db.writer().unwrap();
            writer
                .insert(vec![
                    Entry::new(1, Aabb::cube(Point3::splat(10.0), 1.0)),
                    Entry::new(2, Aabb::cube(Point3::splat(20.0), 1.0)),
                ])
                .unwrap();
        }
        assert!(db.is_built());
        assert_eq!(db.num_live_elements(), 2);
        let hits = db
            .reader()
            .range(&Aabb::cube(Point3::splat(10.0), 3.0))
            .unwrap();
        assert_eq!(hits.len(), 1);
        // The database is now built; a bulkload on top must be refused.
        assert!(db.build_from(random_entries(10, 9)).is_err());
    }

    #[test]
    fn persist_requires_no_mutation_to_roundtrip() {
        let dir = std::env::temp_dir().join("flat-core-db-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("clean.flatdb");
        let entries = random_entries(3_000, 10);
        let mut db = FlatDb::create_in_memory(DbOptions::default());
        db.build_from(entries.clone()).unwrap();
        db.persist(&path).unwrap();

        let reopened = FlatDb::open_file(&path, DbOptions::default()).unwrap();
        assert_eq!(reopened.num_live_elements(), entries.len() as u64);
        let q = Aabb::cube(Point3::splat(40.0), 18.0);
        assert_eq!(
            reopened.reader().range(&q).unwrap(),
            db.reader().range(&q).unwrap()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn persist_compacts_dirty_state_first() {
        let dir = std::env::temp_dir().join("flat-core-db-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dirty.flatdb");
        let mut db = FlatDb::create_in_memory(updatable_options());
        db.build_from(random_entries(2_000, 11)).unwrap();
        {
            let mut writer = db.writer().unwrap();
            writer.delete(&[0, 1, 2, 3]).unwrap();
            writer
                .insert(vec![Entry::new(
                    50_000,
                    Aabb::cube(Point3::splat(5.0), 0.5),
                )])
                .unwrap();
        }
        db.persist(&path).unwrap();
        let reopened = FlatDb::open_file(&path, updatable_options()).unwrap();
        assert_eq!(reopened.num_live_elements(), 2_000 - 4 + 1);
        // Tombstoned elements must stay gone after the round trip.
        let q = Aabb::cube(Point3::splat(50.0), 120.0);
        assert_eq!(
            reopened.reader().range(&q).unwrap().len() as u64,
            reopened.num_live_elements()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_file_rejects_an_empty_file() {
        let dir = std::env::temp_dir().join("flat-core-db-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.flatdb");
        std::fs::write(&path, b"").unwrap();
        let err = FlatDb::open_file(&path, DbOptions::default()).unwrap_err();
        assert!(matches!(err, FlatError::Persist(_)), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
