//! [`FlatDb`]: one session façade over build, query, update and persist.
//!
//! PRs 1–4 grew one capability each, and each got its own entry point:
//! [`FlatIndex::build`] vs the streaming [`FlatIndexBuilder`], serial
//! queries vs the batched [`QueryEngine`], the mutable [`DeltaIndex`],
//! exclusive [`flat_storage::BufferPool`] vs shared
//! [`flat_storage::ConcurrentBufferPool`], and descriptor persistence in
//! `persist.rs`.
//! A caller had to know all of them and wire them together correctly
//! (which pool flavor, when to promote to a delta index, where the
//! descriptor page lives). `FlatDb` is the one handle that owns that
//! wiring:
//!
//! ```text
//!   FlatDb::create(store, DbOptions)      FlatDb::open_file(path, ..)
//!                  │                                   │
//!                  ▼                                   │
//!        db.build_from(entries)  ◄── auto-selects ─────┘
//!        (in-memory │ streaming      by memory budget)
//!                  │
//!      ┌───────────┼─────────────────────┐
//!      ▼           ▼                     ▼
//!  db.reader()  db.query()           db.writer()
//!  Snapshot     QueryBuilder         Writer (&mut)
//!  range/knn    .range(..).readahead(4)  insert/delete/compact
//!  (&self)      .run_batch()         (promotes to DeltaIndex)
//!      │           │                     │
//!      └───────────┴──────────┬──────────┘
//!                             ▼
//!                     db.persist(path) ──► FlatDb::open_file(path)
//! ```
//!
//! The façade adds **no new machinery** on the query side: every method
//! routes to the pre-existing entry point (the serial query path, the
//! batched engine, the delta layer, the descriptor save/load), so results
//! are bit-for-bit identical to hand-written low-level code —
//! `tests/db_api.rs` asserts this for every path.
//!
//! # Snapshots & epochs
//!
//! Reads and writes are **both shared** (`&self`): the database owns a
//! [`VersionedPool`] (epoch-based MVCC over the page cache), so a
//! [`Snapshot`] pins an epoch at creation and stays wait-free — range,
//! kNN and batched [`QueryEngine`] crawls all observe the store exactly
//! as of pin time — while a concurrent [`Writer`] copy-on-writes the
//! pages its batch touches. A batch commits by publishing atomically:
//! the epoch bump and the resident-index swap happen under one lock, so
//! a snapshot taken at any instant sees either the whole batch or none
//! of it, never a partial one. Old page versions reclaim once the last
//! snapshot pinned to them drops. Writers serialize against each other
//! (one [`FlatDb::writer`] session at a time); only readers are
//! wait-free.
//!
//! # Example
//!
//! ```
//! use flat_core::{DbOptions, FlatDb};
//! use flat_geom::{Aabb, Point3};
//! use flat_rtree::Entry;
//! use flat_storage::MemStore;
//!
//! let entries: Vec<Entry> = (0..2000)
//!     .map(|i| Entry::new(i, Aabb::cube(Point3::splat((i % 100) as f64), 1.5)))
//!     .collect();
//!
//! let mut db = FlatDb::create(MemStore::new(), DbOptions::default());
//! db.build_from(entries).unwrap();
//!
//! // Serial reads through a cheap snapshot handle.
//! let query = Aabb::cube(Point3::splat(50.0), 8.0);
//! let hits = db.reader().range(&query).unwrap();
//! assert!(!hits.is_empty());
//!
//! // The same queries, batched with crawl-ahead readahead.
//! let outcome = db.query().range(query).readahead(2).run_batch().unwrap();
//! assert_eq!(outcome.results[0], hits);
//! ```

use crate::aggregate::AggregateStats;
use crate::builder::{FlatIndexBuilder, StreamingStats, DEFAULT_SPILL_BUDGET};
use crate::continuous::{ContinuousQueries, ContinuousQueryId, QueryDelta, StagedOp};
use crate::delta::{DeltaIndex, DeltaReport};
use crate::durable::{decode_logical, encode_logical, DbSnapshot, DbStore, LogicalOp};
pub use crate::durable::{Durability, RecoveryReport};
use crate::engine::{BatchOutcome, EngineConfig, KnnBatchOutcome, QueryEngine};
use crate::error::FlatError;
use crate::index::{BuildStats, FlatIndex, FlatOptions};
use crate::join::{JoinEngine, JoinInput, JoinResult};
use crate::knn::{KnnStats, Neighbor};
use crate::query::{QueryStats, Tombstones};
use flat_geom::{Aabb, Point3};
use flat_rtree::{Entry, Hit, LeafLayout};
use flat_storage::{
    BufferPool, DurableStore, EpochPin, FileStore, IoStats, Page, PageId, PageStore, VersionStats,
    VersionedPool,
};
use std::collections::HashSet;
use std::ops::Deref;
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Locks a mutex, tolerating poison: a panicking writer thread must not
/// wedge every later session call (the MVCC state it guards is kept
/// consistent by the publish protocol, not by unwind safety).
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

fn read_unpoisoned<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn write_unpoisoned<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

/// Configuration of a [`FlatDb`] session.
#[derive(Debug, Clone, Copy)]
pub struct DbOptions {
    /// Index build options (layout, domain, inflation, metadata order).
    pub index: FlatOptions,
    /// Page capacity of the owned buffer pool.
    pub pool_pages: usize,
    /// Default tuning for batched queries (overridable per batch through
    /// the [`QueryBuilder`]).
    pub engine: EngineConfig,
    /// Memory budget for [`FlatDb::build_from`], in *entries*: inputs
    /// larger than this stream through the out-of-core
    /// [`FlatIndexBuilder`] (with this budget as its spill budget) instead
    /// of the in-memory bulkload. Both paths write bit-identical pages,
    /// so the switch only affects peak memory.
    pub memory_budget: usize,
    /// Crash durability of committed writer batches. Anything other than
    /// [`Durability::Off`] requires the database to be created with
    /// [`FlatDb::create_durable`] (or opened with
    /// [`FlatDb::open_durable`]): every batch is then committed to a
    /// write-ahead log before any page mutates, and a crash recovers to
    /// exactly the committed prefix.
    pub durability: Durability,
}

impl Default for DbOptions {
    fn default() -> Self {
        DbOptions {
            index: FlatOptions::default(),
            pool_pages: 1 << 16,
            engine: EngineConfig::default(),
            memory_budget: DEFAULT_SPILL_BUDGET,
            durability: Durability::Off,
        }
    }
}

impl DbOptions {
    /// Options for an updatable database over `domain`: stable element
    /// ids ([`LeafLayout::WithIds`]) and the fixed tiling domain that
    /// [`FlatDb::writer`] requires.
    pub fn updatable(domain: Aabb) -> DbOptions {
        DbOptions {
            index: FlatOptions {
                layout: LeafLayout::WithIds,
                domain: Some(domain),
                ..FlatOptions::default()
            },
            ..DbOptions::default()
        }
    }

    /// Replaces the index build options.
    pub fn with_index(mut self, index: FlatOptions) -> DbOptions {
        self.index = index;
        self
    }

    /// Replaces the entry memory budget (see [`DbOptions::memory_budget`]).
    pub fn with_memory_budget(mut self, entries: usize) -> DbOptions {
        self.memory_budget = entries;
        self
    }

    /// Replaces the durability mode (see [`DbOptions::durability`]).
    pub fn with_durability(mut self, durability: Durability) -> DbOptions {
        self.durability = durability;
        self
    }
}

/// What [`FlatDb::build_from`] did.
#[derive(Debug, Clone)]
pub struct BuildReport {
    /// The bulkload's phase timings and pointer statistics.
    pub stats: BuildStats,
    /// Present when the streaming (out-of-core) path was selected.
    pub streaming: Option<StreamingStats>,
}

impl BuildReport {
    /// `true` when the build streamed through the out-of-core pipeline.
    pub fn streamed(&self) -> bool {
        self.streaming.is_some()
    }
}

/// The index behind the façade: a pristine bulkload until the first
/// writer promotes it to a delta index.
///
/// Both variants are behind an [`Arc`] so the resident tables can be
/// *published*: the writer's truth copy and the snapshot-visible copy
/// share pages until a batch mutates ([`Arc::make_mut`] deep-clones
/// exactly then, the resident-table analogue of the page-level
/// copy-on-write in [`VersionedPool`]).
#[derive(Clone)]
enum DbIndex {
    Base(Arc<FlatIndex>),
    Delta(Arc<DeltaIndex>),
}

impl DbIndex {
    /// The base index descriptor (the delta layer's base once promoted).
    fn base(&self) -> &FlatIndex {
        match self {
            DbIndex::Base(index) => index,
            DbIndex::Delta(delta) => delta.base(),
        }
    }

    fn num_live_elements(&self) -> u64 {
        match self {
            DbIndex::Base(index) => index.num_elements(),
            DbIndex::Delta(delta) => delta.num_live_elements(),
        }
    }
}

/// The writer-side source of truth, serialized by the truth mutex: one
/// writer session at a time mutates it, then publishes a clone of
/// `state` for snapshots.
struct DbTruth {
    state: DbIndex,
    built: bool,
    /// Uncompacted writer mutations (delta partitions, tombstones, dead
    /// records) — state [`FlatDb::persist`] must fold away first.
    dirty: bool,
    /// Sequence number the next committed writer batch will log under.
    next_seq: u64,
    /// Committed batches since the last checkpoint (drives the automatic
    /// [`Durability::WalCheckpoint`] cadence).
    batches_since_ckpt: usize,
    /// Set when a commit failed between its point of no return (the log
    /// append, or the first page of the apply) and the publish: the
    /// resident state may disagree with the pages, so further writes are
    /// refused. Snapshots stay consistent — the failed batch was never
    /// published — and reopening a durable database recovers.
    poisoned: bool,
}

/// A FLAT database: one handle owning the versioned buffer pool and the
/// index lifecycle. See the [module docs](self) for the session diagram
/// and the crate docs for the underlying machinery.
pub struct FlatDb<S: PageStore> {
    pool: VersionedPool<DbStore<S>>,
    /// Writer-side truth; the mutex serializes writer sessions.
    truth: Mutex<DbTruth>,
    /// The resident state snapshots read. Swapped under the write lock
    /// together with the epoch bump ([`BatchWriter::publish`][pb]), and
    /// pinned under the read lock by [`FlatDb::reader`] — that pairing is
    /// what makes a snapshot's epoch and resident tables one consistent
    /// cut.
    ///
    /// [pb]: flat_storage::BatchWriter::publish
    published: RwLock<DbIndex>,
    /// Continuous-query registry. Mutated only inside the publish
    /// critical section (under the `published` write lock) and during
    /// registration (under the read lock), so the delta stream tiles
    /// the commit history exactly — see [`crate::continuous`].
    subscriptions: Mutex<ContinuousQueries>,
    options: DbOptions,
}

impl<S: PageStore> std::fmt::Debug for FlatDb<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = read_unpoisoned(&self.published).clone();
        f.debug_struct("FlatDb")
            .field("live_elements", &state.num_live_elements())
            .field("delta", &matches!(state, DbIndex::Delta(_)))
            .field("versions", &self.pool.version_stats())
            .finish()
    }
}

impl<S: PageStore> std::fmt::Debug for Snapshot<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Snapshot({:?})", self.db)
    }
}

impl<S: PageStore> std::fmt::Debug for QueryBuilder<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryBuilder")
            .field("ranges", &self.ranges.len())
            .field("knns", &self.knns.len())
            .field("config", &self.config)
            .finish()
    }
}

impl<S: PageStore> std::fmt::Debug for Writer<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Writer({:?})", self.db)
    }
}

impl FlatDb<flat_storage::MemStore> {
    /// A database over a fresh in-memory store — the common test and
    /// benchmark substrate.
    pub fn create_in_memory(options: DbOptions) -> FlatDb<flat_storage::MemStore> {
        FlatDb::create(flat_storage::MemStore::new(), options)
    }
}

impl FlatDb<FileStore> {
    /// Opens a database file written by [`FlatDb::persist`].
    ///
    /// The descriptor is the file's last page (that is where `persist`
    /// puts it); everything else is validated by the descriptor's magic.
    /// As with [`FlatDb::open`], pass the build-time
    /// `options.index.domain` when the session will write — the domain
    /// is not stored in the file.
    pub fn open_file<P: AsRef<Path>>(
        path: P,
        options: DbOptions,
    ) -> Result<FlatDb<FileStore>, FlatError> {
        if options.durability != Durability::Off {
            return FlatDb::open_file_durable(path, options).map(|(db, _)| db);
        }
        let store = FileStore::open(path)?;
        let num_pages = store.num_pages();
        if num_pages == 0 {
            return Err(FlatError::Persist(
                "file holds no pages, so no descriptor".into(),
            ));
        }
        FlatDb::open(store, PageId(num_pages - 1), options)
    }

    /// Opens a durable database file (one created through
    /// [`FlatDb::create_durable`] over a [`FileStore`]), recovering the
    /// last committed checkpoint and replaying the write-ahead log past
    /// it. Returns the [`RecoveryReport`] alongside the database; the
    /// plain [`FlatDb::open_file`] routes here (and discards the report)
    /// whenever `options.durability` is on.
    pub fn open_file_durable<P: AsRef<Path>>(
        path: P,
        options: DbOptions,
    ) -> Result<(FlatDb<FileStore>, RecoveryReport), FlatError> {
        let store = FileStore::open(path)?;
        FlatDb::open_durable(store, options)
    }
}

impl<S: PageStore> FlatDb<S> {
    /// A database over `store`, ready for [`FlatDb::build_from`].
    ///
    /// # Panics
    /// Panics if `options.durability` is on — a durable database needs
    /// the write-ahead-logged store layout that only the fallible
    /// [`FlatDb::create_durable`] can lay down.
    pub fn create(store: S, options: DbOptions) -> FlatDb<S> {
        assert_eq!(
            options.durability,
            Durability::Off,
            "durability needs the logged store layout: use FlatDb::create_durable"
        );
        let pool = VersionedPool::new(DbStore::Plain(store), options.pool_pages);
        let state = DbIndex::Base(Arc::new(FlatIndex::empty(options.index.layout)));
        Self::assemble(pool, state, options, false, false, 1)
    }

    /// Wires the locking skeleton around an initial truth state (the
    /// published copy starts as a clone of it).
    fn assemble(
        pool: VersionedPool<DbStore<S>>,
        state: DbIndex,
        options: DbOptions,
        built: bool,
        dirty: bool,
        next_seq: u64,
    ) -> FlatDb<S> {
        FlatDb {
            pool,
            published: RwLock::new(state.clone()),
            subscriptions: Mutex::new(ContinuousQueries::new()),
            truth: Mutex::new(DbTruth {
                state,
                built,
                dirty,
                next_seq,
                batches_since_ckpt: 0,
                poisoned: false,
            }),
            options,
        }
    }

    /// The truth behind the mutex, through exclusive access (no locking).
    fn truth_mut(&mut self) -> &mut DbTruth {
        self.truth.get_mut().unwrap_or_else(|e| e.into_inner())
    }

    /// Replaces the published state with the current truth, without an
    /// epoch bump — only for exclusive (`&mut`) contexts such as builds
    /// and recovery, where no snapshot can be pinned.
    fn publish_current(&mut self) {
        let state = self.truth_mut().state.clone();
        *self.published.get_mut().unwrap_or_else(|e| e.into_inner()) = state;
    }

    /// A crash-durable database over an **empty** `store`: lays down the
    /// write-ahead-log layout and commits an initial (empty) checkpoint,
    /// so every subsequent committed batch is recoverable.
    ///
    /// `options.durability` selects the logging mode and must not be
    /// [`Durability::Off`]. Reopen with [`FlatDb::open_durable`] (or
    /// [`FlatDb::open_file`] with the same durable options).
    pub fn create_durable(store: S, options: DbOptions) -> Result<FlatDb<S>, FlatError> {
        assert_ne!(
            options.durability,
            Durability::Off,
            "create_durable needs a durability mode (see DbOptions::durability)"
        );
        let mut durable = DurableStore::create(store)?;
        let initial = DbSnapshot {
            last_seq: 0,
            built: false,
            index: FlatIndex::empty(options.index.layout),
            delta: None,
        };
        durable.checkpoint(&initial.encode())?;
        let pool = VersionedPool::new(DbStore::Durable(Box::new(durable)), options.pool_pages);
        let state = DbIndex::Base(Arc::new(FlatIndex::empty(options.index.layout)));
        Ok(Self::assemble(pool, state, options, false, false, 1))
    }

    /// Opens a durable database left by a previous session — or a crash:
    /// recovers the last committed checkpoint (redoing its dirty-page
    /// write-back), rebuilds the resident index state from the recovered
    /// pages, and replays every committed writer batch logged after the
    /// checkpoint. The result is query-equivalent to the state after the
    /// last batch whose commit reached the log; a torn or corrupt log
    /// tail (a crash mid-append) is truncated, never replayed.
    ///
    /// As with [`FlatDb::open`], the file does not record the tiling
    /// domain: pass the same `options.index.domain` the database was
    /// created with whenever the log may hold updates or the session
    /// will write.
    pub fn open_durable(
        store: S,
        mut options: DbOptions,
    ) -> Result<(FlatDb<S>, RecoveryReport), FlatError> {
        assert_ne!(
            options.durability,
            Durability::Off,
            "open_durable needs a durability mode (see DbOptions::durability)"
        );
        let (durable, log) = DurableStore::open(store)?;
        let snapshot = DbSnapshot::decode(&log.snapshot)?;
        options.index.layout = snapshot.index.layout();
        let pool = VersionedPool::new(DbStore::Durable(Box::new(durable)), options.pool_pages);
        let state = match snapshot.delta {
            None => DbIndex::Base(Arc::new(snapshot.index)),
            Some((meta_pages, tombstones)) => {
                let tombstones: Tombstones = tombstones
                    .into_iter()
                    .map(|(page, slot)| (PageId(page), slot))
                    .collect();
                DbIndex::Delta(Arc::new(DeltaIndex::reopen(
                    &pool,
                    snapshot.index,
                    options.index,
                    meta_pages,
                    tombstones,
                )?))
            }
        };
        // Uncompacted mutations survive a checkpoint on its pages; the
        // dirty flag must survive with them so persist() still compacts.
        let dirty = match &state {
            DbIndex::Base(_) => false,
            DbIndex::Delta(delta) => {
                delta.num_delta_partitions() > 0
                    || delta.num_tombstones() > 0
                    || (delta.num_live_partitions() as u64) < delta.base().num_object_pages()
            }
        };
        let mut db = Self::assemble(
            pool,
            state,
            options,
            snapshot.built,
            dirty,
            snapshot.last_seq + 1,
        );
        // Replay the committed batches past the checkpoint — applying
        // them directly, *without* re-logging: the records are already
        // in the log, so a crash during recovery just recovers again.
        let mut replayed = 0usize;
        for payload in &log.logical {
            let (seq, op) = decode_logical(payload)?;
            let expected = db.truth_mut().next_seq;
            if seq != expected {
                return Err(FlatError::Persist(format!(
                    "log replay expected batch {expected}, found {seq}"
                )));
            }
            db.replay(op)?;
            db.truth_mut().next_seq = seq + 1;
            replayed += 1;
        }
        db.truth_mut().batches_since_ckpt = replayed;
        db.publish_current();
        let report = RecoveryReport {
            last_committed_seq: db.truth_mut().next_seq - 1,
            replayed,
            torn_tail_truncated: log.torn_truncated,
        };
        Ok((db, report))
    }

    /// Applies one recovered logical record, promoting to a delta index
    /// first if the checkpoint predates the first writer. Recovery runs
    /// exclusively (no snapshot exists yet), so it applies through the
    /// pool's plain, non-versioned write path.
    fn replay(&mut self, op: LogicalOp) -> Result<(), FlatError> {
        let truth = self.truth.get_mut().unwrap_or_else(|e| e.into_inner());
        if let DbIndex::Base(base) = &truth.state {
            if self.options.index.domain.is_none() {
                return Err(FlatError::Update(
                    "replaying logged updates needs the build-time tiling domain: \
                     set FlatOptions::domain (see DbOptions::updatable)"
                        .into(),
                ));
            }
            let delta = DeltaIndex::new(&self.pool, (**base).clone(), self.options.index)?;
            truth.state = DbIndex::Delta(Arc::new(delta));
            truth.built = true;
        }
        let DbIndex::Delta(delta) = &mut truth.state else {
            unreachable!("promoted above")
        };
        let delta = Arc::make_mut(delta);
        match op {
            LogicalOp::Insert(entries) => {
                delta.insert_batch(&mut self.pool, entries)?;
                truth.dirty = true;
            }
            LogicalOp::Delete(ids) => {
                if delta.delete_batch(&mut self.pool, &ids)? > 0 {
                    truth.dirty = true;
                }
            }
            LogicalOp::Compact => {
                delta.compact(&mut self.pool)?;
                truth.dirty = false;
            }
        }
        Ok(())
    }

    /// Adopts an already-built index whose descriptor page is
    /// `descriptor` (written by [`FlatIndex::save`] or a previous
    /// [`FlatDb::persist`]).
    ///
    /// The stored layout overrides `options.index.layout` — the pages on
    /// disk are the source of truth. The descriptor does **not** record
    /// the tiling domain, so for a database you intend to write into,
    /// `options.index.domain` must be the same domain the index was
    /// built with: the delta layer STR-tiles every insert batch (and the
    /// compaction rebuild) over this domain, and a different one would
    /// silently produce a differently-tiled index than the one
    /// persisted. Read-only sessions may pass any options.
    pub fn open(
        store: S,
        descriptor: PageId,
        mut options: DbOptions,
    ) -> Result<FlatDb<S>, FlatError> {
        if options.durability != Durability::Off {
            return Err(FlatError::Persist(
                "a descriptor-page store is plain-format; durable databases are \
                 opened with FlatDb::open_durable"
                    .into(),
            ));
        }
        let pool = VersionedPool::new(DbStore::Plain(store), options.pool_pages);
        let index = FlatIndex::load(&pool, descriptor)?;
        options.index.layout = index.layout();
        let state = DbIndex::Base(Arc::new(index));
        Ok(Self::assemble(pool, state, options, true, false, 1))
    }

    /// Bulk-loads the database from `entries`, auto-selecting the build
    /// path: inputs within [`DbOptions::memory_budget`] use the in-memory
    /// bulkload, larger ones stream through the out-of-core
    /// [`FlatIndexBuilder`] with that budget. Both paths produce
    /// bit-identical pages.
    ///
    /// A database can be built once; building into a non-empty database
    /// is an error (open a fresh one instead).
    pub fn build_from(&mut self, entries: Vec<Entry>) -> Result<BuildReport, FlatError> {
        self.check_buildable()?;
        if entries.len() > self.options.memory_budget {
            return self.stream_build(entries);
        }
        let (index, stats) = FlatIndex::build(&mut self.pool, entries, self.options.index)?;
        self.adopt_built(index)?;
        Ok(BuildReport {
            stats,
            streaming: None,
        })
    }

    /// Bulk-loads the database from an entry *stream*, always through the
    /// out-of-core pipeline (see [`FlatIndexBuilder`]) — for inputs that
    /// never exist as a `Vec`, e.g. a chunked dataset generator.
    pub fn build_streaming(
        &mut self,
        entries: impl IntoIterator<Item = Entry>,
    ) -> Result<BuildReport, FlatError> {
        self.check_buildable()?;
        self.stream_build(entries)
    }

    fn check_buildable(&self) -> Result<(), FlatError> {
        if lock_unpoisoned(&self.truth).built {
            return Err(FlatError::Build(
                "database already holds an index; create a fresh database to rebuild".into(),
            ));
        }
        Ok(())
    }

    fn stream_build(
        &mut self,
        entries: impl IntoIterator<Item = Entry>,
    ) -> Result<BuildReport, FlatError> {
        let (index, stats, streaming) = FlatIndexBuilder::new(self.options.index)
            .spill_budget(self.options.memory_budget)
            .build(&mut self.pool, entries)?;
        self.adopt_built(index)?;
        Ok(BuildReport {
            stats,
            streaming: Some(streaming),
        })
    }

    /// Installs a freshly built index as truth, publishes it, and (in
    /// durable mode) rebases the log onto the built pages.
    fn adopt_built(&mut self, index: FlatIndex) -> Result<(), FlatError> {
        {
            let truth = self.truth_mut();
            truth.state = DbIndex::Base(Arc::new(index));
            truth.built = true;
        }
        self.publish_current();
        self.rebase_after_build()
    }

    /// Durable mode: folds the freshly built pages onto the backing store
    /// and starts a new log generation. A build only ever runs over the
    /// initial (empty) checkpoint — `check_buildable` refuses anything
    /// else — so the previous durable snapshot references none of the
    /// pages being written back, which is exactly the precondition of the
    /// cheap rebase checkpoint (no page images ahead of the write-back).
    fn rebase_after_build(&mut self) -> Result<(), FlatError> {
        if self.options.durability == Durability::Off {
            return Ok(());
        }
        let snapshot = Self::snapshot_bytes(self.truth_mut());
        let result = self.with_durable(|d| d.checkpoint_rebase(&snapshot));
        if let Err(e) = result {
            self.truth_mut().poisoned = true;
            return Err(e.into());
        }
        self.truth_mut().batches_since_ckpt = 0;
        Ok(())
    }

    /// A read handle for serial queries, pinned to the current epoch:
    /// the snapshot observes the database exactly as of this call — a
    /// concurrent [`FlatDb::writer`] batch committing later is invisible
    /// to it, and a batch in flight right now is invisible too (its
    /// copy-on-write overlay serves this pin the pre-batch page bytes).
    /// Snapshots borrow the database shared, so any number can be out at
    /// once, on any number of threads, and none of them ever waits for a
    /// writer's apply phase.
    pub fn reader(&self) -> Snapshot<'_, S> {
        // Pinning under the published read lock pairs the epoch with the
        // resident tables: a writer swaps both under the write lock.
        let published = read_unpoisoned(&self.published);
        let pin = self.pool.pin();
        let resident = published.clone();
        drop(published);
        Snapshot {
            db: self,
            resident,
            pin,
        }
    }

    /// Registers a continuous range query: returns its handle plus the
    /// baseline result (ids intersecting `range` right now, ascending).
    ///
    /// From then on every committed writer batch appends exactly one
    /// [`QueryDelta`] — the batch's net `+id`/`−id` effect on the
    /// result, stamped with the publish epoch — retrievable with
    /// [`FlatDb::poll_changes`]. Baseline and stream tile the commit
    /// history exactly: registration runs under the publish lock, so no
    /// batch can fall in between or be double-counted.
    pub fn subscribe(&self, range: Aabb) -> Result<(ContinuousQueryId, Vec<u64>), FlatError> {
        // Shared publish lock: blocks the writer's publish (not its
        // page apply) for the duration of the baseline query.
        let published = read_unpoisoned(&self.published);
        let pin = self.pool.pin();
        let resident = published.clone();
        let snapshot = Snapshot {
            db: self,
            resident,
            pin,
        };
        let mut baseline: Vec<u64> = snapshot.range(&range)?.into_iter().map(|h| h.id).collect();
        baseline.sort_unstable();
        let id = lock_unpoisoned(&self.subscriptions).register(range, baseline.iter().copied());
        drop(published);
        Ok((id, baseline))
    }

    /// Drains the undelivered [`QueryDelta`]s of a subscription, oldest
    /// first — one per batch committed since the last poll (empty
    /// deltas included, so the epoch trail is gap-free).
    pub fn poll_changes(&self, id: ContinuousQueryId) -> Result<Vec<QueryDelta>, FlatError> {
        lock_unpoisoned(&self.subscriptions)
            .poll(id)
            .ok_or_else(|| FlatError::Query(format!("unknown continuous query {id:?}")))
    }

    /// The subscription's current result set, ascending: the baseline
    /// plus every committed delta (including ones not yet polled).
    pub fn continuous_result(&self, id: ContinuousQueryId) -> Result<Vec<u64>, FlatError> {
        lock_unpoisoned(&self.subscriptions)
            .result(id)
            .ok_or_else(|| FlatError::Query(format!("unknown continuous query {id:?}")))
    }

    /// Drops a subscription; delivery stops immediately. `false` if the
    /// handle was unknown (already dropped).
    pub fn unsubscribe(&self, id: ContinuousQueryId) -> bool {
        lock_unpoisoned(&self.subscriptions).unregister(id)
    }

    /// Starts a fluent batched query: accumulate range and kNN queries,
    /// tune readahead, then run the batch through the [`QueryEngine`].
    pub fn query(&self) -> QueryBuilder<'_, S> {
        QueryBuilder {
            db: self,
            config: self.options.engine,
            ranges: Vec::new(),
            knns: Vec::new(),
        }
    }

    /// A write session. The truth mutex serializes writers — a second
    /// call blocks until the first session drops — but snapshots are
    /// never blocked: they keep reading the published state while the
    /// writer's batches apply, and flip to the new state only at each
    /// batch's atomic publish.
    ///
    /// The first writer promotes the pristine index to a [`DeltaIndex`]
    /// (a one-time resident-table scan); this requires the database to
    /// have stable element ids ([`LeafLayout::WithIds`]) and a fixed
    /// domain — see [`DbOptions::updatable`].
    pub fn writer(&self) -> Result<Writer<'_, S>, FlatError> {
        if self.options.index.layout != LeafLayout::WithIds {
            return Err(FlatError::Update(
                "updates need stable element ids: build with LeafLayout::WithIds \
                 (see DbOptions::updatable)"
                    .into(),
            ));
        }
        if self.options.index.domain.is_none() {
            return Err(FlatError::Update(
                "updates need a fixed tiling domain: set FlatOptions::domain \
                 (see DbOptions::updatable)"
                    .into(),
            ));
        }
        let mut truth = lock_unpoisoned(&self.truth);
        if let DbIndex::Base(base) = &truth.state {
            // Holding the truth mutex means no batch is in flight, so
            // the pool's latest view is stable for the promotion scan.
            let delta = DeltaIndex::new(&self.pool, (**base).clone(), self.options.index)?;
            truth.state = DbIndex::Delta(Arc::new(delta));
            truth.built = true; // a delta-only database counts as built
                                // Promotion rewrites no page, so publishing it needs no
                                // epoch bump: pinned snapshots keep their Base resident.
            *write_unpoisoned(&self.published) = truth.state.clone();
        }
        Ok(Writer { db: self, truth })
    }

    /// Persists the database to a file that [`FlatDb::open_file`] can
    /// open: every live page, id-for-id, with the index descriptor
    /// appended as the last page.
    ///
    /// Uncompacted writer mutations are folded away first (tombstones and
    /// delta summaries live in memory, so a dirty index is compacted —
    /// producing the same pages as a fresh bulkload over the survivors —
    /// before the copy). Returns the descriptor's page id.
    pub fn persist<P: AsRef<Path>>(&mut self, path: P) -> Result<PageId, FlatError> {
        if self.truth_mut().dirty {
            if matches!(self.truth_mut().state, DbIndex::Delta(_)) {
                // The fold-away is a writer batch like any other (in
                // durable mode a crash mid-persist replays it).
                self.writer()?.compact()?;
            } else {
                self.truth_mut().dirty = false;
            }
        }
        // Exclusive access proves no snapshot is pinned: execute the
        // deferred page frees so the copy skips truly-free pages.
        self.pool.reclaim_all();
        let src = self.pool.store_guard();
        let mut dst = FileStore::create(path)?;
        let free: HashSet<u64> = src.free_pages().iter().map(|p| p.0).collect();
        let mut page = Page::new();
        for id in 0..src.num_pages() {
            let copied = dst.alloc()?;
            debug_assert_eq!(copied.0, id, "fresh FileStore allocates densely");
            if free.contains(&id) {
                continue; // freed pages stay zeroed in the copy
            }
            src.read_page(PageId(id), &mut page)?;
            dst.write_page(copied, &page)?;
        }
        drop(src);
        // The descriptor goes last — that is where open_file looks.
        let mut descriptor_pool = BufferPool::new(dst, 16);
        let descriptor = self.index().save(&mut descriptor_pool)?;
        Ok(descriptor)
    }

    /// Checkpoints the write-ahead log: every dirty page is logged as a
    /// page image, a checkpoint record commits the batch, the pages are
    /// written back to the backing store and the log is truncated to a
    /// fresh generation. Recovery cost drops to zero replayed batches;
    /// [`Durability::WalCheckpoint`] runs this automatically.
    ///
    /// Errors with [`FlatError::Update`] when the database is not
    /// durable.
    pub fn checkpoint(&mut self) -> Result<(), FlatError> {
        if self.options.durability == Durability::Off {
            return Err(FlatError::Update(
                "checkpointing needs a durable database (see DbOptions::durability)".into(),
            ));
        }
        let mut truth = lock_unpoisoned(&self.truth);
        self.checkpoint_locked(&mut truth)
    }

    /// Checkpoint body, under the truth mutex (callers guarantee
    /// durability is on). Safe with snapshots pinned: the write-back
    /// rewrites pages with byte-identical content (the overlay images
    /// were logged from those very pages), so every pinned epoch reads
    /// the same bytes before and after.
    fn checkpoint_locked(&self, truth: &mut DbTruth) -> Result<(), FlatError> {
        Self::check_writable(truth)?;
        let snapshot = Self::snapshot_bytes(truth);
        let result = self.with_durable(|d| d.checkpoint(&snapshot));
        if let Err(e) = result {
            truth.poisoned = true;
            return Err(e.into());
        }
        truth.batches_since_ckpt = 0;
        Ok(())
    }

    /// Runs `f` on the durable wrapper (callers guarantee durability is
    /// on), under the store's write lock. Only log appends, headers and
    /// checkpoints go through here — never query-path pages, which
    /// belong to the pool's versioned read/write protocol.
    fn with_durable<R>(&self, f: impl FnOnce(&mut DurableStore<S>) -> R) -> R {
        self.pool.with_store_mut(|s| {
            f(s.durable_mut()
                .expect("durability on implies a durable store"))
        })
    }

    /// Encodes the checkpoint snapshot of the truth state.
    fn snapshot_bytes(truth: &DbTruth) -> Vec<u8> {
        let delta = match &truth.state {
            DbIndex::Base(_) => None,
            DbIndex::Delta(delta) => {
                let mut tombstones: Vec<(u64, u16)> = delta
                    .tombstones()
                    .iter()
                    .map(|&(page, slot)| (page.0, slot))
                    .collect();
                tombstones.sort_unstable();
                Some((delta.meta_page_list().to_vec(), tombstones))
            }
        };
        DbSnapshot {
            last_seq: truth.next_seq - 1,
            built: truth.built,
            index: truth.state.base().clone(),
            delta,
        }
        .encode()
    }

    /// Refuses writes after a failed commit.
    fn check_writable(truth: &DbTruth) -> Result<(), FlatError> {
        if truth.poisoned {
            return Err(FlatError::Update(
                "a writer batch failed between commit and publish, so the \
                 resident state may disagree with the log or pages; reopen \
                 the database to recover"
                    .into(),
            ));
        }
        Ok(())
    }

    /// Commits `ops` to the write-ahead log ahead of applying them — the
    /// atomic commit point of a durable writer batch. Consecutive records
    /// coalesce into **one** log append and one sync (group commit): the
    /// frames share WAL pages, and the descending write-back order makes
    /// the whole group durable — or none of it. A no-op with durability
    /// off.
    fn log_ops(&self, truth: &mut DbTruth, ops: &[&LogicalOp]) -> Result<(), FlatError> {
        if self.options.durability == Durability::Off {
            return Ok(());
        }
        let payloads: Vec<Vec<u8>> = ops
            .iter()
            .enumerate()
            .map(|(i, op)| encode_logical(truth.next_seq + i as u64, op))
            .collect();
        let result = self.with_durable(|d| d.append_records(&payloads));
        if let Err(e) = result {
            // The in-memory log tail may now disagree with the store.
            truth.poisoned = true;
            return Err(e.into());
        }
        truth.next_seq += ops.len() as u64;
        Ok(())
    }

    /// Post-batch bookkeeping: counts the committed batches and runs the
    /// automatic checkpoint cadence.
    fn after_commit(&self, truth: &mut DbTruth, batches: usize) -> Result<(), FlatError> {
        if self.options.durability == Durability::Off {
            return Ok(());
        }
        truth.batches_since_ckpt += batches;
        if let Durability::WalCheckpoint { every_batches } = self.options.durability {
            if truth.batches_since_ckpt >= every_batches.max(1) {
                self.checkpoint_locked(truth)?;
            }
        }
        Ok(())
    }

    /// The index descriptor (the delta layer's base when a writer has
    /// been opened), as currently published.
    pub fn index(&self) -> Arc<FlatIndex> {
        match &*read_unpoisoned(&self.published) {
            DbIndex::Base(index) => Arc::clone(index),
            DbIndex::Delta(delta) => Arc::new(delta.base().clone()),
        }
    }

    /// The published delta layer, once a writer has promoted the index.
    pub fn delta(&self) -> Option<Arc<DeltaIndex>> {
        match &*read_unpoisoned(&self.published) {
            DbIndex::Base(_) => None,
            DbIndex::Delta(delta) => Some(Arc::clone(delta)),
        }
    }

    /// Live (non-deleted) elements, as currently published.
    pub fn num_live_elements(&self) -> u64 {
        read_unpoisoned(&self.published).num_live_elements()
    }

    /// `true` once the database holds an index (built, opened, or written
    /// into).
    pub fn is_built(&self) -> bool {
        lock_unpoisoned(&self.truth).built
    }

    /// The current publish epoch: bumps by one at every committed writer
    /// batch. A [`Snapshot`] records the epoch it pinned.
    pub fn epoch(&self) -> u64 {
        self.pool.epoch()
    }

    /// Page-versioning counters of the owned pool: pinned readers,
    /// retained (not yet reclaimed) batch overlays, cumulative
    /// copy-on-write page captures, and deferred frees.
    pub fn version_stats(&self) -> VersionStats {
        self.pool.version_stats()
    }

    /// Runs the delta layer's structural invariant checker against the
    /// session pool: symmetric neighbor links, MBR containment, no freed
    /// page reachable from a crawl. Returns `Ok(None)` while no writer
    /// has promoted the index (a pristine bulkload has nothing to check).
    /// Takes the writer lock, so the latest view it checks is stable.
    pub fn check_invariants(&self) -> Result<Option<DeltaReport>, String> {
        let truth = lock_unpoisoned(&self.truth);
        match &truth.state {
            DbIndex::Base(_) => Ok(None),
            DbIndex::Delta(delta) => delta
                .check_invariants(&self.pool, &self.pool.with_store(|s| s.free_pages()))
                .map(Some),
        }
    }

    /// The session's configuration.
    pub fn options(&self) -> &DbOptions {
        &self.options
    }

    /// The backing page store (behind the durable wrapper, if any — so a
    /// durable session's store view does **not** include uncheckpointed
    /// overlay pages). Returns a read-guard that dereferences to the
    /// store; a concurrent writer's page flushes briefly block on it.
    pub fn store(&self) -> StoreRef<'_, S> {
        StoreRef(self.pool.store_guard())
    }

    /// Unwraps the database into its backing store, executing any
    /// deferred page frees first. For a durable database this drops any
    /// uncheckpointed overlay — deliberately the same state a crash
    /// would leave, which the fault-injection tests lean on; call
    /// [`FlatDb::checkpoint`] first to keep everything.
    pub fn into_store(self) -> S {
        self.pool.into_store().into_backing()
    }

    /// Cumulative I/O statistics of the owned pool.
    pub fn io_stats(&self) -> IoStats {
        self.pool.cache().stats()
    }

    /// Drops every cached page (the paper's cold-cache protocol).
    pub fn clear_cache(&self) {
        self.pool.cache().clear_cache()
    }

    /// Zeroes the I/O statistics.
    pub fn reset_stats(&self) {
        self.pool.cache().reset_stats()
    }
}

/// A borrowed view of the backing store (see [`FlatDb::store`]): a read
/// guard on the store lock that dereferences to the store itself.
pub struct StoreRef<'a, S: PageStore>(RwLockReadGuard<'a, DbStore<S>>);

impl<S: PageStore> Deref for StoreRef<'_, S> {
    type Target = S;

    fn deref(&self) -> &S {
        self.0.backing()
    }
}

impl<S: PageStore + std::fmt::Debug> std::fmt::Debug for StoreRef<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "StoreRef({:?})", &**self)
    }
}

/// A serial read handle over a [`FlatDb`], pinned to one epoch.
///
/// The snapshot owns a clone of the resident state published at pin
/// time and an [`EpochPin`] on the versioned pool, so every page it
/// reads is the byte image that epoch saw — a concurrent writer batch
/// copy-on-writes around it. Dropping the snapshot releases the pin
/// (unblocking version reclamation); cloning one re-pins the same
/// epoch.
///
/// Results are identical to calling the underlying index directly:
/// range queries route to [`FlatIndex::range_query`] (or the
/// tombstone-aware [`DeltaIndex::range_query`] once a writer exists) and
/// kNN to the matching `knn_query`.
pub struct Snapshot<'db, S: PageStore> {
    db: &'db FlatDb<S>,
    resident: DbIndex,
    pin: EpochPin<'db, DbStore<S>>,
}

impl<S: PageStore> Clone for Snapshot<'_, S> {
    fn clone(&self) -> Self {
        Snapshot {
            db: self.db,
            resident: self.resident.clone(),
            pin: self.pin.clone(),
        }
    }
}

impl<S: PageStore> Snapshot<'_, S> {
    /// The epoch this snapshot pinned: it observes exactly the batches
    /// published before that epoch, none after.
    pub fn epoch(&self) -> u64 {
        self.pin.epoch()
    }

    /// Every live element whose MBR intersects `query`.
    pub fn range(&self, query: &Aabb) -> Result<Vec<Hit>, FlatError> {
        let mut stats = QueryStats::default();
        self.range_with_stats(query, &mut stats)
    }

    /// Like [`Snapshot::range`], accumulating crawl counters.
    pub fn range_with_stats(
        &self,
        query: &Aabb,
        stats: &mut QueryStats,
    ) -> Result<Vec<Hit>, FlatError> {
        Ok(match &self.resident {
            DbIndex::Base(index) => index.range_query_with_stats(&self.pin, query, stats)?,
            DbIndex::Delta(delta) => delta.range_query_with_stats(&self.pin, query, stats)?,
        })
    }

    /// The `k` live elements nearest to `point`, ascending, exact.
    pub fn knn(&self, point: Point3, k: usize) -> Result<Vec<Neighbor>, FlatError> {
        let mut stats = KnnStats::default();
        self.knn_with_stats(point, k, &mut stats)
    }

    /// Like [`Snapshot::knn`], accumulating expansion counters.
    pub fn knn_with_stats(
        &self,
        point: Point3,
        k: usize,
        stats: &mut KnnStats,
    ) -> Result<Vec<Neighbor>, FlatError> {
        Ok(match &self.resident {
            DbIndex::Base(index) => index.knn_query_with_stats(&self.pin, point, k, stats)?,
            DbIndex::Delta(delta) => delta.knn_query_with_stats(&self.pin, point, k, stats)?,
        })
    }

    /// Cumulative I/O statistics of the database's pool, including the
    /// prefetch-effectiveness split: of all prefetched pages,
    /// [`IoStats::total_prefetch_hits`] were used by a later demand read,
    /// [`IoStats::total_prefetched_unused`] were not, and — within the
    /// unused — [`IoStats::total_prefetch_evicted`] were already evicted
    /// before anything touched them (pure waste: a physical read whose
    /// page never served anyone).
    pub fn stats(&self) -> IoStats {
        self.db.io_stats()
    }

    /// The index descriptor this snapshot reads (the resident state
    /// pinned at snapshot creation, not the latest published one).
    pub fn index(&self) -> &FlatIndex {
        self.resident.base()
    }

    /// Live elements visible to this snapshot.
    pub fn num_live_elements(&self) -> u64 {
        self.resident.num_live_elements()
    }

    /// Counts the live elements intersecting `query` without
    /// materializing them — partitions fully contained in the query box
    /// take the containment early-exit (see [`AggregateStats`]).
    pub fn aggregate_count(&self, query: &Aabb) -> Result<u64, FlatError> {
        let mut stats = AggregateStats::default();
        self.aggregate_count_with_stats(query, &mut stats)
    }

    /// Like [`Snapshot::aggregate_count`], accumulating crawl counters.
    pub fn aggregate_count_with_stats(
        &self,
        query: &Aabb,
        stats: &mut AggregateStats,
    ) -> Result<u64, FlatError> {
        Ok(match &self.resident {
            DbIndex::Base(index) => index.aggregate_count_with_stats(&self.pin, query, stats)?,
            DbIndex::Delta(delta) => delta.aggregate_count_with_stats(&self.pin, query, stats)?,
        })
    }

    /// Live elements intersecting `query` per unit volume (0.0 for a
    /// degenerate box).
    pub fn aggregate_density(&self, query: &Aabb) -> Result<f64, FlatError> {
        Ok(match &self.resident {
            DbIndex::Base(index) => index.aggregate_density(&self.pin, query)?,
            DbIndex::Delta(delta) => delta.aggregate_density(&self.pin, query)?,
        })
    }

    /// Joins this snapshot (outer side) with another database's
    /// snapshot (inner side): every `(outer id, inner id)` element pair
    /// within Euclidean distance `eps`, via [`JoinEngine`]'s link-graph
    /// co-crawl. Both sides are pinned, so a concurrent writer on
    /// either database cannot shear the result.
    pub fn join<S2: PageStore>(
        &self,
        other: &Snapshot<'_, S2>,
        eps: f64,
    ) -> Result<JoinResult, FlatError> {
        let outer = match &self.resident {
            DbIndex::Base(index) => JoinInput::Flat(index),
            DbIndex::Delta(delta) => JoinInput::Delta(delta),
        };
        let inner = match &other.resident {
            DbIndex::Base(index) => JoinInput::Flat(index),
            DbIndex::Delta(delta) => JoinInput::Delta(delta),
        };
        Ok(JoinEngine::new(eps).join(&self.pin, outer, &other.pin, inner)?)
    }
}

/// A fluent batched query over a [`FlatDb`].
///
/// Accumulates range and/or kNN queries, then executes them through the
/// batched [`QueryEngine`] — per-batch page cache, wave-scheduled crawl
/// turns, crawl-ahead readahead — with per-query results identical to the
/// serial [`Snapshot`] paths.
pub struct QueryBuilder<'db, S: PageStore> {
    db: &'db FlatDb<S>,
    config: EngineConfig,
    ranges: Vec<Aabb>,
    knns: Vec<(Point3, usize)>,
}

impl<S: PageStore> QueryBuilder<'_, S> {
    /// Queues one range query.
    pub fn range(mut self, query: Aabb) -> Self {
        self.ranges.push(query);
        self
    }

    /// Queues a batch of range queries.
    pub fn ranges(mut self, queries: impl IntoIterator<Item = Aabb>) -> Self {
        self.ranges.extend(queries);
        self
    }

    /// Queues one kNN query.
    pub fn knn(mut self, point: Point3, k: usize) -> Self {
        self.knns.push((point, k));
        self
    }

    /// Queues a batch of kNN queries.
    pub fn knns(mut self, queries: impl IntoIterator<Item = (Point3, usize)>) -> Self {
        self.knns.extend(queries);
        self
    }

    /// Sets the readahead depth (worker threads serving crawl-ahead
    /// prefetch hints; `0` disables prefetching but keeps the batch page
    /// cache).
    pub fn readahead(mut self, threads: usize) -> Self {
        self.config.readahead_threads = threads;
        self
    }

    /// Bounds how many queries crawl concurrently (see
    /// [`EngineConfig::wave_size`]).
    pub fn wave_size(mut self, wave: usize) -> Self {
        self.config.wave_size = Some(wave);
        self
    }

    /// Runs the queued **range** queries as aggregate counts, one
    /// result per queued range in queueing order. Aggregates skip
    /// result materialization and take the containment early-exit, so
    /// they run serially over one pinned [`Snapshot`] rather than
    /// through the batched engine.
    pub fn run_aggregates(self) -> Result<Vec<u64>, FlatError> {
        if !self.knns.is_empty() {
            return Err(FlatError::Query(
                "kNN queries are queued; aggregates take ranges only".into(),
            ));
        }
        let snap = self.db.reader();
        self.ranges
            .iter()
            .map(|range| snap.aggregate_count(range))
            .collect()
    }
}

impl<S: PageStore + Send + Sync> QueryBuilder<'_, S> {
    /// Runs the queued **range** queries as one batch. Results are
    /// index-aligned with the queueing order and identical to serial
    /// evaluation. The batch runs over one pinned [`Snapshot`], so a
    /// concurrent writer cannot shear it: every query in the batch sees
    /// the same epoch.
    pub fn run_batch(self) -> Result<BatchOutcome, FlatError> {
        if !self.knns.is_empty() {
            return Err(FlatError::Query(
                "kNN queries are queued; run them with run_knn_batch".into(),
            ));
        }
        let snap = self.db.reader();
        let before = self.db.io_stats();
        let mut outcome = match &snap.resident {
            DbIndex::Base(index) => QueryEngine::with_config(index, &snap.pin, self.config)
                .run_range_batch(&self.ranges)?,
            DbIndex::Delta(delta) => {
                QueryEngine::for_delta_with_config(delta, &snap.pin, self.config)
                    .run_range_batch(&self.ranges)?
            }
        };
        outcome.io = self.db.io_stats().since(&before);
        Ok(outcome)
    }

    /// Runs the queued **kNN** queries as one batch.
    pub fn run_knn_batch(self) -> Result<KnnBatchOutcome, FlatError> {
        if !self.ranges.is_empty() {
            return Err(FlatError::Query(
                "range queries are queued; run them with run_batch".into(),
            ));
        }
        let snap = self.db.reader();
        let before = self.db.io_stats();
        let mut outcome = match &snap.resident {
            DbIndex::Base(index) => {
                QueryEngine::with_config(index, &snap.pin, self.config).run_knn_batch(&self.knns)?
            }
            DbIndex::Delta(delta) => {
                QueryEngine::for_delta_with_config(delta, &snap.pin, self.config)
                    .run_knn_batch(&self.knns)?
            }
        };
        outcome.io = self.db.io_stats().since(&before);
        Ok(outcome)
    }
}

/// One logical mutation for [`Writer::apply`].
#[derive(Debug, Clone)]
pub enum WriteOp {
    /// Insert a batch of new elements (ids must not be live).
    Insert(Vec<Entry>),
    /// Delete elements by application id.
    Delete(Vec<u64>),
}

/// A write session over a [`FlatDb`].
///
/// Holding a writer holds the truth mutex, so writer sessions serialize
/// against each other — but **snapshots never block**: each batch
/// applies behind the published state (copy-on-write at both the page
/// and the resident-table level) and flips into view atomically when it
/// commits. No snapshot or query can observe a half-applied batch.
pub struct Writer<'db, S: PageStore> {
    db: &'db FlatDb<S>,
    truth: MutexGuard<'db, DbTruth>,
}

impl<S: PageStore> Writer<'_, S> {
    /// Inserts a batch of new elements (see [`DeltaIndex::insert_batch`]).
    ///
    /// Unlike the low-level call, colliding application ids are reported
    /// as a [`FlatError::Update`] instead of a panic.
    pub fn insert(&mut self, entries: Vec<Entry>) -> Result<(), FlatError> {
        self.commit(vec![LogicalOp::Insert(entries)]).map(|_| ())
    }

    /// Deletes elements by application id, returning how many were live
    /// (see [`DeltaIndex::delete_batch`]).
    pub fn delete(&mut self, ids: &[u64]) -> Result<usize, FlatError> {
        if ids.is_empty() {
            return Ok(0);
        }
        let applied = self.commit(vec![LogicalOp::Delete(ids.to_vec())])?;
        Ok(applied[0])
    }

    /// Applies a *group* of mutations as one commit: one coalesced
    /// write-ahead-log append (one sync), one copy-on-write page batch,
    /// and one atomic publish — snapshots see all of the group's ops or
    /// none of them. Returns, per op, how many elements it applied to
    /// (inserted entries, or deleted live elements).
    ///
    /// Validation is group-aware and runs before the commit point: an
    /// insert may re-use an id deleted *earlier in the same group*, and
    /// a rejected group reaches neither the log nor the pages.
    pub fn apply(&mut self, ops: Vec<WriteOp>) -> Result<Vec<usize>, FlatError> {
        let ops: Vec<LogicalOp> = ops
            .into_iter()
            .map(|op| match op {
                WriteOp::Insert(entries) => LogicalOp::Insert(entries),
                WriteOp::Delete(ids) => LogicalOp::Delete(ids),
            })
            .collect();
        self.commit(ops)
    }

    /// Merges all deltas back into a pristine bulkload — pages
    /// byte-identical to a fresh build over the surviving elements (see
    /// [`DeltaIndex::compact`]). Like every writer batch, the rebuild is
    /// invisible to concurrent snapshots until its atomic publish.
    pub fn compact(&mut self) -> Result<BuildStats, FlatError> {
        let db = self.db;
        let truth = &mut *self.truth;
        FlatDb::<S>::check_writable(truth)?;
        db.log_ops(truth, &[&LogicalOp::Compact])?;
        let mut batch = db.pool.begin_batch();
        let result = {
            let DbIndex::Delta(delta) = &mut truth.state else {
                unreachable!("writer() promoted the index")
            };
            Arc::make_mut(delta).compact(&mut batch)
        };
        let stats = match result {
            Ok(stats) => stats,
            Err(e) => {
                // The aborted batch's overlay keeps pinned and future
                // snapshots on the pre-batch bytes; refusing further
                // writes keeps it that way.
                truth.poisoned = true;
                return Err(e.into());
            }
        };
        {
            let mut published = write_unpoisoned(&db.published);
            let epoch = batch.publish();
            *published = truth.state.clone();
            // Compaction preserves the live set: every subscriber gets
            // one empty delta marking the epoch.
            lock_unpoisoned(&db.subscriptions).apply_batch(&[StagedOp::Compact], epoch);
        }
        truth.dirty = false;
        db.after_commit(truth, 1)?;
        Ok(stats)
    }

    /// The commit path shared by every mutation: validate → log (group
    /// commit) → apply into one copy-on-write batch → publish
    /// atomically → checkpoint cadence.
    fn commit(&mut self, ops: Vec<LogicalOp>) -> Result<Vec<usize>, FlatError> {
        let db = self.db;
        let truth = &mut *self.truth;
        FlatDb::<S>::check_writable(truth)?;
        {
            // Validate *before* the commit point: a rejected group must
            // reach neither the log nor the pages.
            let DbIndex::Delta(delta) = &truth.state else {
                unreachable!("writer() promoted the index")
            };
            validate_ops(delta, &ops)?;
        }
        // Empty ops commit nothing: they are not logged (replay would be
        // a no-op) and count as zero applied elements.
        let loggable: Vec<&LogicalOp> = ops
            .iter()
            .filter(|op| match op {
                LogicalOp::Insert(entries) => !entries.is_empty(),
                LogicalOp::Delete(ids) => !ids.is_empty(),
                LogicalOp::Compact => true,
            })
            .collect();
        if loggable.is_empty() {
            return Ok(vec![0; ops.len()]);
        }
        let logged = loggable.len();
        db.log_ops(truth, &loggable)?;
        // Owned copy of the group for subscription matching: the apply
        // loop below consumes `ops`, but continuous queries are folded
        // in later, inside the publish critical section.
        let staged = stage_ops(&ops);
        // Apply the whole group into ONE page batch: pinned snapshots
        // keep reading the pre-group images from its overlay.
        let mut batch = db.pool.begin_batch();
        let mut made_dirty = false;
        let result: Result<Vec<usize>, FlatError> = (|| {
            let DbIndex::Delta(delta) = &mut truth.state else {
                unreachable!("writer() promoted the index")
            };
            let delta = Arc::make_mut(delta);
            let mut applied = Vec::with_capacity(ops.len());
            for op in ops {
                applied.push(match op {
                    LogicalOp::Insert(entries) if entries.is_empty() => 0,
                    LogicalOp::Insert(entries) => {
                        let n = entries.len();
                        delta.insert_batch(&mut batch, entries)?;
                        made_dirty = true;
                        n
                    }
                    LogicalOp::Delete(ids) if ids.is_empty() => 0,
                    LogicalOp::Delete(ids) => {
                        let deleted = delta.delete_batch(&mut batch, &ids)?;
                        if deleted > 0 {
                            made_dirty = true;
                        }
                        deleted
                    }
                    LogicalOp::Compact => {
                        delta.compact(&mut batch)?;
                        0
                    }
                });
            }
            Ok(applied)
        })();
        let applied = match result {
            Ok(applied) => applied,
            Err(e) => {
                // Dropping the unpublished batch keeps every snapshot —
                // pinned or future — on the pre-group bytes; refusing
                // further writes keeps the half-applied latest view from
                // ever being published.
                truth.poisoned = true;
                return Err(e);
            }
        };
        // The atomic publish: epoch bump and resident swap under one
        // write lock, paired with the pin-under-read-lock in reader().
        // Subscriptions are folded in under the same lock, so a
        // registration (which runs under the read lock) either sees the
        // pre-batch baseline and receives this delta, or the post-batch
        // baseline and does not — never both, never neither.
        {
            let mut published = write_unpoisoned(&db.published);
            let epoch = batch.publish();
            *published = truth.state.clone();
            lock_unpoisoned(&db.subscriptions).apply_batch(&staged, epoch);
        }
        if made_dirty {
            truth.dirty = true;
        }
        db.after_commit(truth, logged)?;
        Ok(applied)
    }

    /// Registers a continuous range query mid-session (see
    /// [`FlatDb::subscribe`]); batches this writer commits from now on
    /// stream to it.
    pub fn subscribe(&self, range: Aabb) -> Result<(ContinuousQueryId, Vec<u64>), FlatError> {
        self.db.subscribe(range)
    }

    /// Drains a subscription's undelivered deltas (see
    /// [`FlatDb::poll_changes`]).
    pub fn poll_changes(&self, id: ContinuousQueryId) -> Result<Vec<QueryDelta>, FlatError> {
        self.db.poll_changes(id)
    }

    /// The delta layer this writer mutates (its truth copy — published
    /// snapshots may still be behind it until the next commit).
    pub fn delta(&self) -> &DeltaIndex {
        match &self.truth.state {
            DbIndex::Delta(delta) => delta,
            DbIndex::Base(_) => unreachable!("writer() promoted the index"),
        }
    }
}

/// Resident copy of a commit group for subscription matching: ids and
/// MBRs only, owned, in group order.
fn stage_ops(ops: &[LogicalOp]) -> Vec<StagedOp> {
    ops.iter()
        .map(|op| match op {
            LogicalOp::Insert(entries) => {
                StagedOp::Insert(entries.iter().map(|e| (e.id, e.mbr)).collect())
            }
            LogicalOp::Delete(ids) => StagedOp::Delete(ids.clone()),
            LogicalOp::Compact => StagedOp::Compact,
        })
        .collect()
}

/// Group-aware pre-commit validation: walks the ops in order, tracking
/// ids the group has inserted or deleted so far, and rejects an insert
/// of an id that would be live at that point in the sequence.
fn validate_ops(delta: &DeltaIndex, ops: &[LogicalOp]) -> Result<(), FlatError> {
    let mut added: HashSet<u64> = HashSet::new();
    let mut removed: HashSet<u64> = HashSet::new();
    for op in ops {
        match op {
            LogicalOp::Insert(entries) => {
                for e in entries {
                    let live = added.contains(&e.id)
                        || (!removed.contains(&e.id) && delta.contains_id(e.id));
                    if live {
                        return Err(FlatError::Update(format!(
                            "insert of id {} which is already live",
                            e.id
                        )));
                    }
                    added.insert(e.id);
                    removed.remove(&e.id);
                }
            }
            LogicalOp::Delete(ids) => {
                for id in ids {
                    if !added.remove(id) {
                        removed.insert(*id);
                    }
                }
            }
            LogicalOp::Compact => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::tests::random_entries;

    fn updatable_options() -> DbOptions {
        DbOptions::updatable(Aabb::cube(Point3::splat(50.0), 110.0))
    }

    #[test]
    fn double_build_is_rejected() {
        let mut db = FlatDb::create_in_memory(DbOptions::default());
        db.build_from(random_entries(500, 1)).unwrap();
        let err = db.build_from(random_entries(500, 2)).unwrap_err();
        assert!(matches!(err, FlatError::Build(_)), "{err}");
    }

    #[test]
    fn build_auto_selects_streaming_above_the_budget() {
        let options = DbOptions::default().with_memory_budget(2_000);
        let mut db = FlatDb::create_in_memory(options);
        let report = db.build_from(random_entries(5_000, 3)).unwrap();
        assert!(report.streamed(), "5k entries over a 2k budget must stream");

        let mut db = FlatDb::create_in_memory(DbOptions::default());
        let report = db.build_from(random_entries(5_000, 3)).unwrap();
        assert!(!report.streamed(), "5k entries fit the default budget");
    }

    #[test]
    fn streamed_and_resident_builds_are_byte_identical() {
        let entries = random_entries(4_000, 4);
        let mut resident = FlatDb::create_in_memory(DbOptions::default());
        resident.build_from(entries.clone()).unwrap();
        let mut streamed = FlatDb::create_in_memory(DbOptions::default().with_memory_budget(500));
        streamed.build_from(entries).unwrap();
        let (a, b) = (resident.store(), streamed.store());
        assert_eq!(a.num_pages(), b.num_pages());
        let (mut pa, mut pb) = (Page::new(), Page::new());
        for id in 0..a.num_pages() {
            a.read_page(PageId(id), &mut pa).unwrap();
            b.read_page(PageId(id), &mut pb).unwrap();
            assert_eq!(pa.bytes(), pb.bytes(), "page {id} differs");
        }
    }

    #[test]
    fn writer_requires_ids_and_domain() {
        let mut db = FlatDb::create_in_memory(DbOptions::default());
        db.build_from(random_entries(500, 5)).unwrap();
        let err = db.writer().unwrap_err();
        assert!(matches!(err, FlatError::Update(_)), "{err}");

        let mut db = FlatDb::create_in_memory(DbOptions::default().with_index(FlatOptions {
            layout: LeafLayout::WithIds,
            ..FlatOptions::default()
        }));
        db.build_from(random_entries(500, 5)).unwrap();
        let err = db.writer().unwrap_err();
        assert!(err.to_string().contains("domain"), "{err}");
    }

    #[test]
    fn writer_promotes_once_and_rejects_duplicate_ids() {
        let mut db = FlatDb::create_in_memory(updatable_options());
        db.build_from(random_entries(2_000, 6)).unwrap();
        assert!(db.delta().is_none());
        let pages_before = db.store().num_pages();
        let free_before = db.store().free_pages();
        {
            let mut writer = db.writer().unwrap();
            // One fresh id rides along with the duplicate: the whole
            // batch must be rejected atomically.
            let err = writer
                .insert(vec![
                    Entry::new(777_777, Aabb::cube(Point3::splat(2.0), 0.5)),
                    Entry::new(0, Aabb::cube(Point3::splat(1.0), 0.5)),
                ])
                .unwrap_err();
            assert!(matches!(err, FlatError::Update(_)), "{err}");
            // A rejected batch must not have touched anything.
            assert_eq!(writer.delta().num_live_elements(), 2_000);
            assert!(!writer.delta().contains_id(777_777));
        }
        // ...including the store: no pages appended or leaked onto (or
        // off) the free list by the failed batch.
        assert_eq!(db.store().num_pages(), pages_before);
        assert_eq!(db.store().free_pages(), free_before);
        {
            let mut writer = db.writer().unwrap();
            writer
                .insert(vec![Entry::new(9_999, Aabb::cube(Point3::splat(1.0), 0.5))])
                .unwrap();
        }
        assert!(db.delta().is_some());
        assert_eq!(db.num_live_elements(), 2_001);
    }

    #[test]
    #[should_panic(expected = "create_durable")]
    fn durable_options_are_rejected_by_plain_create() {
        let options = updatable_options().with_durability(Durability::Wal);
        let _ = FlatDb::create(flat_storage::MemStore::new(), options);
    }

    #[test]
    fn checkpoint_requires_a_durable_database() {
        let mut db = FlatDb::create_in_memory(updatable_options());
        let err = db.checkpoint().unwrap_err();
        assert!(matches!(err, FlatError::Update(_)), "{err}");
    }

    #[test]
    fn durable_database_recovers_uncheckpointed_batches() {
        let options = updatable_options().with_durability(Durability::Wal);
        let entries = random_entries(1_500, 21);

        // Reference session: the same operations, durability off.
        let mut reference = FlatDb::create_in_memory(updatable_options());
        reference.build_from(entries.clone()).unwrap();

        let mut db = FlatDb::create_durable(flat_storage::MemStore::new(), options).unwrap();
        db.build_from(entries).unwrap();
        let fresh: Vec<Entry> = random_entries(300, 22)
            .into_iter()
            .map(|e| Entry::new(e.id + 1_000_000, e.mbr))
            .collect();
        let doomed: Vec<u64> = (0..1_500).filter(|i| i % 5 == 0).collect();
        for session in [&mut reference, &mut db] {
            let mut writer = session.writer().unwrap();
            writer.insert(fresh.clone()).unwrap();
            writer.delete(&doomed).unwrap();
        }

        // "Crash": drop the session without a checkpoint. The WAL pages
        // live on the backing store; the overlay is lost with the RAM.
        let store = db.into_store();
        let (recovered, report) = FlatDb::open_durable(store, options).unwrap();
        assert_eq!(report.replayed, 2, "insert + delete past the rebase");
        assert_eq!(report.last_committed_seq, 2);
        assert!(!report.torn_tail_truncated);
        assert_eq!(recovered.num_live_elements(), reference.num_live_elements());
        // The durable layout shifts page ids (header + log pages), so the
        // crawl emits hits in a different order: compare as id sets.
        let ids = |hits: Vec<flat_rtree::Hit>| {
            let mut ids: Vec<u64> = hits.iter().map(|h| h.id).collect();
            ids.sort_unstable();
            ids
        };
        for side in [8.0, 30.0, 240.0] {
            let q = Aabb::cube(Point3::splat(50.0), side);
            assert_eq!(
                ids(recovered.reader().range(&q).unwrap()),
                ids(reference.reader().range(&q).unwrap()),
                "query side {side}"
            );
        }
        let delta = recovered.delta().expect("replay promotes");
        delta
            .check_invariants(
                // The pool reads through the durable overlay.
                &recovered.pool,
                &recovered.store().free_pages(),
            )
            .unwrap_or_else(|e| panic!("invariants violated after recovery: {e}"));
    }

    #[test]
    fn durable_database_survives_a_checkpointed_shutdown() {
        let options =
            updatable_options().with_durability(Durability::WalCheckpoint { every_batches: 2 });
        let mut db = FlatDb::create_durable(flat_storage::MemStore::new(), options).unwrap();
        db.build_from(random_entries(1_000, 23)).unwrap();
        {
            let mut writer = db.writer().unwrap();
            writer
                .insert(vec![Entry::new(
                    700_000,
                    Aabb::cube(Point3::splat(9.0), 1.0),
                )])
                .unwrap();
            writer.delete(&[3, 4, 5]).unwrap(); // second batch: auto-checkpoint
        }
        let expected = db.num_live_elements();
        let q = Aabb::cube(Point3::splat(50.0), 160.0);
        let hits = db.reader().range(&q).unwrap();

        let (recovered, report) = FlatDb::open_durable(db.into_store(), options).unwrap();
        assert_eq!(report.replayed, 0, "the auto-checkpoint truncated the log");
        assert_eq!(recovered.num_live_elements(), expected);
        assert_eq!(recovered.reader().range(&q).unwrap(), hits);
        assert!(
            recovered.delta().is_some(),
            "delta state survives via the snapshot"
        );
    }

    #[test]
    fn durable_delta_only_database_recovers_from_the_initial_checkpoint() {
        let options = updatable_options().with_durability(Durability::Wal);
        let db = FlatDb::create_durable(flat_storage::MemStore::new(), options).unwrap();
        {
            let mut writer = db.writer().unwrap();
            writer
                .insert(vec![
                    Entry::new(1, Aabb::cube(Point3::splat(10.0), 1.0)),
                    Entry::new(2, Aabb::cube(Point3::splat(20.0), 1.0)),
                ])
                .unwrap();
        }
        let (recovered, report) = FlatDb::open_durable(db.into_store(), options).unwrap();
        assert_eq!(report.replayed, 1);
        assert!(recovered.is_built());
        assert_eq!(recovered.num_live_elements(), 2);
        assert_eq!(
            recovered
                .reader()
                .range(&Aabb::cube(Point3::splat(10.0), 3.0))
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn mixed_batches_must_pick_the_matching_terminal() {
        let mut db = FlatDb::create_in_memory(DbOptions::default());
        db.build_from(random_entries(1_000, 7)).unwrap();
        let err = db
            .query()
            .range(Aabb::cube(Point3::splat(50.0), 5.0))
            .knn(Point3::splat(50.0), 3)
            .run_batch()
            .unwrap_err();
        assert!(matches!(err, FlatError::Query(_)), "{err}");
        let err = db
            .query()
            .range(Aabb::cube(Point3::splat(50.0), 5.0))
            .knn(Point3::splat(50.0), 3)
            .run_knn_batch()
            .unwrap_err();
        assert!(matches!(err, FlatError::Query(_)), "{err}");
    }

    #[test]
    fn snapshot_matches_batched_results() {
        let mut db = FlatDb::create_in_memory(DbOptions::default());
        db.build_from(random_entries(20_000, 8)).unwrap();
        let queries: Vec<Aabb> = (0..12)
            .map(|i| Aabb::cube(Point3::splat(8.0 * i as f64), 6.0))
            .collect();
        let serial: Vec<Vec<Hit>> = queries
            .iter()
            .map(|q| db.reader().range(q).unwrap())
            .collect();
        let outcome = db
            .query()
            .ranges(queries.iter().copied())
            .readahead(2)
            .run_batch()
            .unwrap();
        assert_eq!(outcome.results, serial);

        let points: Vec<(Point3, usize)> = (0..6)
            .map(|i| (Point3::splat(15.0 * i as f64), 9))
            .collect();
        let serial: Vec<Vec<Neighbor>> = points
            .iter()
            .map(|&(p, k)| db.reader().knn(p, k).unwrap())
            .collect();
        let outcome = db
            .query()
            .knns(points.iter().copied())
            .run_knn_batch()
            .unwrap();
        assert_eq!(outcome.results, serial);
    }

    #[test]
    fn batch_outcomes_carry_the_pool_io_delta() {
        let mut db = FlatDb::create_in_memory(DbOptions::default());
        db.build_from(random_entries(20_000, 11)).unwrap();
        db.clear_cache();
        db.reset_stats();
        let queries: Vec<Aabb> = (0..10)
            .map(|i| Aabb::cube(Point3::splat(9.0 * i as f64), 6.0))
            .collect();
        let outcome = db
            .query()
            .ranges(queries.iter().copied())
            .readahead(2)
            .run_batch()
            .unwrap();
        // The delta covers exactly this batch: cold cache, so physical
        // reads happened, and the prefetch split is internally consistent.
        assert!(outcome.io.total_physical_reads() > 0);
        assert_eq!(
            outcome.io.total_physical_reads(),
            db.io_stats().total_physical_reads()
        );
        assert!(outcome.io.total_prefetched_unused() >= outcome.io.total_prefetch_evicted());
        assert_eq!(
            outcome.io.total_prefetch_reads(),
            outcome.io.total_prefetch_hits() + outcome.io.total_prefetched_unused()
        );
        // Snapshot::stats exposes the same cumulative counters.
        assert_eq!(
            db.reader().stats().total_physical_reads(),
            db.io_stats().total_physical_reads()
        );
        // A second identical batch over the warm cache adds no physical
        // reads but still reports its (all-logical) delta.
        let warm = db
            .query()
            .ranges(queries.iter().copied())
            .run_batch()
            .unwrap();
        assert_eq!(warm.io.total_physical_reads(), 0);
        assert!(warm.io.total_logical_reads() > 0);
    }

    #[test]
    fn fresh_database_serves_empty_results() {
        let db = FlatDb::create_in_memory(DbOptions::default());
        assert!(!db.is_built());
        let q = Aabb::cube(Point3::splat(1.0), 5.0);
        assert!(db.reader().range(&q).unwrap().is_empty());
        assert!(db.reader().knn(Point3::ORIGIN, 4).unwrap().is_empty());
        let outcome = db.query().range(q).run_batch().unwrap();
        assert!(outcome.results[0].is_empty());
    }

    #[test]
    fn writer_on_a_fresh_updatable_database_is_delta_only() {
        let mut db = FlatDb::create_in_memory(updatable_options());
        {
            let mut writer = db.writer().unwrap();
            writer
                .insert(vec![
                    Entry::new(1, Aabb::cube(Point3::splat(10.0), 1.0)),
                    Entry::new(2, Aabb::cube(Point3::splat(20.0), 1.0)),
                ])
                .unwrap();
        }
        assert!(db.is_built());
        assert_eq!(db.num_live_elements(), 2);
        let hits = db
            .reader()
            .range(&Aabb::cube(Point3::splat(10.0), 3.0))
            .unwrap();
        assert_eq!(hits.len(), 1);
        // The database is now built; a bulkload on top must be refused.
        assert!(db.build_from(random_entries(10, 9)).is_err());
    }

    #[test]
    fn persist_requires_no_mutation_to_roundtrip() {
        let dir = std::env::temp_dir().join("flat-core-db-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("clean.flatdb");
        let entries = random_entries(3_000, 10);
        let mut db = FlatDb::create_in_memory(DbOptions::default());
        db.build_from(entries.clone()).unwrap();
        db.persist(&path).unwrap();

        let reopened = FlatDb::open_file(&path, DbOptions::default()).unwrap();
        assert_eq!(reopened.num_live_elements(), entries.len() as u64);
        let q = Aabb::cube(Point3::splat(40.0), 18.0);
        assert_eq!(
            reopened.reader().range(&q).unwrap(),
            db.reader().range(&q).unwrap()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn persist_compacts_dirty_state_first() {
        let dir = std::env::temp_dir().join("flat-core-db-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dirty.flatdb");
        let mut db = FlatDb::create_in_memory(updatable_options());
        db.build_from(random_entries(2_000, 11)).unwrap();
        {
            let mut writer = db.writer().unwrap();
            writer.delete(&[0, 1, 2, 3]).unwrap();
            writer
                .insert(vec![Entry::new(
                    50_000,
                    Aabb::cube(Point3::splat(5.0), 0.5),
                )])
                .unwrap();
        }
        db.persist(&path).unwrap();
        let reopened = FlatDb::open_file(&path, updatable_options()).unwrap();
        assert_eq!(reopened.num_live_elements(), 2_000 - 4 + 1);
        // Tombstoned elements must stay gone after the round trip.
        let q = Aabb::cube(Point3::splat(50.0), 120.0);
        assert_eq!(
            reopened.reader().range(&q).unwrap().len() as u64,
            reopened.num_live_elements()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_file_rejects_an_empty_file() {
        let dir = std::env::temp_dir().join("flat-core-db-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.flatdb");
        std::fs::write(&path, b"").unwrap();
        let err = FlatDb::open_file(&path, DbOptions::default()).unwrap_err();
        assert!(matches!(err, FlatError::Persist(_)), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn continuous_query_streams_one_delta_per_commit() {
        let mut db = FlatDb::create_in_memory(updatable_options());
        db.build_from(random_entries(2_000, 21)).unwrap();
        let range = Aabb::cube(Point3::splat(50.0), 18.0);
        let (sub, baseline) = db.subscribe(range).unwrap();
        let oracle: Vec<u64> = {
            let mut ids: Vec<u64> = db
                .reader()
                .range(&range)
                .unwrap()
                .into_iter()
                .map(|h| h.id)
                .collect();
            ids.sort_unstable();
            ids
        };
        assert_eq!(baseline, oracle);

        let mut writer = db.writer().unwrap();
        // One insert inside the range, one outside, one delete inside.
        let inside = Entry::new(60_000, Aabb::cube(Point3::splat(50.0), 0.5));
        let outside = Entry::new(60_001, Aabb::cube(Point3::splat(5.0), 0.5));
        writer.insert(vec![inside, outside]).unwrap();
        let victim = baseline[0];
        writer.delete(&[victim]).unwrap();
        // A batch that nets out inside one group.
        writer
            .apply(vec![
                WriteOp::Delete(vec![60_000]),
                WriteOp::Insert(vec![Entry::new(
                    60_000,
                    Aabb::cube(Point3::splat(50.0), 0.5),
                )]),
            ])
            .unwrap();
        let deltas = writer.poll_changes(sub).unwrap();
        drop(writer);
        assert_eq!(deltas.len(), 3, "one delta per committed batch");
        assert_eq!(deltas[0].added, vec![60_000]);
        assert!(deltas[0].removed.is_empty());
        assert_eq!(deltas[1].removed, vec![victim]);
        assert!(deltas[2].is_empty(), "delete-then-reinsert nets out");
        // Epochs strictly increase batch over batch.
        assert!(deltas[0].epoch < deltas[1].epoch);
        assert!(deltas[1].epoch < deltas[2].epoch);

        // Replaying baseline + deltas reproduces a fresh range query.
        let mut replayed: HashSet<u64> = baseline.into_iter().collect();
        for d in &deltas {
            for id in &d.removed {
                assert!(replayed.remove(id));
            }
            for id in &d.added {
                assert!(replayed.insert(*id));
            }
        }
        let mut replayed: Vec<u64> = replayed.into_iter().collect();
        replayed.sort_unstable();
        let mut fresh: Vec<u64> = db
            .reader()
            .range(&range)
            .unwrap()
            .into_iter()
            .map(|h| h.id)
            .collect();
        fresh.sort_unstable();
        assert_eq!(replayed, fresh);
        assert_eq!(db.continuous_result(sub).unwrap(), fresh);

        // Compaction preserves the live set: an empty delta, epoch only.
        db.writer().unwrap().compact().unwrap();
        let deltas = db.poll_changes(sub).unwrap();
        assert_eq!(deltas.len(), 1);
        assert!(deltas[0].is_empty());

        assert!(db.unsubscribe(sub));
        assert!(!db.unsubscribe(sub));
        assert!(matches!(db.poll_changes(sub), Err(FlatError::Query(_))));
    }

    #[test]
    fn snapshot_aggregates_match_range_counts() {
        let mut db = FlatDb::create_in_memory(updatable_options());
        db.build_from(random_entries(3_000, 22)).unwrap();
        // Exercise both the pristine (Base) and the delta path.
        for promote in [false, true] {
            if promote {
                let mut writer = db.writer().unwrap();
                writer.delete(&[0, 1, 2]).unwrap();
            }
            let snap = db.reader();
            for half in [5.0, 20.0, 80.0] {
                let q = Aabb::cube(Point3::splat(50.0), half);
                assert_eq!(
                    snap.aggregate_count(&q).unwrap(),
                    snap.range(&q).unwrap().len() as u64,
                    "promote={promote} half={half}"
                );
            }
            let q = Aabb::cube(Point3::splat(50.0), 10.0);
            let density = snap.aggregate_density(&q).unwrap();
            assert!(
                (density - snap.aggregate_count(&q).unwrap() as f64 / q.volume()).abs() < 1e-12
            );
        }
        // The fluent entry point, index-aligned with queueing order.
        let queries = [
            Aabb::cube(Point3::splat(30.0), 7.0),
            Aabb::cube(Point3::splat(70.0), 12.0),
        ];
        let counts = db.query().ranges(queries).run_aggregates().unwrap();
        let snap = db.reader();
        for (q, count) in queries.iter().zip(&counts) {
            assert_eq!(*count, snap.range(q).unwrap().len() as u64);
        }
        let err = db
            .query()
            .knn(Point3::splat(50.0), 3)
            .run_aggregates()
            .unwrap_err();
        assert!(matches!(err, FlatError::Query(_)));
    }

    #[test]
    fn snapshot_join_pairs_two_databases() {
        let mut db_a = FlatDb::create_in_memory(updatable_options());
        db_a.build_from(random_entries(700, 31)).unwrap();
        let mut db_b = FlatDb::create_in_memory(updatable_options());
        let mut b_entries = random_entries(600, 32);
        // Distinct id space for readability of the oracle.
        for e in &mut b_entries {
            e.id += 100_000;
        }
        db_b.build_from(b_entries).unwrap();
        // Promote A so the join exercises the Delta input too.
        db_a.writer().unwrap().delete(&[5, 6]).unwrap();

        let eps = 1.5;
        let snap_a = db_a.reader();
        let snap_b = db_b.reader();
        let result = snap_a.join(&snap_b, eps).unwrap();

        let everything = Aabb::cube(Point3::splat(50.0), 200.0);
        let a_hits = snap_a.range(&everything).unwrap();
        let b_hits = snap_b.range(&everything).unwrap();
        let mut expected = Vec::new();
        for ha in &a_hits {
            for hb in &b_hits {
                if ha.mbr.distance_sq(&hb.mbr) <= eps * eps {
                    expected.push((ha.id, hb.id));
                }
            }
        }
        expected.sort_unstable();
        assert_eq!(result.pairs, expected);
        assert!(result.stats.pairs > 0, "eps 1.5 over [0,100)^3 must match");
    }
}
