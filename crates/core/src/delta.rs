//! Dynamic updates: [`DeltaIndex`], delta inserts/deletes over a built
//! [`FlatIndex`] with neighbor-link repair and compaction.
//!
//! The paper's FLAT is a pure bulkload: the index is built once and never
//! changes. An evolving simulation re-runs against a *churning* model —
//! each timestep moves, adds and removes elements — and rebuilding from
//! scratch per timestep is exactly the cost the bulkload was supposed to
//! amortize away. This module adds bounded, incremental mutation while
//! keeping the crawl's two invariants intact:
//!
//! * **Inserts** land in *delta partitions*: the batch is tiled over the
//!   full domain by the same STR code as the bulkload
//!   ([`crate::partition::partition`]), its object pages are appended
//!   (reusing freed pages), and its metadata records are written to fresh
//!   seed-leaf pages. Links are *stitched* both ways: new records point at
//!   every intersecting live partition, and each existing record gains a
//!   continuation chunk (spliced at the head of its chain — a same-size
//!   in-place edit) listing its new delta neighbors. Because every batch
//!   tiles the whole domain and cross-links against everything live, the
//!   crawl's connectivity argument survives: within any query box, each
//!   generation is connected through its own tiling and anchored to the
//!   others through the cross links.
//! * **Deletes** tombstone elements by physical location `(object page,
//!   slot)`; queries filter tombstones at scan time. When a partition's
//!   last live element dies the partition is *retired*: every inbound
//!   link is pruned, its former neighbors are patched into a clique (so
//!   crawl paths that crossed the dead partition reroute around it), its
//!   record is flagged dead and its object page returns to the store's
//!   free list. The clique trades link growth for crawl exactness:
//!   contiguous mass retirement lets surviving frontier partitions
//!   accumulate links quadratically in the frontier size, a cost that
//!   only `compact()` resets — churn deployments should compact once the
//!   delta fraction (or neighbor-list growth) passes a threshold rather
//!   than retire indefinitely.
//! * **Compaction** ([`DeltaIndex::compact`]) scans the surviving
//!   elements, frees every page of the old index and rebuilds through the
//!   streamed [`FlatIndexBuilder`] — producing pages **byte-identical** to
//!   a from-scratch [`FlatIndex::build`] over the survivors (the
//!   differential test `tests/update_equivalence.rs` asserts this), so a
//!   compacted index is indistinguishable from a pristine bulkload.
//!
//! The delta layer keeps a resident *summary table* (two MBRs, a record
//! address and a live-count per partition, ~120 bytes each) plus an
//! id→partition locator for the live elements. That is the memtable-style
//! price of mutability; `compact` drops all of it. Updates require
//! exclusive access (`&mut` pool — [`flat_storage::PageWrite`] is also
//! implemented by [`flat_storage::ConcurrentBufferPool`], so an updater
//! can alternate with shared readers under an `RwLock` discipline:
//! readers see pre- or post-batch pages, never a torn mix).
//!
//! Requirements: the base index must use [`LeafLayout::WithIds`] (deletes
//! address elements by application id) and a fixed explicit domain
//! ([`FlatOptions::domain`]), so that every insert batch tiles the same
//! space as the base build.

use crate::builder::FlatIndexBuilder;
use crate::index::{BuildStats, FlatIndex, FlatOptions};
use crate::knn::{KnnStats, Neighbor};
use crate::meta::{
    assign_slots, decode_meta_leaf, decode_meta_record, encode_meta_leaf, max_neighbors_per_record,
    MetaRecord, MetaRecordId, PlannedRecord,
};
use crate::neighbors::NeighborSweep;
use crate::partition::partition;
use crate::query::{is_live, CrawlHinter, CrawlState, QueryStats, Tombstones};
use flat_geom::{Aabb, Point3};
use flat_rtree::node::{decode_inner, decode_leaf, encode_leaf};
use flat_rtree::{leaf_capacity, Entry, Hit, LeafLayout};
use flat_storage::{Page, PageId, PageKind, PageRead, PageStore, PageWrite, StorageError};
use std::collections::{HashMap, HashSet};

/// Resident summary of one partition (base or delta).
#[derive(Debug, Clone)]
struct PartState {
    /// Address of the partition's primary metadata record.
    record: MetaRecordId,
    /// The partition's object page (freed once the partition retires).
    object_page: PageId,
    /// Tight MBR of the object page's elements (tombstoned included — MBRs
    /// never shrink, so they still contain every live element).
    page_mbr: Aabb,
    /// The partition MBR the neighbor relation is computed on.
    partition_mbr: Aabb,
    /// Elements on the object page that are not tombstoned.
    live: u32,
    /// `true` once retired (object page freed, record flagged dead).
    dead: bool,
}

/// What [`DeltaIndex::check_invariants`] verified, for reporting.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeltaReport {
    /// Partitions that are still live (not retired).
    pub live_partitions: usize,
    /// Retired partitions.
    pub retired_partitions: usize,
    /// Live (non-tombstoned) elements.
    pub live_elements: u64,
    /// Directed neighbor links verified (each symmetric pair counts twice).
    pub neighbor_links: u64,
}

/// A mutable FLAT index: a delta layer of inserts/deletes over a bulkloaded
/// base, query-equivalent at every point to a fresh rebuild over the
/// surviving elements. See the module docs for the mechanism.
#[derive(Debug, Clone)]
pub struct DeltaIndex {
    base: FlatIndex,
    options: FlatOptions,
    domain: Aabb,
    /// Every partition ever adopted or inserted, in creation order. The
    /// first [`DeltaIndex::base_partitions`] entries are the bulkload's.
    parts: Vec<PartState>,
    base_partitions: usize,
    /// Primary record address → index into `parts`.
    by_record: HashMap<MetaRecordId, u32>,
    /// Live application id → index into `parts`.
    locator: HashMap<u64, u32>,
    /// Deleted elements by physical location.
    tombstones: Tombstones,
    /// Seed-leaf pages: the base's metadata pages plus every delta page.
    meta_pages: Vec<PageId>,
    /// Seed-tree directory pages (base only; deltas are not in the tree).
    inner_pages: Vec<PageId>,
    live_elements: u64,
}

/// A freshly created metadata record awaiting placement on a new
/// seed-leaf page (a delta primary, one of its continuation chunks, or a
/// stitch chunk spliced into an existing chain).
struct NewRecord {
    page_mbr: Aabb,
    partition_mbr: Aabb,
    object_page: PageId,
    neighbors: Vec<NbrRef>,
    is_continuation: bool,
    /// Continuation: the record at this index in the same batch…
    next: Option<usize>,
    /// …or, for the tail of a stitch chain, the spliced record's previous
    /// continuation (the splice inserts the chain at the head).
    tail: Option<MetaRecordId>,
}

/// A neighbor pointer that may target a record not yet placed.
#[derive(Clone, Copy)]
enum NbrRef {
    /// An already-addressable record.
    Known(MetaRecordId),
    /// The primary record of new partition `j` of the current batch.
    NewPrimary(u32),
}

/// Slots are addressed as `u16` throughout the delta layer (tombstones,
/// metadata record addresses): a layout whose per-page leaf capacity does
/// not fit would silently truncate `slot as u16` and alias tombstones
/// across slots. Rejected once here, at layout-validation time, so every
/// later cast is known in-range.
fn validate_slot_capacity(capacity: usize) -> Result<(), StorageError> {
    // Slots run 0..capacity, so the largest slot index is capacity - 1.
    if capacity > u16::MAX as usize + 1 {
        return Err(StorageError::Corrupt(format!(
            "leaf capacity {capacity} exceeds the u16 slot address space \
             (max {})",
            u16::MAX as usize + 1
        )));
    }
    Ok(())
}

impl DeltaIndex {
    /// Adopts a pristine (freshly built or freshly compacted) index.
    ///
    /// Scans the metadata and object pages once to build the resident
    /// summary table and the id→partition locator.
    ///
    /// # Panics
    /// Panics if the index layout is not [`LeafLayout::WithIds`] (deletes
    /// address elements by application id), if `options.domain` is `None`
    /// (insert batches must tile the same fixed domain as the base), or if
    /// `options` disagree with the index.
    pub fn new(
        pool: &impl PageRead,
        base: FlatIndex,
        options: FlatOptions,
    ) -> Result<DeltaIndex, StorageError> {
        assert_eq!(
            base.layout(),
            LeafLayout::WithIds,
            "DeltaIndex requires the WithIds object-page layout"
        );
        assert_eq!(
            options.layout,
            base.layout(),
            "options disagree with the index"
        );
        let domain = options
            .domain
            .expect("DeltaIndex requires a fixed explicit domain");
        validate_slot_capacity(leaf_capacity(options.layout))?;

        let mut delta = DeltaIndex {
            base,
            options,
            domain,
            parts: Vec::new(),
            base_partitions: 0,
            by_record: HashMap::new(),
            locator: HashMap::new(),
            tombstones: Tombstones::new(),
            meta_pages: Vec::new(),
            inner_pages: Vec::new(),
            live_elements: 0,
        };
        delta.adopt(pool)?;
        Ok(delta)
    }

    /// Rebuilds a delta index from recovered pages: the crash-recovery
    /// counterpart of [`DeltaIndex::new`], for an index that is **not**
    /// pristine (it may hold delta partitions, tombstones and retired
    /// records).
    ///
    /// `meta_pages` must be the metadata pages in their original creation
    /// order (the base's sorted leaves first, then every delta page in
    /// allocation order) — the checkpoint snapshot records exactly that
    /// list. Scanning them in order, slot by slot and skipping
    /// continuation chunks, reproduces the original partition numbering:
    /// the bulkload adopts primaries in sorted-leaf order, and every
    /// insert batch lays its primaries onto fresh pages in batch order
    /// before any stitch chunk.
    pub(crate) fn reopen(
        pool: &impl PageRead,
        base: FlatIndex,
        options: FlatOptions,
        meta_pages: Vec<PageId>,
        tombstones: Tombstones,
    ) -> Result<DeltaIndex, StorageError> {
        assert_eq!(
            base.layout(),
            LeafLayout::WithIds,
            "DeltaIndex requires the WithIds object-page layout"
        );
        assert_eq!(
            options.layout,
            base.layout(),
            "options disagree with the index"
        );
        let domain = options
            .domain
            .expect("DeltaIndex requires a fixed explicit domain");
        validate_slot_capacity(leaf_capacity(options.layout))?;

        let mut delta = DeltaIndex {
            base,
            options,
            domain,
            parts: Vec::new(),
            base_partitions: 0,
            by_record: HashMap::new(),
            locator: HashMap::new(),
            tombstones,
            meta_pages: Vec::new(),
            inner_pages: Vec::new(),
            live_elements: 0,
        };

        // Seed-tree directory pages come from the tree itself.
        if let Some(root) = delta.base.seed_root {
            let mut stack = vec![(root, delta.base.seed_height)];
            while let Some((pid, level)) = stack.pop() {
                if level > 1 {
                    delta.inner_pages.push(pid);
                    let page = pool.read_page(pid, PageKind::SeedInner)?;
                    for child in decode_inner(&page)? {
                        stack.push((child.page, level - 1));
                    }
                }
            }
        }

        // Scan the metadata pages in creation order; every primary (dead
        // ones included — they keep their partition number) becomes a
        // resident summary entry.
        let base_meta = delta.base.num_meta_pages as usize;
        if meta_pages.len() < base_meta {
            return Err(StorageError::Corrupt(format!(
                "snapshot lists {} metadata pages, the base descriptor needs {base_meta}",
                meta_pages.len()
            )));
        }
        for (page_seq, &pid) in meta_pages.iter().enumerate() {
            let page = pool.read_page(pid, PageKind::SeedLeaf)?;
            for (slot, record) in decode_meta_leaf(&page)?.into_iter().enumerate() {
                if record.is_continuation {
                    continue;
                }
                let addr = MetaRecordId {
                    page: pid,
                    slot: slot as u16,
                };
                let idx = delta.parts.len() as u32;
                delta.by_record.insert(addr, idx);
                delta.parts.push(PartState {
                    record: addr,
                    object_page: record.object_page,
                    page_mbr: record.page_mbr,
                    partition_mbr: record.partition_mbr,
                    live: 0,
                    dead: record.is_dead,
                });
                if page_seq < base_meta {
                    delta.base_partitions += 1;
                }
            }
        }
        delta.meta_pages = meta_pages;

        // Object-page scan over the live partitions: live counts and the
        // id locator, with the recovered tombstones filtered out.
        for idx in 0..delta.parts.len() {
            if delta.parts[idx].dead {
                continue;
            }
            let object_page = delta.parts[idx].object_page;
            let page = pool.read_page(object_page, PageKind::ObjectPage)?;
            let (_, entries) = decode_leaf(&page)?;
            let mut live = 0u32;
            for (slot, e) in entries.iter().enumerate() {
                if !is_live(Some(&delta.tombstones), object_page, slot) {
                    continue;
                }
                live += 1;
                if delta.locator.insert(e.id, idx as u32).is_some() {
                    return Err(StorageError::Corrupt(format!(
                        "recovered index holds id {} twice",
                        e.id
                    )));
                }
            }
            delta.parts[idx].live = live;
            delta.live_elements += live as u64;
        }
        Ok(delta)
    }

    /// Scans the base index into the resident tables.
    fn adopt(&mut self, pool: &impl PageRead) -> Result<(), StorageError> {
        let Some(root) = self.base.seed_root else {
            return Ok(()); // empty base: delta-only from here on
        };
        // Walk the seed tree, separating directory pages from leaves.
        let mut stack = vec![(root, self.base.seed_height)];
        let mut leaves = Vec::new();
        while let Some((pid, level)) = stack.pop() {
            if level == 1 {
                leaves.push(pid);
            } else {
                self.inner_pages.push(pid);
                let page = pool.read_page(pid, PageKind::SeedInner)?;
                for child in decode_inner(&page)? {
                    stack.push((child.page, level - 1));
                }
            }
        }
        leaves.sort_unstable();
        for &pid in &leaves {
            let page = pool.read_page(pid, PageKind::SeedLeaf)?;
            for (slot, record) in decode_meta_leaf(&page)?.into_iter().enumerate() {
                if record.is_continuation {
                    continue;
                }
                debug_assert!(!record.is_dead, "adopting a non-pristine index");
                let addr = MetaRecordId {
                    page: pid,
                    slot: slot as u16,
                };
                let idx = self.parts.len() as u32;
                self.by_record.insert(addr, idx);
                self.parts.push(PartState {
                    record: addr,
                    object_page: record.object_page,
                    page_mbr: record.page_mbr,
                    partition_mbr: record.partition_mbr,
                    live: 0,
                    dead: false,
                });
            }
        }
        self.meta_pages = leaves;
        self.base_partitions = self.parts.len();
        // Object-page scan: live counts and the id locator.
        for idx in 0..self.parts.len() {
            let page = pool.read_page(self.parts[idx].object_page, PageKind::ObjectPage)?;
            let (_, entries) = decode_leaf(&page)?;
            self.parts[idx].live = entries.len() as u32;
            self.live_elements += entries.len() as u64;
            for e in &entries {
                let clash = self.locator.insert(e.id, idx as u32);
                assert!(clash.is_none(), "duplicate application id {}", e.id);
            }
        }
        Ok(())
    }

    /// The base index descriptor (the crawl machinery runs on it).
    pub fn base(&self) -> &FlatIndex {
        &self.base
    }

    /// The deleted-element set, for the crawl's scan filter.
    pub(crate) fn tombstones(&self) -> &Tombstones {
        &self.tombstones
    }

    /// Resident live-element count of the partition whose primary record
    /// is at `addr` (`None` for continuation chunks or unknown records).
    /// The aggregate crawl's containment early-exit reads this instead of
    /// the object page.
    pub(crate) fn live_count_at(&self, addr: MetaRecordId) -> Option<u64> {
        self.by_record
            .get(&addr)
            .map(|&idx| self.parts[idx as usize].live as u64)
    }

    /// Resident summaries of every live partition (base and delta), for
    /// the join engine's outer sweep.
    pub(crate) fn partition_summaries(&self) -> Vec<crate::join::PartSummary> {
        self.parts
            .iter()
            .filter(|p| !p.dead)
            .map(|p| crate::join::PartSummary {
                object_page: p.object_page,
                page_mbr: p.page_mbr,
            })
            .collect()
    }

    /// The metadata pages in creation order — what a checkpoint snapshot
    /// must record for [`DeltaIndex::reopen`] to reproduce the partition
    /// numbering.
    pub(crate) fn meta_page_list(&self) -> &[PageId] {
        &self.meta_pages
    }

    /// Live (non-tombstoned) elements.
    pub fn num_live_elements(&self) -> u64 {
        self.live_elements
    }

    /// Whether application id `id` names a live element (deleted ids may
    /// be reused by later inserts).
    pub fn contains_id(&self, id: u64) -> bool {
        self.locator.contains_key(&id)
    }

    /// Tombstoned elements awaiting compaction.
    pub fn num_tombstones(&self) -> u64 {
        self.tombstones.len() as u64
    }

    /// Live partitions inserted since the last bulkload/compaction.
    pub fn num_delta_partitions(&self) -> usize {
        self.parts[self.base_partitions..]
            .iter()
            .filter(|p| !p.dead)
            .count()
    }

    /// All live partitions (base + delta).
    pub fn num_live_partitions(&self) -> usize {
        self.parts.iter().filter(|p| !p.dead).count()
    }

    /// Seed-leaf (metadata) pages, the base's plus every delta page.
    pub fn num_meta_pages(&self) -> u64 {
        self.meta_pages.len() as u64
    }

    /// Seed-tree directory pages (base only — delta records are reached
    /// through stitched links, not the tree).
    pub fn num_seed_inner_pages(&self) -> u64 {
        self.inner_pages.len() as u64
    }

    /// Share of live partitions that live outside the bulkloaded base —
    /// the "delta fraction" the update benchmark sweeps.
    pub fn delta_fraction(&self) -> f64 {
        let live = self.num_live_partitions();
        if live == 0 {
            0.0
        } else {
            self.num_delta_partitions() as f64 / live as f64
        }
    }

    // ------------------------------------------------------------------
    // Inserts
    // ------------------------------------------------------------------

    /// Inserts a batch of new elements.
    ///
    /// The batch is STR-tiled over the domain into delta partitions whose
    /// object pages and metadata records are appended (reusing freed
    /// pages); neighbor links against everything live are computed by the
    /// plane-sweep [`NeighborSweep`] and stitched both ways (existing
    /// records gain spliced continuation chunks).
    ///
    /// # Panics
    /// Panics if an entry's id collides with a live element's id (ids of
    /// deleted elements may be reused).
    pub fn insert_batch<P: PageRead + PageWrite>(
        &mut self,
        pool: &mut P,
        entries: Vec<Entry>,
    ) -> Result<(), StorageError> {
        if entries.is_empty() {
            return Ok(());
        }
        let capacity = leaf_capacity(self.options.layout);
        {
            let mut batch_ids = HashSet::with_capacity(entries.len());
            for e in &entries {
                assert!(
                    !self.locator.contains_key(&e.id) && batch_ids.insert(e.id),
                    "insert of id {} which is already live",
                    e.id
                );
            }
        }

        // 1. Tile the batch over the full domain (same STR code as the
        //    bulkload) and write its object pages.
        let mut new_parts = partition(entries, capacity, Some(self.domain));
        if self.options.partition_volume_scale > 1.0 {
            for p in &mut new_parts {
                p.partition_mbr = p
                    .partition_mbr
                    .scale_volume(self.options.partition_volume_scale);
            }
        }
        let mut page = Page::new();
        let mut object_ids = Vec::with_capacity(new_parts.len());
        for p in &new_parts {
            encode_leaf(&p.elements, self.options.layout, &mut page);
            let id = pool.alloc()?;
            pool.write(id, &page, PageKind::ObjectPage)?;
            object_ids.push(id);
        }

        // 2. Plane-sweep the batch against every live partition. Existing
        //    partitions keep their global index (< E); the batch occupies
        //    E..E+new. Only pairs involving a new partition matter — links
        //    among existing partitions are already on disk.
        let e_count = self.parts.len() as u32;
        let mut items: Vec<(u32, Aabb, Aabb)> = self
            .parts
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.dead)
            .map(|(i, p)| (i as u32, p.page_mbr, p.partition_mbr))
            .collect();
        items.extend(
            new_parts
                .iter()
                .enumerate()
                .map(|(j, p)| (e_count + j as u32, p.page_mbr, p.partition_mbr)),
        );
        items.sort_by(|a, b| a.2.min.x.total_cmp(&b.2.min.x).then(a.0.cmp(&b.0)));
        // The boundary makes the sweep skip existing×existing pairs —
        // those links are already on disk — so a small batch over a big
        // index pays for the new partitions' overlaps, not a full re-join.
        let mut sweep = NeighborSweep::with_existing_boundary(e_count);
        let mut retired = Vec::new();
        for (idx, page_mbr, partition_mbr) in items {
            sweep.push(idx, page_mbr, partition_mbr, &mut retired);
        }
        sweep.finish(&mut retired);
        let mut new_nbrs: Vec<Vec<u32>> = vec![Vec::new(); new_parts.len()];
        let mut stitched: Vec<(u32, Vec<u32>)> = Vec::new();
        for r in retired {
            if r.index >= e_count {
                new_nbrs[(r.index - e_count) as usize] = r.neighbors;
            } else if !r.neighbors.is_empty() {
                // Under the boundary, an existing partition's list holds
                // exactly its new cross links.
                stitched.push((r.index, r.neighbors));
            }
        }
        stitched.sort_by_key(|&(i, _)| i); // deterministic page layout

        // 3. Lay out the new metadata records: delta primaries (chunked if
        //    over-full) first, then the stitch chunks for existing records.
        let max = max_neighbors_per_record();
        let mut records: Vec<NewRecord> = Vec::new();
        let mut primary_of: Vec<usize> = Vec::with_capacity(new_parts.len());
        let addr_of_global = |i: u32| -> NbrRef {
            if i >= e_count {
                NbrRef::NewPrimary(i - e_count)
            } else {
                NbrRef::Known(self.parts[i as usize].record)
            }
        };
        for (j, p) in new_parts.iter().enumerate() {
            primary_of.push(records.len());
            push_chunks(
                &mut records,
                new_nbrs[j].iter().map(|&i| addr_of_global(i)),
                new_nbrs[j].len(),
                max,
                p.page_mbr,
                p.partition_mbr,
                object_ids[j],
                false,
                None,
            );
        }
        // Stitch chunks: read the spliced records' current continuations
        // first — the new chain head must point at the old chain.
        let mut splices: Vec<(MetaRecordId, usize)> = Vec::with_capacity(stitched.len());
        for (i, added) in &stitched {
            let part = &self.parts[*i as usize];
            let old_cont = {
                let page = pool.read_page(part.record.page, PageKind::SeedLeaf)?;
                decode_meta_record(&page, part.record.slot)?.continuation
            };
            splices.push((part.record, records.len()));
            push_chunks(
                &mut records,
                added.iter().map(|&g| addr_of_global(g)),
                added.len(),
                max,
                part.page_mbr,
                part.partition_mbr,
                part.object_page,
                true,
                old_cont,
            );
        }

        // 4. Write the new pages and splice the stitch chains in.
        let addrs = self.write_new_records(pool, &records, &primary_of)?;
        for (record, head) in splices {
            edit_record(pool, record, |r| r.continuation = Some(addrs[head]))?;
        }

        // 5. Adopt the batch into the resident tables.
        for (j, p) in new_parts.into_iter().enumerate() {
            let idx = self.parts.len() as u32;
            let addr = addrs[primary_of[j]];
            self.by_record.insert(addr, idx);
            for e in &p.elements {
                self.locator.insert(e.id, idx);
            }
            self.live_elements += p.elements.len() as u64;
            self.parts.push(PartState {
                record: addr,
                object_page: object_ids[j],
                page_mbr: p.page_mbr,
                partition_mbr: p.partition_mbr,
                live: p.elements.len() as u32,
                dead: false,
            });
        }
        Ok(())
    }

    /// Assigns slots for `records`, allocates the needed seed-leaf pages,
    /// resolves cross references and writes the pages. Returns the address
    /// of each record.
    fn write_new_records<P: PageRead + PageWrite>(
        &mut self,
        pool: &mut P,
        records: &[NewRecord],
        primary_of: &[usize],
    ) -> Result<Vec<MetaRecordId>, StorageError> {
        if records.is_empty() {
            return Ok(Vec::new());
        }
        let plan: Vec<PlannedRecord> = records
            .iter()
            .enumerate()
            .map(|(i, r)| PlannedRecord {
                partition: i,
                start: 0,
                len: r.neighbors.len(),
                primary: !r.is_continuation,
            })
            .collect();
        let slots = assign_slots(&plan);
        let num_pages = slots.last().expect("records is non-empty").0 + 1;
        let mut page_ids = Vec::with_capacity(num_pages);
        for _ in 0..num_pages {
            let id = pool.alloc()?;
            self.meta_pages.push(id);
            page_ids.push(id);
        }
        let addrs: Vec<MetaRecordId> = slots
            .iter()
            .map(|&(seq, slot)| MetaRecordId {
                page: page_ids[seq],
                slot,
            })
            .collect();
        let resolve = |n: &NbrRef| match *n {
            NbrRef::Known(a) => a,
            NbrRef::NewPrimary(j) => addrs[primary_of[j as usize]],
        };
        let mut page = Page::new();
        let mut at = 0usize;
        for (seq, &page_id) in page_ids.iter().enumerate() {
            let mut out = Vec::new();
            while at < records.len() && slots[at].0 == seq {
                let r = &records[at];
                out.push(MetaRecord {
                    page_mbr: r.page_mbr,
                    partition_mbr: r.partition_mbr,
                    object_page: r.object_page,
                    neighbors: r.neighbors.iter().map(resolve).collect(),
                    continuation: r.next.map(|n| addrs[n]).or(r.tail),
                    is_continuation: r.is_continuation,
                    is_dead: false,
                });
                at += 1;
            }
            encode_meta_leaf(&out, &mut page);
            pool.write(page_id, &page, PageKind::SeedLeaf)?;
        }
        debug_assert_eq!(at, records.len());
        Ok(addrs)
    }

    // ------------------------------------------------------------------
    // Deletes
    // ------------------------------------------------------------------

    /// Deletes elements by application id, returning how many were live.
    ///
    /// Deleted elements are tombstoned (queries filter them at scan time);
    /// a partition whose last live element dies is retired — inbound links
    /// pruned, its neighbors patched into a clique so crawls reroute
    /// around it, its record flagged dead and its object page freed.
    pub fn delete_batch<P: PageRead + PageWrite>(
        &mut self,
        pool: &mut P,
        ids: &[u64],
    ) -> Result<usize, StorageError> {
        let mut by_part: HashMap<u32, Vec<u64>> = HashMap::new();
        for &id in ids {
            if let Some(idx) = self.locator.remove(&id) {
                by_part.entry(idx).or_default().push(id);
            }
        }
        let mut deleted = 0usize;
        let mut newly_dead: Vec<u32> = Vec::new();
        for (&idx, dead_ids) in &by_part {
            let part = &self.parts[idx as usize];
            let page = pool.read_page(part.object_page, PageKind::ObjectPage)?;
            let (_, entries) = decode_leaf(&page)?;
            let wanted: HashSet<u64> = dead_ids.iter().copied().collect();
            for (slot, e) in entries.iter().enumerate() {
                if wanted.contains(&e.id) && self.tombstones.insert((part.object_page, slot as u16))
                {
                    deleted += 1;
                }
            }
            let part = &mut self.parts[idx as usize];
            part.live -= dead_ids.len() as u32;
            self.live_elements -= dead_ids.len() as u64;
            if part.live == 0 {
                newly_dead.push(idx);
            }
        }
        newly_dead.sort_unstable(); // deterministic retirement order
        for idx in newly_dead {
            self.retire(pool, idx)?;
        }
        Ok(deleted)
    }

    /// Retires partition `d`: prunes every link to it, patches its former
    /// neighbors into a clique, flags its record dead and frees its object
    /// page. See the module docs for why the clique keeps the crawl
    /// exhaustive.
    fn retire<P: PageRead + PageWrite>(
        &mut self,
        pool: &mut P,
        d: u32,
    ) -> Result<(), StorageError> {
        let d_rec = self.parts[d as usize].record;
        let d_nbrs = read_chain_neighbors(pool, d_rec)?;
        // Resolve neighbors to partition indices and collect each one's
        // full link set (for the clique check).
        let mut nbr_idx: Vec<u32> = Vec::with_capacity(d_nbrs.len());
        let mut link_sets: HashMap<u32, HashSet<MetaRecordId>> = HashMap::new();
        for addr in &d_nbrs {
            let &idx = self
                .by_record
                .get(addr)
                .expect("neighbor pointer to an unknown record");
            if self.parts[idx as usize].dead {
                // Retirement prunes every inbound link before flagging a
                // record dead, so a link into a dead partition means the
                // graph and the summary table disagree. A debug_assert here
                // would let release builds crawl into freed pages.
                return Err(StorageError::Corrupt(format!(
                    "neighbor chain of {:?} links to dead partition {idx}",
                    d_rec
                )));
            }
            nbr_idx.push(idx);
            let links = read_chain_neighbors(pool, *addr)?;
            link_sets.insert(idx, links.into_iter().collect());
        }
        nbr_idx.sort_unstable();

        // Prune the dead partition out of each neighbor's chain.
        for &a in &nbr_idx {
            remove_neighbor(pool, self.parts[a as usize].record, d_rec)?;
        }

        // Clique repair: every pair of former neighbors that is not
        // already linked gets a (symmetric) link, so crawl paths that
        // crossed `d` reroute through a direct edge.
        let max = max_neighbors_per_record();
        let mut records: Vec<NewRecord> = Vec::new();
        let mut splices: Vec<(MetaRecordId, usize)> = Vec::new();
        for &a in &nbr_idx {
            let a_rec = self.parts[a as usize].record;
            let missing: Vec<NbrRef> = nbr_idx
                .iter()
                .filter(|&&b| b != a && !link_sets[&a].contains(&self.parts[b as usize].record))
                .map(|&b| NbrRef::Known(self.parts[b as usize].record))
                .collect();
            if missing.is_empty() {
                continue;
            }
            let part = &self.parts[a as usize];
            let old_cont = {
                let page = pool.read_page(a_rec.page, PageKind::SeedLeaf)?;
                decode_meta_record(&page, a_rec.slot)?.continuation
            };
            splices.push((a_rec, records.len()));
            let count = missing.len();
            push_chunks(
                &mut records,
                missing.into_iter(),
                count,
                max,
                part.page_mbr,
                part.partition_mbr,
                part.object_page,
                true,
                old_cont,
            );
        }
        let addrs = self.write_new_records(pool, &records, &[])?;
        for (record, head) in splices {
            edit_record(pool, record, |r| r.continuation = Some(addrs[head]))?;
        }

        // Flag the record dead and drop its chain; free the object page.
        edit_record(pool, d_rec, |r| {
            r.neighbors.clear();
            r.continuation = None;
            r.is_dead = true;
        })?;
        let obj = self.parts[d as usize].object_page;
        pool.free(obj)?;
        // The page id may be reused by a later insert: stale tombstones
        // keyed to it would silently delete the new tenants. Slots are
        // bounded by the page capacity, so the purge is O(capacity), not
        // O(total tombstones).
        for slot in 0..leaf_capacity(self.options.layout) as u16 {
            self.tombstones.remove(&(obj, slot));
        }
        self.parts[d as usize].dead = true;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Compaction
    // ------------------------------------------------------------------

    /// Merges all deltas into a pristine base: scans the surviving
    /// elements, frees every page of the old index and rebuilds through
    /// the streamed [`FlatIndexBuilder`]. The resulting pages are
    /// byte-identical to a from-scratch [`FlatIndex::build`] over the
    /// survivors when the pool holds only this index's pages (the freed
    /// ids then form a dense prefix that the rebuild reuses in order).
    pub fn compact<P: PageRead + PageWrite>(
        &mut self,
        pool: &mut P,
    ) -> Result<BuildStats, StorageError> {
        // 1. Surviving elements, partition by partition.
        let mut survivors: Vec<Entry> = Vec::with_capacity(self.live_elements as usize);
        for part in self.parts.iter().filter(|p| !p.dead) {
            let page = pool.read_page(part.object_page, PageKind::ObjectPage)?;
            let (_, entries) = decode_leaf(&page)?;
            survivors.extend(
                entries
                    .iter()
                    .enumerate()
                    .filter(|&(slot, _)| is_live(Some(&self.tombstones), part.object_page, slot))
                    .map(|(_, e)| *e),
            );
        }
        // 2. Free the old index wholesale.
        for part in self.parts.iter().filter(|p| !p.dead) {
            pool.free(part.object_page)?;
        }
        for &pid in self.meta_pages.iter().chain(self.inner_pages.iter()) {
            pool.free(pid)?;
        }
        // 3. Rebuild through the streamed pipeline (bit-identical to the
        //    in-memory bulkload by construction).
        let (index, stats, _) = FlatIndexBuilder::new(self.options).build(pool, survivors)?;
        // 4. Re-adopt: the delta layer is empty again.
        *self = DeltaIndex::new(&*pool, index, self.options)?;
        Ok(stats)
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Evaluates a range query over the live elements — exactly the set a
    /// fresh rebuild over the survivors would return.
    pub fn range_query(
        &self,
        pool: &impl PageRead,
        query: &Aabb,
    ) -> Result<Vec<Hit>, StorageError> {
        let mut stats = QueryStats::default();
        self.range_query_with_stats(pool, query, &mut stats)
    }

    /// Like [`DeltaIndex::range_query`], accumulating counters.
    pub fn range_query_with_stats(
        &self,
        pool: &impl PageRead,
        query: &Aabb,
        stats: &mut QueryStats,
    ) -> Result<Vec<Hit>, StorageError> {
        let mut hits = Vec::new();
        let Some(seed) = self.seed(pool, query, stats, None)? else {
            return Ok(hits);
        };
        let mut state = CrawlState::start(seed);
        while !self.base.crawl_step(
            pool,
            query,
            &mut state,
            stats,
            &mut hits,
            None,
            Some(&self.tombstones),
        )? {}
        stats.result_count = hits.len() as u64;
        Ok(hits)
    }

    /// Delta-aware seed: the base seed-tree walk (tombstone-filtered, dead
    /// records skipped) with a fallback scan over the resident delta
    /// summaries — delta partitions are not indexed by the base tree.
    pub(crate) fn seed(
        &self,
        pool: &impl PageRead,
        query: &Aabb,
        stats: &mut QueryStats,
        hinter: Option<&dyn CrawlHinter>,
    ) -> Result<Option<MetaRecordId>, StorageError> {
        let t = Some(&self.tombstones);
        if let Some(seed) = self.base.seed(pool, query, stats, hinter, t)? {
            return Ok(Some(seed));
        }
        for part in &self.parts[self.base_partitions..] {
            if part.dead {
                continue;
            }
            stats.mbr_tests += 1;
            if !part.page_mbr.intersects(query) {
                continue;
            }
            stats.object_pages_read += 1;
            let found = {
                let page = pool.read_page(part.object_page, PageKind::ObjectPage)?;
                let (_, entries) = decode_leaf(&page)?;
                stats.mbr_tests += entries.len() as u64;
                entries
                    .iter()
                    .enumerate()
                    .any(|(s, e)| is_live(t, part.object_page, s) && query.intersects(&e.mbr))
            };
            if found {
                return Ok(Some(part.record));
            }
            stats.seed_probe_pages += 1;
        }
        Ok(None)
    }

    /// Returns the `k` live elements nearest to `point`, exactly as a
    /// fresh rebuild over the survivors would.
    pub fn knn_query(
        &self,
        pool: &impl PageRead,
        point: Point3,
        k: usize,
    ) -> Result<Vec<Neighbor>, StorageError> {
        let mut stats = KnnStats::default();
        self.knn_query_with_stats(pool, point, k, &mut stats)
    }

    /// Like [`DeltaIndex::knn_query`], accumulating counters.
    pub fn knn_query_with_stats(
        &self,
        pool: &impl PageRead,
        point: Point3,
        k: usize,
        stats: &mut KnnStats,
    ) -> Result<Vec<Neighbor>, StorageError> {
        self.knn(pool, point, k, stats, None)
    }

    pub(crate) fn knn_with_hinter(
        &self,
        pool: &impl PageRead,
        point: Point3,
        k: usize,
        hinter: Option<&dyn CrawlHinter>,
    ) -> Result<Vec<Neighbor>, StorageError> {
        let mut stats = KnnStats::default();
        self.knn(pool, point, k, &mut stats, hinter)
    }

    fn knn(
        &self,
        pool: &impl PageRead,
        point: Point3,
        k: usize,
        stats: &mut KnnStats,
        hinter: Option<&dyn CrawlHinter>,
    ) -> Result<Vec<Neighbor>, StorageError> {
        if k == 0 {
            return Ok(Vec::new());
        }
        let Some(seed) = self.knn_seed(pool, point)? else {
            return Ok(Vec::new());
        };
        self.base.knn(
            pool,
            point,
            k,
            stats,
            hinter,
            Some(seed),
            Some(&self.tombstones),
        )
    }

    /// Delta-aware kNN seed: the base best-first descent against a linear
    /// scan of the delta summaries; the closer page MBR wins. Any live
    /// record is a correct entry point (the best-first crawl's bound
    /// starts unbounded), a near one just prunes sooner.
    fn knn_seed(
        &self,
        pool: &impl PageRead,
        point: Point3,
    ) -> Result<Option<MetaRecordId>, StorageError> {
        let base = self.base.knn_seed(pool, point)?;
        let delta = self.parts[self.base_partitions..]
            .iter()
            .filter(|p| !p.dead)
            .map(|p| (p.page_mbr.distance_sq_to_point(&point), p.record))
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        Ok(match (base, delta) {
            (Some(b), Some(d)) => Some(if d.0 < b.0 { d.1 } else { b.1 }),
            (Some(b), None) => Some(b.1),
            (None, Some(d)) => Some(d.1),
            (None, None) => None,
        })
    }

    // ------------------------------------------------------------------
    // Invariants
    // ------------------------------------------------------------------

    /// Verifies the structural invariants the update machinery must
    /// preserve (the property-test layer drives this under randomized
    /// update sequences):
    ///
    /// 1. neighbor links are symmetric and never duplicated;
    /// 2. no link targets a tombstoned (dead) or unknown record, and every
    ///    target is a live primary;
    /// 3. every partition's MBRs contain its live elements (and the
    ///    partition MBR contains the page MBR);
    /// 4. no page on `free_pages` is reachable from any crawl (object
    ///    pages, chain pages, seed-tree pages);
    /// 5. the resident live counts and locator agree with the pages.
    pub fn check_invariants(
        &self,
        pool: &impl PageRead,
        free_pages: &[PageId],
    ) -> Result<DeltaReport, String> {
        let mut report = DeltaReport::default();
        let mut edges: HashSet<(u32, u32)> = HashSet::new();
        let mut reachable: HashSet<PageId> = HashSet::new();
        reachable.extend(self.inner_pages.iter().copied());

        for (i, part) in self.parts.iter().enumerate() {
            let i = i as u32;
            if part.dead {
                report.retired_partitions += 1;
                let page = pool
                    .read_page(part.record.page, PageKind::SeedLeaf)
                    .map_err(|e| format!("partition {i}: {e}"))?;
                let record = decode_meta_record(&page, part.record.slot)
                    .map_err(|e| format!("partition {i}: {e}"))?;
                if !record.is_dead {
                    return Err(format!("retired partition {i} is not flagged dead"));
                }
                if !record.neighbors.is_empty() || record.continuation.is_some() {
                    return Err(format!("retired partition {i} still has links"));
                }
                continue;
            }
            report.live_partitions += 1;
            reachable.insert(part.object_page);
            if !part.partition_mbr.contains(&part.page_mbr) {
                return Err(format!("partition {i}: partition MBR lost the page MBR"));
            }

            // Walk the chain, collecting neighbors and reachable pages.
            let mut seen_chunks = HashSet::new();
            let mut nbrs: Vec<MetaRecordId> = Vec::new();
            let mut at = Some(part.record);
            let mut first = true;
            while let Some(addr) = at {
                if !seen_chunks.insert(addr) {
                    return Err(format!("partition {i}: continuation cycle at {:?}", addr));
                }
                reachable.insert(addr.page);
                let page = pool
                    .read_page(addr.page, PageKind::SeedLeaf)
                    .map_err(|e| format!("partition {i}: {e}"))?;
                let record = decode_meta_record(&page, addr.slot)
                    .map_err(|e| format!("partition {i}: {e}"))?;
                if record.is_dead {
                    return Err(format!("live partition {i} chain is flagged dead"));
                }
                if first && record.is_continuation {
                    return Err(format!("partition {i}: primary flagged as continuation"));
                }
                first = false;
                nbrs.extend(record.neighbors);
                at = record.continuation;
            }

            // Each link must resolve to a distinct live primary; record
            // the directed edge for the symmetry pass.
            let mut distinct = HashSet::new();
            for n in &nbrs {
                if !distinct.insert(*n) {
                    return Err(format!("partition {i}: duplicate link to {n:?}"));
                }
                let Some(&j) = self.by_record.get(n) else {
                    return Err(format!("partition {i}: link to unknown record {n:?}"));
                };
                if j == i {
                    return Err(format!("partition {i}: self link"));
                }
                if self.parts[j as usize].dead {
                    return Err(format!("partition {i}: link to retired partition {j}"));
                }
                edges.insert((i, j));
            }
            report.neighbor_links += nbrs.len() as u64;

            // Live elements sit inside the MBRs and match the counts.
            let page = pool
                .read_page(part.object_page, PageKind::ObjectPage)
                .map_err(|e| format!("partition {i} object page: {e}"))?;
            let (_, entries) = decode_leaf(&page).map_err(|e| format!("partition {i}: {e}"))?;
            let mut live = 0u32;
            for (slot, e) in entries.iter().enumerate() {
                if !is_live(Some(&self.tombstones), part.object_page, slot) {
                    continue;
                }
                live += 1;
                if !part.page_mbr.contains(&e.mbr) {
                    return Err(format!("partition {i}: live element outside the page MBR"));
                }
                if self.locator.get(&e.id) != Some(&i) {
                    return Err(format!("partition {i}: locator disagrees for id {}", e.id));
                }
            }
            if live != part.live {
                return Err(format!(
                    "partition {i}: resident live count {} vs {live} on the page",
                    part.live
                ));
            }
            report.live_elements += live as u64;
        }

        for &(a, b) in &edges {
            if !edges.contains(&(b, a)) {
                return Err(format!("asymmetric link {a} -> {b}"));
            }
        }
        if report.live_elements != self.live_elements {
            return Err(format!(
                "live element count drifted: {} resident vs {} on pages",
                self.live_elements, report.live_elements
            ));
        }
        for free in free_pages {
            if reachable.contains(free) {
                return Err(format!("freed {free} is reachable from a crawl"));
            }
        }
        Ok(report)
    }
}

/// Splits a neighbor list into record-sized chunks appended to `records`,
/// chained head-to-tail; the final chunk continues into `tail`.
#[allow(clippy::too_many_arguments)]
fn push_chunks(
    records: &mut Vec<NewRecord>,
    neighbors: impl Iterator<Item = NbrRef>,
    count: usize,
    max: usize,
    page_mbr: Aabb,
    partition_mbr: Aabb,
    object_page: PageId,
    continuation_chain: bool,
    tail: Option<MetaRecordId>,
) {
    let mut neighbors = neighbors.peekable();
    let num_chunks = count.div_ceil(max).max(1);
    for c in 0..num_chunks {
        let take: Vec<NbrRef> = neighbors.by_ref().take(max).collect();
        let last = c + 1 == num_chunks;
        records.push(NewRecord {
            page_mbr,
            partition_mbr,
            object_page,
            neighbors: take,
            is_continuation: continuation_chain || c > 0,
            next: if last { None } else { Some(records.len() + 1) },
            tail: if last { tail } else { None },
        });
    }
    debug_assert!(neighbors.peek().is_none());
}

/// Verifies the compaction contract against a reference store: a
/// compacted store must hold exactly the fresh rebuild's pages — pages
/// `0..fresh.num_pages()` byte-identical and none of them on the free
/// list — with every surplus tail page (left over from the larger
/// pre-compaction index) sitting on the free list. The differential test
/// layer and the `exp_update` benchmark both assert through this one
/// checker.
pub fn verify_compacted_store(
    compacted: &impl PageStore,
    fresh: &impl PageStore,
) -> Result<(), String> {
    let fresh_pages = fresh.num_pages();
    if compacted.num_pages() < fresh_pages {
        return Err(format!(
            "compacted store holds {} pages, rebuild needs {fresh_pages}",
            compacted.num_pages()
        ));
    }
    let free: HashSet<PageId> = compacted.free_pages().into_iter().collect();
    let (mut a, mut b) = (Page::new(), Page::new());
    for i in 0..compacted.num_pages() {
        let id = PageId(i);
        if i >= fresh_pages {
            if !free.contains(&id) {
                return Err(format!("{id} beyond the rebuild is not on the free list"));
            }
            continue;
        }
        if free.contains(&id) {
            return Err(format!("rebuild {id} was left on the free list"));
        }
        compacted
            .read_page(id, &mut a)
            .map_err(|e| format!("compacted {id}: {e}"))?;
        fresh
            .read_page(id, &mut b)
            .map_err(|e| format!("fresh {id}: {e}"))?;
        if a.bytes() != b.bytes() {
            return Err(format!("{id} differs from the fresh rebuild"));
        }
    }
    Ok(())
}

/// Reads the full neighbor list of a record by walking its continuation
/// chain.
fn read_chain_neighbors(
    pool: &impl PageRead,
    record: MetaRecordId,
) -> Result<Vec<MetaRecordId>, StorageError> {
    let mut nbrs = Vec::new();
    let mut at = Some(record);
    while let Some(addr) = at {
        let page = pool.read_page(addr.page, PageKind::SeedLeaf)?;
        let chunk = decode_meta_record(&page, addr.slot)?;
        nbrs.extend(chunk.neighbors);
        at = chunk.continuation;
    }
    Ok(nbrs)
}

/// Rewrites one record of a seed-leaf page in place. Record slots are
/// stable (the page is re-encoded with the same record count), so this is
/// only safe for edits that do not grow the page: link pruning, dead
/// flagging, continuation splicing.
fn edit_record<P: PageRead + PageWrite>(
    pool: &mut P,
    addr: MetaRecordId,
    edit: impl FnOnce(&mut MetaRecord),
) -> Result<(), StorageError> {
    let mut page = pool.read_page(addr.page, PageKind::SeedLeaf)?;
    let mut records = decode_meta_leaf(&page)?;
    edit(&mut records[addr.slot as usize]);
    encode_meta_leaf(&records, &mut page);
    pool.write(addr.page, &page, PageKind::SeedLeaf)
}

/// Removes `target` from `record`'s neighbor list, wherever in the chain
/// it appears.
fn remove_neighbor<P: PageRead + PageWrite>(
    pool: &mut P,
    record: MetaRecordId,
    target: MetaRecordId,
) -> Result<(), StorageError> {
    let mut at = Some(record);
    while let Some(addr) = at {
        let chunk = {
            let page = pool.read_page(addr.page, PageKind::SeedLeaf)?;
            decode_meta_record(&page, addr.slot)?
        };
        if chunk.neighbors.contains(&target) {
            return edit_record(pool, addr, |r| r.neighbors.retain(|n| *n != target));
        }
        at = chunk.continuation;
    }
    // Links are symmetric: the caller found `record` in `target`'s chain,
    // so `target` must appear in `record`'s. Falling through means the
    // link graph lost symmetry — corruption a release build must surface
    // rather than leave half-pruned.
    Err(StorageError::Corrupt(format!(
        "pruning link {target:?} from {record:?}: not present in the chain"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::tests::random_entries;
    use flat_storage::{BufferPool, MemStore, PageStore};

    fn options() -> FlatOptions {
        FlatOptions {
            layout: LeafLayout::WithIds,
            domain: Some(Aabb::new(Point3::splat(0.0), Point3::splat(100.0))),
            ..FlatOptions::default()
        }
    }

    fn build_delta(n: usize, seed: u64) -> (BufferPool<MemStore>, DeltaIndex, Vec<Entry>) {
        let entries = random_entries(n, seed);
        let mut pool = BufferPool::new(MemStore::new(), 1 << 16);
        let (index, _) = FlatIndex::build(&mut pool, entries.clone(), options()).unwrap();
        let delta = DeltaIndex::new(&pool, index, options()).unwrap();
        (pool, delta, entries)
    }

    fn check(pool: &BufferPool<MemStore>, delta: &DeltaIndex) -> DeltaReport {
        delta
            .check_invariants(pool, &pool.store().free_pages())
            .unwrap_or_else(|e| panic!("invariants violated: {e}"))
    }

    #[test]
    fn oversized_slot_capacity_is_rejected_at_validation_time() {
        // Every layout the page format can express today fits: slots are
        // addressed as u16 and a page holds far fewer entries than 65536.
        for layout in [LeafLayout::MbrOnly, LeafLayout::WithIds] {
            validate_slot_capacity(leaf_capacity(layout)).unwrap();
        }
        // The boundary: the largest slot index must fit in a u16.
        validate_slot_capacity(u16::MAX as usize + 1).unwrap();
        let err = validate_slot_capacity(u16::MAX as usize + 2).unwrap_err();
        assert!(
            err.to_string().contains("slot address space"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn pruning_a_missing_link_is_a_release_mode_error() {
        let (mut pool, delta, _) = build_delta(2_000, 60);
        let record = delta.parts[0].record;
        // A record address that no chain links to: pruning it must surface
        // the lost-symmetry corruption instead of silently succeeding.
        let bogus = MetaRecordId {
            page: record.page,
            slot: u16::MAX,
        };
        let err = remove_neighbor(&mut pool, record, bogus).unwrap_err();
        assert!(
            err.to_string().contains("not present in the chain"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn adoption_matches_the_build() {
        let (pool, delta, entries) = build_delta(8_000, 61);
        assert_eq!(delta.num_live_elements(), entries.len() as u64);
        assert_eq!(delta.num_delta_partitions(), 0);
        assert_eq!(delta.delta_fraction(), 0.0);
        let report = check(&pool, &delta);
        assert_eq!(report.live_elements, entries.len() as u64);
        assert!(report.neighbor_links > 0);
    }

    #[test]
    fn inserts_are_queryable_and_keep_invariants() {
        let (mut pool, mut delta, mut entries) = build_delta(6_000, 62);
        let fresh = random_entries(800, 63)
            .into_iter()
            .map(|e| Entry::new(e.id + 1_000_000, e.mbr))
            .collect::<Vec<_>>();
        entries.extend(fresh.iter().copied());
        delta.insert_batch(&mut pool, fresh).unwrap();
        assert_eq!(delta.num_live_elements(), entries.len() as u64);
        assert!(delta.num_delta_partitions() > 0);
        check(&pool, &delta);
        for side in [10.0, 40.0, 300.0] {
            let q = Aabb::cube(Point3::splat(50.0), side);
            let expected = entries.iter().filter(|e| q.intersects(&e.mbr)).count();
            assert_eq!(delta.range_query(&pool, &q).unwrap().len(), expected);
        }
    }

    #[test]
    fn deletes_hide_elements_and_retire_partitions() {
        let (mut pool, mut delta, entries) = build_delta(4_000, 64);
        // Delete every element of the "left half": partitions there die.
        let doomed: Vec<u64> = entries
            .iter()
            .filter(|e| e.mbr.center().x < 50.0)
            .map(|e| e.id)
            .collect();
        let deleted = delta.delete_batch(&mut pool, &doomed).unwrap();
        assert_eq!(deleted, doomed.len());
        let report = check(&pool, &delta);
        assert!(report.retired_partitions > 0, "no partition retired");
        assert!(pool.store().num_free() > 0, "no object page was freed");
        let q = Aabb::cube(Point3::splat(50.0), 300.0);
        let expected = entries.len() - doomed.len();
        assert_eq!(delta.range_query(&pool, &q).unwrap().len(), expected);
    }

    #[test]
    fn compact_restores_a_pristine_index() {
        let (mut pool, mut delta, entries) = build_delta(3_000, 65);
        let doomed: Vec<u64> = entries
            .iter()
            .map(|e| e.id)
            .filter(|i| i % 3 == 0)
            .collect();
        delta.delete_batch(&mut pool, &doomed).unwrap();
        let extra: Vec<Entry> = random_entries(500, 66)
            .into_iter()
            .map(|e| Entry::new(e.id + 2_000_000, e.mbr))
            .collect();
        delta.insert_batch(&mut pool, extra.clone()).unwrap();
        delta.compact(&mut pool).unwrap();
        assert_eq!(delta.num_delta_partitions(), 0);
        assert_eq!(delta.num_tombstones(), 0);
        assert_eq!(
            delta.num_live_elements(),
            (entries.len() - doomed.len() + extra.len()) as u64
        );
        check(&pool, &delta);
    }

    #[test]
    fn knn_skips_tombstones() {
        let (mut pool, mut delta, entries) = build_delta(3_000, 67);
        let p = Point3::splat(50.0);
        let nearest = delta.knn_query(&pool, p, 5).unwrap();
        let victim = nearest[0].hit.id;
        delta.delete_batch(&mut pool, &[victim]).unwrap();
        let after = delta.knn_query(&pool, p, 5).unwrap();
        assert!(after.iter().all(|n| n.hit.id != victim));
        // Brute force over survivors agrees.
        let mut dists: Vec<f64> = entries
            .iter()
            .filter(|e| e.id != victim)
            .map(|e| e.mbr.distance_sq_to_point(&p))
            .collect();
        dists.sort_by(|a, b| a.total_cmp(b));
        let got: Vec<f64> = after.iter().map(|n| n.dist_sq).collect();
        assert_eq!(got, dists[..5].to_vec());
    }

    #[test]
    #[should_panic(expected = "already live")]
    fn reinserting_a_live_id_is_rejected() {
        let (mut pool, mut delta, entries) = build_delta(500, 68);
        let dup = Entry::new(entries[0].id, Aabb::cube(Point3::splat(1.0), 1.0));
        let _ = delta.insert_batch(&mut pool, vec![dup]);
    }

    #[test]
    #[should_panic(expected = "WithIds")]
    fn mbr_only_layout_is_rejected() {
        let mut pool = BufferPool::new(MemStore::new(), 1 << 12);
        let opts = FlatOptions {
            domain: Some(Aabb::new(Point3::splat(0.0), Point3::splat(100.0))),
            ..FlatOptions::default()
        };
        let (index, _) = FlatIndex::build(&mut pool, random_entries(100, 1), opts).unwrap();
        let _ = DeltaIndex::new(&pool, index, opts);
    }
}
