//! Durability plumbing for [`crate::FlatDb`]: the [`Durability`] mode
//! knob, the logical-record and checkpoint-snapshot wire formats, and the
//! [`DbStore`] wrapper that routes the session pool over either a plain
//! [`PageStore`] or a [`DurableStore`].
//!
//! The division of labour with `flat_storage`:
//!
//! * [`flat_storage::Wal`] / [`DurableStore`] know nothing about indexes.
//!   They persist opaque *logical records* and an opaque *checkpoint
//!   snapshot*, guarantee record-granular atomicity, and redo dirty-page
//!   write-back on open.
//! * This module owns what those opaque bytes mean: a logical record is
//!   one committed [`crate::Writer`] batch (`[seq][op][body]`), and the
//!   snapshot is the resident state a recovery cannot rebuild from the
//!   pages alone — the index descriptor plus the delta layer's
//!   metadata-page list and tombstone set.
//!
//! Recovery is exactly "snapshot + replay": [`crate::FlatDb::open_durable`]
//! decodes the snapshot, re-adopts the resident tables from the recovered
//! pages ([`crate::DeltaIndex`]'s `reopen`), and re-applies the committed
//! logical records past the snapshot's sequence number — without
//! re-logging them, so a crash during recovery just recovers again.

use crate::index::FlatIndex;
use flat_geom::{Aabb, Point3};
use flat_rtree::{Entry, LeafLayout};
use flat_storage::{DurableStore, Page, PageId, PageStore, StorageError};

/// How a [`crate::FlatDb`] persists committed writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// No durability: pages go straight to the backing store with no log.
    /// A crash mid-batch can leave the store torn. This is the bulkload
    /// configuration of the paper — build once, persist explicitly.
    #[default]
    Off,
    /// Every writer batch is committed to the write-ahead log before any
    /// page mutates; checkpoints happen only when
    /// [`crate::FlatDb::checkpoint`] is called explicitly.
    Wal,
    /// Like [`Durability::Wal`], plus an automatic checkpoint after every
    /// `every_batches` committed writer batches, bounding both the log
    /// length and the recovery replay time.
    WalCheckpoint {
        /// Checkpoint after this many committed batches (minimum 1).
        every_batches: usize,
    },
}

/// What [`crate::FlatDb::open_durable`] recovered, for reporting.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryReport {
    /// Sequence number of the last committed (and now recovered) batch.
    pub last_committed_seq: u64,
    /// Committed batches replayed from the log past the last checkpoint.
    pub replayed: usize,
    /// Whether a torn or corrupt log tail was detected and truncated —
    /// the expected signature of a crash mid-append.
    pub torn_tail_truncated: bool,
}

/// The store a [`crate::FlatDb`] session pool runs over: the plain
/// backing store, or the same store wrapped in a [`DurableStore`] when a
/// [`Durability`] mode is on.
#[derive(Debug)]
pub(crate) enum DbStore<S: PageStore> {
    /// Durability off: pages go straight to the backing store.
    Plain(S),
    /// Durability on: writes defer into the WAL overlay until checkpoint.
    Durable(Box<DurableStore<S>>),
}

impl<S: PageStore> DbStore<S> {
    /// The backing store, through either variant.
    pub(crate) fn backing(&self) -> &S {
        match self {
            DbStore::Plain(s) => s,
            DbStore::Durable(d) => d.inner(),
        }
    }

    /// Unwraps to the backing store, dropping any uncheckpointed overlay
    /// (the RAM-loss semantics a caller opts into by unwrapping).
    pub(crate) fn into_backing(self) -> S {
        match self {
            DbStore::Plain(s) => s,
            DbStore::Durable(d) => d.into_inner(),
        }
    }

    /// The durable wrapper, if durability is on.
    pub(crate) fn durable_mut(&mut self) -> Option<&mut DurableStore<S>> {
        match self {
            DbStore::Plain(_) => None,
            DbStore::Durable(d) => Some(d),
        }
    }
}

impl<S: PageStore> PageStore for DbStore<S> {
    fn alloc(&mut self) -> Result<PageId, StorageError> {
        match self {
            DbStore::Plain(s) => s.alloc(),
            DbStore::Durable(d) => d.alloc(),
        }
    }

    fn write_page(&mut self, id: PageId, page: &Page) -> Result<(), StorageError> {
        match self {
            DbStore::Plain(s) => s.write_page(id, page),
            DbStore::Durable(d) => d.write_page(id, page),
        }
    }

    fn read_page(&self, id: PageId, out: &mut Page) -> Result<(), StorageError> {
        match self {
            DbStore::Plain(s) => s.read_page(id, out),
            DbStore::Durable(d) => d.read_page(id, out),
        }
    }

    fn free_page(&mut self, id: PageId) -> Result<(), StorageError> {
        match self {
            DbStore::Plain(s) => s.free_page(id),
            DbStore::Durable(d) => d.free_page(id),
        }
    }

    fn free_pages(&self) -> Vec<PageId> {
        match self {
            DbStore::Plain(s) => s.free_pages(),
            DbStore::Durable(d) => d.free_pages(),
        }
    }

    fn num_free(&self) -> u64 {
        match self {
            DbStore::Plain(s) => s.num_free(),
            DbStore::Durable(d) => d.num_free(),
        }
    }

    fn num_pages(&self) -> u64 {
        match self {
            DbStore::Plain(s) => s.num_pages(),
            DbStore::Durable(d) => d.num_pages(),
        }
    }

    fn sync(&self) -> Result<(), StorageError> {
        match self {
            DbStore::Plain(s) => s.sync(),
            DbStore::Durable(d) => d.sync(),
        }
    }
}

// ----------------------------------------------------------------------
// Logical records: one committed Writer batch each.
// ----------------------------------------------------------------------

/// One committed [`crate::Writer`] batch, as logged and replayed.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum LogicalOp {
    /// `Writer::insert` of these entries.
    Insert(Vec<Entry>),
    /// `Writer::delete` of these application ids.
    Delete(Vec<u64>),
    /// `Writer::compact`.
    Compact,
}

const OP_INSERT: u8 = 1;
const OP_DELETE: u8 = 2;
const OP_COMPACT: u8 = 3;

/// Encodes `[seq u64][op u8][body]`.
pub(crate) fn encode_logical(seq: u64, op: &LogicalOp) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&seq.to_le_bytes());
    match op {
        LogicalOp::Insert(entries) => {
            out.push(OP_INSERT);
            out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
            for e in entries {
                out.extend_from_slice(&e.id.to_le_bytes());
                for v in [
                    e.mbr.min.x,
                    e.mbr.min.y,
                    e.mbr.min.z,
                    e.mbr.max.x,
                    e.mbr.max.y,
                    e.mbr.max.z,
                ] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        LogicalOp::Delete(ids) => {
            out.push(OP_DELETE);
            out.extend_from_slice(&(ids.len() as u64).to_le_bytes());
            for id in ids {
                out.extend_from_slice(&id.to_le_bytes());
            }
        }
        LogicalOp::Compact => out.push(OP_COMPACT),
    }
    out
}

/// Decodes a record produced by [`encode_logical`].
pub(crate) fn decode_logical(bytes: &[u8]) -> Result<(u64, LogicalOp), StorageError> {
    let mut r = Reader::new(bytes);
    let seq = r.u64()?;
    let op = match r.u8()? {
        OP_INSERT => {
            let count = r.len("entry count")?;
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                let id = r.u64()?;
                let mut v = [0f64; 6];
                for slot in &mut v {
                    *slot = r.f64()?;
                }
                entries.push(Entry::new(
                    id,
                    Aabb::new(Point3::new(v[0], v[1], v[2]), Point3::new(v[3], v[4], v[5])),
                ));
            }
            LogicalOp::Insert(entries)
        }
        OP_DELETE => {
            let count = r.len("id count")?;
            let mut ids = Vec::with_capacity(count);
            for _ in 0..count {
                ids.push(r.u64()?);
            }
            LogicalOp::Delete(ids)
        }
        OP_COMPACT => LogicalOp::Compact,
        t => {
            return Err(StorageError::Corrupt(format!(
                "unknown logical record op {t}"
            )))
        }
    };
    r.finish()?;
    Ok((seq, op))
}

// ----------------------------------------------------------------------
// Checkpoint snapshots: the resident state recovery cannot rebuild from
// the pages alone.
// ----------------------------------------------------------------------

/// "FLATSNP1" — identifies a checkpoint snapshot.
const SNAPSHOT_MAGIC: u64 = 0x464C_4154_534E_5031;
const SNAPSHOT_VERSION: u16 = 1;
/// Encoding of `FlatIndex::seed_root == None`.
const NO_ROOT: u64 = u64::MAX;

/// Delta-layer residency captured in a snapshot: the metadata pages in
/// creation order plus the tombstone set.
pub(crate) type DeltaResidency = (Vec<PageId>, Vec<(u64, u16)>);

/// The checkpoint snapshot: everything [`crate::FlatDb::open_durable`]
/// needs besides the recovered pages themselves.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct DbSnapshot {
    /// Sequence number of the last batch applied before the checkpoint.
    pub last_seq: u64,
    /// The session's `built` flag (a fresh updatable database is
    /// delta-only and unbuilt, yet has committed state to recover).
    pub built: bool,
    /// The index descriptor at checkpoint time.
    pub index: FlatIndex,
    /// Delta-layer residency, if the database had been promoted: the
    /// metadata pages in creation order and the tombstone set.
    pub delta: Option<DeltaResidency>,
}

impl DbSnapshot {
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&SNAPSHOT_MAGIC.to_le_bytes());
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.last_seq.to_le_bytes());
        out.push(self.built as u8);
        let layout: u16 = match self.index.layout {
            LeafLayout::MbrOnly => 0,
            LeafLayout::WithIds => 1,
        };
        out.extend_from_slice(&layout.to_le_bytes());
        out.extend_from_slice(&self.index.seed_root.map_or(NO_ROOT, |r| r.0).to_le_bytes());
        out.extend_from_slice(&self.index.seed_height.to_le_bytes());
        out.extend_from_slice(&self.index.num_elements.to_le_bytes());
        out.extend_from_slice(&self.index.num_object_pages.to_le_bytes());
        out.extend_from_slice(&self.index.num_meta_pages.to_le_bytes());
        out.extend_from_slice(&self.index.num_seed_inner_pages.to_le_bytes());
        match &self.delta {
            None => out.push(0),
            Some((meta_pages, tombstones)) => {
                out.push(1);
                out.extend_from_slice(&(meta_pages.len() as u64).to_le_bytes());
                for p in meta_pages {
                    out.extend_from_slice(&p.0.to_le_bytes());
                }
                out.extend_from_slice(&(tombstones.len() as u64).to_le_bytes());
                for &(page, slot) in tombstones {
                    out.extend_from_slice(&page.to_le_bytes());
                    out.extend_from_slice(&slot.to_le_bytes());
                }
            }
        }
        out
    }

    pub(crate) fn decode(bytes: &[u8]) -> Result<DbSnapshot, StorageError> {
        let mut r = Reader::new(bytes);
        if r.u64()? != SNAPSHOT_MAGIC {
            return Err(StorageError::Corrupt(
                "checkpoint snapshot has a bad magic number".into(),
            ));
        }
        let version = r.u16()?;
        if version != SNAPSHOT_VERSION {
            return Err(StorageError::Corrupt(format!(
                "unknown snapshot version {version}"
            )));
        }
        let last_seq = r.u64()?;
        let built = r.u8()? != 0;
        let layout = match r.u16()? {
            0 => LeafLayout::MbrOnly,
            1 => LeafLayout::WithIds,
            t => return Err(StorageError::Corrupt(format!("unknown layout tag {t}"))),
        };
        let root = r.u64()?;
        let index = FlatIndex {
            seed_root: (root != NO_ROOT).then_some(PageId(root)),
            seed_height: r.u32()?,
            layout,
            num_elements: r.u64()?,
            num_object_pages: r.u64()?,
            num_meta_pages: r.u64()?,
            num_seed_inner_pages: r.u64()?,
        };
        let delta = match r.u8()? {
            0 => None,
            1 => {
                let n = r.len("metadata page count")?;
                let mut meta_pages = Vec::with_capacity(n);
                for _ in 0..n {
                    meta_pages.push(PageId(r.u64()?));
                }
                let t = r.len("tombstone count")?;
                let mut tombstones = Vec::with_capacity(t);
                for _ in 0..t {
                    let page = r.u64()?;
                    let slot = r.u16()?;
                    tombstones.push((page, slot));
                }
                Some((meta_pages, tombstones))
            }
            t => {
                return Err(StorageError::Corrupt(format!(
                    "unknown snapshot state tag {t}"
                )))
            }
        };
        r.finish()?;
        Ok(DbSnapshot {
            last_seq,
            built,
            index,
            delta,
        })
    }
}

/// A bounds-checked little-endian byte reader over a record payload.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(StorageError::Corrupt("truncated durable record".into()));
        };
        let out = &self.bytes[self.at..end];
        self.at = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, StorageError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, StorageError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, StorageError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, StorageError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, StorageError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A `u64` count that must also fit the remaining bytes (each counted
    /// item is at least one byte), so corrupt lengths fail before any
    /// giant allocation.
    fn len(&mut self, what: &str) -> Result<usize, StorageError> {
        let n = self.u64()?;
        if n > (self.bytes.len() - self.at) as u64 {
            return Err(StorageError::Corrupt(format!(
                "implausible {what} {n} in a {}-byte record",
                self.bytes.len()
            )));
        }
        Ok(n as usize)
    }

    fn finish(self) -> Result<(), StorageError> {
        if self.at != self.bytes.len() {
            return Err(StorageError::Corrupt(format!(
                "durable record has {} trailing bytes",
                self.bytes.len() - self.at
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64) -> Entry {
        Entry::new(
            id,
            Aabb::new(
                Point3::new(id as f64, 1.5, -2.0),
                Point3::new(id as f64 + 1.0, 2.5, 0.0),
            ),
        )
    }

    #[test]
    fn logical_records_roundtrip() {
        for (seq, op) in [
            (1, LogicalOp::Insert(vec![entry(7), entry(8)])),
            (2, LogicalOp::Delete(vec![3, 9, 27])),
            (3, LogicalOp::Compact),
            (4, LogicalOp::Insert(Vec::new())),
            (5, LogicalOp::Delete(Vec::new())),
        ] {
            let bytes = encode_logical(seq, &op);
            assert_eq!(decode_logical(&bytes).unwrap(), (seq, op));
        }
    }

    #[test]
    fn corrupt_logical_records_are_rejected() {
        let good = encode_logical(9, &LogicalOp::Insert(vec![entry(1)]));
        // Truncation anywhere inside the record fails loudly.
        for cut in 0..good.len() {
            assert!(decode_logical(&good[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage fails too.
        let mut long = good.clone();
        long.push(0);
        assert!(decode_logical(&long).is_err());
        // An unknown opcode fails.
        let mut bad = good;
        bad[8] = 77;
        assert!(decode_logical(&bad).is_err());
    }

    #[test]
    fn implausible_counts_fail_before_allocating() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.push(OP_DELETE);
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        let err = decode_logical(&bytes).unwrap_err();
        assert!(err.to_string().contains("implausible"));
    }

    #[test]
    fn snapshots_roundtrip() {
        let base = DbSnapshot {
            last_seq: 41,
            built: true,
            index: FlatIndex {
                seed_root: Some(PageId(12)),
                seed_height: 3,
                layout: LeafLayout::WithIds,
                num_elements: 900,
                num_object_pages: 30,
                num_meta_pages: 4,
                num_seed_inner_pages: 2,
            },
            delta: Some((
                vec![PageId(3), PageId(4), PageId(99)],
                vec![(7, 0), (7, 3), (31, 12)],
            )),
        };
        assert_eq!(DbSnapshot::decode(&base.encode()).unwrap(), base);

        let empty = DbSnapshot {
            last_seq: 0,
            built: false,
            index: FlatIndex::empty(LeafLayout::WithIds),
            delta: None,
        };
        assert_eq!(DbSnapshot::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn corrupt_snapshots_are_rejected() {
        let snap = DbSnapshot {
            last_seq: 1,
            built: false,
            index: FlatIndex::empty(LeafLayout::WithIds),
            delta: None,
        };
        let good = snap.encode();
        for cut in 0..good.len() {
            assert!(DbSnapshot::decode(&good[..cut]).is_err(), "cut at {cut}");
        }
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert!(DbSnapshot::decode(&bad_magic)
            .unwrap_err()
            .to_string()
            .contains("magic"));
        let mut bad_version = good;
        bad_version[8] = 99;
        assert!(DbSnapshot::decode(&bad_version).is_err());
    }
}
