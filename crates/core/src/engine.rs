//! Batched query execution with crawl-ahead prefetching.
//!
//! The serial query path ([`FlatIndex::range_query`]) evaluates one query
//! at a time: seed, then crawl, each page read paid for as it is needed.
//! Under the paper's I/O-bound regime (97.8–98.8 % disk time, §VII-E.2)
//! that leaves the device idle whenever the CPU is decoding and the CPU
//! idle whenever the device is seeking. A deployment serving many clients
//! receives queries in *batches*, and a batch exposes two kinds of slack
//! the serial path cannot use:
//!
//! 1. **Shared pages.** Queries of one batch re-read the same seed-tree
//!    directory pages, and overlapping queries share metadata and object
//!    pages. The engine routes every read through a per-batch page cache,
//!    so each page is fetched from the pool **once per batch** no matter
//!    how many queries touch it.
//! 2. **Predictable future reads.** The crawl announces its future — every
//!    enqueued neighbor names the metadata page (and usually the object
//!    page) a later turn will read. The engine forwards those as
//!    **readahead hints** to dedicated prefetch threads driving
//!    [`PageRead::prefetch_page`], so the device works on upcoming pages
//!    while the engine scans the current one, and interleaves the crawl
//!    turns of all queries round-robin so there is always a hint in flight.
//!
//! Results are **identical** to running each query serially — same hits in
//! the same order — because the engine advances each query through the
//! exact serial seed and crawl-step code; only the page-fetch timing
//! changes. `exp_batch` in the benchmark crate measures the payoff over a
//! throttled device store.

use crate::delta::DeltaIndex;
use crate::index::FlatIndex;
use crate::knn::Neighbor;
use crate::meta::{decode_meta_record, MetaRecord, MetaRecordId};
use crate::query::{CrawlHinter, CrawlState, Tombstones};
use crate::QueryStats;
use flat_geom::{Aabb, Point3};
use flat_storage::{IoStats, Page, PageId, PageKind, PageRead, StorageError};
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

/// Tuning knobs for the [`QueryEngine`].
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Number of readahead worker threads serving prefetch hints; `0`
    /// disables prefetching (the batch still deduplicates page fetches).
    /// Each worker blocks on one speculative fetch at a time, so this is
    /// the effective readahead depth against the device.
    pub readahead_threads: usize,
    /// How many queries crawl concurrently (round-robin) at a time; the
    /// rest wait their turn. Bounding the wave keeps the gap between a
    /// crawl-ahead hint and its demand read short enough that the
    /// prefetched page is still cached when the demand read arrives —
    /// with an unbounded wave a hint precedes its use by a full pass over
    /// the entire batch, and a small pool evicts the page in between.
    /// `None` (default) picks a multiple of `readahead_threads`.
    pub wave_size: Option<usize>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            readahead_threads: 4,
            wave_size: None,
        }
    }
}

impl EngineConfig {
    fn effective_wave(&self) -> usize {
        match self.wave_size {
            Some(w) => w.max(1),
            // Without prefetching the wave only shapes cache locality, so
            // any bound works; with prefetching, ~8 in-flight queries per
            // readahead worker keeps the workers busy while keeping the
            // hint-to-use distance within cache lifetime.
            None if self.readahead_threads == 0 => usize::MAX,
            None => (self.readahead_threads * 8).max(16),
        }
    }
}

/// What a range-query batch did, alongside its per-query results.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Per-query hit lists, index-aligned with the submitted queries and
    /// identical (order included) to serial [`FlatIndex::range_query`].
    pub results: Vec<Vec<flat_rtree::Hit>>,
    /// Per-query crawl counters, index-aligned with the queries.
    pub query_stats: Vec<QueryStats>,
    /// Distinct pages pulled from the pool — the batch's real I/O footprint.
    pub pages_fetched: u64,
    /// Total page accesses the queries made; `page_requests -
    /// pages_fetched` reads were absorbed by the batch cache (pages shared
    /// between queries or revisited by one query).
    pub page_requests: u64,
    /// Readahead hints handed to the prefetch workers.
    pub prefetch_hints: u64,
    /// Pool-level I/O delta over the batch — physical reads, prefetch
    /// hits, and the prefetch-waste split ([`IoStats::total_prefetched_unused`]
    /// vs [`IoStats::total_prefetch_evicted`]). Filled by the
    /// [`crate::QueryBuilder`] terminals, which own the pool; a bare
    /// [`QueryEngine`] over a borrowed [`flat_storage::PageRead`] cannot
    /// observe pool counters and leaves it zeroed.
    pub io: IoStats,
}

/// Outcome of a kNN batch.
#[derive(Debug, Clone)]
pub struct KnnBatchOutcome {
    /// Per-query neighbor lists (ascending distance), index-aligned with
    /// the submitted `(point, k)` pairs.
    pub results: Vec<Vec<Neighbor>>,
    /// Distinct pages pulled from the pool.
    pub pages_fetched: u64,
    /// Total page accesses across all queries.
    pub page_requests: u64,
    /// Readahead hints handed to the prefetch workers.
    pub prefetch_hints: u64,
    /// Pool-level I/O delta over the batch (see [`BatchOutcome::io`]).
    pub io: IoStats,
}

/// Batched executor over one [`FlatIndex`] and one shared pool.
///
/// The pool must be [`Sync`] because the engine spawns readahead threads
/// that prefetch through it while the engine thread issues demand reads —
/// a [`flat_storage::ConcurrentBufferPool`] is the intended substrate.
///
/// ```
/// use flat_core::{FlatIndex, FlatOptions, QueryEngine};
/// use flat_geom::{Aabb, Point3};
/// use flat_rtree::Entry;
/// use flat_storage::{BufferPool, MemStore};
///
/// let entries: Vec<Entry> = (0..2000)
///     .map(|i| Entry::new(i, Aabb::cube(Point3::splat((i % 100) as f64), 1.5)))
///     .collect();
/// let mut pool = BufferPool::new(MemStore::new(), 1 << 14);
/// let (index, _) = FlatIndex::build(&mut pool, entries, FlatOptions::default()).unwrap();
/// let pool = pool.into_concurrent();
///
/// let queries: Vec<Aabb> = (0..8)
///     .map(|i| Aabb::cube(Point3::splat(10.0 * i as f64), 4.0))
///     .collect();
/// let outcome = QueryEngine::new(&index, &pool).run_range_batch(&queries).unwrap();
/// assert_eq!(outcome.results.len(), queries.len());
/// ```
pub struct QueryEngine<'a, P: PageRead + Sync> {
    index: &'a FlatIndex,
    /// When batching over a mutable index: the delta layer supplying the
    /// delta-aware seed and the tombstone filter. The crawl machinery is
    /// shared — delta links live in the same page graph.
    delta: Option<&'a DeltaIndex>,
    pool: &'a P,
    config: EngineConfig,
}

impl<'a, P: PageRead + Sync> QueryEngine<'a, P> {
    /// An engine with the default configuration.
    pub fn new(index: &'a FlatIndex, pool: &'a P) -> QueryEngine<'a, P> {
        Self::with_config(index, pool, EngineConfig::default())
    }

    /// An engine with explicit tuning.
    pub fn with_config(
        index: &'a FlatIndex,
        pool: &'a P,
        config: EngineConfig,
    ) -> QueryEngine<'a, P> {
        QueryEngine {
            index,
            delta: None,
            pool,
            config,
        }
    }

    /// An engine batching over a mutable [`DeltaIndex`] (default
    /// configuration): same wave scheduling, batch cache and readahead,
    /// with the delta-aware seed and tombstone-filtered scans — results
    /// identical to [`DeltaIndex::range_query`]/[`DeltaIndex::knn_query`].
    ///
    /// This is the implementation behind the [`crate::FlatDb`] façade's
    /// batched queries on a written-to database; prefer
    /// [`crate::FlatDb::query`] in new code — it picks the plain or the
    /// delta engine automatically.
    pub fn for_delta(delta: &'a DeltaIndex, pool: &'a P) -> QueryEngine<'a, P> {
        Self::for_delta_with_config(delta, pool, EngineConfig::default())
    }

    /// A delta engine with explicit tuning.
    pub fn for_delta_with_config(
        delta: &'a DeltaIndex,
        pool: &'a P,
        config: EngineConfig,
    ) -> QueryEngine<'a, P> {
        QueryEngine {
            index: delta.base(),
            delta: Some(delta),
            pool,
            config,
        }
    }

    fn tombstones(&self) -> Option<&'a Tombstones> {
        self.delta.map(|d| d.tombstones())
    }

    /// Executes a batch of range queries.
    ///
    /// Seeds run first for the whole batch; the crawls then advance
    /// round-robin, one record per query per round, all through one batch
    /// page cache with crawl-ahead hints feeding the readahead workers.
    /// Per-query results are identical to serial evaluation.
    pub fn run_range_batch(&self, queries: &[Aabb]) -> Result<BatchOutcome, StorageError> {
        let cache = BatchCache::new(self.pool);
        std::thread::scope(|scope| {
            let readahead = Readahead::spawn(scope, self.pool, self.config.readahead_threads);
            let hinter = EngineHinter::new(&cache, &readahead);
            let hint: Option<&dyn CrawlHinter> = Some(&hinter);

            // Phase 1: seed lookups for the whole batch. Seed-tree
            // directory pages are shared by almost every query, so the
            // batch cache alone collapses this phase to one read per page.
            let mut stats = vec![QueryStats::default(); queries.len()];
            let mut results: Vec<Vec<flat_rtree::Hit>> = vec![Vec::new(); queries.len()];
            let mut states: Vec<Option<CrawlState>> = Vec::with_capacity(queries.len());
            for (query, stats) in queries.iter().zip(stats.iter_mut()) {
                let seed = match self.delta {
                    Some(delta) => delta.seed(&cache, query, stats, hint)?,
                    None => self.index.seed(&cache, query, stats, hint, None)?,
                };
                states.push(seed.map(CrawlState::start));
            }

            // Phase 2: crawl turns, round-robin within a bounded wave of
            // queries (finished queries hand their slot to the next one).
            // While query i's demand read blocks, hints issued by earlier
            // turns keep the readahead workers fetching the wave's
            // upcoming pages.
            let wave_size = self.config.effective_wave();
            let mut backlog: std::collections::VecDeque<usize> = (0..queries.len())
                .filter(|&i| states[i].is_some())
                .collect();
            let mut wave: Vec<usize> = Vec::new();
            loop {
                while wave.len() < wave_size {
                    let Some(next) = backlog.pop_front() else {
                        break;
                    };
                    wave.push(next);
                }
                if wave.is_empty() {
                    break;
                }
                let mut w = 0;
                while w < wave.len() {
                    let i = wave[w];
                    let state = states[i].as_mut().expect("wave holds seeded queries");
                    let done = self.index.crawl_step(
                        &cache,
                        &queries[i],
                        state,
                        &mut stats[i],
                        &mut results[i],
                        hint,
                        self.tombstones(),
                    )?;
                    if done {
                        wave.swap_remove(w); // slot freed for the backlog
                    } else {
                        w += 1;
                    }
                }
            }
            for (stats, hits) in stats.iter_mut().zip(results.iter()) {
                stats.result_count = hits.len() as u64;
            }

            Ok(BatchOutcome {
                results,
                query_stats: stats,
                pages_fetched: cache.fetches(),
                page_requests: cache.requests(),
                prefetch_hints: readahead.hints(),
                io: IoStats::default(),
            })
            // `readahead` (the hint sender) drops here, the workers drain
            // and exit, and the scope joins them before returning.
        })
    }

    /// Executes a batch of k-nearest-neighbor queries (`(point, k)` pairs).
    ///
    /// Each query runs the exact serial best-first algorithm of
    /// [`FlatIndex::knn_query`]; the batch contributes the shared page
    /// cache and the readahead workers fed by frontier hints.
    pub fn run_knn_batch(
        &self,
        queries: &[(Point3, usize)],
    ) -> Result<KnnBatchOutcome, StorageError> {
        let cache = BatchCache::new(self.pool);
        std::thread::scope(|scope| {
            let readahead = Readahead::spawn(scope, self.pool, self.config.readahead_threads);
            let hinter = EngineHinter::new(&cache, &readahead);
            let hint: Option<&dyn CrawlHinter> = Some(&hinter);

            let mut results = Vec::with_capacity(queries.len());
            for &(point, k) in queries {
                results.push(match self.delta {
                    Some(delta) => delta.knn_with_hinter(&cache, point, k, hint)?,
                    None => self.index.knn_with_hinter(&cache, point, k, hint)?,
                });
            }
            Ok(KnnBatchOutcome {
                results,
                pages_fetched: cache.fetches(),
                page_requests: cache.requests(),
                prefetch_hints: readahead.hints(),
                io: IoStats::default(),
            })
        })
    }
}

/// Per-batch page memo: the first access to a page goes to the pool, every
/// later access — by any query of the batch — is served locally. This is
/// what "each page is fetched once per batch" means, and it composes with
/// the pool's own cache (which persists *across* batches).
///
/// The memo holds every page the batch touched; a batch's working set is
/// bounded by the union of its queries' result regions, so callers sizing
/// truly enormous batches should split them.
pub(crate) struct BatchCache<'p, P: PageRead> {
    pool: &'p P,
    pages: RefCell<HashMap<PageId, Page>>,
    requests: Cell<u64>,
    fetches: Cell<u64>,
}

impl<'p, P: PageRead> BatchCache<'p, P> {
    pub(crate) fn new(pool: &'p P) -> BatchCache<'p, P> {
        BatchCache {
            pool,
            pages: RefCell::new(HashMap::new()),
            requests: Cell::new(0),
            fetches: Cell::new(0),
        }
    }

    fn contains(&self, id: PageId) -> bool {
        self.pages.borrow().contains_key(&id)
    }

    /// Decodes record `addr` if its page is already resident — the cheap
    /// lookahead the hinter relies on (never triggers I/O).
    fn cached_record(&self, addr: MetaRecordId) -> Option<MetaRecord> {
        let pages = self.pages.borrow();
        let page = pages.get(&addr.page)?;
        decode_meta_record(page, addr.slot).ok()
    }

    fn fetches(&self) -> u64 {
        self.fetches.get()
    }

    fn requests(&self) -> u64 {
        self.requests.get()
    }
}

impl<P: PageRead> PageRead for BatchCache<'_, P> {
    fn read_page(&self, id: PageId, kind: PageKind) -> Result<Page, StorageError> {
        self.requests.set(self.requests.get() + 1);
        if let Some(page) = self.pages.borrow().get(&id) {
            return Ok(page.clone());
        }
        self.fetches.set(self.fetches.get() + 1);
        let page = self.pool.read_page(id, kind)?;
        self.pages.borrow_mut().insert(id, page.clone());
        Ok(page)
    }
}

/// The readahead side: worker threads blocking on a hint channel, each
/// serving one [`PageRead::prefetch_page`] call at a time.
struct Readahead {
    tx: Option<mpsc::Sender<(PageId, PageKind)>>,
    hints: Cell<u64>,
}

impl Readahead {
    fn spawn<'scope, 'env, P: PageRead + Sync>(
        scope: &'scope std::thread::Scope<'scope, 'env>,
        pool: &'env P,
        threads: usize,
    ) -> Readahead {
        if threads == 0 {
            return Readahead {
                tx: None,
                hints: Cell::new(0),
            };
        }
        let (tx, rx) = mpsc::channel::<(PageId, PageKind)>();
        let rx = Arc::new(Mutex::new(rx));
        for _ in 0..threads {
            let rx = Arc::clone(&rx);
            scope.spawn(move || loop {
                // Hold the lock only while waiting for a hint; the fetch
                // itself runs unlocked so workers overlap their I/O.
                let msg = match rx.lock() {
                    Ok(guard) => guard.recv(),
                    Err(_) => return,
                };
                match msg {
                    Ok((id, kind)) => pool.prefetch_page(id, kind),
                    Err(_) => return, // channel closed: batch is over
                }
            });
        }
        Readahead {
            tx: Some(tx),
            hints: Cell::new(0),
        }
    }

    fn send(&self, id: PageId, kind: PageKind) {
        if let Some(tx) = &self.tx {
            if tx.send((id, kind)).is_ok() {
                self.hints.set(self.hints.get() + 1);
            }
        }
    }

    fn enabled(&self) -> bool {
        self.tx.is_some()
    }

    fn hints(&self) -> u64 {
        self.hints.get()
    }
}

/// Turns crawl progress into deduplicated readahead hints.
struct EngineHinter<'e, P: PageRead> {
    cache: &'e BatchCache<'e, P>,
    readahead: &'e Readahead,
    hinted: RefCell<HashSet<PageId>>,
}

impl<'e, P: PageRead> EngineHinter<'e, P> {
    fn new(cache: &'e BatchCache<'e, P>, readahead: &'e Readahead) -> EngineHinter<'e, P> {
        EngineHinter {
            cache,
            readahead,
            hinted: RefCell::new(HashSet::new()),
        }
    }

    fn hint(&self, page: PageId, kind: PageKind) {
        if !self.readahead.enabled() || self.cache.contains(page) {
            return;
        }
        if self.hinted.borrow_mut().insert(page) {
            self.readahead.send(page, kind);
        }
    }
}

impl<P: PageRead> CrawlHinter for EngineHinter<'_, P> {
    fn upcoming_page(&self, page: PageId, kind: PageKind) {
        self.hint(page, kind);
    }

    fn enqueued_record(&self, addr: MetaRecordId, wants_object: &dyn Fn(&MetaRecord) -> bool) {
        // If the record's metadata page is already resident we can look
        // one step further ahead and hint the object page the crawl will
        // scan; otherwise hint the metadata page itself.
        match self.cache.cached_record(addr) {
            Some(record) => {
                if wants_object(&record) {
                    self.hint(record.object_page, PageKind::ObjectPage);
                }
            }
            None => self.hint(addr.page, PageKind::SeedLeaf),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::FlatOptions;
    use flat_rtree::Entry;
    use flat_storage::{BufferPool, ConcurrentBufferPool, MemStore, ThrottledStore};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::time::Duration;

    fn random_entries(n: usize, seed: u64) -> Vec<Entry> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let c = Point3::new(
                    rng.gen_range(0.0..100.0),
                    rng.gen_range(0.0..100.0),
                    rng.gen_range(0.0..100.0),
                );
                Entry::new(i as u64, Aabb::cube(c, rng.gen_range(0.05..0.5)))
            })
            .collect()
    }

    fn build_shared(
        n: usize,
        seed: u64,
    ) -> (ConcurrentBufferPool<MemStore>, FlatIndex, Vec<Entry>) {
        let entries = random_entries(n, seed);
        let mut pool = BufferPool::new(MemStore::new(), 1 << 16);
        let (index, _) = FlatIndex::build(&mut pool, entries.clone(), FlatOptions::default())
            .expect("in-memory build cannot fail");
        (pool.into_concurrent(), index, entries)
    }

    fn workload(seed: u64, count: usize) -> Vec<Aabb> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let c = Point3::new(
                    rng.gen_range(0.0..100.0),
                    rng.gen_range(0.0..100.0),
                    rng.gen_range(0.0..100.0),
                );
                Aabb::cube(c, rng.gen_range(2.0..12.0))
            })
            .collect()
    }

    #[test]
    fn batch_results_are_bit_identical_to_serial() {
        let (pool, index, _) = build_shared(30_000, 201);
        let queries = workload(202, 24);
        let serial: Vec<Vec<flat_rtree::Hit>> = queries
            .iter()
            .map(|q| index.range_query(&pool, q).unwrap())
            .collect();
        for threads in [0, 3] {
            let engine = QueryEngine::with_config(
                &index,
                &pool,
                EngineConfig {
                    readahead_threads: threads,
                    ..EngineConfig::default()
                },
            );
            let outcome = engine.run_range_batch(&queries).unwrap();
            assert_eq!(
                outcome.results, serial,
                "batch (readahead={threads}) diverged from serial"
            );
        }
    }

    #[test]
    fn batch_query_stats_match_serial_stats() {
        let (pool, index, _) = build_shared(20_000, 203);
        let queries = workload(204, 10);
        let engine = QueryEngine::new(&index, &pool);
        let outcome = engine.run_range_batch(&queries).unwrap();
        for (i, q) in queries.iter().enumerate() {
            let mut serial = QueryStats::default();
            index.range_query_with_stats(&pool, q, &mut serial).unwrap();
            assert_eq!(outcome.query_stats[i], serial, "query {i}");
        }
    }

    #[test]
    fn batch_cache_deduplicates_pool_reads() {
        let (pool, index, _) = build_shared(20_000, 205);
        let queries = workload(206, 16);

        // Serial: every query pays its own page reads.
        pool.clear_cache();
        pool.reset_stats();
        for q in &queries {
            index.range_query(&pool, q).unwrap();
        }
        let serial_logical = pool.stats().total_logical_reads();

        // Batched without prefetch: the batch cache absorbs shared pages.
        pool.clear_cache();
        pool.reset_stats();
        let engine = QueryEngine::with_config(
            &index,
            &pool,
            EngineConfig {
                readahead_threads: 0,
                ..EngineConfig::default()
            },
        );
        let outcome = engine.run_range_batch(&queries).unwrap();
        let batch_logical = pool.stats().total_logical_reads();
        assert_eq!(outcome.pages_fetched, batch_logical);
        assert!(
            batch_logical < serial_logical,
            "batching must reduce pool traffic: {batch_logical} vs {serial_logical}"
        );
        assert!(outcome.page_requests > outcome.pages_fetched);
    }

    #[test]
    fn prefetch_hints_turn_into_pool_prefetch_hits() {
        let entries = random_entries(20_000, 207);
        let mut build = BufferPool::new(MemStore::new(), 1 << 16);
        let (index, _) = FlatIndex::build(&mut build, entries, FlatOptions::default()).unwrap();
        // A throttled store makes the readahead workers' head start real.
        let store = ThrottledStore::new(build.into_store(), Duration::from_micros(30));
        let pool = ConcurrentBufferPool::new(store, 1 << 16);
        let queries = workload(208, 16);
        let engine = QueryEngine::new(&index, &pool);
        let outcome = engine.run_range_batch(&queries).unwrap();
        assert!(outcome.prefetch_hints > 0, "crawl-ahead issued no hints");
        let stats = pool.stats();
        assert!(
            stats.total_prefetch_hits() > 0,
            "no demand read was served by a prefetched page"
        );
        // Speculation may waste some reads, but the hinter only guesses
        // pages the crawl has actually enqueued, so most must get used.
        assert!(
            stats.total_prefetch_hits() * 2 >= stats.total_prefetch_reads(),
            "most prefetches should be used: {} hits of {} reads",
            stats.total_prefetch_hits(),
            stats.total_prefetch_reads()
        );
    }

    #[test]
    fn empty_batch_and_empty_index_are_fine() {
        let (pool, index, _) = build_shared(5_000, 209);
        let engine = QueryEngine::new(&index, &pool);
        let outcome = engine.run_range_batch(&[]).unwrap();
        assert!(outcome.results.is_empty());
        assert_eq!(outcome.pages_fetched, 0);

        let mut empty_pool = BufferPool::new(MemStore::new(), 16);
        let (empty_index, _) =
            FlatIndex::build(&mut empty_pool, Vec::new(), FlatOptions::default()).unwrap();
        let empty_pool = empty_pool.into_concurrent();
        let engine = QueryEngine::new(&empty_index, &empty_pool);
        let outcome = engine.run_range_batch(&workload(210, 4)).unwrap();
        assert!(outcome.results.iter().all(|r| r.is_empty()));
    }

    #[test]
    fn knn_batch_matches_serial_knn() {
        let (pool, index, _) = build_shared(10_000, 211);
        let mut rng = StdRng::seed_from_u64(212);
        let queries: Vec<(Point3, usize)> = (0..8)
            .map(|_| {
                (
                    Point3::new(
                        rng.gen_range(0.0..100.0),
                        rng.gen_range(0.0..100.0),
                        rng.gen_range(0.0..100.0),
                    ),
                    rng.gen_range(1..20),
                )
            })
            .collect();
        let engine = QueryEngine::new(&index, &pool);
        let outcome = engine.run_knn_batch(&queries).unwrap();
        for (i, &(p, k)) in queries.iter().enumerate() {
            let serial = index.knn_query(&pool, p, k).unwrap();
            assert_eq!(outcome.results[i], serial, "kNN query {i}");
        }
    }
}
