//! The unified error type of the session façade.
//!
//! The low-level crates report everything as
//! [`StorageError`](flat_storage::StorageError) — appropriate for code
//! that lives at the page level, but a caller of the [`crate::FlatDb`]
//! façade sees build, query, update and persistence operations, not
//! pages. [`FlatError`] wraps the storage error and adds one variant per
//! façade concern, so every `FlatDb` / [`crate::SpatialIndex`] entry
//! point returns a single error type with a usable [`std::error::Error`]
//! source chain.

use flat_storage::StorageError;
use std::fmt;

/// Any error the FLAT façade can produce.
#[derive(Debug)]
pub enum FlatError {
    /// An error from the paged storage substrate (I/O, corrupt pages,
    /// out-of-range accesses). The source chain continues into the
    /// wrapped [`StorageError`].
    Storage(StorageError),
    /// The requested build is invalid or the database is not in a state
    /// that can be built (e.g. it already holds an index).
    Build(String),
    /// The requested mutation is not possible (e.g. opening a writer on
    /// an index built without stable element ids or a fixed domain).
    Update(String),
    /// A query was malformed (e.g. a batch terminal invoked on the wrong
    /// kind of query set).
    Query(String),
    /// Saving or opening a database file failed structurally (the file
    /// is not a FLAT database, or holds no descriptor).
    Persist(String),
}

impl fmt::Display for FlatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlatError::Storage(e) => write!(f, "storage error: {e}"),
            FlatError::Build(msg) => write!(f, "build error: {msg}"),
            FlatError::Update(msg) => write!(f, "update error: {msg}"),
            FlatError::Query(msg) => write!(f, "query error: {msg}"),
            FlatError::Persist(msg) => write!(f, "persistence error: {msg}"),
        }
    }
}

impl std::error::Error for FlatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlatError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for FlatError {
    fn from(e: StorageError) -> Self {
        FlatError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn storage_errors_convert_and_chain() {
        let inner = std::io::Error::other("device gone");
        let e: FlatError = StorageError::from(inner).into();
        assert!(e.to_string().contains("device gone"));
        // Two-level source chain: FlatError → StorageError → io::Error.
        let storage = e.source().expect("storage source");
        assert!(storage.source().is_some(), "io source missing");
    }

    #[test]
    fn every_variant_displays_its_message() {
        for (e, needle) in [
            (FlatError::Build("already built".into()), "already built"),
            (FlatError::Update("no domain".into()), "no domain"),
            (FlatError::Query("empty batch".into()), "empty batch"),
            (FlatError::Persist("no descriptor".into()), "no descriptor"),
        ] {
            assert!(e.to_string().contains(needle), "{e}");
            assert!(e.source().is_none());
        }
    }

    #[test]
    fn errors_cross_thread_boundaries() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<FlatError>();
    }
}
