//! The [`FlatIndex`] structure and its bulkload (§V).

use crate::meta::{assign_slots, encode_meta_leaf, plan_records, MetaRecord, MetaRecordId};
use crate::neighbors::compute_neighbors;
use crate::partition::{partition, Partition};
use flat_geom::Aabb;
use flat_rtree::node::{encode_leaf, ChildRef};
use flat_rtree::{build_inner_levels, leaf_capacity, Entry, LeafLayout};
use flat_storage::{Page, PageId, PageKind, PageWrite, StorageError, PAGE_SIZE};
use std::time::{Duration, Instant};

/// How metadata records are ordered across seed-tree leaf pages.
///
/// The paper requires spatially close records to share leaf pages
/// (§V-B.2) but does not fix an order. The crawl reads 3-D *blobs* of
/// records, so the order determines how many metadata pages a blob spans —
/// `exp_meta_order` in the benchmark crate measures the difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetaOrder {
    /// Hilbert-curve order of the partition centers (default): a blob of
    /// `k` records spans ~`k / records-per-page` pages.
    #[default]
    Hilbert,
    /// Raw STR output order (slab → run → chunk): a blob is scattered
    /// across one page run per (slab, run) pair it touches.
    StrOutput,
}

/// Build-time options.
#[derive(Debug, Clone, Copy)]
pub struct FlatOptions {
    /// Object-page layout; [`LeafLayout::MbrOnly`] (85 elements/page)
    /// matches the paper.
    pub layout: LeafLayout,
    /// The domain the partition tiling must cover. Defaults to the union
    /// of the element MBRs.
    pub domain: Option<Aabb>,
    /// Multiplies every partition MBR's volume after stretching (about its
    /// center) before neighbors are computed. `1.0` (the default) is the
    /// paper's algorithm; larger values reproduce the partition-size study
    /// of Figure 21. Inflation preserves both crawl invariants (boxes only
    /// grow).
    pub partition_volume_scale: f64,
    /// Metadata record packing order (see [`MetaOrder`]).
    pub meta_order: MetaOrder,
}

impl Default for FlatOptions {
    fn default() -> Self {
        FlatOptions {
            layout: LeafLayout::MbrOnly,
            domain: None,
            partition_volume_scale: 1.0,
            meta_order: MetaOrder::default(),
        }
    }
}

/// What the bulkload did, with the phase timings of Figure 10 and the
/// pointer statistics of Figures 20/21.
#[derive(Debug, Clone)]
pub struct BuildStats {
    /// Time spent in the STR partitioning pass (the "Partitioning" series
    /// of Figure 10).
    pub partition_time: Duration,
    /// Time spent computing neighbors via the temporary R-tree (the
    /// "Finding Neighbors" series of Figure 10).
    pub neighbor_time: Duration,
    /// Time spent writing object pages, metadata and the seed tree.
    pub write_time: Duration,
    /// Number of partitions (= object pages).
    pub num_partitions: usize,
    /// Neighbor pointer count per partition (the Figure 20 histogram).
    pub neighbor_counts: Vec<u32>,
    /// Mean partition MBR volume (the Figure 21 x-axis).
    pub avg_partition_volume: f64,
}

impl BuildStats {
    /// Total build time.
    pub fn total_time(&self) -> Duration {
        self.partition_time + self.neighbor_time + self.write_time
    }

    /// Total neighbor pointers stored.
    pub fn total_neighbor_pointers(&self) -> u64 {
        self.neighbor_counts.iter().map(|&c| c as u64).sum()
    }

    /// Mean pointers per partition.
    pub fn avg_neighbor_pointers(&self) -> f64 {
        if self.neighbor_counts.is_empty() {
            0.0
        } else {
            self.total_neighbor_pointers() as f64 / self.neighbor_counts.len() as f64
        }
    }

    /// Median pointers per partition (the statistic the paper tracks in
    /// Figure 20: "the median stays the same … and appears to converge at
    /// 30").
    pub fn median_neighbor_pointers(&self) -> u32 {
        if self.neighbor_counts.is_empty() {
            return 0;
        }
        // Quickselect instead of a full sort: figure drivers call this per
        // density step over hundreds of thousands of counts.
        let mut counts = self.neighbor_counts.clone();
        let mid = counts.len() / 2;
        let (_, median, _) = counts.select_nth_unstable(mid);
        *median
    }
}

/// Per-partition input to the metadata writer, delivered in metadata
/// stream order (Hilbert order of the partition centers by default).
///
/// `neighbors` holds *original* partition indices; the writer translates
/// them to physical [`MetaRecordId`]s via the record plan.
#[derive(Debug, Clone)]
pub(crate) struct MetaPartition<'a> {
    /// Original partition index (STR output order) — must equal the
    /// `order` entry at the stream position.
    pub index: u32,
    /// Tight MBR of the partition's elements.
    pub page_mbr: Aabb,
    /// The partition MBR.
    pub partition_mbr: Aabb,
    /// The already-written object page.
    pub object_page: PageId,
    /// Sorted original indices of the neighboring partitions (borrowed
    /// from the in-memory partition vector, owned when streamed off a
    /// spill merge).
    pub neighbors: std::borrow::Cow<'a, [u32]>,
}

/// Writes the metadata leaves and the seed-tree directory from a
/// *stream* of per-partition data.
///
/// This is the single metadata serializer behind both build paths: the
/// in-memory [`FlatIndex::build`] adapts its partition vector into the
/// stream, the out-of-core `FlatIndexBuilder` feeds it from an external
/// sort — which is what makes the two paths bit-identical by
/// construction. The stream holds one partition at a time; only the
/// fixed-size planning tables (`order`, `counts`, the record plan and the
/// per-partition primary addresses — a few dozen bytes per partition, no
/// elements) are resident.
///
/// * `order[pos]` — original partition index at stream position `pos`.
/// * `counts[pos]` — that partition's neighbor count (drives the record
///   plan, which must be complete before the first page is written so
///   every pointer has a known physical address).
/// * `stream` — yields exactly `order.len()` items, position-aligned with
///   `order`.
pub(crate) fn write_meta_and_seed<'a>(
    pool: &mut impl PageWrite,
    order: &[u32],
    counts: &[usize],
    mut stream: impl Iterator<Item = Result<MetaPartition<'a>, StorageError>>,
    layout: LeafLayout,
    num_elements: u64,
    num_object_pages: u64,
) -> Result<FlatIndex, StorageError> {
    assert!(!order.is_empty(), "caller handles the empty index");
    assert_eq!(order.len(), counts.len());

    // Plan the record stream (over-full neighbor lists are split into
    // continuation chunks), assign slots, allocate pages — then every
    // neighbor pointer and continuation pointer has a known physical
    // address before serialization starts. `plan[*].partition` indexes
    // into `order`, not original partition indices.
    let plan = plan_records(counts);
    let slots = assign_slots(&plan);
    let num_meta_pages = slots.last().expect("order is non-empty").0 + 1;
    let mut meta_ids = Vec::with_capacity(num_meta_pages);
    for _ in 0..num_meta_pages {
        meta_ids.push(pool.alloc()?);
    }
    let address_of_chunk = |c: usize| MetaRecordId {
        page: meta_ids[slots[c].0],
        slot: slots[c].1,
    };
    // Primary (addressable) record of each *original* partition index.
    let mut primary_chunk = vec![usize::MAX; order.len()];
    for (c, planned) in plan.iter().enumerate() {
        if planned.primary {
            primary_chunk[order[planned.partition] as usize] = c;
        }
    }
    let address_of_partition = |i: usize| address_of_chunk(primary_chunk[i]);

    // Serialize the records page by page, in stream order. `current`
    // holds the one partition whose chunks are being emitted.
    let mut page = Page::new();
    let mut current: Option<MetaPartition<'_>> = None;
    let mut current_pos = usize::MAX;
    let mut chunk_idx = 0usize;
    let mut leaf_refs: Vec<ChildRef> = Vec::with_capacity(num_meta_pages);
    for (seq, &meta_id) in meta_ids.iter().enumerate() {
        let mut records = Vec::new();
        let mut leaf_mbr = Aabb::empty();
        while chunk_idx < plan.len() && slots[chunk_idx].0 == seq {
            let planned = &plan[chunk_idx];
            if planned.partition != current_pos {
                let next = stream
                    .next()
                    .expect("stream yields one item per order entry")?;
                debug_assert_eq!(
                    next.index, order[planned.partition],
                    "metadata stream out of order"
                );
                current = Some(next);
                current_pos = planned.partition;
            }
            let p = current.as_ref().expect("set above");
            // The next chunk of the same partition, if any, continues
            // this record's neighbor list.
            let continuation = plan
                .get(chunk_idx + 1)
                .filter(|next| next.partition == planned.partition)
                .map(|_| address_of_chunk(chunk_idx + 1));
            records.push(MetaRecord {
                page_mbr: p.page_mbr,
                partition_mbr: p.partition_mbr,
                object_page: p.object_page,
                neighbors: p.neighbors[planned.start..planned.start + planned.len]
                    .iter()
                    .map(|&j| address_of_partition(j as usize))
                    .collect(),
                continuation,
                is_continuation: !planned.primary,
                is_dead: false,
            });
            // The seed tree indexes records by their *page MBR*
            // (§V-B.2: "we index each record R with R's page MBR as
            // key").
            leaf_mbr.stretch_to_contain(&p.page_mbr);
            chunk_idx += 1;
        }
        encode_meta_leaf(&records, &mut page);
        pool.write(meta_id, &page, PageKind::SeedLeaf)?;
        leaf_refs.push(ChildRef {
            mbr: leaf_mbr,
            page: meta_id,
        });
    }
    debug_assert_eq!(chunk_idx, plan.len());
    debug_assert!(stream.next().is_none(), "stream longer than the order");

    // Seed-tree directory over the metadata leaves.
    let (seed_root, seed_height, num_seed_inner_pages) =
        build_inner_levels(pool, leaf_refs, PageKind::SeedInner)?;

    Ok(FlatIndex {
        seed_root: Some(seed_root),
        seed_height,
        layout,
        num_elements,
        num_object_pages,
        num_meta_pages: num_meta_pages as u64,
        num_seed_inner_pages,
    })
}

/// A built FLAT index.
///
/// Like the R-tree baselines, the index does not own its pages: all
/// operations take the pool it was built in. Construction is exclusive
/// ([`PageWrite`]); queries are shared reads (`&impl PageRead`), so a
/// built index can serve many threads through one
/// [`flat_storage::ConcurrentBufferPool`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatIndex {
    pub(crate) seed_root: Option<PageId>,
    /// Height counting the metadata-leaf level as 1.
    pub(crate) seed_height: u32,
    pub(crate) layout: LeafLayout,
    pub(crate) num_elements: u64,
    pub(crate) num_object_pages: u64,
    pub(crate) num_meta_pages: u64,
    pub(crate) num_seed_inner_pages: u64,
}

impl FlatIndex {
    /// Bulk-loads a FLAT index (the paper's Algorithm 1 plus the data
    /// structure construction of §V-B).
    pub fn build(
        pool: &mut impl PageWrite,
        entries: Vec<Entry>,
        options: FlatOptions,
    ) -> Result<(FlatIndex, BuildStats), StorageError> {
        assert!(
            options.partition_volume_scale >= 1.0,
            "partition inflation must not shrink partitions (got {})",
            options.partition_volume_scale
        );
        let num_elements = entries.len() as u64;
        let capacity = leaf_capacity(options.layout);

        // Phase 1: STR partitioning (tiling + stretching).
        let t0 = Instant::now();
        let mut partitions = partition(entries, capacity, options.domain);
        if options.partition_volume_scale > 1.0 {
            for p in &mut partitions {
                p.partition_mbr = p.partition_mbr.scale_volume(options.partition_volume_scale);
            }
        }
        let partition_time = t0.elapsed();

        // Phase 2: neighborhood computation via a temporary R-tree.
        let t1 = Instant::now();
        compute_neighbors(&mut partitions)?;
        let neighbor_time = t1.elapsed();

        // Phase 3: write object pages, metadata pages, seed directory.
        let t2 = Instant::now();
        let index = Self::write_structures(
            pool,
            &partitions,
            options.layout,
            options.meta_order,
            num_elements,
        )?;
        let write_time = t2.elapsed();

        let stats = BuildStats {
            partition_time,
            neighbor_time,
            write_time,
            num_partitions: partitions.len(),
            neighbor_counts: partitions
                .iter()
                .map(|p| p.neighbors.len() as u32)
                .collect(),
            avg_partition_volume: if partitions.is_empty() {
                0.0
            } else {
                partitions
                    .iter()
                    .map(|p| p.partition_mbr.volume())
                    .sum::<f64>()
                    / partitions.len() as f64
            },
        };
        Ok((index, stats))
    }

    fn write_structures(
        pool: &mut impl PageWrite,
        partitions: &[Partition],
        layout: LeafLayout,
        meta_order: MetaOrder,
        num_elements: u64,
    ) -> Result<FlatIndex, StorageError> {
        if partitions.is_empty() {
            return Ok(FlatIndex::empty(layout));
        }

        // Object pages, in partition (STR tile) order.
        let mut page = Page::new();
        let mut object_ids = Vec::with_capacity(partitions.len());
        for p in partitions {
            encode_leaf(&p.elements, layout, &mut page);
            let id = pool.alloc()?;
            pool.write(id, &page, PageKind::ObjectPage)?;
            object_ids.push(id);
        }

        // Metadata records are packed in **Hilbert order** of the partition
        // centers. The paper stores records in seed-tree leaves "so that
        // spatially close records are stored on the same leaf page"
        // (§V-B.2); raw STR order only groups records along the last sort
        // dimension, while Hilbert order keeps full 3-D blobs of partitions
        // on few metadata pages — which is what the crawl actually touches.
        let order: Vec<u32> = match meta_order {
            MetaOrder::Hilbert => {
                let bounds = Aabb::union_all(partitions.iter().map(|p| p.partition_mbr));
                let disc = flat_sfc::Discretizer::new(bounds.min.into(), bounds.max.into(), 16);
                let mut order: Vec<u32> = (0..partitions.len() as u32).collect();
                let keys: Vec<u64> = partitions
                    .iter()
                    .map(|p| disc.hilbert_key(p.partition_mbr.center().into()))
                    .collect();
                order.sort_by_key(|&i| keys[i as usize]);
                order
            }
            MetaOrder::StrOutput => (0..partitions.len() as u32).collect(),
        };

        let counts: Vec<usize> = order
            .iter()
            .map(|&i| partitions[i as usize].neighbors.len())
            .collect();
        let stream = order.iter().map(|&i| {
            let p = &partitions[i as usize];
            Ok(MetaPartition {
                index: i,
                page_mbr: p.page_mbr,
                partition_mbr: p.partition_mbr,
                object_page: object_ids[i as usize],
                neighbors: std::borrow::Cow::Borrowed(p.neighbors.as_slice()),
            })
        });
        write_meta_and_seed(
            pool,
            &order,
            &counts,
            stream,
            layout,
            num_elements,
            object_ids.len() as u64,
        )
    }

    /// An index over zero elements.
    pub(crate) fn empty(layout: LeafLayout) -> FlatIndex {
        FlatIndex {
            seed_root: None,
            seed_height: 0,
            layout,
            num_elements: 0,
            num_object_pages: 0,
            num_meta_pages: 0,
            num_seed_inner_pages: 0,
        }
    }

    /// Number of indexed elements.
    pub fn num_elements(&self) -> u64 {
        self.num_elements
    }

    /// The object-page layout.
    pub fn layout(&self) -> LeafLayout {
        self.layout
    }

    /// Seed-tree height (1 = the root is a metadata leaf; 0 = empty).
    pub fn seed_height(&self) -> u32 {
        self.seed_height
    }

    /// Number of object pages (= partitions).
    pub fn num_object_pages(&self) -> u64 {
        self.num_object_pages
    }

    /// Number of metadata (seed-leaf) pages.
    pub fn num_meta_pages(&self) -> u64 {
        self.num_meta_pages
    }

    /// Number of seed-tree directory pages.
    pub fn num_seed_inner_pages(&self) -> u64 {
        self.num_seed_inner_pages
    }

    /// Bytes used by object pages (the Figure 11 "Object Pages" component).
    pub fn object_bytes(&self) -> u64 {
        self.num_object_pages * PAGE_SIZE as u64
    }

    /// Bytes used by the seed tree plus metadata (the Figure 11
    /// "Seed Tree + Metadata" component).
    pub fn seed_and_meta_bytes(&self) -> u64 {
        (self.num_meta_pages + self.num_seed_inner_pages) * PAGE_SIZE as u64
    }

    /// Total index size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.object_bytes() + self.seed_and_meta_bytes()
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::meta::decode_meta_leaf;
    use flat_geom::Point3;
    use flat_storage::{BufferPool, MemStore, PageStore};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    pub(crate) fn random_entries(n: usize, seed: u64) -> Vec<Entry> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let c = Point3::new(
                    rng.gen_range(0.0..100.0),
                    rng.gen_range(0.0..100.0),
                    rng.gen_range(0.0..100.0),
                );
                Entry::new(i as u64, Aabb::cube(c, rng.gen_range(0.05..0.5)))
            })
            .collect()
    }

    fn build(n: usize) -> (BufferPool<MemStore>, FlatIndex, BuildStats) {
        let mut pool = BufferPool::new(MemStore::new(), 1 << 16);
        let (index, stats) =
            FlatIndex::build(&mut pool, random_entries(n, 21), FlatOptions::default()).unwrap();
        (pool, index, stats)
    }

    #[test]
    fn build_accounts_every_page() {
        let (pool, index, stats) = build(20_000);
        assert_eq!(index.num_elements(), 20_000);
        assert_eq!(index.num_object_pages(), stats.num_partitions as u64);
        assert_eq!(
            pool.store().num_pages(),
            index.num_object_pages() + index.num_meta_pages() + index.num_seed_inner_pages()
        );
        assert_eq!(
            index.size_bytes(),
            pool.store().num_pages() * PAGE_SIZE as u64
        );
    }

    #[test]
    fn empty_build_produces_empty_index() {
        let mut pool = BufferPool::new(MemStore::new(), 16);
        let (index, stats) =
            FlatIndex::build(&mut pool, Vec::new(), FlatOptions::default()).unwrap();
        assert_eq!(index.num_elements(), 0);
        assert_eq!(index.seed_height(), 0);
        assert_eq!(stats.num_partitions, 0);
        assert_eq!(pool.store().num_pages(), 0);
    }

    #[test]
    fn metadata_pointers_resolve_to_real_records() {
        let (mut pool, index, _) = build(10_000);
        // Walk the seed tree, decode every record, and chase every
        // neighbor pointer: it must decode to a record whose partition MBR
        // intersects the pointing record's partition MBR (that's the
        // definition of neighbor).
        let mut meta_pages = Vec::new();
        collect_meta_pages(&mut pool, &index, &mut meta_pages);
        assert_eq!(meta_pages.len() as u64, index.num_meta_pages());
        let mut checked = 0;
        for &mp in &meta_pages {
            let records = {
                let page = pool.read(mp, PageKind::SeedLeaf).unwrap();
                decode_meta_leaf(page).unwrap()
            };
            for record in records {
                for n in &record.neighbors {
                    let target = {
                        let page = pool.read(n.page, PageKind::SeedLeaf).unwrap();
                        crate::meta::decode_meta_record(page, n.slot).unwrap()
                    };
                    assert!(
                        record.partition_mbr.intersects(&target.partition_mbr),
                        "pointer to a non-intersecting partition"
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked > 0, "no pointers were checked");
    }

    pub(crate) fn collect_meta_pages(
        pool: &mut BufferPool<MemStore>,
        index: &FlatIndex,
        out: &mut Vec<PageId>,
    ) {
        let Some(root) = index.seed_root else { return };
        let mut stack = vec![(root, index.seed_height)];
        while let Some((pid, level)) = stack.pop() {
            if level == 1 {
                out.push(pid);
            } else {
                let page = pool.read(pid, PageKind::SeedInner).unwrap();
                for child in flat_rtree::node::decode_inner(page).unwrap() {
                    stack.push((child.page, level - 1));
                }
            }
        }
    }

    #[test]
    fn build_stats_are_consistent() {
        let (_, index, stats) = build(30_000);
        assert_eq!(stats.neighbor_counts.len(), stats.num_partitions);
        assert!(stats.avg_neighbor_pointers() > 0.0);
        assert!(stats.median_neighbor_pointers() > 0);
        assert!(stats.avg_partition_volume > 0.0);
        assert!(index.seed_height() >= 1);
        assert!(stats.total_time() >= stats.partition_time);
    }

    #[test]
    fn partition_inflation_increases_pointer_count() {
        let entries = random_entries(20_000, 33);
        let mut pool_a = BufferPool::new(MemStore::new(), 1 << 16);
        let (_, base) =
            FlatIndex::build(&mut pool_a, entries.clone(), FlatOptions::default()).unwrap();
        let mut pool_b = BufferPool::new(MemStore::new(), 1 << 16);
        let (_, inflated) = FlatIndex::build(
            &mut pool_b,
            entries,
            FlatOptions {
                partition_volume_scale: 2.0,
                ..FlatOptions::default()
            },
        )
        .unwrap();
        assert!(
            inflated.avg_neighbor_pointers() > base.avg_neighbor_pointers(),
            "inflation must add pointers: {} vs {}",
            inflated.avg_neighbor_pointers(),
            base.avg_neighbor_pointers()
        );
        assert!(inflated.avg_partition_volume > base.avg_partition_volume);
    }

    #[test]
    #[should_panic(expected = "must not shrink")]
    fn shrinking_inflation_is_rejected() {
        let mut pool = BufferPool::new(MemStore::new(), 16);
        let _ = FlatIndex::build(
            &mut pool,
            random_entries(10, 1),
            FlatOptions {
                partition_volume_scale: 0.5,
                ..FlatOptions::default()
            },
        );
    }

    #[test]
    fn index_is_bigger_than_bare_rtree_but_modestly() {
        // Fig 11: FLAT stores the same object/leaf pages plus metadata —
        // bigger, but only by the metadata share.
        let entries = random_entries(30_000, 55);
        let mut pool_flat = BufferPool::new(MemStore::new(), 1 << 16);
        let (flat, _) =
            FlatIndex::build(&mut pool_flat, entries.clone(), FlatOptions::default()).unwrap();
        let mut pool_rt = BufferPool::new(MemStore::new(), 1 << 16);
        let rtree = flat_rtree::RTree::bulk_load(
            &mut pool_rt,
            entries,
            flat_rtree::BulkLoad::Str,
            flat_rtree::RTreeConfig::default(),
        )
        .unwrap();
        assert!(flat.size_bytes() > rtree.size_bytes());
        assert!(
            (flat.size_bytes() as f64) < rtree.size_bytes() as f64 * 1.6,
            "metadata overhead should be modest: {} vs {}",
            flat.size_bytes(),
            rtree.size_bytes()
        );
    }
}
