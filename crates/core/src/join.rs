//! Exact ε-distance joins between two FLAT-indexed datasets by
//! co-crawling both neighbor-link graphs.
//!
//! The engine sweeps the outer dataset's partitions in storage order
//! (STR creation order, which is spatially coherent), and for each outer
//! partition crawls the inner dataset's link graph with the query box
//! `page_mbr.inflate(ε)`. Correctness leans on the same exhaustiveness
//! guarantee as range queries: if two elements are within Euclidean
//! distance ε, then every per-axis gap between their MBRs is at most ε,
//! so the inner element intersects the inflated box and the crawl is
//! guaranteed to reach its partition. Euclidean (not per-axis) pruning
//! is then applied at the partition, page, and element level via
//! [`Aabb::distance_sq`].
//!
//! The *co*-crawl saving: consecutive outer partitions are close in
//! space, so the inner partitions matched by one sweep step are reused
//! as crawl seeds for the next step — most steps never touch the inner
//! seed tree at all ([`JoinStats::frontier_reuses`] vs
//! [`JoinStats::seed_descents`]).

use crate::delta::DeltaIndex;
use crate::index::FlatIndex;
use crate::meta::{decode_meta_leaf, decode_meta_record, MetaRecordId};
use crate::query::{is_live, CrawlState, QueryStats, Tombstones};
use flat_geom::Aabb;
use flat_rtree::node::{decode_inner, decode_leaf};
use flat_rtree::LeafLayout;
use flat_storage::{PageId, PageKind, PageRead, StorageError};

/// Resident summary of one live partition: everything the join sweep
/// needs without touching the metadata pages again.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PartSummary {
    /// The partition's object page.
    pub(crate) object_page: PageId,
    /// Tight MBR of the partition's own elements.
    pub(crate) page_mbr: Aabb,
}

/// One side of a distance join: any index the crawl understands.
///
/// Both sides may be the same index (a self-join, which reports
/// self-pairs `(x, x)` and both orientations of every other pair).
#[derive(Clone, Copy)]
pub enum JoinInput<'a> {
    /// A bulkloaded, immutable index.
    Flat(&'a FlatIndex),
    /// An updatable index; tombstoned elements and retired partitions
    /// are excluded from the join.
    Delta(&'a DeltaIndex),
}

impl<'a> JoinInput<'a> {
    fn tombstones(&self) -> Option<&'a Tombstones> {
        match self {
            JoinInput::Flat(_) => None,
            JoinInput::Delta(d) => Some(d.tombstones()),
        }
    }

    fn seed(
        &self,
        pool: &impl PageRead,
        query: &Aabb,
        stats: &mut QueryStats,
    ) -> Result<Option<MetaRecordId>, StorageError> {
        match self {
            JoinInput::Flat(i) => i.seed(pool, query, stats, None, None),
            JoinInput::Delta(d) => d.seed(pool, query, stats, None),
        }
    }

    /// Live-partition summaries in storage order, for the outer sweep.
    fn summaries(&self, pool: &impl PageRead) -> Result<Vec<PartSummary>, StorageError> {
        match self {
            JoinInput::Flat(i) => flat_summaries(i, pool),
            JoinInput::Delta(d) => Ok(d.partition_summaries()),
        }
    }
}

/// Walks the seed tree of a pristine [`FlatIndex`] and summarizes every
/// primary record. Leaves are visited in page-id order, which for an STR
/// bulkload is the tiling's creation order — the spatial coherence the
/// sweep's frontier reuse depends on.
fn flat_summaries(
    index: &FlatIndex,
    pool: &impl PageRead,
) -> Result<Vec<PartSummary>, StorageError> {
    let Some(root) = index.seed_root else {
        return Ok(Vec::new());
    };
    let mut stack = vec![(root, index.seed_height)];
    let mut leaves = Vec::new();
    while let Some((page_id, level)) = stack.pop() {
        if level == 1 {
            leaves.push(page_id);
        } else {
            let page = pool.read_page(page_id, PageKind::SeedInner)?;
            for child in decode_inner(&page)? {
                stack.push((child.page, level - 1));
            }
        }
    }
    leaves.sort_unstable_by_key(|p| p.0);
    let mut out = Vec::new();
    for page_id in leaves {
        let page = pool.read_page(page_id, PageKind::SeedLeaf)?;
        for record in decode_meta_leaf(&page)? {
            if record.is_continuation || record.is_dead {
                continue;
            }
            out.push(PartSummary {
                object_page: record.object_page,
                page_mbr: record.page_mbr,
            });
        }
    }
    Ok(out)
}

/// Counters for one join run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// Result pairs emitted.
    pub pairs: u64,
    /// Outer partitions swept.
    pub outer_partitions: u64,
    /// Inner metadata records dequeued across all crawls.
    pub crawl_records: u64,
    /// Object pages read (logically), both sides.
    pub object_pages_read: u64,
    /// Sweep steps whose crawl was seeded from the inner seed tree.
    pub seed_descents: u64,
    /// Sweep steps whose crawl reused the previous step's partner
    /// partitions as seeds — the co-crawl saving.
    pub frontier_reuses: u64,
    /// Element-pair distance tests after all MBR-level pruning.
    pub element_tests: u64,
}

impl JoinStats {
    /// Folds another run's counters into this one (used by the sharded
    /// fan-out to report one aggregate set of counters). `pairs` is
    /// summed too; the caller overwrites it after deduplication.
    pub fn absorb(&mut self, other: &JoinStats) {
        self.pairs += other.pairs;
        self.outer_partitions += other.outer_partitions;
        self.crawl_records += other.crawl_records;
        self.object_pages_read += other.object_pages_read;
        self.seed_descents += other.seed_descents;
        self.frontier_reuses += other.frontier_reuses;
        self.element_tests += other.element_tests;
    }
}

/// The result of a join: matching id pairs plus run counters.
#[derive(Debug, Clone, Default)]
pub struct JoinResult {
    /// `(outer id, inner id)` for every element pair within distance ε,
    /// sorted ascending.
    pub pairs: Vec<(u64, u64)>,
    /// Counters for the run.
    pub stats: JoinStats,
}

/// Exact ε-distance join over two indexed datasets (see the module docs
/// for the algorithm).
#[derive(Debug, Clone, Copy)]
pub struct JoinEngine {
    eps: f64,
}

impl JoinEngine {
    /// An engine joining element pairs whose MBRs are within Euclidean
    /// distance `eps` (touching or overlapping MBRs count as distance 0).
    ///
    /// # Panics
    /// If `eps` is negative or not finite.
    pub fn new(eps: f64) -> JoinEngine {
        assert!(
            eps.is_finite() && eps >= 0.0,
            "join distance must be finite and non-negative, got {eps}"
        );
        JoinEngine { eps }
    }

    /// The join distance.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Runs the join, returning every `(outer id, inner id)` pair within
    /// distance ε, sorted ascending. Each side reads through its own
    /// pool, so the two datasets may live in different stores.
    pub fn join(
        &self,
        outer_pool: &impl PageRead,
        outer: JoinInput<'_>,
        inner_pool: &impl PageRead,
        inner: JoinInput<'_>,
    ) -> Result<JoinResult, StorageError> {
        let eps2 = self.eps * self.eps;
        let outer_tombs = outer.tombstones();
        let inner_tombs = inner.tombstones();
        let mut stats = JoinStats::default();
        let mut pairs: Vec<(u64, u64)> = Vec::new();
        // Partner partitions of the previous sweep step: `(record,
        // partition MBR)` of every inner partition whose partition MBR
        // intersected the previous query box.
        let mut frontier: Vec<(MetaRecordId, Aabb)> = Vec::new();
        for op in outer.summaries(outer_pool)? {
            stats.outer_partitions += 1;
            let query = op.page_mbr.inflate(self.eps);

            // Seed the inner crawl: reuse the previous partners that are
            // still relevant (their partition MBR intersects the new
            // query box, so they belong to the connected subgraph the
            // crawl must cover), falling back to a seed-tree descent.
            let mut state = CrawlState {
                queue: std::collections::VecDeque::new(),
                seen: std::collections::HashSet::new(),
            };
            for (record, mbr) in &frontier {
                if mbr.intersects(&query) && state.seen.insert(*record) {
                    state.queue.push_back(*record);
                }
            }
            if state.queue.is_empty() {
                let mut seed_stats = QueryStats::default();
                let seed = inner.seed(inner_pool, &query, &mut seed_stats)?;
                stats.object_pages_read += seed_stats.object_pages_read;
                stats.seed_descents += 1;
                let Some(seed) = seed else {
                    // No live inner element intersects the inflated box,
                    // so this outer partition has no partners at all.
                    frontier.clear();
                    continue;
                };
                state.seen.insert(seed);
                state.queue.push_back(seed);
            } else {
                stats.frontier_reuses += 1;
            }

            // Crawl the inner graph under `query`, collecting candidate
            // elements (Euclidean-pruned against the outer page MBR) and
            // this step's partner partitions.
            let mut candidates: Vec<(u64, Aabb)> = Vec::new();
            let mut partners: Vec<(MetaRecordId, Aabb)> = Vec::new();
            while let Some(addr) = state.queue.pop_front() {
                stats.crawl_records += 1;
                let record = {
                    let page = inner_pool.read_page(addr.page, PageKind::SeedLeaf)?;
                    decode_meta_record(&page, addr.slot)?
                };
                if record.is_dead {
                    continue;
                }
                if record.page_mbr.intersects(&query)
                    && op.page_mbr.distance_sq(&record.page_mbr) <= eps2
                {
                    stats.object_pages_read += 1;
                    let page = inner_pool.read_page(record.object_page, PageKind::ObjectPage)?;
                    let (layout, entries) = decode_leaf(&page)?;
                    for (slot, entry) in entries.iter().enumerate() {
                        if is_live(inner_tombs, record.object_page, slot)
                            && op.page_mbr.distance_sq(&entry.mbr) <= eps2
                        {
                            let id = match layout {
                                LeafLayout::MbrOnly => (record.object_page.0 << 16) | entry.id,
                                LeafLayout::WithIds => entry.id,
                            };
                            candidates.push((id, entry.mbr));
                        }
                    }
                }
                if record.partition_mbr.intersects(&query) {
                    partners.push((addr, record.partition_mbr));
                    for neighbor in record.neighbors {
                        if state.seen.insert(neighbor) {
                            state.queue.push_back(neighbor);
                        }
                    }
                    let mut next = record.continuation;
                    while let Some(chunk_addr) = next {
                        let chunk = {
                            let page = inner_pool.read_page(chunk_addr.page, PageKind::SeedLeaf)?;
                            decode_meta_record(&page, chunk_addr.slot)?
                        };
                        for neighbor in chunk.neighbors {
                            if state.seen.insert(neighbor) {
                                state.queue.push_back(neighbor);
                            }
                        }
                        next = chunk.continuation;
                    }
                }
            }
            frontier = partners;
            if candidates.is_empty() {
                continue;
            }

            // Verify against the outer partition's own elements.
            stats.object_pages_read += 1;
            let page = outer_pool.read_page(op.object_page, PageKind::ObjectPage)?;
            let (layout, entries) = decode_leaf(&page)?;
            for (slot, entry) in entries.iter().enumerate() {
                if !is_live(outer_tombs, op.object_page, slot) {
                    continue;
                }
                let outer_id = match layout {
                    LeafLayout::MbrOnly => (op.object_page.0 << 16) | entry.id,
                    LeafLayout::WithIds => entry.id,
                };
                for (inner_id, inner_mbr) in &candidates {
                    stats.element_tests += 1;
                    if entry.mbr.distance_sq(inner_mbr) <= eps2 {
                        pairs.push((outer_id, *inner_id));
                    }
                }
            }
        }
        pairs.sort_unstable();
        stats.pairs = pairs.len() as u64;
        Ok(JoinResult { pairs, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::tests::random_entries;
    use crate::index::FlatOptions;
    use flat_rtree::Entry;
    use flat_storage::BufferPool;

    fn options(layout: LeafLayout) -> FlatOptions {
        FlatOptions {
            layout,
            ..FlatOptions::default()
        }
    }

    fn build(
        entries: Vec<Entry>,
        layout: LeafLayout,
    ) -> (BufferPool<flat_storage::MemStore>, FlatIndex) {
        let mut pool = BufferPool::new(flat_storage::MemStore::new(), 4096);
        let (index, _) = FlatIndex::build(&mut pool, entries, options(layout)).unwrap();
        (pool, index)
    }

    /// Brute-force oracle: all (id_a, id_b) with MBR distance ≤ eps,
    /// sorted. Ids follow the index's own synthesis for `MbrOnly`.
    fn brute_force(
        a: &[Entry],
        b: &[Entry],
        a_hits: &[(u64, Aabb)],
        b_hits: &[(u64, Aabb)],
        eps: f64,
    ) -> Vec<(u64, u64)> {
        assert_eq!(a.len(), a_hits.len());
        assert_eq!(b.len(), b_hits.len());
        let mut pairs = Vec::new();
        for (ida, ma) in a_hits {
            for (idb, mb) in b_hits {
                if ma.distance_sq(mb) <= eps * eps {
                    pairs.push((*ida, *idb));
                }
            }
        }
        pairs.sort_unstable();
        pairs
    }

    /// The id/MBR pairs the index would report for a whole-domain range
    /// query — the ground truth id synthesis for either layout.
    fn ids_of(pool: &impl PageRead, index: &FlatIndex) -> Vec<(u64, Aabb)> {
        let everything = Aabb::new(
            flat_geom::Point3::new(-1e9, -1e9, -1e9),
            flat_geom::Point3::new(1e9, 1e9, 1e9),
        );
        let mut hits: Vec<_> = index
            .range_query(pool, &everything)
            .unwrap()
            .into_iter()
            .map(|h| (h.id, h.mbr))
            .collect();
        hits.sort_unstable_by_key(|(id, _)| *id);
        hits
    }

    #[test]
    fn join_matches_brute_force_for_both_layouts() {
        for layout in [LeafLayout::WithIds, LeafLayout::MbrOnly] {
            let a = random_entries(600, 11);
            let b = random_entries(500, 23);
            let (pool_a, index_a) = build(a.clone(), layout);
            let (pool_b, index_b) = build(b.clone(), layout);
            let a_hits = ids_of(&pool_a, &index_a);
            let b_hits = ids_of(&pool_b, &index_b);
            for eps in [0.0, 0.5, 2.0, 7.5] {
                let expected = brute_force(&a, &b, &a_hits, &b_hits, eps);
                let result = JoinEngine::new(eps)
                    .join(
                        &pool_a,
                        JoinInput::Flat(&index_a),
                        &pool_b,
                        JoinInput::Flat(&index_b),
                    )
                    .unwrap();
                assert_eq!(result.pairs, expected, "layout {layout:?} eps {eps}");
                assert_eq!(result.stats.pairs, expected.len() as u64);
            }
        }
    }

    #[test]
    fn self_join_reports_both_orientations_and_self_pairs() {
        let a = random_entries(300, 7);
        let (pool, index) = build(a, LeafLayout::WithIds);
        let result = JoinEngine::new(1.0)
            .join(
                &pool,
                JoinInput::Flat(&index),
                &pool,
                JoinInput::Flat(&index),
            )
            .unwrap();
        for (x, y) in &result.pairs {
            // Symmetric: the mirrored pair must be present too.
            assert!(result.pairs.binary_search(&(*y, *x)).is_ok());
        }
        // Every element is within distance 0 of itself.
        assert!(result.pairs.iter().filter(|(x, y)| x == y).count() >= 300);
    }

    #[test]
    fn sweep_reuses_the_frontier_instead_of_reseeding() {
        let a = random_entries(3_000, 41);
        let b = random_entries(3_000, 43);
        let (pool_a, index_a) = build(a, LeafLayout::WithIds);
        let (pool_b, index_b) = build(b, LeafLayout::WithIds);
        let result = JoinEngine::new(3.0)
            .join(
                &pool_a,
                JoinInput::Flat(&index_a),
                &pool_b,
                JoinInput::Flat(&index_b),
            )
            .unwrap();
        // Dense overlapping datasets: nearly every sweep step should ride
        // the previous step's partners.
        assert!(
            result.stats.frontier_reuses > result.stats.seed_descents,
            "stats: {:?}",
            result.stats
        );
        assert!(result.stats.outer_partitions > 0);
    }

    #[test]
    fn empty_inputs_join_to_nothing() {
        let (pool_a, index_a) = build(random_entries(100, 3), LeafLayout::WithIds);
        let (pool_b, index_b) = build(Vec::new(), LeafLayout::WithIds);
        let result = JoinEngine::new(5.0)
            .join(
                &pool_a,
                JoinInput::Flat(&index_a),
                &pool_b,
                JoinInput::Flat(&index_b),
            )
            .unwrap();
        assert!(result.pairs.is_empty());
        let result = JoinEngine::new(5.0)
            .join(
                &pool_b,
                JoinInput::Flat(&index_b),
                &pool_a,
                JoinInput::Flat(&index_a),
            )
            .unwrap();
        assert!(result.pairs.is_empty());
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_eps_is_rejected() {
        JoinEngine::new(-1.0);
    }
}
