//! k-nearest-neighbor queries via best-first seed + crawl.
//!
//! The paper's protocol answers *range* queries: find one page with the
//! seed tree, then crawl neighbor links. The same two ingredients answer
//! kNN exactly — a genuinely different workload (e.g. "the 20 synapses
//! closest to this dendrite location") that no fixed query box captures:
//!
//! 1. **Seed**: a best-first descent of the seed tree (ordered by minimum
//!    distance from the query point to the indexed page MBRs) finds the
//!    metadata record nearest the query point — the analogue of the range
//!    seed's single root-to-leaf walk.
//! 2. **Crawl**: a best-first expansion over the *neighbor links*, popping
//!    the frontier record with the smallest partition-MBR distance,
//!    scanning its object page when its page MBR may still contribute, and
//!    enqueueing its neighbors. A max-heap of the k best elements found so
//!    far supplies the shrinking pruning bound.
//!
//! Exactness rests on the tiling invariants (§V-A): partitions cover space
//! with no gaps and touching partitions are linked, so for any distance
//! bound `d` the set of partitions within `d` of the query point is
//! connected through neighbor links and contains the seed. The expansion
//! therefore reaches every partition that could hold a top-k element
//! before the bound closes below it; `knn_matches_brute_force` in the
//! tests checks the result against a full scan.

use crate::index::FlatIndex;
use crate::meta::{decode_meta_record, meta_leaf_len, MetaRecordId};
use crate::query::{is_live, CrawlHinter, Tombstones};
use flat_geom::Point3;
use flat_rtree::node::{decode_inner, decode_leaf};
use flat_rtree::{Hit, LeafLayout};
use flat_storage::{PageId, PageKind, PageRead, StorageError};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// One kNN result: the element plus its squared distance to the query
/// point (distance from point to the element's MBR; 0 when inside).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// The element, as reported by range queries.
    pub hit: Hit,
    /// Squared minimum distance from the query point to `hit.mbr`.
    pub dist_sq: f64,
}

impl Neighbor {
    /// The distance itself.
    pub fn dist(&self) -> f64 {
        self.dist_sq.sqrt()
    }
}

/// Counters for one kNN evaluation (the I/O side lives in the pool's
/// [`flat_storage::IoStats`], as for range queries).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KnnStats {
    /// Metadata records popped from the frontier and processed.
    pub records_expanded: u64,
    /// Records enqueued but pruned away by the distance bound before (or
    /// instead of) being expanded.
    pub records_pruned: u64,
    /// Object pages scanned.
    pub object_pages_read: u64,
    /// High-water mark of the best-first frontier.
    pub max_frontier_len: usize,
}

/// `f64` with a total order, for use as a heap key.
#[derive(Debug, Clone, Copy, PartialEq)]
struct MinKey(f64);

impl Eq for MinKey {}

impl PartialOrd for MinKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MinKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Items of the seed phase's best-first heap: seed-tree nodes and, once a
/// leaf is opened, the metadata records themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum SeedItem {
    Node { page: PageId, level: u32 },
    Record(MetaRecordId),
}

/// A result candidate in the running top-k max-heap. Ordered by distance
/// (then physical location, so ties break deterministically).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Candidate {
    dist_sq: f64,
    hit: Hit,
}

impl Eq for Candidate {}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist_sq
            .total_cmp(&other.dist_sq)
            .then(self.hit.page.cmp(&other.hit.page))
            .then(self.hit.slot.cmp(&other.hit.slot))
    }
}

impl FlatIndex {
    /// Returns the `k` elements nearest to `point` (by minimum distance to
    /// their MBRs), ascending, with exact results (ties at the k-th
    /// distance broken by physical location).
    ///
    /// Like range queries this is a shared read — any [`PageRead`] works,
    /// including a pool serving other query threads concurrently. Batches
    /// of kNN queries run faster through [`crate::QueryEngine::run_knn_batch`].
    pub fn knn_query(
        &self,
        pool: &impl PageRead,
        point: Point3,
        k: usize,
    ) -> Result<Vec<Neighbor>, StorageError> {
        let mut stats = KnnStats::default();
        self.knn_query_with_stats(pool, point, k, &mut stats)
    }

    /// Like [`FlatIndex::knn_query`], accumulating counters into `stats`.
    pub fn knn_query_with_stats(
        &self,
        pool: &impl PageRead,
        point: Point3,
        k: usize,
        stats: &mut KnnStats,
    ) -> Result<Vec<Neighbor>, StorageError> {
        self.knn(pool, point, k, stats, None, None, None)
    }

    /// Entry point for the batched engine: identical algorithm, with
    /// frontier insertions forwarded as readahead hints.
    pub(crate) fn knn_with_hinter(
        &self,
        pool: &impl PageRead,
        point: Point3,
        k: usize,
        hinter: Option<&dyn CrawlHinter>,
    ) -> Result<Vec<Neighbor>, StorageError> {
        let mut stats = KnnStats::default();
        self.knn(pool, point, k, &mut stats, hinter, None, None)
    }

    /// Full-control entry point shared with the delta layer:
    /// `seed_override` replaces the best-first seed descent (the delta
    /// seed also considers partitions outside the seed tree) and
    /// `tombstones` hides deleted elements from the candidate heap.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn knn(
        &self,
        pool: &impl PageRead,
        point: Point3,
        k: usize,
        stats: &mut KnnStats,
        hinter: Option<&dyn CrawlHinter>,
        seed_override: Option<MetaRecordId>,
        tombstones: Option<&Tombstones>,
    ) -> Result<Vec<Neighbor>, StorageError> {
        if k == 0 {
            return Ok(Vec::new());
        }
        let seed = match seed_override {
            Some(s) => Some(s),
            None => self.knn_seed(pool, point)?.map(|(_, addr)| addr),
        };
        let Some(seed) = seed else {
            return Ok(Vec::new());
        };

        // The best-first crawl. `best` is a max-heap of the k nearest
        // elements so far; its top is the pruning bound (∞ until full).
        let mut best: BinaryHeap<Candidate> = BinaryHeap::with_capacity(k + 1);
        let bound = |best: &BinaryHeap<Candidate>| {
            if best.len() < k {
                f64::INFINITY
            } else {
                best.peek().expect("len >= k >= 1").dist_sq
            }
        };

        let mut seen: HashSet<MetaRecordId> = HashSet::new();
        let mut frontier: BinaryHeap<Reverse<(MinKey, MetaRecordId)>> = BinaryHeap::new();
        seen.insert(seed);
        {
            let page = pool.read_page(seed.page, PageKind::SeedLeaf)?;
            let record = decode_meta_record(&page, seed.slot)?;
            let key = record.partition_mbr.distance_sq_to_point(&point);
            frontier.push(Reverse((MinKey(key), seed)));
        }

        while let Some(Reverse((MinKey(dist), addr))) = frontier.pop() {
            // Everything still on the frontier is at least this far away;
            // once the top-k is full and closer, nothing can improve.
            if dist > bound(&best) {
                stats.records_pruned += frontier.len() as u64 + 1;
                break;
            }
            stats.max_frontier_len = stats.max_frontier_len.max(frontier.len() + 1);
            stats.records_expanded += 1;
            let record = {
                let page = pool.read_page(addr.page, PageKind::SeedLeaf)?;
                decode_meta_record(&page, addr.slot)?
            };

            // Scan the object page only while its page MBR can still hold
            // a top-k element (the kNN analogue of §VI's page-MBR test).
            if record.page_mbr.distance_sq_to_point(&point) <= bound(&best) {
                stats.object_pages_read += 1;
                let page = pool.read_page(record.object_page, PageKind::ObjectPage)?;
                let (layout, entries) = decode_leaf(&page)?;
                for (slot, entry) in entries.iter().enumerate() {
                    if !is_live(tombstones, record.object_page, slot) {
                        continue;
                    }
                    let dist_sq = entry.mbr.distance_sq_to_point(&point);
                    let id = match layout {
                        LeafLayout::MbrOnly => (record.object_page.0 << 16) | entry.id,
                        LeafLayout::WithIds => entry.id,
                    };
                    let candidate = Candidate {
                        dist_sq,
                        hit: Hit {
                            mbr: entry.mbr,
                            id,
                            page: record.object_page,
                            slot: slot as u16,
                        },
                    };
                    // Full `Candidate` comparison, not just distance: ties
                    // at the k-th distance resolve by physical location
                    // independent of the expansion order, as documented.
                    if best.len() == k && candidate >= *best.peek().expect("len == k >= 1") {
                        continue;
                    }
                    best.push(candidate);
                    if best.len() > k {
                        best.pop();
                    }
                }
            }

            // Expand the neighbor links (following continuation chains for
            // over-full neighbor lists). Pruning with the *current* bound
            // is safe: the bound only shrinks, and any partition within the
            // final bound stays reachable through partitions at least as
            // close (the tiling's connectivity argument, module docs).
            let mut chunk = record;
            loop {
                for neighbor in &chunk.neighbors {
                    if !seen.insert(*neighbor) {
                        continue;
                    }
                    let key = {
                        let page = pool.read_page(neighbor.page, PageKind::SeedLeaf)?;
                        decode_meta_record(&page, neighbor.slot)?
                            .partition_mbr
                            .distance_sq_to_point(&point)
                    };
                    if key <= bound(&best) {
                        frontier.push(Reverse((MinKey(key), *neighbor)));
                        if let Some(h) = hinter {
                            let b = bound(&best);
                            h.enqueued_record(*neighbor, &|r| {
                                r.page_mbr.distance_sq_to_point(&point) <= b
                            });
                        }
                    } else {
                        stats.records_pruned += 1;
                    }
                }
                let Some(next) = chunk.continuation else {
                    break;
                };
                chunk = {
                    let page = pool.read_page(next.page, PageKind::SeedLeaf)?;
                    decode_meta_record(&page, next.slot)?
                };
            }
        }

        Ok(best
            .into_sorted_vec()
            .into_iter()
            .map(|c| Neighbor {
                hit: c.hit,
                dist_sq: c.dist_sq,
            })
            .collect())
    }

    /// Best-first descent of the seed tree: returns the primary metadata
    /// record whose page MBR is nearest to `point`, with that squared
    /// distance (`None` for an empty index). Cost is near the tree
    /// height, like the range seed. The distance is the winning heap key,
    /// so callers comparing seed candidates (the delta layer) pay no
    /// extra page read.
    pub(crate) fn knn_seed(
        &self,
        pool: &impl PageRead,
        point: Point3,
    ) -> Result<Option<(f64, MetaRecordId)>, StorageError> {
        let Some(root) = self.seed_root else {
            return Ok(None);
        };
        let mut heap: BinaryHeap<Reverse<(MinKey, SeedItem)>> = BinaryHeap::new();
        heap.push(Reverse((
            MinKey(0.0),
            SeedItem::Node {
                page: root,
                level: self.seed_height,
            },
        )));
        while let Some(Reverse((key, item))) = heap.pop() {
            match item {
                SeedItem::Record(addr) => return Ok(Some((key.0, addr))),
                SeedItem::Node { page, level: 1 } => {
                    let leaf = pool.read_page(page, PageKind::SeedLeaf)?;
                    let count = meta_leaf_len(&leaf)?;
                    for slot in 0..count as u16 {
                        let record = decode_meta_record(&leaf, slot)?;
                        if record.is_continuation || record.is_dead {
                            continue; // not a valid crawl entry point
                        }
                        let key = record.page_mbr.distance_sq_to_point(&point);
                        heap.push(Reverse((
                            MinKey(key),
                            SeedItem::Record(MetaRecordId { page, slot }),
                        )));
                    }
                }
                SeedItem::Node { page, level } => {
                    let node = pool.read_page(page, PageKind::SeedInner)?;
                    for child in decode_inner(&node)? {
                        let key = child.mbr.distance_sq_to_point(&point);
                        heap.push(Reverse((
                            MinKey(key),
                            SeedItem::Node {
                                page: child.page,
                                level: level - 1,
                            },
                        )));
                    }
                }
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{FlatIndex, FlatOptions};
    use flat_geom::Aabb;
    use flat_rtree::Entry;
    use flat_storage::{BufferPool, MemStore};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_entries(n: usize, seed: u64) -> Vec<Entry> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let c = Point3::new(
                    rng.gen_range(0.0..100.0),
                    rng.gen_range(0.0..100.0),
                    rng.gen_range(0.0..100.0),
                );
                Entry::new(i as u64, Aabb::cube(c, rng.gen_range(0.05..0.5)))
            })
            .collect()
    }

    fn build(n: usize, seed: u64) -> (BufferPool<MemStore>, FlatIndex, Vec<Entry>) {
        let entries = random_entries(n, seed);
        let mut pool = BufferPool::new(MemStore::new(), 1 << 16);
        let (index, _) = FlatIndex::build(&mut pool, entries.clone(), FlatOptions::default())
            .expect("in-memory build cannot fail");
        (pool, index, entries)
    }

    fn brute_force_dists(entries: &[Entry], p: &Point3, k: usize) -> Vec<f64> {
        let mut dists: Vec<f64> = entries
            .iter()
            .map(|e| e.mbr.distance_sq_to_point(p))
            .collect();
        dists.sort_by(|a, b| a.total_cmp(b));
        dists.truncate(k);
        dists
    }

    #[test]
    fn knn_matches_brute_force() {
        let (pool, index, entries) = build(20_000, 301);
        let mut rng = StdRng::seed_from_u64(302);
        for _ in 0..12 {
            let p = Point3::new(
                rng.gen_range(-10.0..110.0),
                rng.gen_range(-10.0..110.0),
                rng.gen_range(-10.0..110.0),
            );
            for k in [1, 7, 50] {
                let got = index.knn_query(&pool, p, k).unwrap();
                assert_eq!(got.len(), k);
                let got_dists: Vec<f64> = got.iter().map(|n| n.dist_sq).collect();
                assert_eq!(
                    got_dists,
                    brute_force_dists(&entries, &p, k),
                    "k={k} at {p}"
                );
                // Ascending and self-consistent.
                assert!(got_dists.windows(2).all(|w| w[0] <= w[1]));
                for n in &got {
                    assert_eq!(n.dist_sq, n.hit.mbr.distance_sq_to_point(&p));
                    assert!((n.dist() * n.dist() - n.dist_sq).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn knn_returns_distinct_elements() {
        let (pool, index, _) = build(10_000, 303);
        let got = index.knn_query(&pool, Point3::splat(50.0), 100).unwrap();
        let mut ids: Vec<u64> = got.iter().map(|n| n.hit.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 100, "duplicate elements in kNN result");
    }

    #[test]
    fn k_larger_than_dataset_returns_everything() {
        let (pool, index, entries) = build(500, 304);
        let got = index.knn_query(&pool, Point3::splat(20.0), 10_000).unwrap();
        assert_eq!(got.len(), entries.len());
    }

    #[test]
    fn k_zero_and_empty_index_return_nothing() {
        let (pool, index, _) = build(1000, 305);
        assert!(index
            .knn_query(&pool, Point3::splat(1.0), 0)
            .unwrap()
            .is_empty());
        let mut pool = BufferPool::new(MemStore::new(), 16);
        let (empty, _) = FlatIndex::build(&mut pool, Vec::new(), FlatOptions::default()).unwrap();
        assert!(empty
            .knn_query(&pool, Point3::splat(1.0), 5)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn far_outside_query_point_still_exact() {
        let (pool, index, entries) = build(5_000, 306);
        let p = Point3::new(-500.0, 700.0, 250.0);
        let got = index.knn_query(&pool, p, 10).unwrap();
        let got_dists: Vec<f64> = got.iter().map(|n| n.dist_sq).collect();
        assert_eq!(got_dists, brute_force_dists(&entries, &p, 10));
    }

    #[test]
    fn knn_prunes_instead_of_scanning_everything() {
        let (pool, index, _) = build(50_000, 307);
        let mut stats = KnnStats::default();
        index
            .knn_query_with_stats(&pool, Point3::splat(50.0), 10, &mut stats)
            .unwrap();
        assert!(stats.records_expanded > 0);
        assert!(
            stats.object_pages_read < index.num_object_pages() / 4,
            "kNN read {} of {} object pages — the bound is not pruning",
            stats.object_pages_read,
            index.num_object_pages()
        );
        assert!(stats.records_pruned > 0);
        assert!(stats.max_frontier_len > 0);
    }

    #[test]
    fn ties_at_the_kth_distance_break_by_physical_location() {
        // Six satellites exactly equidistant from the center, plus random
        // filler far away; k cuts through the tie group, so the winners
        // must be the smallest (page, slot) among the tied candidates —
        // independent of expansion order.
        let center = Point3::splat(50.0);
        let mut entries = Vec::new();
        for (i, offset) in [
            Point3::new(8.0, 0.0, 0.0),
            Point3::new(-8.0, 0.0, 0.0),
            Point3::new(0.0, 8.0, 0.0),
            Point3::new(0.0, -8.0, 0.0),
            Point3::new(0.0, 0.0, 8.0),
            Point3::new(0.0, 0.0, -8.0),
        ]
        .iter()
        .enumerate()
        {
            entries.push(Entry::new(i as u64, Aabb::cube(center + *offset, 2.0)));
        }
        let mut rng = StdRng::seed_from_u64(309);
        for i in 0..4000u64 {
            let c = Point3::new(
                rng.gen_range(0.0..100.0),
                rng.gen_range(0.0..100.0),
                rng.gen_range(0.0..100.0),
            );
            if c.distance(&center) > 20.0 {
                entries.push(Entry::new(100 + i, Aabb::cube(c, 0.4)));
            }
        }
        let mut pool = BufferPool::new(MemStore::new(), 1 << 16);
        let (index, _) = FlatIndex::build(&mut pool, entries, FlatOptions::default()).unwrap();

        let tied = index.knn_query(&pool, center, 6).unwrap();
        assert_eq!(
            tied.iter().filter(|n| n.dist_sq == tied[0].dist_sq).count(),
            6
        );
        let mut expected: Vec<(flat_storage::PageId, u16)> =
            tied.iter().map(|n| (n.hit.page, n.hit.slot)).collect();
        expected.sort();
        expected.truncate(3);

        let got = index.knn_query(&pool, center, 3).unwrap();
        let mut got_loc: Vec<(flat_storage::PageId, u16)> =
            got.iter().map(|n| (n.hit.page, n.hit.slot)).collect();
        got_loc.sort();
        assert_eq!(got_loc, expected, "tie not broken by physical location");
    }

    #[test]
    fn knn_works_with_ids_layout() {
        let entries = random_entries(3_000, 308);
        let mut pool = BufferPool::new(MemStore::new(), 1 << 16);
        let (index, _) = FlatIndex::build(
            &mut pool,
            entries.clone(),
            FlatOptions {
                layout: LeafLayout::WithIds,
                ..FlatOptions::default()
            },
        )
        .unwrap();
        let p = Point3::splat(33.0);
        let got = index.knn_query(&pool, p, 5).unwrap();
        // Under WithIds the reported ids are the application ids.
        for n in &got {
            let original = &entries[n.hit.id as usize];
            assert_eq!(original.mbr, n.hit.mbr);
        }
    }
}
