//! **FLAT** — the paper's contribution: a two-phase spatial index whose
//! range-query cost is independent of data density.
//!
//! R-trees on dense data develop *overlap*: many directory rectangles cover
//! any given point, so a range query must descend many root-to-leaf paths
//! (Figures 2–4 of the paper). FLAT sidesteps the directory almost
//! entirely:
//!
//! 1. **Seed phase** — a small R-tree (the *seed index*) is searched for
//!    *one* object page intersecting the query. Finding one arbitrary page
//!    does not suffer from overlap: a single path suffices, so the cost is
//!    the tree height.
//! 2. **Crawl phase** — from that page, a breadth-first search follows
//!    precomputed *neighborhood pointers* between pages, reading exactly
//!    the object pages whose page MBR intersects the query. The cost is
//!    proportional to the result size.
//!
//! Construction (Algorithm 1) is a bulkload: an STR sort-tile pass packs
//! elements onto object pages and simultaneously *tiles* space into
//! partitions (one per page) with two invariants — no empty space between
//! partitions, and each partition MBR encloses its page MBR — that make
//! the crawl exhaustive (Figures 8/9). A temporary R-tree computes which
//! partitions intersect which; those are the neighbor pointers, stored in
//! per-page *metadata records* packed into the seed tree's leaves.
//!
//! # Crate layout
//!
//! | module | paper section | contents |
//! |---|---|---|
//! | [`partition`] | §V-A, Alg. 1 | STR tiling, stretching, invariants |
//! | [`neighbors`] | §V-A, Alg. 1 | neighbor computation: temp R-tree and the streaming plane-sweep |
//! | [`meta`] | §V-B.2 | metadata records, seed-leaf page format |
//! | `index` (re-exported) | §V | [`FlatIndex::build`] |
//! | `builder` (re-exported) | §V, out-of-core | [`FlatIndexBuilder`]: streaming bulkload with bounded resident memory, bit-identical to the in-memory path |
//! | `query` (re-exported) | §V-B.1, §VI, Alg. 2 | seed + crawl |
//! | `knn` (re-exported) | extension | [`FlatIndex::knn_query`], best-first seed + crawl |
//! | `engine` (re-exported) | extension | [`QueryEngine`]: batched execution + crawl-ahead prefetch |
//! | `delta` (re-exported) | extension | [`DeltaIndex`]: delta inserts/deletes with neighbor-link repair, tombstones, compaction back to a pristine (byte-identical) bulkload |
//! | [`db`] | extension | [`FlatDb`]: the session façade — one handle over build / query / update / persist |
//! | `durable` (via [`db`]) | extension | [`Durability`] modes, logical-record and checkpoint-snapshot formats; [`FlatDb::create_durable`] / [`FlatDb::open_durable`] commit every writer batch to a write-ahead log and recover exactly the committed prefix after a crash |
//! | `shard` (re-exported) | extension | [`ShardedDb`]: K spatial shards, each behind its own disk scheduler, with cross-shard routing and a global exact kNN merge |
//! | `join` (re-exported) | extension | [`JoinEngine`]: exact ε-distance joins by co-crawling two link graphs |
//! | `aggregate` (re-exported) | extension | `aggregate_count` / `aggregate_density` with the containment early-exit |
//! | `continuous` (re-exported) | extension | continuous range queries: per-commit [`QueryDelta`] streams |
//! | `spatial` (re-exported) | extension | [`SpatialIndex`]: one trait over FLAT, the delta layer and the R-tree baselines |
//! | `error` (re-exported) | extension | [`FlatError`]: the façade's unified error type |
//!
//! # Example
//!
//! ```
//! use flat_core::{FlatIndex, FlatOptions};
//! use flat_geom::{Aabb, Point3};
//! use flat_rtree::Entry;
//! use flat_storage::{BufferPool, MemStore};
//!
//! // One thousand unit boxes along the diagonal.
//! let entries: Vec<Entry> = (0..1000)
//!     .map(|i| Entry::new(i, Aabb::cube(Point3::splat(i as f64), 1.0)))
//!     .collect();
//!
//! let mut pool = BufferPool::new(MemStore::new(), 4096);
//! let (index, stats) = FlatIndex::build(&mut pool, entries, FlatOptions::default()).unwrap();
//! assert!(stats.num_partitions > 0);
//!
//! let query = Aabb::cube(Point3::splat(500.0), 20.0);
//! let hits = index.range_query(&pool, &query).unwrap();
//! assert!(!hits.is_empty());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod aggregate;
mod builder;
mod continuous;
pub mod db;
mod delta;
mod durable;
mod engine;
mod error;
mod index;
mod join;
mod knn;
pub mod meta;
pub mod neighbors;
pub mod partition;
mod persist;
mod query;
mod shard;
mod spatial;

pub use aggregate::AggregateStats;
pub use builder::{FlatIndexBuilder, StreamingStats, DEFAULT_SPILL_BUDGET};
pub use continuous::{ContinuousQueryId, QueryDelta};
pub use db::{
    BuildReport, DbOptions, Durability, FlatDb, QueryBuilder, RecoveryReport, Snapshot, StoreRef,
    WriteOp, Writer,
};
pub use delta::{verify_compacted_store, DeltaIndex, DeltaReport};
pub use engine::{BatchOutcome, EngineConfig, KnnBatchOutcome, QueryEngine};
pub use error::FlatError;
pub use index::{BuildStats, FlatIndex, FlatOptions, MetaOrder};
pub use join::{JoinEngine, JoinInput, JoinResult, JoinStats};
pub use knn::{KnnStats, Neighbor};
pub use query::QueryStats;
pub use shard::{ShardOptions, ShardedDb};
pub use spatial::{IndexStats, RTreeBuildOptions, SpatialIndex};
