//! Metadata records and their on-page packing (§V-B.2).
//!
//! FLAT stores one metadata record per object page: the page MBR, the
//! partition MBR, a pointer to the object page, and pointers to the
//! records of all neighboring pages. Records are variable-size (the
//! neighbor count varies — which is exactly why the paper stores them
//! separately from the elements) and are packed into the **leaves of the
//! seed tree** so that spatially close records share a page.
//!
//! # Page layout (kind [`flat_storage::PageKind::SeedLeaf`])
//!
//! ```text
//! offset 0          u16  tag (3 = metadata leaf)
//! offset 2          u16  record count
//! offset 4          u32  reserved
//! offset 8          u16 × count   record start offsets (slot directory)
//! directory end …   records, back to back:
//!     page MBR      6 × f64   (48 bytes)
//!     partition MBR 6 × f64   (48 bytes)
//!     object page   u64
//!     neighbor n    u16  (bit 15 = continuation flag, bit 14 = dead flag)
//!     continuation  u64 page + u16 slot   (page = u64::MAX ⇒ none)
//!     neighbors     n × (u64 page, u16 slot)   (10 bytes each)
//! ```
//!
//! # Dead records
//!
//! The dynamic-update layer (`crate::DeltaIndex`) retires a partition when
//! its last live element is deleted: the partition's object page is
//! returned to the store's free list and its metadata record is marked
//! **dead** (bit 14 of the count word). A dead record keeps its slot — so
//! the addresses of its page-mates stay valid — but carries no neighbors,
//! is skipped by the seed phase, and by invariant is never the target of a
//! neighbor pointer (retirement prunes every inbound link).
//!
//! # Continuation chaining
//!
//! A record with more neighbors than fit on one page — possible when a
//! partition is stretched across many tiles by a very large element —
//! spills the excess into *continuation records* linked by the
//! continuation pointer. Only primary records are addressed by neighbor
//! pointers and by the crawl's visited set; continuations are reached
//! exclusively through the chain (and their page reads are charged like
//! any other metadata read).

use flat_geom::{Aabb, Point3};
use flat_storage::{Page, PageId, StorageError, PAGE_SIZE};

/// Tag distinguishing metadata leaves from R-tree nodes.
const TAG_META_LEAF: u16 = 3;
/// Fixed page header size.
const HEADER_SIZE: usize = 8;
/// Fixed portion of one serialized record (MBRs, object page, neighbor
/// count, continuation pointer).
const RECORD_FIXED: usize = 48 + 48 + 8 + 2 + 10;
/// One serialized neighbor pointer.
const NEIGHBOR_SIZE: usize = 10;
/// Slot-directory cost of one record.
const DIR_ENTRY: usize = 2;
/// Sentinel for "no continuation".
const NO_CONTINUATION: u64 = u64::MAX;
/// Count-word flag: this record is a continuation chunk.
const FLAG_CONTINUATION: u16 = 0x8000;
/// Count-word flag: this record's partition has been retired (see the
/// module docs on dead records).
const FLAG_DEAD: u16 = 0x4000;
/// Count-word bits holding the neighbor count.
const COUNT_MASK: u16 = 0x3FFF;

/// Address of a metadata record: the seed-tree leaf page holding it plus
/// its slot. Neighbor pointers are exactly these addresses — following one
/// costs at most one (often zero, thanks to locality) page read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MetaRecordId {
    /// Seed-tree leaf page containing the record.
    pub page: PageId,
    /// Slot within that page.
    pub slot: u16,
}

/// One metadata record, summarizing one object page (or one continuation
/// chunk of an over-full neighbor list).
#[derive(Debug, Clone, PartialEq)]
pub struct MetaRecord {
    /// Tight MBR of the elements on the object page.
    pub page_mbr: Aabb,
    /// The partition MBR (tile ⊇ page MBR).
    pub partition_mbr: Aabb,
    /// The object page the record describes.
    pub object_page: PageId,
    /// Addresses of the neighboring partitions' records (this chunk).
    pub neighbors: Vec<MetaRecordId>,
    /// Next chunk of the neighbor list, if it didn't fit in one record.
    pub continuation: Option<MetaRecordId>,
    /// `true` for continuation chunks. Only primary records are valid
    /// crawl entry points (the seed phase skips continuations: a crawl
    /// seeded mid-chain would only see the tail of the neighbor list).
    pub is_continuation: bool,
    /// `true` once the record's partition has been retired by the
    /// dynamic-update layer: its object page is freed, no links point at
    /// it, and the seed phase skips it.
    pub is_dead: bool,
}

impl MetaRecord {
    /// Serialized size in bytes (excluding the slot-directory entry).
    pub fn serialized_size(&self) -> usize {
        record_size(self.neighbors.len())
    }
}

/// Serialized size of a record with `neighbor_count` pointers.
pub fn record_size(neighbor_count: usize) -> usize {
    RECORD_FIXED + neighbor_count * NEIGHBOR_SIZE
}

/// Usable bytes for records + directory on one metadata page.
pub fn meta_page_budget() -> usize {
    PAGE_SIZE - HEADER_SIZE
}

/// The most neighbor pointers a single record can carry on an otherwise
/// empty page.
pub fn max_neighbors_per_record() -> usize {
    (meta_page_budget() - DIR_ENTRY - RECORD_FIXED) / NEIGHBOR_SIZE
}

/// One planned record: which partition it belongs to, which slice of that
/// partition's neighbor list it carries, and whether it is the partition's
/// primary (addressable) record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedRecord {
    /// Index of the partition this record belongs to.
    pub partition: usize,
    /// Start offset into the partition's neighbor list.
    pub start: usize,
    /// Number of neighbor pointers in this record.
    pub len: usize,
    /// `true` for the first (addressable) record of the partition.
    pub primary: bool,
}

/// Splits each partition's neighbor list into record-sized chunks, in
/// stream order (all chunks of partition 0, then partition 1, …).
pub fn plan_records(neighbor_counts: &[usize]) -> Vec<PlannedRecord> {
    let max = max_neighbors_per_record();
    let mut plan = Vec::with_capacity(neighbor_counts.len());
    for (partition, &count) in neighbor_counts.iter().enumerate() {
        let mut start = 0;
        loop {
            let len = (count - start).min(max);
            plan.push(PlannedRecord {
                partition,
                start,
                len,
                primary: start == 0,
            });
            start += len;
            if start >= count {
                break;
            }
        }
    }
    plan
}

/// Greedy first-fit assignment of planned records to pages, preserving
/// order.
///
/// Records arrive in partition (STR tile) order, so consecutive records are
/// spatially close — packing them contiguously is what "preserve the
/// spatial locality of the metadata records" (§V-B.2) means. Returns, per
/// planned record, the `(page sequence number, slot)` it will occupy.
pub fn assign_slots(plan: &[PlannedRecord]) -> Vec<(usize, u16)> {
    let budget = meta_page_budget();
    let mut assignment = Vec::with_capacity(plan.len());
    let mut page = 0usize;
    let mut slot = 0u16;
    let mut used = 0usize;
    for record in plan {
        let cost = record_size(record.len) + DIR_ENTRY;
        debug_assert!(cost <= budget, "plan_records never exceeds a page");
        if used + cost > budget {
            page += 1;
            slot = 0;
            used = 0;
        }
        assignment.push((page, slot));
        used += cost;
        slot += 1;
    }
    assignment
}

fn put_mbr(page: &mut Page, offset: usize, mbr: &Aabb) {
    page.put_f64(offset, mbr.min.x);
    page.put_f64(offset + 8, mbr.min.y);
    page.put_f64(offset + 16, mbr.min.z);
    page.put_f64(offset + 24, mbr.max.x);
    page.put_f64(offset + 32, mbr.max.y);
    page.put_f64(offset + 40, mbr.max.z);
}

fn get_mbr(page: &Page, offset: usize) -> Aabb {
    Aabb {
        min: Point3::new(
            page.get_f64(offset),
            page.get_f64(offset + 8),
            page.get_f64(offset + 16),
        ),
        max: Point3::new(
            page.get_f64(offset + 24),
            page.get_f64(offset + 32),
            page.get_f64(offset + 40),
        ),
    }
}

/// Serializes the records of one metadata page.
///
/// # Panics
/// Panics if the records don't fit (callers size pages with
/// [`assign_slots`]) or if `records` is empty.
pub fn encode_meta_leaf(records: &[MetaRecord], page: &mut Page) {
    assert!(
        !records.is_empty(),
        "metadata leaf must hold at least one record"
    );
    let dir_size = records.len() * DIR_ENTRY;
    let total: usize = records.iter().map(|r| r.serialized_size()).sum::<usize>() + dir_size;
    assert!(
        total <= meta_page_budget(),
        "metadata records overflow the page: {total} bytes"
    );

    page.clear();
    page.put_u16(0, TAG_META_LEAF);
    page.put_u16(2, records.len() as u16);
    let mut offset = HEADER_SIZE + dir_size;
    for (slot, record) in records.iter().enumerate() {
        page.put_u16(HEADER_SIZE + slot * DIR_ENTRY, offset as u16);
        put_mbr(page, offset, &record.page_mbr);
        put_mbr(page, offset + 48, &record.partition_mbr);
        page.put_u64(offset + 96, record.object_page.0);
        assert!(
            record.neighbors.len() <= COUNT_MASK as usize,
            "neighbor count {} exceeds the count-word mask",
            record.neighbors.len()
        );
        let mut flags = 0u16;
        if record.is_continuation {
            flags |= FLAG_CONTINUATION;
        }
        if record.is_dead {
            flags |= FLAG_DEAD;
        }
        page.put_u16(offset + 104, record.neighbors.len() as u16 | flags);
        match record.continuation {
            Some(c) => {
                page.put_u64(offset + 106, c.page.0);
                page.put_u16(offset + 114, c.slot);
            }
            None => {
                page.put_u64(offset + 106, NO_CONTINUATION);
                page.put_u16(offset + 114, 0);
            }
        }
        let mut n_off = offset + RECORD_FIXED;
        for n in &record.neighbors {
            page.put_u64(n_off, n.page.0);
            page.put_u16(n_off + 8, n.slot);
            n_off += NEIGHBOR_SIZE;
        }
        offset = n_off;
    }
}

/// Number of records on a metadata page.
pub fn meta_leaf_len(page: &Page) -> Result<usize, StorageError> {
    if page.get_u16(0) != TAG_META_LEAF {
        return Err(StorageError::Corrupt(format!(
            "expected metadata leaf tag, found {}",
            page.get_u16(0)
        )));
    }
    Ok(page.get_u16(2) as usize)
}

/// Decodes one record by slot.
pub fn decode_meta_record(page: &Page, slot: u16) -> Result<MetaRecord, StorageError> {
    let count = meta_leaf_len(page)?;
    if slot as usize >= count {
        return Err(StorageError::Corrupt(format!(
            "metadata slot {slot} out of range (page holds {count})"
        )));
    }
    let offset = page.get_u16(HEADER_SIZE + slot as usize * DIR_ENTRY) as usize;
    if offset + RECORD_FIXED > PAGE_SIZE {
        return Err(StorageError::Corrupt(format!(
            "record offset {offset} out of page"
        )));
    }
    let page_mbr = get_mbr(page, offset);
    let partition_mbr = get_mbr(page, offset + 48);
    let object_page = PageId(page.get_u64(offset + 96));
    let count_word = page.get_u16(offset + 104);
    let is_continuation = count_word & FLAG_CONTINUATION != 0;
    let is_dead = count_word & FLAG_DEAD != 0;
    let n = (count_word & COUNT_MASK) as usize;
    let continuation = match page.get_u64(offset + 106) {
        NO_CONTINUATION => None,
        p => Some(MetaRecordId {
            page: PageId(p),
            slot: page.get_u16(offset + 114),
        }),
    };
    if offset + RECORD_FIXED + n * NEIGHBOR_SIZE > PAGE_SIZE {
        return Err(StorageError::Corrupt(format!(
            "record with {n} neighbors out of page"
        )));
    }
    let mut neighbors = Vec::with_capacity(n);
    let mut n_off = offset + RECORD_FIXED;
    for _ in 0..n {
        neighbors.push(MetaRecordId {
            page: PageId(page.get_u64(n_off)),
            slot: page.get_u16(n_off + 8),
        });
        n_off += NEIGHBOR_SIZE;
    }
    Ok(MetaRecord {
        page_mbr,
        partition_mbr,
        object_page,
        neighbors,
        continuation,
        is_continuation,
        is_dead,
    })
}

/// Decodes all records of a metadata page (validation / inspection).
pub fn decode_meta_leaf(page: &Page) -> Result<Vec<MetaRecord>, StorageError> {
    let count = meta_leaf_len(page)?;
    (0..count as u16)
        .map(|slot| decode_meta_record(page, slot))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(seed: u64, neighbors: usize) -> MetaRecord {
        let base = seed as f64;
        MetaRecord {
            page_mbr: Aabb::cube(Point3::splat(base), 1.0),
            partition_mbr: Aabb::cube(Point3::splat(base), 2.0),
            object_page: PageId(seed * 3),
            neighbors: (0..neighbors)
                .map(|i| MetaRecordId {
                    page: PageId(seed + i as u64),
                    slot: i as u16,
                })
                .collect(),
            continuation: None,
            is_continuation: false,
            is_dead: false,
        }
    }

    #[test]
    fn record_roundtrip() {
        let records: Vec<MetaRecord> = (0..5)
            .map(|i| sample_record(i, 3 + i as usize * 2))
            .collect();
        let mut page = Page::new();
        encode_meta_leaf(&records, &mut page);
        assert_eq!(meta_leaf_len(&page).unwrap(), 5);
        for (slot, expected) in records.iter().enumerate() {
            let got = decode_meta_record(&page, slot as u16).unwrap();
            assert_eq!(&got, expected);
        }
        assert_eq!(decode_meta_leaf(&page).unwrap(), records);
    }

    #[test]
    fn continuation_pointer_roundtrips() {
        let mut record = sample_record(3, 4);
        record.continuation = Some(MetaRecordId {
            page: PageId(77),
            slot: 9,
        });
        let mut page = Page::new();
        encode_meta_leaf(std::slice::from_ref(&record), &mut page);
        assert_eq!(decode_meta_record(&page, 0).unwrap(), record);
    }

    #[test]
    fn continuation_flag_roundtrips_with_neighbors() {
        let mut record = sample_record(4, 17);
        record.is_continuation = true;
        let mut page = Page::new();
        encode_meta_leaf(std::slice::from_ref(&record), &mut page);
        let got = decode_meta_record(&page, 0).unwrap();
        assert!(got.is_continuation);
        assert_eq!(
            got.neighbors.len(),
            17,
            "flag bit must not corrupt the count"
        );
        assert_eq!(got, record);
    }

    #[test]
    fn dead_flag_roundtrips_independently_of_count_and_continuation() {
        let mut record = sample_record(5, 9);
        record.is_dead = true;
        let mut page = Page::new();
        encode_meta_leaf(std::slice::from_ref(&record), &mut page);
        let got = decode_meta_record(&page, 0).unwrap();
        assert!(got.is_dead);
        assert!(!got.is_continuation);
        assert_eq!(got.neighbors.len(), 9);
        assert_eq!(got, record);

        record.is_continuation = true;
        encode_meta_leaf(std::slice::from_ref(&record), &mut page);
        let got = decode_meta_record(&page, 0).unwrap();
        assert!(got.is_dead && got.is_continuation);
        assert_eq!(got, record);
    }

    #[test]
    fn record_with_no_neighbors_roundtrips() {
        let record = sample_record(7, 0);
        let mut page = Page::new();
        encode_meta_leaf(std::slice::from_ref(&record), &mut page);
        assert_eq!(decode_meta_record(&page, 0).unwrap(), record);
    }

    #[test]
    fn record_size_formula_matches_serialization() {
        // Fill a page to the brim based on record_size and confirm encode
        // accepts it.
        let n_neighbors = 30; // the paper's converged median (Fig 20)
        let per_record = record_size(n_neighbors) + DIR_ENTRY;
        let fit = meta_page_budget() / per_record;
        let records: Vec<MetaRecord> = (0..fit as u64)
            .map(|i| sample_record(i, n_neighbors))
            .collect();
        let mut page = Page::new();
        encode_meta_leaf(&records, &mut page); // must not panic
        assert_eq!(decode_meta_leaf(&page).unwrap().len(), fit);
    }

    #[test]
    #[should_panic(expected = "overflow the page")]
    fn overflow_is_rejected() {
        let records: Vec<MetaRecord> = (0..40).map(|i| sample_record(i, 30)).collect();
        encode_meta_leaf(&records, &mut Page::new());
    }

    #[test]
    fn plan_records_without_overflow_is_one_to_one() {
        let counts = vec![3usize, 0, 30, 7];
        let plan = plan_records(&counts);
        assert_eq!(plan.len(), 4);
        for (i, p) in plan.iter().enumerate() {
            assert_eq!(p.partition, i);
            assert_eq!(p.start, 0);
            assert_eq!(p.len, counts[i]);
            assert!(p.primary);
        }
    }

    #[test]
    fn plan_records_chunks_huge_neighbor_lists() {
        let max = max_neighbors_per_record();
        let counts = vec![max * 2 + 5, 3];
        let plan = plan_records(&counts);
        assert_eq!(plan.len(), 4, "3 chunks for the giant + 1 normal");
        assert_eq!(
            plan[0],
            PlannedRecord {
                partition: 0,
                start: 0,
                len: max,
                primary: true
            }
        );
        assert_eq!(
            plan[1],
            PlannedRecord {
                partition: 0,
                start: max,
                len: max,
                primary: false
            }
        );
        assert_eq!(
            plan[2],
            PlannedRecord {
                partition: 0,
                start: 2 * max,
                len: 5,
                primary: false
            }
        );
        assert!(plan[3].primary);
        // Chunks cover the whole list exactly once.
        let covered: usize = plan
            .iter()
            .filter(|p| p.partition == 0)
            .map(|p| p.len)
            .sum();
        assert_eq!(covered, counts[0]);
    }

    #[test]
    fn assign_slots_respects_budget_and_order() {
        let counts: Vec<usize> = (0..100).map(|i| (i * 7) % 40).collect();
        let plan = plan_records(&counts);
        let assignment = assign_slots(&plan);
        assert_eq!(assignment.len(), plan.len());
        // Slots increase within a page; pages increase monotonically.
        for w in assignment.windows(2) {
            let (p0, s0) = w[0];
            let (p1, s1) = w[1];
            assert!(p1 == p0 && s1 == s0 + 1 || p1 == p0 + 1 && s1 == 0);
        }
        // Per-page sizes stay within budget.
        let mut per_page: std::collections::HashMap<usize, usize> = Default::default();
        for (i, (p, _)) in assignment.iter().enumerate() {
            *per_page.entry(*p).or_default() += record_size(plan[i].len) + DIR_ENTRY;
        }
        for (page, used) in per_page {
            assert!(
                used <= meta_page_budget(),
                "page {page} over budget: {used}"
            );
        }
    }

    #[test]
    fn assign_slots_packs_densely() {
        // Uniform records: every page except the last must be full.
        let counts = vec![30usize; 100];
        let per = record_size(30) + DIR_ENTRY;
        let per_page = meta_page_budget() / per;
        let assignment = assign_slots(&plan_records(&counts));
        let last_page = assignment.last().unwrap().0;
        assert_eq!(last_page, (100 - 1) / per_page);
    }

    #[test]
    fn giant_records_get_their_own_pages() {
        let max = max_neighbors_per_record();
        let counts = vec![max, max, 3];
        let plan = plan_records(&counts);
        let assignment = assign_slots(&plan);
        // Two max-size records cannot share a page.
        assert_ne!(assignment[0].0, assignment[1].0);
    }

    #[test]
    fn decode_rejects_wrong_tag() {
        let page = Page::new();
        assert!(meta_leaf_len(&page).is_err());
        assert!(decode_meta_record(&page, 0).is_err());
    }

    #[test]
    fn decode_rejects_out_of_range_slot() {
        let mut page = Page::new();
        encode_meta_leaf(&[sample_record(1, 2)], &mut page);
        assert!(decode_meta_record(&page, 1).is_err());
    }

    #[test]
    fn many_neighbors_roundtrip() {
        // ~70 pointers (the Fig 20 tail) still fits comfortably.
        let record = sample_record(1, 70);
        let mut page = Page::new();
        encode_meta_leaf(std::slice::from_ref(&record), &mut page);
        let got = decode_meta_record(&page, 0).unwrap();
        assert_eq!(got.neighbors.len(), 70);
        assert_eq!(got, record);
    }
}
