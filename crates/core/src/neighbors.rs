//! Algorithm 1, part two: neighborhood computation.
//!
//! "All partition MBRs are inserted into a temporary R-Tree, used solely to
//! compute the neighborhood information. Finally, for each partition, a
//! range query with the partition MBR is executed, and all intersecting
//! partitions, the neighbors, are retrieved" (§V-A).
//!
//! The temporary tree lives in a throwaway in-memory pool and is dropped
//! when the function returns; only the neighbor lists survive, exactly as
//! in the paper.

use crate::partition::Partition;
use flat_geom::Aabb;
use flat_rtree::{BulkLoad, Entry, LeafLayout, RTree, RTreeConfig};
use flat_storage::{BufferPool, MemStore, StorageError};

/// Fills `partition.neighbors` for every partition: partition `j` is a
/// neighbor of `i` iff `i ≠ j` and their partition MBRs intersect (closed
/// boxes — face-adjacent tiles are neighbors, matching the paper's
/// "adjacent to or overlaps with").
///
/// Because partitions tile space with no gaps, this relation makes every
/// spatially connected region's partitions *graph*-connected — the
/// property the range crawl needs to cover a query box from any seed, and
/// the property the kNN crawl (`FlatIndex::knn_query`) needs for its
/// best-first expansion to stay exact: any partition within distance `d`
/// of a query point is reachable through partitions at most `d` away.
///
/// Returns the total number of neighbor pointers created (the quantity
/// Figures 20/21 characterize).
pub fn compute_neighbors(partitions: &mut [Partition]) -> Result<u64, StorageError> {
    if partitions.is_empty() {
        return Ok(0);
    }
    // Temporary R-tree over the partition MBRs, payload = partition index.
    let entries: Vec<Entry> = partitions
        .iter()
        .enumerate()
        .map(|(i, p)| Entry::new(i as u64, p.partition_mbr))
        .collect();
    let mut pool = BufferPool::new(MemStore::new(), usize::MAX >> 1);
    let config = RTreeConfig {
        layout: LeafLayout::WithIds,
        ..RTreeConfig::default()
    };
    let tree = RTree::bulk_load(&mut pool, entries, BulkLoad::Str, config)?;

    let mut total = 0u64;
    for (i, partition) in partitions.iter_mut().enumerate() {
        let query: Aabb = partition.partition_mbr;
        let mut neighbors: Vec<u32> = tree
            .range_query(&pool, &query)?
            .into_iter()
            .map(|h| h.id as u32)
            .filter(|&j| j != i as u32)
            .collect();
        neighbors.sort_unstable();
        total += neighbors.len() as u64;
        partition.neighbors = neighbors;
    }
    Ok(total)
}

/// One partition whose neighbor list is complete, emitted by
/// [`NeighborSweep`] when the sweep plane passes the partition's MBR.
#[derive(Debug, Clone)]
pub struct SweptPartition {
    /// Original partition index (position in STR output order).
    pub index: u32,
    /// Tight MBR of the partition's elements.
    pub page_mbr: Aabb,
    /// The (possibly inflated) partition MBR the neighbor relation is
    /// computed on.
    pub partition_mbr: Aabb,
    /// Sorted indices of all neighboring partitions — exactly what the
    /// temporary-R-tree path ([`compute_neighbors`]) produces.
    pub neighbors: Vec<u32>,
}

/// Streaming, bounded-memory replacement for the temporary R-tree: an
/// exact plane-sweep intersection join over the partition MBRs.
///
/// Partitions are pushed in nondecreasing order of `partition_mbr.min.x`
/// (the streaming builder external-sorts its partition summaries by that
/// key). The sweep keeps an *active window* of partitions whose x-range
/// still covers the sweep plane; each arrival is intersection-tested
/// against the window only, and a partition retires — with its neighbor
/// list complete — as soon as an arrival's `min.x` passes its `max.x`.
///
/// Exactness does not rely on the "neighbors live in adjacent slabs"
/// intuition, which stretching breaks (a partition containing a long
/// element can reach arbitrarily many slabs): two boxes intersect only if
/// their x-ranges overlap, so every intersecting pair is tested while both
/// are in the window, wherever their slabs are. For unstretched tilings
/// the window degenerates to the partitions of two adjacent slabs; its
/// peak size ([`NeighborSweep::peak_window`]) is the builder's
/// O(slab)-partitions memory bound, reported by `exp_build_scale`.
#[derive(Debug, Default)]
pub struct NeighborSweep {
    /// Window members with index `< existing_boundary` (always empty for
    /// a plain build sweep): they are only ever tested against `fresh`
    /// arrivals, never against each other.
    existing: Vec<SweptPartition>,
    /// Window members with index `≥ existing_boundary` — with the default
    /// boundary of 0, the entire window.
    fresh: Vec<SweptPartition>,
    peak_window: usize,
    last_min_x: Option<f64>,
    total_pointers: u64,
    existing_boundary: u32,
}

impl NeighborSweep {
    /// An empty sweep.
    pub fn new() -> NeighborSweep {
        NeighborSweep::default()
    }

    /// A sweep that skips pair tests between two partitions whose indices
    /// are both below `boundary`.
    ///
    /// The dynamic-update layer stitches an insert batch against the
    /// whole live index by sweeping everything together; links among the
    /// *existing* partitions (indices `< boundary`) are already on disk,
    /// so those pairs are neither tested nor even iterated: the window is
    /// split in two, and an existing arrival scans only the window's new
    /// members. Per-batch pair work is therefore proportional to the new
    /// partitions' window overlaps — not the bulkload's full join —
    /// while retired existing partitions carry only their new cross
    /// links.
    pub fn with_existing_boundary(boundary: u32) -> NeighborSweep {
        NeighborSweep {
            existing_boundary: boundary,
            ..NeighborSweep::default()
        }
    }

    /// Feeds the next partition (in `partition_mbr.min.x` order, ties in
    /// any order) and appends every partition this arrival retires to
    /// `retired`.
    ///
    /// # Panics
    /// Panics (debug builds) if pushes violate the sweep order.
    pub fn push(
        &mut self,
        index: u32,
        page_mbr: Aabb,
        partition_mbr: Aabb,
        retired: &mut Vec<SweptPartition>,
    ) {
        let min_x = partition_mbr.min.x;
        debug_assert!(
            self.last_min_x.is_none_or(|last| last <= min_x),
            "NeighborSweep pushes must be ordered by partition_mbr.min.x"
        );
        self.last_min_x = Some(min_x);

        // Retire window members the sweep plane has passed: nothing that
        // arrives from here on (min.x ≥ this arrival's) can touch them.
        for list in [&mut self.existing, &mut self.fresh] {
            let mut i = 0;
            while i < list.len() {
                if list[i].partition_mbr.max.x < min_x {
                    let mut done = list.swap_remove(i);
                    done.neighbors.sort_unstable();
                    retired.push(done);
                } else {
                    i += 1;
                }
            }
        }

        // Test the arrival against the remaining window: fresh arrivals
        // against everything, existing arrivals against the fresh side
        // only (existing×existing links are already known).
        let mut arrival = SweptPartition {
            index,
            page_mbr,
            partition_mbr,
            neighbors: Vec::new(),
        };
        let is_fresh = index >= self.existing_boundary;
        let sides: &mut [&mut Vec<SweptPartition>] = if is_fresh {
            &mut [&mut self.existing, &mut self.fresh]
        } else {
            &mut [&mut self.fresh]
        };
        for side in sides.iter_mut() {
            for other in side.iter_mut() {
                if other.partition_mbr.intersects(&arrival.partition_mbr) {
                    other.neighbors.push(arrival.index);
                    arrival.neighbors.push(other.index);
                    self.total_pointers += 2;
                }
            }
        }
        if is_fresh {
            self.fresh.push(arrival);
        } else {
            self.existing.push(arrival);
        }
        self.peak_window = self.peak_window.max(self.window_len());
    }

    /// Ends the input, retiring every partition still in the window.
    /// Returns the total number of neighbor pointers created.
    pub fn finish(mut self, retired: &mut Vec<SweptPartition>) -> u64 {
        for mut done in self.existing.drain(..).chain(self.fresh.drain(..)) {
            done.neighbors.sort_unstable();
            retired.push(done);
        }
        self.total_pointers
    }

    /// Peak number of partitions simultaneously held in the sweep window.
    pub fn peak_window(&self) -> usize {
        self.peak_window
    }

    /// Current number of partitions in the window.
    pub fn window_len(&self) -> usize {
        self.existing.len() + self.fresh.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition;
    use flat_geom::Point3;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn grid_partitions(side: usize) -> Vec<Partition> {
        // side³ unit tiles forming an exact grid; page MBR = small box in
        // the tile center so no stretching happens.
        let mut parts = Vec::new();
        for x in 0..side {
            for y in 0..side {
                for z in 0..side {
                    let min = Point3::new(x as f64, y as f64, z as f64);
                    let tile = Aabb::new(min, min + Point3::splat(1.0));
                    let inner = Aabb::cube(tile.center(), 0.2);
                    parts.push(Partition {
                        elements: vec![Entry::new(0, inner)],
                        page_mbr: inner,
                        partition_mbr: tile,
                        neighbors: Vec::new(),
                    });
                }
            }
        }
        parts
    }

    #[test]
    fn grid_interior_cell_has_26_neighbors() {
        let mut parts = grid_partitions(3);
        compute_neighbors(&mut parts).unwrap();
        // Index of the center cell (1,1,1) in x-major order.
        let center = 9 + 3 + 1; // cell (1,1,1) in x-major order
        assert_eq!(
            parts[center].neighbors.len(),
            26,
            "3³ grid center touches all others"
        );
        // A corner touches 7 others.
        assert_eq!(parts[0].neighbors.len(), 7);
    }

    #[test]
    fn neighbor_relation_is_symmetric() {
        let mut rng = StdRng::seed_from_u64(8);
        let entries: Vec<Entry> = (0..5000)
            .map(|i| {
                let c = Point3::new(
                    rng.gen_range(0.0..50.0),
                    rng.gen_range(0.0..50.0),
                    rng.gen_range(0.0..50.0),
                );
                Entry::new(i, Aabb::cube(c, 0.3))
            })
            .collect();
        let mut parts = partition(entries, 85, None);
        compute_neighbors(&mut parts).unwrap();
        for (i, p) in parts.iter().enumerate() {
            for &j in &p.neighbors {
                assert!(
                    parts[j as usize].neighbors.contains(&(i as u32)),
                    "asymmetric neighbors: {i} -> {j}"
                );
            }
        }
    }

    #[test]
    fn neighbors_match_brute_force_intersection() {
        let mut rng = StdRng::seed_from_u64(9);
        let entries: Vec<Entry> = (0..2000)
            .map(|i| {
                let c = Point3::new(
                    rng.gen_range(0.0..30.0),
                    rng.gen_range(0.0..30.0),
                    rng.gen_range(0.0..30.0),
                );
                Entry::new(i, Aabb::cube(c, 0.5))
            })
            .collect();
        let mut parts = partition(entries, 50, None);
        compute_neighbors(&mut parts).unwrap();
        for i in 0..parts.len() {
            let expected: Vec<u32> = (0..parts.len())
                .filter(|&j| j != i && parts[i].partition_mbr.intersects(&parts[j].partition_mbr))
                .map(|j| j as u32)
                .collect();
            assert_eq!(parts[i].neighbors, expected, "partition {i}");
        }
    }

    #[test]
    fn no_self_loops() {
        let mut parts = grid_partitions(2);
        compute_neighbors(&mut parts).unwrap();
        for (i, p) in parts.iter().enumerate() {
            assert!(!p.neighbors.contains(&(i as u32)));
        }
    }

    #[test]
    fn single_partition_has_no_neighbors() {
        let mut parts = grid_partitions(1);
        let total = compute_neighbors(&mut parts).unwrap();
        assert_eq!(total, 0);
        assert!(parts[0].neighbors.is_empty());
    }

    #[test]
    fn empty_input_is_fine() {
        let mut parts: Vec<Partition> = Vec::new();
        assert_eq!(compute_neighbors(&mut parts).unwrap(), 0);
    }

    /// Runs the plane-sweep over `parts` (any order) and returns the
    /// neighbor lists by partition index, plus the pointer total.
    fn sweep_neighbors(parts: &[Partition]) -> (Vec<Vec<u32>>, u64) {
        let mut order: Vec<usize> = (0..parts.len()).collect();
        order.sort_by(|&a, &b| {
            parts[a]
                .partition_mbr
                .min
                .x
                .total_cmp(&parts[b].partition_mbr.min.x)
                .then(a.cmp(&b))
        });
        let mut sweep = NeighborSweep::new();
        let mut retired = Vec::new();
        for &i in &order {
            sweep.push(
                i as u32,
                parts[i].page_mbr,
                parts[i].partition_mbr,
                &mut retired,
            );
        }
        let total = sweep.finish(&mut retired);
        let mut lists = vec![Vec::new(); parts.len()];
        for r in retired {
            lists[r.index as usize] = r.neighbors;
        }
        (lists, total)
    }

    #[test]
    fn sweep_matches_the_temporary_rtree() {
        let mut rng = StdRng::seed_from_u64(12);
        let entries: Vec<Entry> = (0..6000)
            .map(|i| {
                let c = Point3::new(
                    rng.gen_range(0.0..40.0),
                    rng.gen_range(0.0..40.0),
                    rng.gen_range(0.0..40.0),
                );
                Entry::new(i, Aabb::cube(c, rng.gen_range(0.1..0.6)))
            })
            .collect();
        let mut parts = partition(entries, 85, None);
        let (swept, total_swept) = sweep_neighbors(&parts);
        let total_rtree = compute_neighbors(&mut parts).unwrap();
        assert_eq!(total_swept, total_rtree);
        for (i, p) in parts.iter().enumerate() {
            assert_eq!(swept[i], p.neighbors, "partition {i}");
        }
    }

    #[test]
    fn sweep_handles_stretched_partitions_spanning_many_slabs() {
        // A few giant elements stretch their partitions across most of the
        // domain in x — the case the naive "adjacent slabs only" shortcut
        // would get wrong.
        let mut rng = StdRng::seed_from_u64(13);
        let entries: Vec<Entry> = (0..3000)
            .map(|i| {
                let c = Point3::new(
                    rng.gen_range(0.0..60.0),
                    rng.gen_range(0.0..60.0),
                    rng.gen_range(0.0..60.0),
                );
                let side = if i % 151 == 0 { 45.0 } else { 0.4 };
                Entry::new(i, Aabb::cube(c, side))
            })
            .collect();
        let mut parts = partition(entries, 40, None);
        let (swept, _) = sweep_neighbors(&parts);
        compute_neighbors(&mut parts).unwrap();
        for (i, p) in parts.iter().enumerate() {
            assert_eq!(swept[i], p.neighbors, "partition {i}");
        }
    }

    #[test]
    fn sweep_window_stays_near_slab_sized_on_compact_data() {
        let mut rng = StdRng::seed_from_u64(14);
        let entries: Vec<Entry> = (0..20_000)
            .map(|i| {
                let c = Point3::new(
                    rng.gen_range(0.0..100.0),
                    rng.gen_range(0.0..100.0),
                    rng.gen_range(0.0..100.0),
                );
                Entry::new(i, Aabb::cube(c, 0.2))
            })
            .collect();
        let parts = partition(entries, 85, None);
        let mut order: Vec<usize> = (0..parts.len()).collect();
        order.sort_by(|&a, &b| {
            parts[a]
                .partition_mbr
                .min
                .x
                .total_cmp(&parts[b].partition_mbr.min.x)
                .then(a.cmp(&b))
        });
        let mut sweep = NeighborSweep::new();
        let mut retired = Vec::new();
        for &i in &order {
            sweep.push(
                i as u32,
                parts[i].page_mbr,
                parts[i].partition_mbr,
                &mut retired,
            );
        }
        // ~236 partitions in a 7³-ish tiling ⇒ a slab is ~34 partitions;
        // the window holds two adjacent slabs plus stretch stragglers.
        let peak = sweep.peak_window();
        sweep.finish(&mut retired);
        assert_eq!(retired.len(), parts.len());
        assert!(
            peak < parts.len() / 2,
            "window {peak} should be far below {} partitions",
            parts.len()
        );
    }

    #[test]
    fn existing_boundary_skips_only_existing_pairs() {
        // Sweep a tiling once fully, once with a boundary: partitions at
        // or above the boundary must get exactly their full lists minus
        // nothing, partitions below it exactly their links to >= boundary.
        let mut rng = StdRng::seed_from_u64(15);
        let entries: Vec<Entry> = (0..4000)
            .map(|i| {
                let c = Point3::new(
                    rng.gen_range(0.0..40.0),
                    rng.gen_range(0.0..40.0),
                    rng.gen_range(0.0..40.0),
                );
                Entry::new(i, Aabb::cube(c, 0.4))
            })
            .collect();
        let parts = partition(entries, 85, None);
        let (full, _) = sweep_neighbors(&parts);
        let boundary = (parts.len() / 2) as u32;

        let mut order: Vec<usize> = (0..parts.len()).collect();
        order.sort_by(|&a, &b| {
            parts[a]
                .partition_mbr
                .min
                .x
                .total_cmp(&parts[b].partition_mbr.min.x)
                .then(a.cmp(&b))
        });
        let mut sweep = NeighborSweep::with_existing_boundary(boundary);
        let mut retired = Vec::new();
        for &i in &order {
            sweep.push(
                i as u32,
                parts[i].page_mbr,
                parts[i].partition_mbr,
                &mut retired,
            );
        }
        sweep.finish(&mut retired);
        for r in retired {
            let expected: Vec<u32> = if r.index >= boundary {
                full[r.index as usize].clone()
            } else {
                full[r.index as usize]
                    .iter()
                    .copied()
                    .filter(|&j| j >= boundary)
                    .collect()
            };
            assert_eq!(r.neighbors, expected, "partition {}", r.index);
        }
    }

    #[test]
    fn bigger_partitions_mean_more_pointers() {
        // The Fig 21 mechanism: inflate partition MBRs and the pointer
        // count grows.
        let mut rng = StdRng::seed_from_u64(10);
        let entries: Vec<Entry> = (0..4000)
            .map(|i| {
                let c = Point3::new(
                    rng.gen_range(0.0..40.0),
                    rng.gen_range(0.0..40.0),
                    rng.gen_range(0.0..40.0),
                );
                Entry::new(i, Aabb::cube(c, 0.2))
            })
            .collect();
        let base = partition(entries, 85, None);

        let mut small = base.clone();
        let total_small = compute_neighbors(&mut small).unwrap();

        let mut big = base;
        for p in &mut big {
            p.partition_mbr = p.partition_mbr.scale_volume(3.0);
        }
        let total_big = compute_neighbors(&mut big).unwrap();
        assert!(
            total_big > total_small,
            "inflated partitions must intersect more: {total_big} vs {total_small}"
        );
    }
}
