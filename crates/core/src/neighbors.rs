//! Algorithm 1, part two: neighborhood computation.
//!
//! "All partition MBRs are inserted into a temporary R-Tree, used solely to
//! compute the neighborhood information. Finally, for each partition, a
//! range query with the partition MBR is executed, and all intersecting
//! partitions, the neighbors, are retrieved" (§V-A).
//!
//! The temporary tree lives in a throwaway in-memory pool and is dropped
//! when the function returns; only the neighbor lists survive, exactly as
//! in the paper.

use crate::partition::Partition;
use flat_geom::Aabb;
use flat_rtree::{BulkLoad, Entry, LeafLayout, RTree, RTreeConfig};
use flat_storage::{BufferPool, MemStore, StorageError};

/// Fills `partition.neighbors` for every partition: partition `j` is a
/// neighbor of `i` iff `i ≠ j` and their partition MBRs intersect (closed
/// boxes — face-adjacent tiles are neighbors, matching the paper's
/// "adjacent to or overlaps with").
///
/// Because partitions tile space with no gaps, this relation makes every
/// spatially connected region's partitions *graph*-connected — the
/// property the range crawl needs to cover a query box from any seed, and
/// the property the kNN crawl (`FlatIndex::knn_query`) needs for its
/// best-first expansion to stay exact: any partition within distance `d`
/// of a query point is reachable through partitions at most `d` away.
///
/// Returns the total number of neighbor pointers created (the quantity
/// Figures 20/21 characterize).
pub fn compute_neighbors(partitions: &mut [Partition]) -> Result<u64, StorageError> {
    if partitions.is_empty() {
        return Ok(0);
    }
    // Temporary R-tree over the partition MBRs, payload = partition index.
    let entries: Vec<Entry> = partitions
        .iter()
        .enumerate()
        .map(|(i, p)| Entry::new(i as u64, p.partition_mbr))
        .collect();
    let mut pool = BufferPool::new(MemStore::new(), usize::MAX >> 1);
    let config = RTreeConfig {
        layout: LeafLayout::WithIds,
        ..RTreeConfig::default()
    };
    let tree = RTree::bulk_load(&mut pool, entries, BulkLoad::Str, config)?;

    let mut total = 0u64;
    for (i, partition) in partitions.iter_mut().enumerate() {
        let query: Aabb = partition.partition_mbr;
        let mut neighbors: Vec<u32> = tree
            .range_query(&pool, &query)?
            .into_iter()
            .map(|h| h.id as u32)
            .filter(|&j| j != i as u32)
            .collect();
        neighbors.sort_unstable();
        total += neighbors.len() as u64;
        partition.neighbors = neighbors;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition;
    use flat_geom::Point3;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn grid_partitions(side: usize) -> Vec<Partition> {
        // side³ unit tiles forming an exact grid; page MBR = small box in
        // the tile center so no stretching happens.
        let mut parts = Vec::new();
        for x in 0..side {
            for y in 0..side {
                for z in 0..side {
                    let min = Point3::new(x as f64, y as f64, z as f64);
                    let tile = Aabb::new(min, min + Point3::splat(1.0));
                    let inner = Aabb::cube(tile.center(), 0.2);
                    parts.push(Partition {
                        elements: vec![Entry::new(0, inner)],
                        page_mbr: inner,
                        partition_mbr: tile,
                        neighbors: Vec::new(),
                    });
                }
            }
        }
        parts
    }

    #[test]
    fn grid_interior_cell_has_26_neighbors() {
        let mut parts = grid_partitions(3);
        compute_neighbors(&mut parts).unwrap();
        // Index of the center cell (1,1,1) in x-major order.
        let center = 9 + 3 + 1; // cell (1,1,1) in x-major order
        assert_eq!(
            parts[center].neighbors.len(),
            26,
            "3³ grid center touches all others"
        );
        // A corner touches 7 others.
        assert_eq!(parts[0].neighbors.len(), 7);
    }

    #[test]
    fn neighbor_relation_is_symmetric() {
        let mut rng = StdRng::seed_from_u64(8);
        let entries: Vec<Entry> = (0..5000)
            .map(|i| {
                let c = Point3::new(
                    rng.gen_range(0.0..50.0),
                    rng.gen_range(0.0..50.0),
                    rng.gen_range(0.0..50.0),
                );
                Entry::new(i, Aabb::cube(c, 0.3))
            })
            .collect();
        let mut parts = partition(entries, 85, None);
        compute_neighbors(&mut parts).unwrap();
        for (i, p) in parts.iter().enumerate() {
            for &j in &p.neighbors {
                assert!(
                    parts[j as usize].neighbors.contains(&(i as u32)),
                    "asymmetric neighbors: {i} -> {j}"
                );
            }
        }
    }

    #[test]
    fn neighbors_match_brute_force_intersection() {
        let mut rng = StdRng::seed_from_u64(9);
        let entries: Vec<Entry> = (0..2000)
            .map(|i| {
                let c = Point3::new(
                    rng.gen_range(0.0..30.0),
                    rng.gen_range(0.0..30.0),
                    rng.gen_range(0.0..30.0),
                );
                Entry::new(i, Aabb::cube(c, 0.5))
            })
            .collect();
        let mut parts = partition(entries, 50, None);
        compute_neighbors(&mut parts).unwrap();
        for i in 0..parts.len() {
            let expected: Vec<u32> = (0..parts.len())
                .filter(|&j| j != i && parts[i].partition_mbr.intersects(&parts[j].partition_mbr))
                .map(|j| j as u32)
                .collect();
            assert_eq!(parts[i].neighbors, expected, "partition {i}");
        }
    }

    #[test]
    fn no_self_loops() {
        let mut parts = grid_partitions(2);
        compute_neighbors(&mut parts).unwrap();
        for (i, p) in parts.iter().enumerate() {
            assert!(!p.neighbors.contains(&(i as u32)));
        }
    }

    #[test]
    fn single_partition_has_no_neighbors() {
        let mut parts = grid_partitions(1);
        let total = compute_neighbors(&mut parts).unwrap();
        assert_eq!(total, 0);
        assert!(parts[0].neighbors.is_empty());
    }

    #[test]
    fn empty_input_is_fine() {
        let mut parts: Vec<Partition> = Vec::new();
        assert_eq!(compute_neighbors(&mut parts).unwrap(), 0);
    }

    #[test]
    fn bigger_partitions_mean_more_pointers() {
        // The Fig 21 mechanism: inflate partition MBRs and the pointer
        // count grows.
        let mut rng = StdRng::seed_from_u64(10);
        let entries: Vec<Entry> = (0..4000)
            .map(|i| {
                let c = Point3::new(
                    rng.gen_range(0.0..40.0),
                    rng.gen_range(0.0..40.0),
                    rng.gen_range(0.0..40.0),
                );
                Entry::new(i, Aabb::cube(c, 0.2))
            })
            .collect();
        let base = partition(entries, 85, None);

        let mut small = base.clone();
        let total_small = compute_neighbors(&mut small).unwrap();

        let mut big = base;
        for p in &mut big {
            p.partition_mbr = p.partition_mbr.scale_volume(3.0);
        }
        let total_big = compute_neighbors(&mut big).unwrap();
        assert!(
            total_big > total_small,
            "inflated partitions must intersect more: {total_big} vs {total_small}"
        );
    }
}
