//! Algorithm 1, part one: STR partitioning with tiling partition MBRs.
//!
//! The paper's Algorithm 1 sorts the elements on the x coordinate of their
//! centers, cuts them into `pn = ⌈(n/pagesize)^(1/3)⌉` slabs, re-sorts and
//! cuts each slab along y, then along z, producing one partition (= one
//! object page) per final chunk. Two properties must hold for the crawl
//! phase to be correct (§V-A, §VI):
//!
//! 1. **No empty space** — the union of all partition MBRs covers the whole
//!    domain. We guarantee this constructively: slab/run/chunk boundaries
//!    are planes spanning the *entire* domain cross-section, so the tiles
//!    form a gap-free hierarchical grid.
//! 2. **Partition MBR ⊇ page MBR** — each tile is stretched to contain the
//!    tight bounding box of its elements (elements can straddle tile
//!    boundaries because tiles cut by *centers*).

use flat_geom::{Aabb, Axis};
use flat_rtree::Entry;

/// One partition: the elements of one object page plus the two MBRs FLAT
/// stores for it.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Elements assigned to this partition (at most the page capacity).
    pub elements: Vec<Entry>,
    /// Tight bounding box of `elements` — the *page MBR*.
    pub page_mbr: Aabb,
    /// The space tile, stretched to contain `page_mbr` — the *partition
    /// MBR*.
    pub partition_mbr: Aabb,
    /// Indexes (into the partition vector) of the neighboring partitions;
    /// empty until neighbor computation runs.
    pub neighbors: Vec<u32>,
}

impl Partition {
    /// `true` if both crawl-phase invariants hold for this partition in
    /// isolation (the global no-empty-space property is checked by
    /// [`verify_tiling`]).
    pub fn invariants_hold(&self) -> bool {
        self.partition_mbr.contains(&self.page_mbr)
            && self.elements.iter().all(|e| self.page_mbr.contains(&e.mbr))
    }
}

/// Splits sorted `items` into `parts` consecutive chunks of near-equal
/// size, returning the chunk boundaries as center-coordinate cut planes.
///
/// Returns `(chunks, cuts)` where `cuts[i]` separates chunk `i` from chunk
/// `i+1` (a value between the two adjacent centers).
fn chop(mut items: Vec<Entry>, axis: Axis, chunk_size: usize) -> (Vec<Vec<Entry>>, Vec<f64>) {
    items.sort_by(|a, b| {
        a.mbr
            .center()
            .coord(axis)
            .total_cmp(&b.mbr.center().coord(axis))
            .then_with(|| a.id.cmp(&b.id))
    });
    let mut chunks = Vec::new();
    let mut cuts = Vec::new();
    let mut iter = items.into_iter().peekable();
    loop {
        let chunk: Vec<Entry> = iter.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        if let Some(next) = iter.peek() {
            let last = chunk
                .last()
                .expect("chunk is non-empty")
                .mbr
                .center()
                .coord(axis);
            let first = next.mbr.center().coord(axis);
            cuts.push((last + first) / 2.0);
        }
        chunks.push(chunk);
    }
    (chunks, cuts)
}

/// One tile of a cut sequence: spans `bounds` except along `axis`, where
/// it covers `[lo, hi]` (clamped so degenerate cut orders still yield a
/// valid box). Shared by the in-memory tiling and the streaming builder so
/// both produce bit-identical tiles.
pub(crate) fn axis_tile(bounds: &Aabb, axis: Axis, lo: f64, hi: f64) -> Aabb {
    let mut tile = *bounds;
    tile.min = tile.min.with_coord(axis, lo.min(hi));
    tile.max = tile.max.with_coord(axis, hi.max(lo));
    tile
}

/// Builds the tile boxes for a sequence of chunks cut along `axis` within
/// `bounds`: tile `i` spans `bounds` except along `axis`, where it covers
/// `[cut[i-1], cut[i]]` (domain edges at the ends).
fn tiles_for(bounds: &Aabb, axis: Axis, cuts: &[f64], count: usize) -> Vec<Aabb> {
    debug_assert_eq!(cuts.len() + 1, count);
    let mut tiles = Vec::with_capacity(count);
    let mut lo = bounds.min.coord(axis);
    for i in 0..count {
        let hi = if i < cuts.len() {
            cuts[i]
        } else {
            bounds.max.coord(axis)
        };
        tiles.push(axis_tile(bounds, axis, lo, hi));
        lo = hi;
    }
    tiles
}

/// The STR layout parameters for `n` elements: `(pn, slab_size)` where
/// `pn = ⌈(n/capacity)^⅓⌉` is the partition count per dimension and
/// `slab_size = ⌈n / pn⌉` the number of elements per x-slab (Algorithm 1).
pub(crate) fn partition_plan(n: usize, capacity: usize) -> (usize, usize) {
    let pages = n.div_ceil(capacity);
    let pn = (pages as f64).cbrt().ceil() as usize;
    (pn, n.div_ceil(pn))
}

/// Partitions one x-slab (entries already restricted to the slab, in
/// global x order) into its y-runs and z-chunks, appending the resulting
/// partitions to `out` in final partition order.
///
/// This is the per-slab core of Algorithm 1, shared verbatim by
/// [`partition`] (all slabs resident) and the streaming builder (one slab
/// resident at a time), which is what makes the two build paths
/// bit-identical.
pub(crate) fn partition_slab(
    slab: Vec<Entry>,
    x_tile: Aabb,
    pn: usize,
    capacity: usize,
    out: &mut Vec<Partition>,
) {
    let run_size = slab.len().div_ceil(pn);
    let (runs, y_cuts) = chop(slab, Axis::Y, run_size);
    let y_tiles = tiles_for(&x_tile, Axis::Y, &y_cuts, runs.len());

    for (run, y_tile) in runs.into_iter().zip(y_tiles) {
        // The final cut uses the page capacity directly, so partitions
        // never exceed it even when the ceiling arithmetic above is
        // loose.
        let (chunks, z_cuts) = chop(run, Axis::Z, capacity);
        let z_tiles = tiles_for(&y_tile, Axis::Z, &z_cuts, chunks.len());

        for (chunk, z_tile) in chunks.into_iter().zip(z_tiles) {
            let page_mbr = Aabb::union_all(chunk.iter().map(|e| e.mbr));
            let mut partition_mbr = z_tile;
            // Algorithm 1: "stretch partitionMBR to contain pageMBR".
            partition_mbr.stretch_to_contain(&page_mbr);
            out.push(Partition {
                elements: chunk,
                page_mbr,
                partition_mbr,
                neighbors: Vec::new(),
            });
        }
    }
}

/// Runs the paper's Algorithm 1 partitioning step.
///
/// * `capacity` — maximum elements per partition (the object-page
///   capacity; 85 for the paper's layout).
/// * `domain` — the space the tiling must cover. Defaults to the union of
///   all element MBRs. Queries outside the domain may crawl incompletely,
///   so pass the full dataset domain when elements do not span it.
///
/// Neighbor lists are left empty; fill them with
/// [`crate::neighbors::compute_neighbors`].
///
/// # Panics
/// Panics if `capacity` is zero.
pub fn partition(entries: Vec<Entry>, capacity: usize, domain: Option<Aabb>) -> Vec<Partition> {
    assert!(capacity > 0, "partition capacity must be positive");
    if entries.is_empty() {
        return Vec::new();
    }
    let bounds = domain.unwrap_or_else(|| Aabb::union_all(entries.iter().map(|e| e.mbr)));
    let n = entries.len();
    // pn partitions per dimension (Algorithm 1: pn = ⌈(size/pagesize)^⅓⌉).
    let (pn, slab_size) = partition_plan(n, capacity);

    let mut partitions = Vec::with_capacity(n.div_ceil(capacity));

    let (slabs, x_cuts) = chop(entries, Axis::X, slab_size);
    let x_tiles = tiles_for(&bounds, Axis::X, &x_cuts, slabs.len());

    for (slab, x_tile) in slabs.into_iter().zip(x_tiles) {
        partition_slab(slab, x_tile, pn, capacity, &mut partitions);
    }
    partitions
}

/// One coarse x-slab of the domain, assigned to one serving shard (see
/// [`crate::ShardedDb`]).
#[derive(Debug, Clone)]
pub struct ShardRegion {
    /// Elements owned by this shard.
    pub elements: Vec<Entry>,
    /// The shard's x-slab tile. Tiles are gap-free across shards: their
    /// union is exactly the domain.
    pub tile: Aabb,
    /// `tile` stretched to contain every owned element's MBR — the shard's
    /// *coverage*, which query routing tests against (elements can straddle
    /// tile boundaries because tiles cut by centers, exactly as in
    /// Algorithm 1).
    pub coverage: Aabb,
}

/// Splits `entries` into exactly `k` coarse x-slabs for the sharded
/// serving layer, reusing the STR machinery of Algorithm 1 at shard
/// granularity: `chop` by center-x for near-equal element counts, tile
/// boundaries midway between adjacent centers, and `partition_slab` to
/// derive each shard's stretched coverage box.
///
/// Always returns `k` regions. When the data yields fewer populated slabs
/// than `k` (fewer elements than shards, or heavily duplicated centers),
/// the remainder are empty shards with a degenerate tile at the domain's
/// upper x face — keeping shard identity stable for any requested `k`.
///
/// # Panics
/// Panics if `k` is zero.
pub fn shard_regions(entries: Vec<Entry>, k: usize, domain: &Aabb) -> Vec<ShardRegion> {
    assert!(k > 0, "shard count must be positive");
    if entries.is_empty() {
        // k equal x-slabs; coverage equals the bare tile.
        let lo = domain.min.coord(Axis::X);
        let hi = domain.max.coord(Axis::X);
        return (0..k)
            .map(|i| {
                let a = lo + (hi - lo) * i as f64 / k as f64;
                let b = if i + 1 == k {
                    hi
                } else {
                    lo + (hi - lo) * (i + 1) as f64 / k as f64
                };
                let tile = axis_tile(domain, Axis::X, a, b);
                ShardRegion {
                    elements: Vec::new(),
                    tile,
                    coverage: tile,
                }
            })
            .collect();
    }
    let chunk = entries.len().div_ceil(k);
    let (slabs, cuts) = chop(entries, Axis::X, chunk);
    let tiles = tiles_for(domain, Axis::X, &cuts, slabs.len());
    let mut regions: Vec<ShardRegion> = slabs
        .into_iter()
        .zip(tiles)
        .map(|(slab, tile)| {
            // One degenerate partition per slab (pn = 1, capacity = slab
            // size) reuses the tiling core to compute the stretched MBR.
            let mut parts = Vec::new();
            let len = slab.len();
            partition_slab(slab, tile, 1, len, &mut parts);
            let part = parts.pop().expect("non-empty slab yields one partition");
            debug_assert!(parts.is_empty());
            ShardRegion {
                elements: part.elements,
                tile,
                coverage: part.partition_mbr,
            }
        })
        .collect();
    while regions.len() < k {
        let hi = domain.max.coord(Axis::X);
        let tile = axis_tile(domain, Axis::X, hi, hi);
        regions.push(ShardRegion {
            elements: Vec::new(),
            tile,
            coverage: tile,
        });
    }
    regions
}

/// Verifies the global *no empty space* property: every probe point of a
/// regular `steps³` grid over `domain` must fall inside at least one
/// partition MBR. Used by tests (a full coverage proof would be an
/// arrangement computation; a dense probe grid catches real gaps reliably).
pub fn verify_tiling(partitions: &[Partition], domain: &Aabb, steps: usize) -> Result<(), String> {
    let e = domain.extents();
    for i in 0..steps {
        for j in 0..steps {
            for k in 0..steps {
                let p = flat_geom::Point3::new(
                    domain.min.x + e.x * (i as f64 + 0.5) / steps as f64,
                    domain.min.y + e.y * (j as f64 + 0.5) / steps as f64,
                    domain.min.z + e.z * (k as f64 + 0.5) / steps as f64,
                );
                if !partitions
                    .iter()
                    .any(|part| part.partition_mbr.contains_point(&p))
                {
                    return Err(format!("probe point {p} is not covered by any partition"));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flat_geom::Point3;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_entries(n: usize, seed: u64) -> Vec<Entry> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let c = Point3::new(
                    rng.gen_range(0.0..100.0),
                    rng.gen_range(0.0..100.0),
                    rng.gen_range(0.0..100.0),
                );
                Entry::new(
                    i as u64,
                    Aabb::centered(c, Point3::splat(rng.gen_range(0.01..0.8))),
                )
            })
            .collect()
    }

    #[test]
    fn partitions_respect_capacity_and_lose_nothing() {
        let entries = random_entries(10_000, 1);
        let parts = partition(entries.clone(), 85, None);
        let mut ids = Vec::new();
        for p in &parts {
            assert!(!p.elements.is_empty());
            assert!(p.elements.len() <= 85);
            ids.extend(p.elements.iter().map(|e| e.id));
        }
        ids.sort_unstable();
        let expected: Vec<u64> = (0..10_000).collect();
        assert_eq!(ids, expected);
    }

    #[test]
    fn partition_count_is_near_minimal() {
        let entries = random_entries(10_000, 2);
        let parts = partition(entries, 85, None);
        let min = 10_000usize.div_ceil(85);
        assert!(parts.len() >= min);
        assert!(
            parts.len() <= min + min / 2,
            "{} partitions for minimum {min}",
            parts.len()
        );
    }

    #[test]
    fn both_invariants_hold_per_partition() {
        let entries = random_entries(5000, 3);
        let parts = partition(entries, 85, None);
        for (i, p) in parts.iter().enumerate() {
            assert!(p.invariants_hold(), "partition {i} violates invariants");
        }
    }

    #[test]
    fn tiling_covers_the_domain() {
        let entries = random_entries(5000, 4);
        let domain = Aabb::new(Point3::splat(0.0), Point3::splat(100.0));
        let parts = partition(entries, 85, Some(domain));
        verify_tiling(&parts, &domain, 12).unwrap();
    }

    #[test]
    fn tiling_covers_even_with_clustered_data() {
        // All data in one corner: tiles must still span the full domain.
        let mut rng = StdRng::seed_from_u64(5);
        let entries: Vec<Entry> = (0..2000)
            .map(|i| {
                let c = Point3::new(
                    rng.gen_range(0.0..5.0),
                    rng.gen_range(0.0..5.0),
                    rng.gen_range(0.0..5.0),
                );
                Entry::new(i, Aabb::cube(c, 0.1))
            })
            .collect();
        let domain = Aabb::new(Point3::splat(0.0), Point3::splat(100.0));
        let parts = partition(entries, 50, Some(domain));
        verify_tiling(&parts, &domain, 10).unwrap();
    }

    #[test]
    fn straddling_elements_force_stretching() {
        // Big elements guarantee page MBRs poke out of their tiles, so
        // stretching must kick in and keep invariant 2.
        let mut rng = StdRng::seed_from_u64(6);
        let entries: Vec<Entry> = (0..3000)
            .map(|i| {
                let c = Point3::new(
                    rng.gen_range(0.0..100.0),
                    rng.gen_range(0.0..100.0),
                    rng.gen_range(0.0..100.0),
                );
                Entry::new(i, Aabb::cube(c, 10.0))
            })
            .collect();
        let parts = partition(entries, 40, None);
        assert!(parts.iter().all(|p| p.partition_mbr.contains(&p.page_mbr)));
        // At least one partition must actually have stretched beyond its
        // tile (page MBR wider than the tile's share of space).
        let total_tile_volume: f64 = parts.iter().map(|p| p.partition_mbr.volume()).sum();
        let domain_volume = Aabb::union_all(parts.iter().map(|p| p.partition_mbr)).volume();
        assert!(
            total_tile_volume > domain_volume * 1.01,
            "no overlap ⇒ nothing stretched"
        );
    }

    #[test]
    fn single_partition_for_small_input() {
        let entries = random_entries(10, 7);
        let parts = partition(entries, 85, None);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].elements.len(), 10);
    }

    #[test]
    fn empty_input_gives_no_partitions() {
        assert!(partition(Vec::new(), 85, None).is_empty());
    }

    #[test]
    fn duplicate_centers_are_partitioned_deterministically() {
        let entries: Vec<Entry> = (0..500)
            .map(|i| Entry::new(i, Aabb::cube(Point3::splat(5.0), 1.0)))
            .collect();
        let a = partition(entries.clone(), 85, None);
        let b = partition(entries, 85, None);
        assert_eq!(a.len(), b.len());
        for (pa, pb) in a.iter().zip(b.iter()) {
            let ia: Vec<u64> = pa.elements.iter().map(|e| e.id).collect();
            let ib: Vec<u64> = pb.elements.iter().map(|e| e.id).collect();
            assert_eq!(ia, ib);
        }
    }

    #[test]
    fn shard_regions_tile_the_domain_and_lose_nothing() {
        let entries = random_entries(4000, 8);
        let domain = Aabb::new(Point3::splat(0.0), Point3::splat(100.0));
        let regions = shard_regions(entries, 4, &domain);
        assert_eq!(regions.len(), 4);
        // Tiles are contiguous x-slabs spanning the domain.
        assert_eq!(regions[0].tile.min.x, domain.min.x);
        assert_eq!(regions.last().unwrap().tile.max.x, domain.max.x);
        for w in regions.windows(2) {
            assert_eq!(w[0].tile.max.x, w[1].tile.min.x);
        }
        // Element conservation + coverage contains every owned element.
        let mut ids = Vec::new();
        for r in &regions {
            assert!(!r.elements.is_empty());
            assert!(r.coverage.contains(&r.tile));
            for e in &r.elements {
                assert!(r.coverage.contains(&e.mbr));
            }
            ids.extend(r.elements.iter().map(|e| e.id));
        }
        ids.sort_unstable();
        let expected: Vec<u64> = (0..4000).collect();
        assert_eq!(ids, expected);
        // Near-balanced ownership (chop by count).
        let max = regions.iter().map(|r| r.elements.len()).max().unwrap();
        let min = regions.iter().map(|r| r.elements.len()).min().unwrap();
        assert!(max - min <= 1, "unbalanced shards: {min}..{max}");
    }

    #[test]
    fn shard_regions_pad_when_fewer_elements_than_shards() {
        let entries = random_entries(3, 9);
        let domain = Aabb::new(Point3::splat(0.0), Point3::splat(100.0));
        let regions = shard_regions(entries, 8, &domain);
        assert_eq!(regions.len(), 8);
        let populated = regions.iter().filter(|r| !r.elements.is_empty()).count();
        assert_eq!(populated, 3);
        for r in regions.iter().filter(|r| r.elements.is_empty()) {
            assert_eq!(r.tile.min.x, r.tile.max.x);
        }
    }

    #[test]
    fn shard_regions_empty_input_gives_even_splits() {
        let domain = Aabb::new(Point3::splat(0.0), Point3::splat(80.0));
        let regions = shard_regions(Vec::new(), 4, &domain);
        assert_eq!(regions.len(), 4);
        for (i, r) in regions.iter().enumerate() {
            assert!(r.elements.is_empty());
            assert_eq!(r.tile.min.x, 20.0 * i as f64);
            assert_eq!(r.tile.max.x, 20.0 * (i + 1) as f64);
            assert_eq!(r.coverage, r.tile);
        }
    }

    #[test]
    fn shard_regions_single_shard_owns_everything() {
        let entries = random_entries(200, 10);
        let domain = Aabb::new(Point3::splat(0.0), Point3::splat(100.0));
        let regions = shard_regions(entries, 1, &domain);
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].elements.len(), 200);
        assert_eq!(regions[0].tile, domain);
    }

    #[test]
    fn verify_tiling_detects_gaps() {
        // Fabricate a partition set with a hole.
        let domain = Aabb::new(Point3::splat(0.0), Point3::splat(10.0));
        let p = Partition {
            elements: vec![Entry::new(0, Aabb::cube(Point3::splat(1.0), 0.5))],
            page_mbr: Aabb::cube(Point3::splat(1.0), 0.5),
            partition_mbr: Aabb::new(Point3::splat(0.0), Point3::splat(2.0)),
            neighbors: Vec::new(),
        };
        assert!(verify_tiling(&[p], &domain, 5).is_err());
    }
}
