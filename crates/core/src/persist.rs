//! Saving and loading the FLAT index descriptor.
//!
//! Mirrors `flat_rtree`'s persistence: the object pages, metadata pages
//! and seed tree already live in the page store; only the descriptor
//! (seed root, height, layout, counters) needs to be written to make the
//! index durable. See the `persistence` integration test for the full
//! file-backed round trip.
//!
//! These are the primitives the [`crate::FlatDb`] façade's
//! [`crate::FlatDb::persist`] / [`crate::FlatDb::open_file`] build on —
//! there is one descriptor implementation, and the façade adds only the
//! page copy and the descriptor-placement convention (last page of the
//! file). Prefer the façade in new code; use these directly when managing
//! pools and descriptor pages by hand (e.g. several indexes sharing one
//! store).

use crate::index::FlatIndex;
use flat_rtree::LeafLayout;
use flat_storage::{Page, PageId, PageKind, PageRead, PageWrite, StorageError};

const MAGIC: u32 = 0x464C_4154; // "FLAT"
const KIND_FLAT: u16 = 2;
const NO_ROOT: u64 = u64::MAX;

impl FlatIndex {
    /// Writes the index descriptor to a new page, returning its id.
    pub fn save(&self, pool: &mut impl PageWrite) -> Result<PageId, StorageError> {
        let mut page = Page::new();
        page.put_u32(0, MAGIC);
        page.put_u16(4, KIND_FLAT);
        page.put_u16(
            6,
            match self.layout() {
                LeafLayout::MbrOnly => 0,
                LeafLayout::WithIds => 1,
            },
        );
        page.put_u64(8, self.seed_root.map_or(NO_ROOT, |r| r.0));
        page.put_u32(16, self.seed_height());
        page.put_u64(24, self.num_elements());
        page.put_u64(32, self.num_object_pages());
        page.put_u64(40, self.num_meta_pages());
        page.put_u64(48, self.num_seed_inner_pages());
        let id = pool.alloc()?;
        pool.write(id, &page, PageKind::Other)?;
        Ok(id)
    }

    /// Reconstructs an index handle from a descriptor page written by
    /// [`FlatIndex::save`].
    pub fn load(pool: &impl PageRead, descriptor: PageId) -> Result<FlatIndex, StorageError> {
        let page = pool.read_page(descriptor, PageKind::Other)?;
        if page.get_u32(0) != MAGIC || page.get_u16(4) != KIND_FLAT {
            return Err(StorageError::Corrupt(format!(
                "{descriptor} is not a FLAT descriptor"
            )));
        }
        let layout = match page.get_u16(6) {
            0 => LeafLayout::MbrOnly,
            1 => LeafLayout::WithIds,
            t => return Err(StorageError::Corrupt(format!("unknown layout tag {t}"))),
        };
        let root = page.get_u64(8);
        Ok(FlatIndex {
            seed_root: if root == NO_ROOT {
                None
            } else {
                Some(PageId(root))
            },
            seed_height: page.get_u32(16),
            layout,
            num_elements: page.get_u64(24),
            num_object_pages: page.get_u64(32),
            num_meta_pages: page.get_u64(40),
            num_seed_inner_pages: page.get_u64(48),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlatIndex, FlatOptions};
    use flat_geom::{Aabb, Point3};
    use flat_rtree::Entry;
    use flat_storage::{BufferPool, MemStore};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_entries(n: usize, seed: u64) -> Vec<Entry> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let c = Point3::new(
                    rng.gen_range(0.0..100.0),
                    rng.gen_range(0.0..100.0),
                    rng.gen_range(0.0..100.0),
                );
                Entry::new(i as u64, Aabb::cube(c, 0.4))
            })
            .collect()
    }

    #[test]
    fn save_load_roundtrip_preserves_queries() {
        let entries = random_entries(8000, 71);
        let mut pool = BufferPool::new(MemStore::new(), 1 << 14);
        let (index, _) =
            FlatIndex::build(&mut pool, entries.clone(), FlatOptions::default()).unwrap();
        let descriptor = index.save(&mut pool).unwrap();

        let loaded = FlatIndex::load(&pool, descriptor).unwrap();
        assert_eq!(loaded.num_elements(), index.num_elements());
        assert_eq!(loaded.seed_height(), index.seed_height());
        assert_eq!(loaded.num_meta_pages(), index.num_meta_pages());

        let q = Aabb::cube(Point3::splat(40.0), 20.0);
        let expected = entries.iter().filter(|e| q.intersects(&e.mbr)).count();
        assert_eq!(loaded.range_query(&pool, &q).unwrap().len(), expected);
    }

    #[test]
    fn empty_index_roundtrips() {
        let mut pool = BufferPool::new(MemStore::new(), 16);
        let (index, _) = FlatIndex::build(&mut pool, Vec::new(), FlatOptions::default()).unwrap();
        let descriptor = index.save(&mut pool).unwrap();
        let loaded = FlatIndex::load(&pool, descriptor).unwrap();
        assert_eq!(loaded.num_elements(), 0);
        let q = Aabb::cube(Point3::ORIGIN, 5.0);
        assert!(loaded.range_query(&pool, &q).unwrap().is_empty());
    }

    #[test]
    fn rtree_descriptor_is_rejected() {
        // Cross-kind confusion must fail: save an R-tree, load as FLAT.
        let mut pool = BufferPool::new(MemStore::new(), 1 << 12);
        let tree = flat_rtree::RTree::bulk_load(
            &mut pool,
            random_entries(100, 3),
            flat_rtree::BulkLoad::Str,
            flat_rtree::RTreeConfig::default(),
        )
        .unwrap();
        let descriptor = tree.save(&mut pool).unwrap();
        assert!(matches!(
            FlatIndex::load(&pool, descriptor),
            Err(StorageError::Corrupt(_))
        ));
    }
}
