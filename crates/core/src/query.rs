//! FLAT query evaluation: the seed phase and the breadth-first crawl
//! (§V-B.1 and §VI, Algorithm 2).

use crate::index::FlatIndex;
use crate::meta::{decode_meta_record, meta_leaf_len, MetaRecord, MetaRecordId};
use flat_geom::Aabb;
use flat_rtree::node::{decode_inner, decode_leaf};
use flat_rtree::{Hit, LeafLayout};
use flat_storage::{PageId, PageKind, PageRead, StorageError};
use std::collections::{HashSet, VecDeque};

/// Deleted-element set of a [`crate::DeltaIndex`], keyed by physical
/// location `(object page, slot)` — the one identity that stays valid
/// under both leaf layouts and across delete-then-reinsert of the same
/// application id. `None` everywhere on the static query path.
pub(crate) type Tombstones = HashSet<(PageId, u16)>;

/// `true` when the element at `slot` of `page` is still live.
#[inline]
pub(crate) fn is_live(tombstones: Option<&Tombstones>, page: PageId, slot: usize) -> bool {
    tombstones.is_none_or(|t| !t.contains(&(page, slot as u16)))
}

/// Crawl-progress hooks the batched [`crate::QueryEngine`] uses to turn
/// traversal events into readahead hints. The serial query path passes
/// `None` and pays nothing; implementations must be pure hints — they can
/// neither fail a query nor change its results.
pub(crate) trait CrawlHinter {
    /// `page` (of `kind`) was just scheduled for a future read.
    fn upcoming_page(&self, page: PageId, kind: PageKind);

    /// Record `addr` was just enqueued; `wants_object` says whether the
    /// record's object page will be scanned if the record looks like
    /// `MetaRecord` when decoded (the hinter may not know yet — it only
    /// acts when it can decode `addr` from an already-cached page).
    fn enqueued_record(&self, addr: MetaRecordId, wants_object: &dyn Fn(&MetaRecord) -> bool);
}

/// Per-query counters (the CPU/bookkeeping side of §VII-E.2; the I/O side
/// is in the pool's [`flat_storage::IoStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Elements returned.
    pub result_count: u64,
    /// Metadata records dequeued and processed by the crawl.
    pub records_processed: u64,
    /// Object pages read (logically) across both phases.
    pub object_pages_read: u64,
    /// Object pages probed by the seed phase before one with a matching
    /// element was found.
    pub seed_probe_pages: u64,
    /// High-water mark of the BFS queue — the paper reports the crawl's
    /// bookkeeping at "0.9 % of the size of the result set".
    pub max_queue_len: usize,
    /// Total records ever enqueued (size of the visited/seen set).
    pub records_seen: u64,
    /// MBR–query intersection tests performed.
    pub mbr_tests: u64,
}

impl QueryStats {
    /// Approximate bytes of crawl bookkeeping (queue + visited set), the
    /// quantity §VII-E.2 relates to the result-set size.
    pub fn bookkeeping_bytes(&self) -> u64 {
        let record_ref = std::mem::size_of::<MetaRecordId>() as u64;
        self.records_seen * record_ref + self.max_queue_len as u64 * record_ref
    }
}

impl FlatIndex {
    /// Evaluates a range query: seed phase then breadth-first crawl.
    ///
    /// Queries are shared reads (`&self` on both the index and the pool):
    /// any [`PageRead`] implementation works, including a
    /// [`flat_storage::ConcurrentBufferPool`] serving many query threads
    /// over one index.
    pub fn range_query(
        &self,
        pool: &impl PageRead,
        query: &Aabb,
    ) -> Result<Vec<Hit>, StorageError> {
        let mut stats = QueryStats::default();
        self.range_query_with_stats(pool, query, &mut stats)
    }

    /// Like [`FlatIndex::range_query`], accumulating counters into `stats`.
    pub fn range_query_with_stats(
        &self,
        pool: &impl PageRead,
        query: &Aabb,
        stats: &mut QueryStats,
    ) -> Result<Vec<Hit>, StorageError> {
        let mut hits = Vec::new();
        let Some(seed) = self.seed(pool, query, stats, None, None)? else {
            return Ok(hits); // "If no object page can be found, then the
                             // query has no result" (§V-B.1).
        };
        let mut state = CrawlState::start(seed);
        while !self.crawl_step(pool, query, &mut state, stats, &mut hits, None, None)? {}
        stats.result_count = hits.len() as u64;
        Ok(hits)
    }

    /// The seed phase (§V-B.1): walk a single path of the seed tree
    /// (early-exit DFS), reading candidate object pages until one actually
    /// contains a (live) element intersecting the query.
    ///
    /// `tombstones` is the delta layer's deleted-element set: probes skip
    /// tombstoned elements, and records whose partitions were retired
    /// (dead flag) are never entry points — their object pages are freed.
    pub(crate) fn seed(
        &self,
        pool: &impl PageRead,
        query: &Aabb,
        stats: &mut QueryStats,
        hinter: Option<&dyn CrawlHinter>,
        tombstones: Option<&Tombstones>,
    ) -> Result<Option<MetaRecordId>, StorageError> {
        let Some(root) = self.seed_root else {
            return Ok(None);
        };
        let mut stack = vec![(root, self.seed_height)];
        while let Some((page_id, level)) = stack.pop() {
            if level == 1 {
                // A metadata leaf: probe its records.
                let leaf = pool.read_page(page_id, PageKind::SeedLeaf)?;
                let count = meta_leaf_len(&leaf)?;
                for slot in 0..count as u16 {
                    let record = decode_meta_record(&leaf, slot)?;
                    // Continuation chunks are not crawl entry points: a
                    // crawl seeded mid-chain would only reach the tail of
                    // the over-full neighbor list. Dead records have no
                    // object page at all.
                    if record.is_continuation || record.is_dead {
                        continue;
                    }
                    stats.mbr_tests += 1;
                    if !record.page_mbr.intersects(query) {
                        continue;
                    }
                    // Candidate: check the object page for a real element.
                    stats.object_pages_read += 1;
                    let found = {
                        let page = pool.read_page(record.object_page, PageKind::ObjectPage)?;
                        let (_, entries) = decode_leaf(&page)?;
                        stats.mbr_tests += entries.len() as u64;
                        entries.iter().enumerate().any(|(s, e)| {
                            is_live(tombstones, record.object_page, s) && query.intersects(&e.mbr)
                        })
                    };
                    if found {
                        return Ok(Some(MetaRecordId {
                            page: page_id,
                            slot,
                        }));
                    }
                    stats.seed_probe_pages += 1;
                }
            } else {
                let page = pool.read_page(page_id, PageKind::SeedInner)?;
                for child in decode_inner(&page)? {
                    stats.mbr_tests += 1;
                    if query.intersects(&child.mbr) {
                        stack.push((child.page, level - 1));
                        if let Some(h) = hinter {
                            let kind = if level - 1 == 1 {
                                PageKind::SeedLeaf
                            } else {
                                PageKind::SeedInner
                            };
                            h.upcoming_page(child.page, kind);
                        }
                    }
                }
            }
        }
        Ok(None)
    }

    /// Runs one crawl turn: dequeues and fully processes a single metadata
    /// record (object-page scan plus neighbor expansion). Returns `true`
    /// when the crawl is finished.
    ///
    /// The serial [`FlatIndex::range_query`] simply loops this to
    /// completion; the batched [`crate::QueryEngine`] interleaves turns of
    /// many queries so their I/O overlaps. Because each query's own turn
    /// order is untouched, the two produce identical results — same hits,
    /// same order.
    ///
    /// One deliberate fix to the paper's pseudocode: Algorithm 2 only
    /// inserts a page into `visited` when its page MBR intersects the
    /// query, which would let two mutually neighboring records with
    /// non-intersecting page MBRs (but intersecting partition MBRs)
    /// re-enqueue each other forever. We track *enqueued* records instead
    /// ("seen"), which preserves the intended I/O behaviour — every record
    /// is processed at most once, every object page read at most once —
    /// and guarantees termination.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn crawl_step(
        &self,
        pool: &impl PageRead,
        query: &Aabb,
        state: &mut CrawlState,
        stats: &mut QueryStats,
        hits: &mut Vec<Hit>,
        hinter: Option<&dyn CrawlHinter>,
        tombstones: Option<&Tombstones>,
    ) -> Result<bool, StorageError> {
        let Some(addr) = state.queue.pop_front() else {
            return Ok(true);
        };
        stats.max_queue_len = stats.max_queue_len.max(state.queue.len() + 1);
        stats.records_processed += 1;
        let record = {
            let page = pool.read_page(addr.page, PageKind::SeedLeaf)?;
            decode_meta_record(&page, addr.slot)?
        };
        // Retirement prunes every link to a dead record, so the crawl can
        // only land on one through a stale seed — never expand it (its
        // object page is freed).
        debug_assert!(!record.is_dead, "crawl reached a dead record");
        if record.is_dead {
            return Ok(state.queue.is_empty());
        }

        // "the object page is only read from disk if M's page MBR
        // intersects with the query" (§VI).
        stats.mbr_tests += 1;
        if record.page_mbr.intersects(query) {
            stats.object_pages_read += 1;
            let page = pool.read_page(record.object_page, PageKind::ObjectPage)?;
            let (layout, entries) = decode_leaf(&page)?;
            for (slot, entry) in entries.iter().enumerate() {
                stats.mbr_tests += 1;
                if is_live(tombstones, record.object_page, slot) && query.intersects(&entry.mbr) {
                    let id = match layout {
                        LeafLayout::MbrOnly => (record.object_page.0 << 16) | entry.id,
                        LeafLayout::WithIds => entry.id,
                    };
                    hits.push(Hit {
                        mbr: entry.mbr,
                        id,
                        page: record.object_page,
                        slot: slot as u16,
                    });
                }
            }
        }

        // "the neighbor pointers stored in a metadata record M are only
        // followed if M's partition MBR intersects with the query"
        // (§VI).
        stats.mbr_tests += 1;
        if record.partition_mbr.intersects(query) {
            let wants_object = |r: &MetaRecord| r.page_mbr.intersects(query);
            for neighbor in record.neighbors {
                if state.seen.insert(neighbor) {
                    state.queue.push_back(neighbor);
                    if let Some(h) = hinter {
                        h.enqueued_record(neighbor, &wants_object);
                    }
                }
            }
            // Over-full neighbor lists spill into continuation records
            // (see `meta`); follow the chain, charging the reads like
            // any other metadata access.
            let mut next = record.continuation;
            while let Some(addr) = next {
                let chunk = {
                    let page = pool.read_page(addr.page, PageKind::SeedLeaf)?;
                    decode_meta_record(&page, addr.slot)?
                };
                for neighbor in chunk.neighbors {
                    if state.seen.insert(neighbor) {
                        state.queue.push_back(neighbor);
                        if let Some(h) = hinter {
                            h.enqueued_record(neighbor, &wants_object);
                        }
                    }
                }
                next = chunk.continuation;
            }
        }
        // Monotone running value; once the queue drains this equals the
        // size of the visited set, matching the serial accounting.
        stats.records_seen = state.seen.len() as u64;
        Ok(state.queue.is_empty())
    }

    /// Runs only the seed phase, returning the address of the seed record
    /// (for instrumentation and the seed-cost experiments).
    pub fn seed_only(
        &self,
        pool: &impl PageRead,
        query: &Aabb,
    ) -> Result<Option<(PageId, u16)>, StorageError> {
        let mut stats = QueryStats::default();
        Ok(self
            .seed(pool, query, &mut stats, None, None)?
            .map(|r| (r.page, r.slot)))
    }
}

/// The resumable state of one query's crawl phase: the BFS queue and the
/// visited ("seen") set. Produced by [`CrawlState::start`] from a seed
/// record and advanced one record at a time by `FlatIndex::crawl_step`.
#[derive(Debug)]
pub(crate) struct CrawlState {
    pub(crate) queue: VecDeque<MetaRecordId>,
    pub(crate) seen: HashSet<MetaRecordId>,
}

impl CrawlState {
    /// A crawl about to process `seed` as its first record.
    pub(crate) fn start(seed: MetaRecordId) -> CrawlState {
        let mut state = CrawlState {
            queue: VecDeque::new(),
            seen: HashSet::new(),
        };
        state.seen.insert(seed);
        state.queue.push_back(seed);
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{FlatIndex, FlatOptions};
    use flat_geom::Point3;
    use flat_rtree::Entry;
    use flat_storage::{BufferPool, MemStore};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_entries(n: usize, seed: u64) -> Vec<Entry> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let c = Point3::new(
                    rng.gen_range(0.0..100.0),
                    rng.gen_range(0.0..100.0),
                    rng.gen_range(0.0..100.0),
                );
                Entry::new(i as u64, Aabb::cube(c, rng.gen_range(0.05..0.5)))
            })
            .collect()
    }

    fn brute_force(entries: &[Entry], q: &Aabb) -> Vec<Aabb> {
        let mut v: Vec<Aabb> = entries
            .iter()
            .filter(|e| q.intersects(&e.mbr))
            .map(|e| e.mbr)
            .collect();
        v.sort_by(|a, b| {
            a.min
                .x
                .total_cmp(&b.min.x)
                .then(a.min.y.total_cmp(&b.min.y))
                .then(
                    a.min
                        .z
                        .total_cmp(&b.min.z)
                        .then(a.max.x.total_cmp(&b.max.x)),
                )
        });
        v
    }

    fn build(
        n: usize,
        seed: u64,
        options: FlatOptions,
    ) -> (BufferPool<MemStore>, FlatIndex, Vec<Entry>) {
        let entries = random_entries(n, seed);
        let mut pool = BufferPool::new(MemStore::new(), 1 << 16);
        let (index, _) = FlatIndex::build(&mut pool, entries.clone(), options).unwrap();
        (pool, index, entries)
    }

    #[test]
    fn flat_results_match_brute_force() {
        let (pool, index, entries) = build(20_000, 101, FlatOptions::default());
        for (c, side) in [(10.0, 4.0), (50.0, 15.0), (90.0, 2.0), (30.0, 40.0)] {
            let q = Aabb::cube(Point3::splat(c), side);
            let mut got: Vec<Aabb> = index
                .range_query(&pool, &q)
                .unwrap()
                .iter()
                .map(|h| h.mbr)
                .collect();
            got.sort_by(|a, b| {
                a.min
                    .x
                    .total_cmp(&b.min.x)
                    .then(a.min.y.total_cmp(&b.min.y))
                    .then(
                        a.min
                            .z
                            .total_cmp(&b.min.z)
                            .then(a.max.x.total_cmp(&b.max.x)),
                    )
            });
            assert_eq!(got, brute_force(&entries, &q), "query at {c} side {side}");
        }
    }

    #[test]
    fn empty_region_returns_nothing() {
        // Data only fills [0,100]³; query far outside the domain (the
        // tiling doesn't even cover it).
        let (pool, index, _) = build(5000, 103, FlatOptions::default());
        let q = Aabb::cube(Point3::splat(1000.0), 5.0);
        assert!(index.range_query(&pool, &q).unwrap().is_empty());
    }

    #[test]
    fn hole_inside_domain_returns_nothing_without_crashing() {
        // Two clusters with an empty corridor between them; a query inside
        // the corridor intersects tiles but no elements.
        let mut entries = Vec::new();
        let mut rng = StdRng::seed_from_u64(104);
        for i in 0..4000u64 {
            let x = if i % 2 == 0 {
                rng.gen_range(0.0..30.0)
            } else {
                rng.gen_range(70.0..100.0)
            };
            let c = Point3::new(x, rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0));
            entries.push(Entry::new(i, Aabb::cube(c, 0.3)));
        }
        let mut pool = BufferPool::new(MemStore::new(), 1 << 16);
        let (index, _) =
            FlatIndex::build(&mut pool, entries.clone(), FlatOptions::default()).unwrap();
        let q = Aabb::cube(Point3::new(50.0, 50.0, 50.0), 6.0);
        let expected = brute_force(&entries, &q);
        let got = index.range_query(&pool, &q).unwrap();
        assert_eq!(got.len(), expected.len());
    }

    #[test]
    fn crawl_crosses_concave_regions() {
        // The problem crawling approaches like DLS cannot handle (§II):
        // the query spans two disconnected clusters. FLAT's tiling must
        // bridge the gap because partitions tile the *space*, not the data.
        let mut entries = Vec::new();
        let mut rng = StdRng::seed_from_u64(105);
        for i in 0..3000u64 {
            let x = if i % 2 == 0 {
                rng.gen_range(0.0..20.0)
            } else {
                rng.gen_range(80.0..100.0)
            };
            let c = Point3::new(x, rng.gen_range(40.0..60.0), rng.gen_range(40.0..60.0));
            entries.push(Entry::new(i, Aabb::cube(c, 0.3)));
        }
        let mut pool = BufferPool::new(MemStore::new(), 1 << 16);
        let (index, _) =
            FlatIndex::build(&mut pool, entries.clone(), FlatOptions::default()).unwrap();
        // Query spanning both clusters and the void between them.
        let q = Aabb::from_corners(Point3::new(10.0, 45.0, 45.0), Point3::new(90.0, 55.0, 55.0));
        let expected = brute_force(&entries, &q);
        let got = index.range_query(&pool, &q).unwrap();
        assert_eq!(
            got.len(),
            expected.len(),
            "crawl failed to cross the concave gap"
        );
        assert!(!got.is_empty());
    }

    #[test]
    fn whole_domain_query_returns_everything_once() {
        let (pool, index, entries) = build(10_000, 106, FlatOptions::default());
        let q = Aabb::cube(Point3::splat(50.0), 250.0);
        let hits = index.range_query(&pool, &q).unwrap();
        assert_eq!(hits.len(), entries.len());
        let mut ids: Vec<u64> = hits.iter().map(|h| h.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), entries.len(), "duplicate results");
    }

    #[test]
    fn stats_reflect_the_workload() {
        let (pool, index, _) = build(20_000, 107, FlatOptions::default());
        let mut stats = QueryStats::default();
        let q = Aabb::cube(Point3::splat(50.0), 20.0);
        let hits = index.range_query_with_stats(&pool, &q, &mut stats).unwrap();
        assert_eq!(stats.result_count, hits.len() as u64);
        assert!(stats.records_processed > 0);
        assert!(stats.object_pages_read > 0);
        assert!(stats.max_queue_len > 0);
        assert!(stats.mbr_tests > stats.records_processed);
        assert!(stats.bookkeeping_bytes() > 0);
    }

    #[test]
    fn object_pages_are_read_at_most_once_per_query() {
        let (pool, index, _) = build(20_000, 108, FlatOptions::default());
        pool.clear_cache();
        pool.reset_stats();
        let q = Aabb::cube(Point3::splat(50.0), 25.0);
        let _ = index.range_query(&pool, &q).unwrap();
        let stats = pool.stats();
        // Physical object reads can't exceed the number of object pages —
        // and with the seen-set, logical reads equal physical reads plus
        // seed-phase cache hits only.
        assert!(
            stats.kind(PageKind::ObjectPage).physical_reads <= index.num_object_pages(),
            "an object page was read twice from disk"
        );
    }

    #[test]
    fn with_ids_layout_returns_application_ids() {
        let (pool, index, entries) = build(
            5000,
            109,
            FlatOptions {
                layout: LeafLayout::WithIds,
                ..Default::default()
            },
        );
        let q = Aabb::cube(Point3::splat(50.0), 250.0);
        let mut ids: Vec<u64> = index
            .range_query(&pool, &q)
            .unwrap()
            .iter()
            .map(|h| h.id)
            .collect();
        ids.sort_unstable();
        let mut expected: Vec<u64> = entries.iter().map(|e| e.id).collect();
        expected.sort_unstable();
        assert_eq!(ids, expected);
    }

    #[test]
    fn seed_only_finds_a_record_for_nonempty_queries() {
        let (pool, index, _) = build(10_000, 110, FlatOptions::default());
        let q = Aabb::cube(Point3::splat(40.0), 10.0);
        assert!(index.seed_only(&pool, &q).unwrap().is_some());
        let empty = Aabb::cube(Point3::splat(-500.0), 1.0);
        assert!(index.seed_only(&pool, &empty).unwrap().is_none());
    }

    #[test]
    fn point_query_works() {
        let (pool, index, entries) = build(10_000, 111, FlatOptions::default());
        // Use an element center so the query is guaranteed non-empty.
        let target = entries[1234].mbr.center();
        let q = Aabb::point(target);
        let expected = brute_force(&entries, &q);
        let got = index.range_query(&pool, &q).unwrap();
        assert_eq!(got.len(), expected.len());
        assert!(!got.is_empty());
    }

    #[test]
    fn continuation_chains_preserve_correctness() {
        // A few enormous elements stretch their partitions across the
        // whole domain, giving them neighbor lists far beyond one page's
        // capacity — the build must chain records and the crawl must still
        // return exact results.
        let mut entries = random_entries(60_000, 112);
        for i in 0..5u64 {
            let lo = Point3::splat(1.0 + i as f64);
            let hi = Point3::splat(99.0 - i as f64);
            entries.push(Entry::new(70_000 + i, Aabb::from_corners(lo, hi)));
        }
        let mut pool = BufferPool::new(MemStore::new(), 1 << 16);
        let (index, stats) =
            FlatIndex::build(&mut pool, entries.clone(), FlatOptions::default()).unwrap();
        let max_single = crate::meta::max_neighbors_per_record() as u32;
        assert!(
            stats.neighbor_counts.iter().any(|&c| c > max_single),
            "test setup must force continuation chains (max count {})",
            stats.neighbor_counts.iter().max().unwrap()
        );
        for (c, side) in [(50.0, 10.0), (20.0, 30.0), (50.0, 250.0)] {
            let q = Aabb::cube(Point3::splat(c), side);
            let expected = brute_force(&entries, &q);
            let got = index.range_query(&pool, &q).unwrap();
            assert_eq!(got.len(), expected.len(), "query at {c} side {side}");
        }
    }

    #[test]
    fn empty_index_answers_queries() {
        let mut pool = BufferPool::new(MemStore::new(), 16);
        let (index, _) = FlatIndex::build(&mut pool, Vec::new(), FlatOptions::default()).unwrap();
        let q = Aabb::cube(Point3::ORIGIN, 10.0);
        assert!(index.range_query(&pool, &q).unwrap().is_empty());
    }
}
