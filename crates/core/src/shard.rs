//! Sharded serving layer: K spatial shards, each behind its own
//! [`DiskScheduler`].
//!
//! [`ShardedDb`] partitions the domain into K coarse x-slabs with the same
//! STR machinery as Algorithm 1 ([`crate::partition::shard_regions`]).
//! Each shard owns a full vertical slice of the system — a page store, a
//! [`DiskScheduler`] (submission queues, read coalescing, priority lanes)
//! behind a [`VersionedPool`], and a [`FlatIndex`] — so shards never
//! contend on a buffer pool or a store mutex, and I/O for K shards
//! proceeds on K independent worker pools.
//!
//! Every shard's index is built over the **global** domain: FLAT's crawl
//! is exhaustive only when the partition tiling covers the whole space a
//! query may probe, and queries routinely span several shard slabs. The
//! slab only decides *ownership* (which elements a shard stores); the
//! shard's own tiling then stretches over the full domain exactly as a
//! single index over clustered data would.
//!
//! Query routing tests the shard's *coverage* — its slab tile stretched to
//! contain every owned element — so an element MBR straddling a slab
//! boundary is still found through the one shard that owns it:
//!
//! * **Range queries** fan out to the shards whose coverage intersects the
//!   query and concatenate the disjoint per-shard results (sorted by
//!   element id, so the merged order is deterministic).
//! * **kNN queries** run a global best-first merge: every shard is pinned
//!   *first*, in ascending shard order, so the merge sees one consistent
//!   frontier (per-shard epochs; a batch publishing mid-merge cannot move
//!   an element between the visited and unvisited sides). Shards are then
//!   visited in ascending order of their coverage's distance to the query
//!   point, each contributes its exact per-shard top-k stream, and the
//!   scan stops as soon as the next shard's lower bound exceeds the
//!   current k-th distance. Results are exact; ties are broken by
//!   `(dist_sq, id)` — element ids rather than the single-index physical
//!   `(page, slot)` order, which is not comparable across independently
//!   built shards.
//! * **Updates** route by a global id → shard owner table (populated at
//!   build, maintained by every insert and delete), and promote **only
//!   the shards a batch actually touches** to the delta layer — read-only
//!   shards keep serving the cheaper pristine base-index crawl path.
//!
//! # Snapshots
//!
//! Queries never block on updates: each shard is a miniature
//! [`crate::FlatDb`] — a published resident view behind a read lock plus
//! an [`EpochPin`] into the shard's [`VersionedPool`]. A query pins the
//! shard's current epoch and reads that version of every page while a
//! concurrent batch copy-on-writes new ones; the batch publishes its
//! pages and the new resident view under the same write lock, so a
//! snapshot is always element-consistent per shard.

use crate::continuous::{ContinuousQueries, ContinuousQueryId, QueryDelta, StagedOp};
use crate::delta::DeltaIndex;
use crate::error::FlatError;
use crate::index::{FlatIndex, FlatOptions};
use crate::join::{JoinEngine, JoinInput, JoinResult, JoinStats};
use crate::knn::Neighbor;
use crate::partition::shard_regions;
use flat_geom::{Aabb, Point3};
use flat_rtree::{Entry, Hit, LeafLayout};
use flat_storage::{
    BatchWriter, BufferPool, DiskScheduler, EpochPin, IoStats, MemStore, PageStore,
    SchedulerConfig, SchedulerStats, StorageError, StoreCell, VersionStats, VersionedPool,
};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A shard's MVCC pool: a [`DiskScheduler`] cache over the shared store
/// cell, versioned for snapshot reads.
type ShardPool<S> = VersionedPool<S, DiskScheduler<StoreCell<S>>>;
type ShardPin<'a, S> = EpochPin<'a, S, DiskScheduler<StoreCell<S>>>;
type ShardBatch<'a, S> = BatchWriter<'a, S, DiskScheduler<StoreCell<S>>>;

/// Options for [`ShardedDb::build`].
#[derive(Debug, Clone, Copy)]
pub struct ShardOptions {
    /// Per-shard index build options. The layout must be
    /// [`LeafLayout::WithIds`] (cross-shard merging needs stable
    /// application ids); the domain, if left `None`, defaults to the union
    /// of the element MBRs and is then fixed for the life of the database.
    pub index: FlatOptions,
    /// Buffer-pool capacity (pages) of **each** shard's cache.
    pub pool_pages: usize,
    /// Disk-scheduler configuration of each shard's I/O worker pool.
    pub scheduler: SchedulerConfig,
}

impl Default for ShardOptions {
    fn default() -> Self {
        ShardOptions {
            index: FlatOptions {
                layout: LeafLayout::WithIds,
                ..FlatOptions::default()
            },
            pool_pages: 1 << 14,
            scheduler: SchedulerConfig::default(),
        }
    }
}

/// A shard's index: pristine bulkload until the first update against
/// *this shard* promotes it to the delta layer. Arcs make the published
/// view cheap to clone into snapshots; the writer copy-on-writes the
/// resident tables through [`Arc::make_mut`].
#[derive(Clone)]
enum ShardIndex {
    Base(Arc<FlatIndex>),
    Delta(Arc<DeltaIndex>),
    /// A batch failed after its commit point. Queries keep serving the
    /// last published snapshot; further updates panic.
    Poisoned,
}

/// What a query snapshot captures: the resident index tables plus the
/// routing bound, both as of one published epoch.
#[derive(Clone)]
struct ShardView {
    index: ShardIndex,
    /// Slab tile stretched to contain every owned element — what query
    /// routing tests. Grows when inserts land outside it.
    coverage: Aabb,
}

struct Shard<S: PageStore + Send + Sync + 'static> {
    pool: ShardPool<S>,
    /// Writer-side truth. The mutex serializes this shard's updates;
    /// queries never take it.
    truth: Mutex<ShardView>,
    /// Reader-side view, swapped atomically with each batch publish.
    published: RwLock<ShardView>,
}

impl<S: PageStore + Send + Sync + 'static> Shard<S> {
    /// Pins the shard's current epoch and clones the published view —
    /// under the published read lock, so the pin and the view belong to
    /// the same version (a concurrent publish lands entirely before or
    /// entirely after).
    fn snapshot(&self) -> (ShardView, ShardPin<'_, S>) {
        let published = read(&self.published);
        let pin = self.pool.pin();
        let view = published.clone();
        drop(published);
        (view, pin)
    }
}

fn read<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn write<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// A global kNN candidate: ordered by `(dist_sq, id)`, the sharded layer's
/// deterministic tie-break (see the module docs).
struct MergeCand {
    dist_sq: f64,
    id: u64,
    neighbor: Neighbor,
}

impl PartialEq for MergeCand {
    fn eq(&self, other: &Self) -> bool {
        self.dist_sq == other.dist_sq && self.id == other.id
    }
}

impl Eq for MergeCand {}

impl PartialOrd for MergeCand {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MergeCand {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist_sq
            .total_cmp(&other.dist_sq)
            .then(self.id.cmp(&other.id))
    }
}

/// K spatial shards, each owning a store + [`DiskScheduler`] + index, with
/// cross-shard query routing and a global exact kNN merge.
///
/// All query and update entry points take `&self`. Queries are
/// **wait-free with respect to updates**: they pin the shard's epoch and
/// read the published snapshot, so a shard mid-batch keeps answering from
/// its pre-batch version. Updates serialize per shard on the shard's
/// truth mutex; traffic for different shards never contends. A query
/// overlapping an in-flight multi-shard update may see some shards before
/// and some after it, exactly like independent databases would — except
/// kNN, which pins every shard up front and merges one consistent
/// frontier.
///
/// ```
/// use flat_core::{ShardOptions, ShardedDb};
/// use flat_geom::{Aabb, Point3};
/// use flat_rtree::Entry;
///
/// let entries: Vec<Entry> = (0..2000)
///     .map(|i| Entry::new(i, Aabb::cube(Point3::splat((i % 100) as f64), 1.0)))
///     .collect();
/// let db = ShardedDb::build_in_memory(4, entries, ShardOptions::default()).unwrap();
/// let hits = db.range_query(&Aabb::cube(Point3::splat(50.0), 3.0)).unwrap();
/// assert!(!hits.is_empty());
/// let nn = db.knn_query(Point3::splat(10.0), 5).unwrap();
/// assert_eq!(nn.len(), 5);
/// ```
pub struct ShardedDb<S: PageStore + Send + Sync + 'static> {
    shards: Vec<Shard<S>>,
    /// Upper x-bound of each shard's slab except the last: element centers
    /// in `[cuts[i-1], cuts[i])` route to shard `i`.
    cuts: Vec<f64>,
    domain: Aabb,
    /// Resolved per-shard index options (`domain` always `Some(global)`).
    options: FlatOptions,
    /// Global id → owning shard, populated at build and maintained by
    /// every insert and delete. Routes deletes and liveness checks
    /// without promoting read-only shards.
    owners: RwLock<HashMap<u64, u32>>,
    /// Top-level continuous-query registry. The mutex is held across a
    /// whole multi-shard [`ShardedDb::insert`] / [`ShardedDb::delete`]
    /// call and across subscription registration, so each subscriber
    /// sees exactly one merged delta per update call — stamped with a
    /// database-level commit sequence, since the per-shard page epochs
    /// advance independently.
    subs: Mutex<ShardSubs>,
}

/// The sharded layer's subscription state: the registry plus the
/// db-level commit sequence its deltas are stamped with.
#[derive(Default)]
struct ShardSubs {
    registry: ContinuousQueries,
    seq: u64,
}

impl<S: PageStore + Send + Sync + 'static> ShardedDb<S> {
    /// Bulk-loads `num_shards` shards from `entries`, calling
    /// `store_factory(i)` for shard `i`'s backing store.
    ///
    /// Element ids must be unique across the whole build (they are the
    /// merge key). The layout must be [`LeafLayout::WithIds`].
    pub fn build(
        num_shards: usize,
        entries: Vec<Entry>,
        mut options: ShardOptions,
        mut store_factory: impl FnMut(usize) -> S,
    ) -> Result<ShardedDb<S>, FlatError> {
        if num_shards == 0 {
            return Err(FlatError::Build("at least one shard is required".into()));
        }
        if options.index.layout != LeafLayout::WithIds {
            return Err(FlatError::Build(
                "sharded serving requires LeafLayout::WithIds: cross-shard \
                 merging and id-routed deletes need stable application ids"
                    .into(),
            ));
        }
        let domain = match options.index.domain {
            Some(d) => d,
            None if entries.is_empty() => {
                return Err(FlatError::Build(
                    "an empty build requires an explicit domain".into(),
                ));
            }
            None => Aabb::union_all(entries.iter().map(|e| e.mbr)),
        };
        options.index.domain = Some(domain);

        let regions = shard_regions(entries, num_shards, &domain);
        let cuts = regions
            .iter()
            .take(num_shards - 1)
            .map(|r| r.tile.max.x)
            .collect();
        let mut owners = HashMap::new();
        let shards = regions
            .into_iter()
            .enumerate()
            .map(|(i, region)| {
                owners.extend(region.elements.iter().map(|e| (e.id, i as u32)));
                let cell = StoreCell::new(store_factory(i));
                let mut pool = BufferPool::new(cell.clone(), options.pool_pages);
                let (index, _) = FlatIndex::build(&mut pool, region.elements, options.index)?;
                let scheduler = DiskScheduler::from_pool(pool, options.scheduler);
                let view = ShardView {
                    index: ShardIndex::Base(Arc::new(index)),
                    coverage: region.coverage,
                };
                Ok(Shard {
                    pool: VersionedPool::from_parts(cell, scheduler),
                    truth: Mutex::new(view.clone()),
                    published: RwLock::new(view),
                })
            })
            .collect::<Result<Vec<_>, FlatError>>()?;
        Ok(ShardedDb {
            shards,
            cuts,
            domain,
            options: options.index,
            owners: RwLock::new(owners),
            subs: Mutex::new(ShardSubs::default()),
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The fixed domain every shard's tiling covers.
    pub fn domain(&self) -> Aabb {
        self.domain
    }

    /// Shard `i`'s current coverage box (routing bound).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn shard_coverage(&self, i: usize) -> Aabb {
        read(&self.shards[i].published).coverage
    }

    /// True while shard `i` still serves the pristine bulkload — no
    /// update has touched it, so queries take the cheaper base-index
    /// crawl path (promotion is lazy and per shard).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn shard_is_base(&self, i: usize) -> bool {
        matches!(read(&self.shards[i].published).index, ShardIndex::Base(_))
    }

    /// Shard `i`'s versioning counters (per-shard epochs).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn shard_version_stats(&self, i: usize) -> VersionStats {
        self.shards[i].pool.version_stats()
    }

    /// Live elements across all shards.
    pub fn num_live_elements(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| match &read(&s.published).index {
                ShardIndex::Base(index) => index.num_elements(),
                ShardIndex::Delta(delta) => delta.num_live_elements(),
                ShardIndex::Poisoned => 0,
            })
            .sum()
    }

    /// Aggregated I/O statistics across all shard pools.
    pub fn io_stats(&self) -> IoStats {
        let mut out = IoStats::default();
        for s in &self.shards {
            out.accumulate(&s.pool.cache().stats());
        }
        out
    }

    /// Aggregated scheduler-lane statistics across all shard pools
    /// (latency means weight every lane equally; queue maxima are maxima
    /// over shards).
    pub fn scheduler_stats(&self) -> SchedulerStats {
        let mut out = SchedulerStats::default();
        for s in &self.shards {
            out.accumulate(&s.pool.cache().scheduler_stats());
        }
        out
    }

    /// Drops every cached page in every shard (the paper's cold-cache
    /// protocol).
    pub fn clear_cache(&self) {
        for s in &self.shards {
            s.pool.cache().clear_cache();
        }
    }

    /// Zeroes I/O and scheduler statistics in every shard.
    pub fn reset_stats(&self) {
        for s in &self.shards {
            s.pool.cache().reset_stats();
            s.pool.cache().reset_scheduler_stats();
        }
    }

    /// Evaluates a range query: seed + crawl on every shard whose coverage
    /// intersects `query`, merged and sorted by element id (shards hold
    /// disjoint elements, so the merge is a plain concatenation). Each
    /// shard answers from its pinned snapshot — a concurrent batch on any
    /// shard neither blocks the query nor leaks partial effects into it.
    pub fn range_query(&self, query: &Aabb) -> Result<Vec<Hit>, FlatError> {
        let mut hits = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            let (view, pin) = shard.snapshot();
            if !view.coverage.intersects(query) {
                continue;
            }
            let mut part = match &view.index {
                ShardIndex::Base(index) => index.range_query(&pin, query)?,
                ShardIndex::Delta(delta) => delta.range_query(&pin, query)?,
                ShardIndex::Poisoned => poisoned(i),
            };
            hits.append(&mut part);
        }
        hits.sort_unstable_by_key(|h| h.id);
        Ok(hits)
    }

    /// Counts the live elements intersecting `query` without
    /// materializing them: shards whose coverage misses the box are
    /// skipped outright, the rest take the per-shard containment
    /// early-exit ([`crate::Snapshot::aggregate_count`]). Shards hold
    /// disjoint elements, so the fan-out sum is exact.
    pub fn aggregate_count(&self, query: &Aabb) -> Result<u64, FlatError> {
        let mut total = 0;
        for (i, shard) in self.shards.iter().enumerate() {
            let (view, pin) = shard.snapshot();
            if !view.coverage.intersects(query) {
                continue;
            }
            total += match &view.index {
                ShardIndex::Base(index) => index.aggregate_count(&pin, query)?,
                ShardIndex::Delta(delta) => delta.aggregate_count(&pin, query)?,
                ShardIndex::Poisoned => poisoned(i),
            };
        }
        Ok(total)
    }

    /// Live elements intersecting `query` per unit volume (0.0 for a
    /// degenerate box).
    pub fn aggregate_density(&self, query: &Aabb) -> Result<f64, FlatError> {
        let volume = query.volume();
        if volume <= 0.0 {
            return Ok(0.0);
        }
        Ok(self.aggregate_count(query)? as f64 / volume)
    }

    /// Joins this database (outer side) against another sharded
    /// database: every `(outer id, inner id)` element pair within
    /// Euclidean distance `eps`, via [`JoinEngine`]'s link-graph
    /// co-crawl, fanned out over the shard pairs whose coverage boxes
    /// are within `eps` of each other. Shards hold disjoint elements,
    /// so each result pair is produced by exactly one shard pair and
    /// the merge is a plain sort.
    pub fn join<S2: PageStore + Send + Sync + 'static>(
        &self,
        other: &ShardedDb<S2>,
        eps: f64,
    ) -> Result<JoinResult, FlatError> {
        let engine = JoinEngine::new(eps);
        let eps2 = eps * eps;
        let mut pairs = Vec::new();
        let mut stats = JoinStats::default();
        for (i, outer_shard) in self.shards.iter().enumerate() {
            let (outer_view, outer_pin) = outer_shard.snapshot();
            for (j, inner_shard) in other.shards.iter().enumerate() {
                let (inner_view, inner_pin) = inner_shard.snapshot();
                if outer_view.coverage.distance_sq(&inner_view.coverage) > eps2 {
                    continue;
                }
                let outer = match &outer_view.index {
                    ShardIndex::Base(index) => JoinInput::Flat(index),
                    ShardIndex::Delta(delta) => JoinInput::Delta(delta),
                    ShardIndex::Poisoned => poisoned(i),
                };
                let inner = match &inner_view.index {
                    ShardIndex::Base(index) => JoinInput::Flat(index),
                    ShardIndex::Delta(delta) => JoinInput::Delta(delta),
                    ShardIndex::Poisoned => poisoned(j),
                };
                let result = engine.join(&outer_pin, outer, &inner_pin, inner)?;
                stats.absorb(&result.stats);
                pairs.extend(result.pairs);
            }
        }
        pairs.sort_unstable();
        stats.pairs = pairs.len() as u64;
        Ok(JoinResult { pairs, stats })
    }

    /// Registers a continuous range query: returns its handle plus the
    /// baseline result (ids intersecting `range` right now, ascending).
    /// Every later [`ShardedDb::insert`] / [`ShardedDb::delete`] call
    /// appends exactly one merged [`QueryDelta`] — its net effect
    /// across all shards — stamped with a database-level commit
    /// sequence (per-shard page epochs advance independently, so they
    /// cannot order cross-shard batches).
    pub fn subscribe(&self, range: Aabb) -> Result<(ContinuousQueryId, Vec<u64>), FlatError> {
        // The registry mutex is held across every update call, so the
        // baseline query cannot observe half of one.
        let mut subs = lock(&self.subs);
        let baseline: Vec<u64> = self
            .range_query(&range)?
            .into_iter()
            .map(|h| h.id)
            .collect();
        let id = subs.registry.register(range, baseline.iter().copied());
        Ok((id, baseline))
    }

    /// Drains the undelivered [`QueryDelta`]s of a subscription, oldest
    /// first — one per update call committed since the last poll.
    pub fn poll_changes(&self, id: ContinuousQueryId) -> Result<Vec<QueryDelta>, FlatError> {
        lock(&self.subs)
            .registry
            .poll(id)
            .ok_or_else(|| FlatError::Query(format!("unknown continuous query {id:?}")))
    }

    /// The subscription's current result set, ascending: the baseline
    /// plus every committed delta (including ones not yet polled).
    pub fn continuous_result(&self, id: ContinuousQueryId) -> Result<Vec<u64>, FlatError> {
        lock(&self.subs)
            .registry
            .result(id)
            .ok_or_else(|| FlatError::Query(format!("unknown continuous query {id:?}")))
    }

    /// Drops a subscription; delivery stops immediately. `false` if the
    /// handle was unknown (already dropped).
    pub fn unsubscribe(&self, id: ContinuousQueryId) -> bool {
        lock(&self.subs).registry.unregister(id)
    }

    /// Returns the `k` elements nearest to `point` across all shards,
    /// ascending, exact.
    ///
    /// Every shard is pinned first (ascending shard order), so the merge
    /// runs over one consistent frontier; shards are then visited
    /// best-first by the distance from `point` to their coverage box, and
    /// the scan stops once the next shard's lower bound exceeds the
    /// current k-th distance. Ties are broken by `(dist_sq, id)` (see the
    /// module docs).
    pub fn knn_query(&self, point: Point3, k: usize) -> Result<Vec<Neighbor>, FlatError> {
        if k == 0 {
            return Ok(Vec::new());
        }
        // Pin all shards before reading any: the frontier the merge
        // bounds against is one epoch vector, not a moving target.
        let snaps: Vec<(ShardView, ShardPin<'_, S>)> =
            self.shards.iter().map(Shard::snapshot).collect();
        let mut order: Vec<(f64, usize)> = snaps
            .iter()
            .enumerate()
            .map(|(i, (view, _))| (view.coverage.distance_sq_to_point(&point), i))
            .collect();
        order.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        // Running top-k: max-heap of the k best (dist_sq, id) candidates.
        let mut best: std::collections::BinaryHeap<MergeCand> =
            std::collections::BinaryHeap::with_capacity(k + 1);
        for (lower_bound, i) in order {
            if best.len() == k && lower_bound > best.peek().expect("len == k >= 1").dist_sq {
                break;
            }
            let (view, pin) = &snaps[i];
            let stream = match &view.index {
                ShardIndex::Base(index) => index.knn_query(pin, point, k)?,
                ShardIndex::Delta(delta) => delta.knn_query(pin, point, k)?,
                ShardIndex::Poisoned => poisoned(i),
            };
            for neighbor in stream {
                let cand = MergeCand {
                    dist_sq: neighbor.dist_sq,
                    id: neighbor.hit.id,
                    neighbor,
                };
                if best.len() < k {
                    best.push(cand);
                } else if cand < *best.peek().expect("len == k >= 1") {
                    best.pop();
                    best.push(cand);
                } else {
                    // The per-shard stream is ascending: everything after
                    // this candidate is at least as far.
                    break;
                }
            }
        }
        Ok(best
            .into_sorted_vec()
            .into_iter()
            .map(|c| c.neighbor)
            .collect())
    }

    /// Inserts `entries`, routing each by its center's x coordinate along
    /// the slab cuts. Only the shards that receive elements are promoted
    /// to the delta layer. Returns [`FlatError::Update`] if an id is
    /// already live.
    ///
    /// # Panics
    /// Panics if two entries *of this batch* share an id, or if a
    /// concurrent insert races the same id past the liveness check (the
    /// same contract as [`DeltaIndex::insert_batch`]).
    pub fn insert(&self, entries: Vec<Entry>) -> Result<(), FlatError> {
        if entries.is_empty() {
            return Ok(());
        }
        // Held across the whole multi-shard apply: subscribers see the
        // call as one batch, and a registration cannot interleave with
        // a half-applied insert (see the `subs` field docs).
        let mut subs = lock(&self.subs);
        let staged = StagedOp::Insert(entries.iter().map(|e| (e.id, e.mbr)).collect());
        {
            let owners = read(&self.owners);
            for e in &entries {
                if owners.contains_key(&e.id) {
                    return Err(FlatError::Update(format!(
                        "insert of id {} which is already live",
                        e.id
                    )));
                }
            }
        }
        let mut routed: Vec<Vec<Entry>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for e in entries {
            routed[self.route(e.mbr.center().x)].push(e);
        }
        for (i, batch) in routed.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let ids: Vec<u64> = batch.iter().map(|e| e.id).collect();
            let grown = Aabb::union_all(batch.iter().map(|e| e.mbr));
            self.update_shard(i, Some(grown), |delta, pool| {
                delta.insert_batch(pool, batch)
            })?;
            write(&self.owners).extend(ids.into_iter().map(|id| (id, i as u32)));
        }
        subs.seq += 1;
        let seq = subs.seq;
        subs.registry.apply_batch(&[staged], seq);
        Ok(())
    }

    /// Deletes elements by application id, returning how many were live.
    /// Ids are routed by the global owner table, so only the shards that
    /// actually own one of `ids` are touched (and promoted, if still
    /// pristine); unknown ids are ignored.
    pub fn delete(&self, ids: &[u64]) -> Result<usize, FlatError> {
        if ids.is_empty() {
            return Ok(0);
        }
        // Same batching discipline as `insert` (see the `subs` docs).
        let mut subs = lock(&self.subs);
        let mut routed: Vec<Vec<u64>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        {
            let owners = read(&self.owners);
            for &id in ids {
                if let Some(&s) = owners.get(&id) {
                    routed[s as usize].push(id);
                }
            }
        }
        let mut deleted = 0;
        for (i, owned) in routed.into_iter().enumerate() {
            if owned.is_empty() {
                continue;
            }
            deleted +=
                self.update_shard(i, None, |delta, pool| delta.delete_batch(pool, &owned))?;
            let mut owners = write(&self.owners);
            for id in &owned {
                owners.remove(id);
            }
        }
        subs.seq += 1;
        let seq = subs.seq;
        subs.registry
            .apply_batch(&[StagedOp::Delete(ids.to_vec())], seq);
        Ok(deleted)
    }

    /// Runs one delta batch against shard `i`: serializes on the shard's
    /// truth mutex, promotes a pristine shard to the delta layer (lazily —
    /// only now, only this shard), copy-on-writes the resident tables and
    /// the touched pages, and publishes the new view and epoch atomically
    /// under the published write lock. Queries pinned before the publish
    /// keep their version; an apply error aborts the batch (readers stay
    /// on the pre-batch snapshot) and poisons the shard.
    fn update_shard<R>(
        &self,
        i: usize,
        grow: Option<Aabb>,
        apply: impl FnOnce(&mut DeltaIndex, &mut ShardBatch<'_, S>) -> Result<R, StorageError>,
    ) -> Result<R, FlatError> {
        let shard = &self.shards[i];
        let mut truth = lock(&shard.truth);
        if let ShardIndex::Base(base) = &truth.index {
            // Promotion writes no pages (the delta layer adopts the base
            // read-only), so no epoch bump is needed: publish just swaps
            // the resident view.
            let delta = DeltaIndex::new(&shard.pool, (**base).clone(), self.options)?;
            truth.index = ShardIndex::Delta(Arc::new(delta));
            *write(&shard.published) = truth.clone();
        }
        let mut batch = shard.pool.begin_batch();
        let result = {
            let ShardIndex::Delta(arc) = &mut truth.index else {
                poisoned(i)
            };
            apply(Arc::make_mut(arc), &mut batch)
        };
        match result {
            Err(e) => {
                // Dropping the unpublished batch aborts it: the pending
                // overlay keeps every reader (current and future) on the
                // pre-batch version, but truth may hold half-applied
                // resident tables — poison the shard.
                truth.index = ShardIndex::Poisoned;
                Err(e.into())
            }
            Ok(r) => {
                if let Some(grown) = grow {
                    truth.coverage = truth.coverage.union(&grown);
                }
                let mut published = write(&shard.published);
                batch.publish();
                *published = truth.clone();
                Ok(r)
            }
        }
    }

    /// Routes an element center to its owning shard.
    fn route(&self, x: f64) -> usize {
        self.cuts.partition_point(|&c| c <= x)
    }
}

impl ShardedDb<MemStore> {
    /// [`ShardedDb::build`] with a fresh in-memory store per shard.
    pub fn build_in_memory(
        num_shards: usize,
        entries: Vec<Entry>,
        options: ShardOptions,
    ) -> Result<ShardedDb<MemStore>, FlatError> {
        ShardedDb::build(num_shards, entries, options, |_| MemStore::new())
    }
}

impl<S: PageStore + Send + Sync + 'static> std::fmt::Debug for ShardedDb<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedDb")
            .field("num_shards", &self.shards.len())
            .field("domain", &self.domain)
            .finish_non_exhaustive()
    }
}

#[track_caller]
fn poisoned(shard: usize) -> ! {
    panic!("shard {shard} was poisoned by a failed update batch");
}

#[cfg(test)]
mod tests {
    use super::*;
    use flat_geom::Point3;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_entries(n: usize, seed: u64) -> Vec<Entry> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let c = Point3::new(
                    rng.gen_range(0.0..100.0),
                    rng.gen_range(0.0..100.0),
                    rng.gen_range(0.0..100.0),
                );
                Entry::new(i as u64, Aabb::centered(c, Point3::splat(0.5)))
            })
            .collect()
    }

    fn reference_range(entries: &[Entry], query: &Aabb) -> Vec<u64> {
        let mut ids: Vec<u64> = entries
            .iter()
            .filter(|e| e.mbr.intersects(query))
            .map(|e| e.id)
            .collect();
        ids.sort_unstable();
        ids
    }

    fn reference_knn(entries: &[Entry], point: Point3, k: usize) -> Vec<(f64, u64)> {
        let mut all: Vec<(f64, u64)> = entries
            .iter()
            .map(|e| (e.mbr.distance_sq_to_point(&point), e.id))
            .collect();
        all.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        all.truncate(k);
        all
    }

    #[test]
    fn sharded_range_matches_brute_force_across_shard_counts() {
        let entries = random_entries(3000, 21);
        let mut rng = StdRng::seed_from_u64(22);
        for k in [1, 2, 3, 4] {
            let db =
                ShardedDb::build_in_memory(k, entries.clone(), ShardOptions::default()).unwrap();
            for _ in 0..25 {
                let c = Point3::new(
                    rng.gen_range(0.0..100.0),
                    rng.gen_range(0.0..100.0),
                    rng.gen_range(0.0..100.0),
                );
                let q = Aabb::cube(c, rng.gen_range(1.0..12.0));
                let got: Vec<u64> = db.range_query(&q).unwrap().iter().map(|h| h.id).collect();
                assert_eq!(got, reference_range(&entries, &q), "k={k} query {q:?}");
            }
        }
    }

    #[test]
    fn sharded_knn_is_exact_across_shard_counts() {
        let entries = random_entries(2500, 23);
        let mut rng = StdRng::seed_from_u64(24);
        for shards in [1, 2, 4] {
            let db = ShardedDb::build_in_memory(shards, entries.clone(), ShardOptions::default())
                .unwrap();
            for _ in 0..20 {
                let p = Point3::new(
                    rng.gen_range(-10.0..110.0),
                    rng.gen_range(0.0..100.0),
                    rng.gen_range(0.0..100.0),
                );
                let k = rng.gen_range(1..40);
                let got: Vec<(f64, u64)> = db
                    .knn_query(p, k)
                    .unwrap()
                    .iter()
                    .map(|n| (n.dist_sq, n.hit.id))
                    .collect();
                assert_eq!(got, reference_knn(&entries, p, k), "shards={shards}");
            }
        }
    }

    #[test]
    fn inserts_and_deletes_route_and_merge() {
        let entries = random_entries(1200, 25);
        let db = ShardedDb::build_in_memory(3, entries.clone(), ShardOptions::default()).unwrap();
        assert_eq!(db.num_live_elements(), 1200);

        // Insert a fresh batch spanning the whole x range.
        let fresh: Vec<Entry> = (0..60)
            .map(|i| {
                Entry::new(
                    10_000 + i,
                    Aabb::cube(Point3::new(i as f64 * 1.6 + 1.0, 50.0, 50.0), 0.4),
                )
            })
            .collect();
        db.insert(fresh.clone()).unwrap();
        assert_eq!(db.num_live_elements(), 1260);
        let mut live: Vec<Entry> = entries.clone();
        live.extend(fresh.iter().cloned());
        let q = Aabb::new(Point3::new(0.0, 45.0, 45.0), Point3::new(100.0, 55.0, 55.0));
        let got: Vec<u64> = db.range_query(&q).unwrap().iter().map(|h| h.id).collect();
        assert_eq!(got, reference_range(&live, &q));

        // Re-inserting a live id is refused.
        let err = db
            .insert(vec![Entry::new(
                10_000,
                Aabb::cube(Point3::splat(5.0), 1.0),
            )])
            .unwrap_err();
        assert!(matches!(err, FlatError::Update(_)));

        // Delete half the fresh batch plus some originals; unknown ids ignored.
        let mut doomed: Vec<u64> = (0..30).map(|i| 10_000 + i).collect();
        doomed.extend([0, 1, 2, 999_999]);
        assert_eq!(db.delete(&doomed).unwrap(), 33);
        assert_eq!(db.num_live_elements(), 1227);
        live.retain(|e| !doomed.contains(&e.id));
        let got: Vec<u64> = db.range_query(&q).unwrap().iter().map(|h| h.id).collect();
        assert_eq!(got, reference_range(&live, &q));

        // kNN over the updated set stays exact.
        let p = Point3::new(40.0, 50.0, 50.0);
        let got: Vec<(f64, u64)> = db
            .knn_query(p, 15)
            .unwrap()
            .iter()
            .map(|n| (n.dist_sq, n.hit.id))
            .collect();
        assert_eq!(got, reference_knn(&live, p, 15));
    }

    #[test]
    fn promotion_is_lazy_and_per_shard() {
        // 3 shards over x ∈ [0, 90): updates that touch only one slab
        // must leave the other shards on the pristine base-index path.
        let entries: Vec<Entry> = (0..900)
            .map(|i| {
                let x = (i % 90) as f64 + 0.5;
                Entry::new(i, Aabb::cube(Point3::new(x, 50.0, 50.0), 0.4))
            })
            .collect();
        let db = ShardedDb::build_in_memory(3, entries.clone(), ShardOptions::default()).unwrap();
        assert!((0..3).all(|i| db.shard_is_base(i)));

        // An insert routed entirely into the leftmost slab.
        db.insert(vec![Entry::new(
            10_000,
            Aabb::cube(Point3::new(2.0, 50.0, 50.0), 0.4),
        )])
        .unwrap();
        assert!(!db.shard_is_base(0), "touched shard promotes");
        assert!(
            db.shard_is_base(1) && db.shard_is_base(2),
            "others stay base"
        );

        // Deleting ids owned by the rightmost shard promotes only it.
        let victim = entries
            .iter()
            .map(|e| e.id)
            .find(|&id| {
                let x = (id % 90) as f64 + 0.5;
                x >= db.shard_coverage(2).min.x
            })
            .unwrap();
        assert_eq!(db.delete(&[victim]).unwrap(), 1);
        assert!(!db.shard_is_base(2));
        assert!(db.shard_is_base(1), "untouched shard still base");

        // Unknown ids touch (and promote) nothing.
        assert_eq!(db.delete(&[999_999_999]).unwrap(), 0);
        assert!(db.shard_is_base(1));

        // Queries stay exact across the mixed base/delta fleet, and the
        // touched shards carry their own epochs.
        let mut live = entries;
        live.push(Entry::new(
            10_000,
            Aabb::cube(Point3::new(2.0, 50.0, 50.0), 0.4),
        ));
        live.retain(|e| e.id != victim);
        let q = Aabb::new(Point3::new(0.0, 45.0, 45.0), Point3::new(90.0, 55.0, 55.0));
        let got: Vec<u64> = db.range_query(&q).unwrap().iter().map(|h| h.id).collect();
        assert_eq!(got, reference_range(&live, &q));
        assert_eq!(db.shard_version_stats(0).epoch, 1);
        assert_eq!(db.shard_version_stats(1).epoch, 0);
        assert_eq!(db.shard_version_stats(2).epoch, 1);
    }

    #[test]
    fn inserts_outside_coverage_grow_the_routing_bound() {
        let entries: Vec<Entry> = (0..400)
            .map(|i| Entry::new(i, Aabb::cube(Point3::splat(40.0 + (i % 20) as f64), 0.5)))
            .collect();
        let mut options = ShardOptions::default();
        options.index.domain = Some(Aabb::new(Point3::splat(0.0), Point3::splat(200.0)));
        let db = ShardedDb::build_in_memory(2, entries, options).unwrap();
        // Far outside every element, inside the domain.
        let outlier = Entry::new(9999, Aabb::cube(Point3::splat(190.0), 1.0));
        db.insert(vec![outlier]).unwrap();
        let q = Aabb::cube(Point3::splat(190.0), 2.0);
        let got: Vec<u64> = db.range_query(&q).unwrap().iter().map(|h| h.id).collect();
        assert_eq!(got, vec![9999]);
        let nn = db.knn_query(Point3::splat(195.0), 1).unwrap();
        assert_eq!(nn[0].hit.id, 9999);
    }

    #[test]
    fn build_rejects_mbr_only_layout_and_zero_shards() {
        let entries = random_entries(50, 26);
        let mut options = ShardOptions::default();
        options.index.layout = LeafLayout::MbrOnly;
        assert!(matches!(
            ShardedDb::build_in_memory(2, entries.clone(), options),
            Err(FlatError::Build(_))
        ));
        assert!(matches!(
            ShardedDb::build_in_memory(0, entries, ShardOptions::default()),
            Err(FlatError::Build(_))
        ));
        assert!(matches!(
            ShardedDb::build_in_memory(2, Vec::new(), ShardOptions::default()),
            Err(FlatError::Build(_))
        ));
    }

    #[test]
    fn empty_build_with_domain_accepts_updates() {
        let mut options = ShardOptions::default();
        options.index.domain = Some(Aabb::new(Point3::splat(0.0), Point3::splat(10.0)));
        let db = ShardedDb::build_in_memory(3, Vec::new(), options).unwrap();
        assert_eq!(db.num_live_elements(), 0);
        assert!(db
            .range_query(&Aabb::cube(Point3::splat(5.0), 5.0))
            .unwrap()
            .is_empty());
        db.insert(vec![
            Entry::new(1, Aabb::cube(Point3::splat(2.0), 0.5)),
            Entry::new(2, Aabb::cube(Point3::splat(8.0), 0.5)),
        ])
        .unwrap();
        assert_eq!(db.num_live_elements(), 2);
        let nn = db.knn_query(Point3::splat(7.0), 1).unwrap();
        assert_eq!(nn[0].hit.id, 2);
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let entries = random_entries(2000, 27);
        let db = ShardedDb::build_in_memory(4, entries, ShardOptions::default()).unwrap();
        db.clear_cache();
        db.reset_stats();
        let before = db.io_stats();
        assert_eq!(before.total_physical_reads(), 0);
        db.range_query(&Aabb::cube(Point3::splat(50.0), 20.0))
            .unwrap();
        let after = db.io_stats();
        assert!(after.total_physical_reads() > 0);
        let sched = db.scheduler_stats();
        assert!(sched.demand_completed > 0);
        assert_eq!(db.num_shards(), 4);
    }

    #[test]
    fn concurrent_mixed_traffic_stays_consistent() {
        let entries = random_entries(1500, 28);
        let mut options = ShardOptions::default();
        options.index.domain = Some(Aabb::new(
            Point3::new(-10.0, -10.0, -10.0),
            Point3::splat(110.0),
        ));
        let db =
            std::sync::Arc::new(ShardedDb::build_in_memory(4, entries.clone(), options).unwrap());
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let db = db.clone();
            let stop = stop.clone();
            handles.push(std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(100 + t);
                let mut hits = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let c = Point3::new(
                        rng.gen_range(0.0..100.0),
                        rng.gen_range(0.0..100.0),
                        rng.gen_range(0.0..100.0),
                    );
                    hits += db.range_query(&Aabb::cube(c, 5.0)).unwrap().len();
                    hits += db.knn_query(c, 5).unwrap().len();
                }
                hits
            }));
        }
        // Updater: insert then delete disjoint scratch ids, concurrent
        // with the snapshot readers above.
        for round in 0..20u64 {
            let base = 1_000_000 + round * 100;
            let batch: Vec<Entry> = (0..50)
                .map(|i| {
                    Entry::new(
                        base + i,
                        Aabb::cube(Point3::splat((base + i) as f64 % 100.0), 0.5),
                    )
                })
                .collect();
            db.insert(batch).unwrap();
            let ids: Vec<u64> = (0..50).map(|i| base + i).collect();
            assert_eq!(db.delete(&ids).unwrap(), 50);
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.num_live_elements(), 1500);
    }

    #[test]
    fn sharded_aggregates_match_range_counts_across_shards() {
        let entries = random_entries(2_000, 71);
        let db = ShardedDb::build_in_memory(4, entries.clone(), ShardOptions::default()).unwrap();
        for half in [4.0, 15.0, 60.0] {
            let q = Aabb::cube(Point3::splat(50.0), half);
            assert_eq!(
                db.aggregate_count(&q).unwrap(),
                reference_range(&entries, &q).len() as u64,
                "half={half}"
            );
            let density = db.aggregate_density(&q).unwrap();
            let expected = db.aggregate_count(&q).unwrap() as f64 / q.volume();
            assert!((density - expected).abs() < 1e-12);
        }
        // Degenerate box: zero density by definition.
        let flat_box = Aabb::new(Point3::splat(10.0), Point3::new(20.0, 10.0, 10.0));
        assert_eq!(db.aggregate_density(&flat_box).unwrap(), 0.0);
    }

    #[test]
    fn sharded_join_matches_brute_force_and_covers_shard_pairs() {
        let a = random_entries(1_200, 72);
        let mut b = random_entries(900, 73);
        for e in &mut b {
            e.id += 500_000;
        }
        let db_a = ShardedDb::build_in_memory(4, a.clone(), ShardOptions::default()).unwrap();
        let db_b = ShardedDb::build_in_memory(3, b.clone(), ShardOptions::default()).unwrap();
        let eps = 2.0;
        let mut expected = Vec::new();
        for ea in &a {
            for eb in &b {
                if ea.mbr.distance_sq(&eb.mbr) <= eps * eps {
                    expected.push((ea.id, eb.id));
                }
            }
        }
        expected.sort_unstable();
        let result = db_a.join(&db_b, eps).unwrap();
        assert_eq!(result.pairs, expected);
        assert_eq!(result.stats.pairs, expected.len() as u64);
        // Elements straddle every slab boundary at eps 2.0, so the
        // fan-out must have crawled more than the diagonal shard pairs.
        assert!(result.stats.outer_partitions > 0);
    }

    #[test]
    fn sharded_continuous_queries_merge_per_update_call() {
        let entries = random_entries(1_500, 74);
        let db = ShardedDb::build_in_memory(3, entries.clone(), ShardOptions::default()).unwrap();
        let range = Aabb::cube(Point3::splat(50.0), 25.0);
        let (sub, baseline) = db.subscribe(range).unwrap();
        assert_eq!(baseline, reference_range(&entries, &range));

        // One insert call spanning several shards: some ids in range,
        // some out. Exactly one merged delta.
        let fresh: Vec<Entry> = (0..40)
            .map(|i| {
                let x = (i as f64) * 2.5 + 1.0; // spread across all slabs
                Entry::new(700_000 + i, Aabb::cube(Point3::new(x, 50.0, 50.0), 0.4))
            })
            .collect();
        db.insert(fresh.clone()).unwrap();
        let deltas = db.poll_changes(sub).unwrap();
        assert_eq!(deltas.len(), 1, "one merged delta per insert call");
        let expected_added: Vec<u64> = fresh
            .iter()
            .filter(|e| e.mbr.intersects(&range))
            .map(|e| e.id)
            .collect();
        assert_eq!(deltas[0].added, expected_added);
        assert!(deltas[0].removed.is_empty());

        // One delete call: in-range ids report as removals, unknown ids
        // and out-of-range ids are silent.
        let victims = [baseline[0], baseline[1], 999_999_999];
        db.delete(&victims).unwrap();
        let deltas = db.poll_changes(sub).unwrap();
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].removed, vec![baseline[0], baseline[1]]);
        assert!(deltas[0].epoch > 0, "db-level sequence advances");

        // The tracked result matches a fresh range query.
        let fresh_query: Vec<u64> = db
            .range_query(&range)
            .unwrap()
            .iter()
            .map(|h| h.id)
            .collect();
        assert_eq!(db.continuous_result(sub).unwrap(), fresh_query);
        assert!(db.unsubscribe(sub));
        assert!(db.poll_changes(sub).is_err());
    }
}
