//! [`SpatialIndex`]: one trait over FLAT, the delta layer and the R-tree
//! baselines.
//!
//! The paper evaluates one index against R-tree baselines over one storage
//! substrate, and this workspace reproduces that as separate concrete
//! types: [`FlatIndex`], [`DeltaIndex`] and [`flat_rtree::RTree`]. Every
//! driver that compares them — the differential equivalence tests, the
//! benchmark harness, the examples — used to hand-roll one code path per
//! type. `SpatialIndex` is the common surface: *build* from an entry set,
//! *range query*, *k-nearest-neighbor query*, and *stats*, all returning
//! the façade's [`FlatError`]. Generic drivers (`fn f<I: SpatialIndex>`)
//! then run unchanged over any index kind.
//!
//! Query results are exactly what the concrete entry points return: the
//! trait adds no translation layer, so a generic driver observes the same
//! bits as a hand-written one (the property the cross-index equivalence
//! tests lean on).

use crate::delta::DeltaIndex;
use crate::error::FlatError;
use crate::index::{FlatIndex, FlatOptions};
use crate::knn::Neighbor;
use flat_geom::{Aabb, Point3};
use flat_rtree::node::{decode_inner, decode_leaf};
use flat_rtree::{BulkLoad, Entry, Hit, LeafLayout, RTree, RTreeConfig};
use flat_storage::{PageRead, PageWrite, StorageError, PAGE_SIZE};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Size and composition of an index, uniform across kinds.
///
/// `data_pages` are the element-bearing pages (FLAT object pages, R-tree
/// leaves); `overhead_pages` is everything else (R-tree directory, FLAT
/// seed tree + metadata) — the split behind the paper's Figure 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexStats {
    /// Human-readable index kind (e.g. `"FLAT"`, `"STR R-Tree"`).
    pub kind: &'static str,
    /// Indexed (live) elements.
    pub num_elements: u64,
    /// Element-bearing pages.
    pub data_pages: u64,
    /// Directory / metadata pages.
    pub overhead_pages: u64,
}

impl IndexStats {
    /// Total size in bytes.
    pub fn size_bytes(&self) -> u64 {
        (self.data_pages + self.overhead_pages) * PAGE_SIZE as u64
    }

    /// Bytes in element-bearing pages.
    pub fn data_bytes(&self) -> u64 {
        self.data_pages * PAGE_SIZE as u64
    }

    /// Bytes in directory / metadata pages.
    pub fn overhead_bytes(&self) -> u64 {
        self.overhead_pages * PAGE_SIZE as u64
    }
}

/// A disk-resident spatial index: build once, query shared.
///
/// Implemented by [`FlatIndex`] (the paper's contribution), [`DeltaIndex`]
/// (the mutable extension) and [`flat_rtree::RTree`] (every bulkload
/// variant, selected by [`RTreeBuildOptions`]). All methods follow the
/// workspace-wide access split: building takes `&mut impl PageWrite`,
/// queries take `&impl PageRead`.
pub trait SpatialIndex {
    /// Build-time configuration ([`FlatOptions`] for FLAT and delta,
    /// [`RTreeBuildOptions`] for the R-trees).
    type BuildOptions: Clone + Default;

    /// Bulk-loads an index over `entries` into `pool`.
    ///
    /// The pool must be readable as well as writable: some implementors
    /// (the delta layer) scan their freshly written pages into resident
    /// tables as part of construction. Both [`flat_storage::BufferPool`]
    /// and [`flat_storage::ConcurrentBufferPool`] qualify.
    fn build_index(
        pool: &mut (impl PageRead + PageWrite),
        entries: Vec<Entry>,
        options: Self::BuildOptions,
    ) -> Result<Self, FlatError>
    where
        Self: Sized;

    /// Every (live) element whose MBR intersects `query` — identical to
    /// the concrete type's own range entry point.
    fn range(&self, pool: &impl PageRead, query: &Aabb) -> Result<Vec<Hit>, FlatError>;

    /// The `k` (live) elements nearest to `point` by minimum MBR
    /// distance, ascending, exact.
    fn nearest(
        &self,
        pool: &impl PageRead,
        point: Point3,
        k: usize,
    ) -> Result<Vec<Neighbor>, FlatError>;

    /// Size and composition.
    fn index_stats(&self) -> IndexStats;
}

impl SpatialIndex for FlatIndex {
    type BuildOptions = FlatOptions;

    fn build_index(
        pool: &mut (impl PageRead + PageWrite),
        entries: Vec<Entry>,
        options: FlatOptions,
    ) -> Result<FlatIndex, FlatError> {
        let (index, _) = FlatIndex::build(pool, entries, options)?;
        Ok(index)
    }

    fn range(&self, pool: &impl PageRead, query: &Aabb) -> Result<Vec<Hit>, FlatError> {
        Ok(self.range_query(pool, query)?)
    }

    fn nearest(
        &self,
        pool: &impl PageRead,
        point: Point3,
        k: usize,
    ) -> Result<Vec<Neighbor>, FlatError> {
        Ok(self.knn_query(pool, point, k)?)
    }

    fn index_stats(&self) -> IndexStats {
        IndexStats {
            kind: "FLAT",
            num_elements: self.num_elements(),
            data_pages: self.num_object_pages(),
            overhead_pages: self.num_meta_pages() + self.num_seed_inner_pages(),
        }
    }
}

impl SpatialIndex for DeltaIndex {
    type BuildOptions = FlatOptions;

    /// Builds a pristine base and adopts it as a (not yet mutated) delta
    /// index. The delta layer needs stable element ids and a fixed tiling
    /// domain, so the options are normalized first: the layout is forced
    /// to [`LeafLayout::WithIds`] and a missing domain defaults to the
    /// union of the entry MBRs (the same default the bulkload itself
    /// applies, so the tiling is unchanged).
    fn build_index(
        pool: &mut (impl PageRead + PageWrite),
        entries: Vec<Entry>,
        options: FlatOptions,
    ) -> Result<DeltaIndex, FlatError> {
        let options = FlatOptions {
            layout: LeafLayout::WithIds,
            domain: Some(
                options
                    .domain
                    .unwrap_or_else(|| Aabb::union_all(entries.iter().map(|e| e.mbr))),
            ),
            ..options
        };
        let (base, _) = FlatIndex::build(pool, entries, options)?;
        Ok(DeltaIndex::new(&*pool, base, options)?)
    }

    fn range(&self, pool: &impl PageRead, query: &Aabb) -> Result<Vec<Hit>, FlatError> {
        Ok(self.range_query(pool, query)?)
    }

    fn nearest(
        &self,
        pool: &impl PageRead,
        point: Point3,
        k: usize,
    ) -> Result<Vec<Neighbor>, FlatError> {
        Ok(self.knn_query(pool, point, k)?)
    }

    fn index_stats(&self) -> IndexStats {
        IndexStats {
            kind: "FLAT+delta",
            num_elements: self.num_live_elements(),
            data_pages: self.num_live_partitions() as u64,
            overhead_pages: self.num_meta_pages() + self.num_seed_inner_pages(),
        }
    }
}

/// Build options for the [`SpatialIndex`] impl of [`RTree`]: the bulkload
/// packing strategy plus the shared R-tree configuration.
#[derive(Debug, Clone, Copy)]
pub struct RTreeBuildOptions {
    /// Packing strategy (STR by default).
    pub method: BulkLoad,
    /// Node layout and page-kind accounting.
    pub config: RTreeConfig,
}

impl Default for RTreeBuildOptions {
    fn default() -> Self {
        RTreeBuildOptions {
            method: BulkLoad::Str,
            config: RTreeConfig::default(),
        }
    }
}

impl From<BulkLoad> for RTreeBuildOptions {
    fn from(method: BulkLoad) -> Self {
        RTreeBuildOptions {
            method,
            ..RTreeBuildOptions::default()
        }
    }
}

impl SpatialIndex for RTree {
    type BuildOptions = RTreeBuildOptions;

    fn build_index(
        pool: &mut (impl PageRead + PageWrite),
        entries: Vec<Entry>,
        options: RTreeBuildOptions,
    ) -> Result<RTree, FlatError> {
        Ok(RTree::bulk_load(
            pool,
            entries,
            options.method,
            options.config,
        )?)
    }

    fn range(&self, pool: &impl PageRead, query: &Aabb) -> Result<Vec<Hit>, FlatError> {
        Ok(self.range_query(pool, query)?)
    }

    /// Exact best-first kNN over the R-tree — the classical
    /// branch-and-bound descent (expand the node nearest to the query
    /// point, prune with the running k-th distance). The R-tree baselines
    /// had no kNN path of their own before this trait; results match
    /// FLAT's [`FlatIndex::knn_query`] element-for-element (asserted by
    /// the cross-index equivalence tests), with the same deterministic
    /// tie-break by physical location at the k-th distance.
    fn nearest(
        &self,
        pool: &impl PageRead,
        point: Point3,
        k: usize,
    ) -> Result<Vec<Neighbor>, FlatError> {
        Ok(rtree_knn(self, pool, point, k)?)
    }

    fn index_stats(&self) -> IndexStats {
        IndexStats {
            kind: match self.config().layout {
                LeafLayout::MbrOnly => "R-Tree",
                LeafLayout::WithIds => "R-Tree (ids)",
            },
            num_elements: self.num_elements(),
            data_pages: self.num_leaf_pages(),
            overhead_pages: self.num_inner_pages(),
        }
    }
}

/// `f64` with a total order, for heap keys.
#[derive(Debug, Clone, Copy, PartialEq)]
struct MinKey(f64);

impl Eq for MinKey {}

impl PartialOrd for MinKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MinKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Candidate of the running top-k max-heap, ordered by distance then
/// physical location so ties at the k-th distance break deterministically
/// (the same rule as FLAT's kNN).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Candidate {
    dist_sq: f64,
    hit: Hit,
}

impl Eq for Candidate {}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist_sq
            .total_cmp(&other.dist_sq)
            .then(self.hit.page.cmp(&other.hit.page))
            .then(self.hit.slot.cmp(&other.hit.slot))
    }
}

/// Best-first kNN descent over an R-tree.
fn rtree_knn(
    tree: &RTree,
    pool: &impl PageRead,
    point: Point3,
    k: usize,
) -> Result<Vec<Neighbor>, StorageError> {
    if k == 0 {
        return Ok(Vec::new());
    }
    let Some(root) = tree.root() else {
        return Ok(Vec::new());
    };
    let config = *tree.config();

    let mut best: BinaryHeap<Candidate> = BinaryHeap::with_capacity(k + 1);
    let bound = |best: &BinaryHeap<Candidate>| {
        if best.len() < k {
            f64::INFINITY
        } else {
            best.peek().expect("len >= k >= 1").dist_sq
        }
    };

    // Frontier of (min distance, node, level); 1 = leaf level.
    let mut frontier: BinaryHeap<Reverse<(MinKey, u64, u32)>> = BinaryHeap::new();
    frontier.push(Reverse((MinKey(0.0), root.0, tree.height())));
    while let Some(Reverse((MinKey(dist), page_id, level))) = frontier.pop() {
        // Everything else on the frontier is at least this far away.
        if dist > bound(&best) {
            break;
        }
        let page_id = flat_storage::PageId(page_id);
        if level == 1 {
            let page = pool.read_page(page_id, config.leaf_kind)?;
            let (layout, entries) = decode_leaf(&page)?;
            for (slot, entry) in entries.iter().enumerate() {
                let dist_sq = entry.mbr.distance_sq_to_point(&point);
                let id = match layout {
                    LeafLayout::MbrOnly => (page_id.0 << 16) | entry.id,
                    LeafLayout::WithIds => entry.id,
                };
                let candidate = Candidate {
                    dist_sq,
                    hit: Hit {
                        mbr: entry.mbr,
                        id,
                        page: page_id,
                        slot: slot as u16,
                    },
                };
                // Full comparison so k-th-distance ties resolve by
                // physical location independent of the expansion order.
                if best.len() == k && candidate >= *best.peek().expect("len == k >= 1") {
                    continue;
                }
                best.push(candidate);
                if best.len() > k {
                    best.pop();
                }
            }
        } else {
            let page = pool.read_page(page_id, config.inner_kind)?;
            for child in decode_inner(&page)? {
                let key = child.mbr.distance_sq_to_point(&point);
                if key <= bound(&best) {
                    frontier.push(Reverse((MinKey(key), child.page.0, level - 1)));
                }
            }
        }
    }

    Ok(best
        .into_sorted_vec()
        .into_iter()
        .map(|c| Neighbor {
            hit: c.hit,
            dist_sq: c.dist_sq,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::tests::random_entries;
    use flat_storage::{BufferPool, MemStore};

    /// Sorted MBR bit-keys — layout-independent result identity.
    fn keys(hits: &[Hit]) -> Vec<[u64; 6]> {
        let mut keys: Vec<[u64; 6]> = hits
            .iter()
            .map(|h| {
                [
                    h.mbr.min.x.to_bits(),
                    h.mbr.min.y.to_bits(),
                    h.mbr.min.z.to_bits(),
                    h.mbr.max.x.to_bits(),
                    h.mbr.max.y.to_bits(),
                    h.mbr.max.z.to_bits(),
                ]
            })
            .collect();
        keys.sort_unstable();
        keys
    }

    fn generic_roundtrip<I: SpatialIndex>(options: I::BuildOptions) -> (usize, Vec<[u64; 6]>) {
        let entries = random_entries(8_000, 91);
        let mut pool = BufferPool::new(MemStore::new(), 1 << 16);
        let index = I::build_index(&mut pool, entries, options).expect("build");
        let stats = index.index_stats();
        assert_eq!(stats.num_elements, 8_000);
        assert!(stats.data_pages > 0);
        assert_eq!(
            stats.size_bytes(),
            stats.data_bytes() + stats.overhead_bytes()
        );
        let q = Aabb::cube(flat_geom::Point3::splat(50.0), 14.0);
        let hits = index.range(&pool, &q).expect("range");
        let knn = index
            .nearest(&pool, flat_geom::Point3::splat(50.0), 25)
            .expect("nearest");
        assert_eq!(knn.len(), 25);
        assert!(knn.windows(2).all(|w| w[0].dist_sq <= w[1].dist_sq));
        (knn.len(), keys(&hits))
    }

    #[test]
    fn all_implementors_agree_through_the_trait() {
        let flat = generic_roundtrip::<FlatIndex>(FlatOptions::default());
        let delta = generic_roundtrip::<DeltaIndex>(FlatOptions::default());
        assert_eq!(flat, delta, "delta diverged from FLAT");
        for method in [
            BulkLoad::Str,
            BulkLoad::Hilbert,
            BulkLoad::PrTree,
            BulkLoad::Tgs,
        ] {
            let rt = generic_roundtrip::<RTree>(method.into());
            assert_eq!(flat, rt, "{method:?} diverged from FLAT");
        }
    }

    #[test]
    fn rtree_knn_matches_brute_force() {
        let entries = random_entries(12_000, 92);
        let mut pool = BufferPool::new(MemStore::new(), 1 << 16);
        let tree = RTree::bulk_load(
            &mut pool,
            entries.clone(),
            BulkLoad::Hilbert,
            RTreeConfig::default(),
        )
        .unwrap();
        for (p, k) in [
            (Point3::splat(50.0), 1),
            (Point3::new(10.0, 90.0, 40.0), 17),
            (Point3::new(-200.0, 50.0, 500.0), 64), // far outside
        ] {
            let got = tree.nearest(&pool, p, k).unwrap();
            let mut expected: Vec<f64> = entries
                .iter()
                .map(|e| e.mbr.distance_sq_to_point(&p))
                .collect();
            expected.sort_by(|a, b| a.total_cmp(b));
            expected.truncate(k);
            let got_dists: Vec<f64> = got.iter().map(|n| n.dist_sq).collect();
            assert_eq!(got_dists, expected, "k={k} at {p}");
        }
    }

    #[test]
    fn rtree_knn_edge_cases() {
        let mut pool = BufferPool::new(MemStore::new(), 16);
        let empty =
            RTree::bulk_load(&mut pool, Vec::new(), BulkLoad::Str, RTreeConfig::default()).unwrap();
        assert!(empty.nearest(&pool, Point3::ORIGIN, 5).unwrap().is_empty());

        let entries = random_entries(300, 93);
        let mut pool = BufferPool::new(MemStore::new(), 1 << 12);
        let tree = RTree::bulk_load(
            &mut pool,
            entries.clone(),
            BulkLoad::Str,
            RTreeConfig::default(),
        )
        .unwrap();
        assert!(tree.nearest(&pool, Point3::ORIGIN, 0).unwrap().is_empty());
        // k beyond the dataset returns everything.
        let all = tree.nearest(&pool, Point3::splat(50.0), 10_000).unwrap();
        assert_eq!(all.len(), entries.len());
    }
}
