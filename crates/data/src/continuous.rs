//! Churn-with-standing-ranges workloads for continuous queries
//! (extension).
//!
//! A continuous range query watches a fixed box while the model churns
//! underneath it. This module pairs the timestep churn of
//! [`crate::update`] with a set of *standing* range boxes drawn like the
//! paper's range-query workload ([`crate::workload`]): the driver
//! registers the boxes once, then replays churn steps and checks the
//! delta streams against the generator's own live population — which is
//! the ground truth for "the ids in box `q` after any prefix of steps".

use crate::update::{ChurnConfig, ChurnWorkload, UpdateStep};
use crate::workload::{range_queries, WorkloadConfig};
use flat_geom::Aabb;
use flat_rtree::Entry;

/// Parameters of a churn-with-standing-ranges workload.
#[derive(Debug, Clone, Copy)]
pub struct ContinuousConfig {
    /// Number of standing range boxes.
    pub standing_ranges: usize,
    /// Volume of each box as a fraction of the domain volume.
    pub volume_fraction: f64,
    /// The churn applied between delta polls.
    pub churn: ChurnConfig,
}

impl ContinuousConfig {
    /// A typical monitoring setup: `ranges` medium boxes (0.1 % of the
    /// domain each) over a steady churn of `churn_per_step` elements.
    pub fn monitoring(ranges: usize, churn_per_step: usize, seed: u64) -> ContinuousConfig {
        ContinuousConfig {
            standing_ranges: ranges,
            volume_fraction: 1e-3,
            churn: ChurnConfig::steady(churn_per_step, seed),
        }
    }
}

/// A churn sequence plus the standing boxes watching it.
#[derive(Debug)]
pub struct ContinuousWorkload {
    ranges: Vec<Aabb>,
    churn: ChurnWorkload,
}

impl ContinuousWorkload {
    /// Builds the workload over `initial` (the indexed snapshot) inside
    /// `domain`. Deterministic in `config.churn.seed`; the boxes draw a
    /// distinct substream so resizing the churn leaves them in place.
    pub fn new(initial: Vec<Entry>, domain: Aabb, config: ContinuousConfig) -> ContinuousWorkload {
        let boxes = WorkloadConfig {
            count: config.standing_ranges,
            volume_fraction: config.volume_fraction,
            proportion_range: (1.0, 4.0),
            seed: config.churn.seed.wrapping_add(0x5eed),
        };
        ContinuousWorkload {
            ranges: range_queries(&domain, &boxes),
            churn: ChurnWorkload::new(initial, domain, config.churn),
        }
    }

    /// The standing boxes, in registration order.
    pub fn ranges(&self) -> &[Aabb] {
        &self.ranges
    }

    /// The current live population (ground truth for every box).
    pub fn live(&self) -> &[Entry] {
        self.churn.live()
    }

    /// Generates the next churn step (see [`ChurnWorkload::step`]).
    pub fn step(&mut self) -> UpdateStep {
        self.churn.step()
    }

    /// The ids currently inside box `i`, ascending — what a continuous
    /// query registered on that box must report after replaying every
    /// delta so far.
    pub fn expected(&self, i: usize) -> Vec<u64> {
        let range = &self.ranges[i];
        let mut ids: Vec<u64> = self
            .churn
            .live()
            .iter()
            .filter(|e| e.mbr.intersects(range))
            .map(|e| e.id)
            .collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform::{uniform_entries, UniformConfig};

    #[test]
    fn expected_sets_track_the_churn() {
        let config = UniformConfig::scaled_baseline(2_000, 5);
        let initial = uniform_entries(&config);
        let mut w = ContinuousWorkload::new(
            initial,
            config.domain,
            ContinuousConfig::monitoring(8, 100, 11),
        );
        assert_eq!(w.ranges().len(), 8);
        let before: Vec<Vec<u64>> = (0..8).map(|i| w.expected(i)).collect();
        let mut some_box_nonempty = before.iter().any(|ids| !ids.is_empty());
        for _ in 0..5 {
            let step = w.step();
            assert_eq!(step.deletes.len(), 100);
            assert_eq!(step.inserts.len(), 100);
            some_box_nonempty |= (0..8).any(|i| !w.expected(i).is_empty());
        }
        assert!(some_box_nonempty, "standing boxes never saw an element");
        // Population constant under steady churn.
        assert_eq!(w.live().len(), 2_000);
        // Determinism: rebuilding replays identically.
        let mut w2 = ContinuousWorkload::new(
            uniform_entries(&config),
            config.domain,
            ContinuousConfig::monitoring(8, 100, 11),
        );
        let before2: Vec<Vec<u64>> = (0..8).map(|i| w2.expected(i)).collect();
        assert_eq!(before, before2);
        for _ in 0..5 {
            w2.step();
        }
        assert_eq!(w.expected(3), w2.expected(3));
    }
}
