//! Paired datasets for distance-join benchmarks (extension).
//!
//! The canonical spatial-join question over the paper's data is "which
//! mesh surface elements are within ε of a simulation particle" — e.g.
//! relating the brain-mesh surface to an n-body snapshot occupying the
//! same space. This module generates that pairing synthetically: a
//! multi-lobed mesh ([`crate::mesh`]) and a clustered particle cloud
//! ([`crate::nbody`]) over **one shared domain**, with disjoint id
//! spaces, plus an ε sized so the join selects a meaningful (non-empty,
//! non-quadratic) pair set.

use crate::mesh::{mesh_entries, MeshConfig};
use crate::nbody::{nbody_entries, NBodyConfig};
use flat_geom::{Aabb, Point3};
use flat_rtree::Entry;

/// Id offset of the inner (particle) dataset: keeps the two id spaces
/// disjoint so a result pair is unambiguous without remembering sides.
pub const INNER_ID_OFFSET: u64 = 1 << 40;

/// Parameters of a paired join workload.
#[derive(Debug, Clone)]
pub struct JoinWorkloadConfig {
    /// Minimum number of mesh triangles (outer dataset).
    pub mesh_triangles: usize,
    /// Number of n-body particles (inner dataset).
    pub particles: usize,
    /// The shared domain both datasets are generated into.
    pub domain: Aabb,
    /// Join distance, in domain units.
    pub eps: f64,
    /// Base seed; the mesh and the particles draw distinct substreams.
    pub seed: u64,
}

impl JoinWorkloadConfig {
    /// The default pairing: a brain-like mesh against a dark-matter-like
    /// snapshot in a 1000-unit cube, ε at 0.5 % of the domain edge.
    pub fn mesh_vs_nbody(mesh_triangles: usize, particles: usize, seed: u64) -> JoinWorkloadConfig {
        let domain = Aabb::new(Point3::splat(0.0), Point3::splat(1000.0));
        JoinWorkloadConfig {
            mesh_triangles,
            particles,
            domain,
            eps: 5.0,
            seed,
        }
    }
}

/// A generated join workload: two entry sets over one domain.
#[derive(Debug, Clone)]
pub struct JoinWorkload {
    /// The outer (mesh) dataset; ids start at 0.
    pub outer: Vec<Entry>,
    /// The inner (particle) dataset; ids start at [`INNER_ID_OFFSET`].
    pub inner: Vec<Entry>,
    /// The join distance the workload was sized for.
    pub eps: f64,
    /// Bounding box of both datasets: the configured domain unioned
    /// with every element MBR (mesh blobs can bulge slightly past the
    /// configured box, and a FLAT tiling domain must cover its data).
    pub domain: Aabb,
}

/// Generates the paired mesh-vs-nbody workload. Deterministic in the
/// seed; the two sides use distinct substreams, so changing one side's
/// size leaves the other side's geometry untouched.
pub fn mesh_vs_nbody(config: &JoinWorkloadConfig) -> JoinWorkload {
    let mut mesh = MeshConfig::brain(config.mesh_triangles, config.seed);
    mesh.domain = config.domain;
    let mut nbody = NBodyConfig::dark_matter(config.particles, config.seed.wrapping_add(1));
    nbody.domain = config.domain;
    let outer = mesh_entries(&mesh);
    let mut inner = nbody_entries(&nbody);
    for e in &mut inner {
        e.id += INNER_ID_OFFSET;
    }
    let mut domain = config.domain;
    for e in outer.iter().chain(&inner) {
        domain = domain.union(&e.mbr);
    }
    JoinWorkload {
        outer,
        inner,
        eps: config.eps,
        domain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_and_id_disjoint() {
        let config = JoinWorkloadConfig::mesh_vs_nbody(2_000, 3_000, 9);
        let a = mesh_vs_nbody(&config);
        let b = mesh_vs_nbody(&config);
        assert_eq!(a.outer, b.outer);
        assert_eq!(a.inner, b.inner);
        assert!(a.outer.len() >= 2_000);
        assert_eq!(a.inner.len(), 3_000);
        assert!(a.outer.iter().all(|e| e.id < INNER_ID_OFFSET));
        assert!(a.inner.iter().all(|e| e.id >= INNER_ID_OFFSET));
    }

    #[test]
    fn both_sides_share_the_domain() {
        let config = JoinWorkloadConfig::mesh_vs_nbody(1_000, 1_000, 3);
        let w = mesh_vs_nbody(&config);
        for e in w.outer.iter().chain(&w.inner) {
            assert!(
                w.domain.contains(&e.mbr),
                "element {e:?} outside {:?}",
                w.domain
            );
        }
        // The pairing is meaningful: at ε some mesh element has a
        // particle nearby (the clusters overlap the lobes).
        let eps2 = w.eps * w.eps;
        let touching = w
            .outer
            .iter()
            .any(|a| w.inner.iter().any(|b| a.mbr.distance_sq(&b.mbr) <= eps2));
        assert!(touching, "eps {} selects no pairs at all", w.eps);
    }
}
