//! Synthetic dataset generators and query workloads for the FLAT
//! reproduction.
//!
//! The paper evaluates on datasets we cannot redistribute (BBP microcircuit
//! models, Nuage n-body snapshots, the Brain Mesh and the Lucy scan), so
//! this crate generates *statistically equivalent* stand-ins — each
//! generator reproduces the property that drives index behaviour:
//!
//! | module | paper dataset | salient property |
//! |---|---|---|
//! | [`neuron`] | BBP microcircuit (cylinders, §VII-A) | dense, concave, elongated thin elements; density grows by adding neurons at constant volume |
//! | [`uniform`] | §VII-E synthetic data | uniform element clouds with controlled element volume and aspect ratio |
//! | [`mesh`] | Brain Mesh / Lucy (§VIII) | dense connected 2-manifold triangle soup |
//! | [`nbody`] | Nuage dark matter / gas / stars (§VIII) | clustered point data |
//! | [`workload`] | SN / LSS micro-benchmarks (§VII-A) | fixed-volume random-location random-aspect range queries |
//! | [`update`] | — (extension) | timestep churn: delete-and-reinsert-displaced batches over any entry set, for the dynamic index layer |
//! | [`join`] | — (extension) | paired mesh-vs-nbody datasets over one shared domain, for ε-distance joins |
//! | [`continuous`] | — (extension) | churn plus standing range boxes, for continuous-query delta streams |
//!
//! All generators are deterministic given a seed, and *prefix-stable*: the
//! first `k` logical units (neurons, clusters, blobs) of a generation are
//! identical across calls with different totals, which is how the paper's
//! density sweeps "keep the volume the same but gradually add elements".
//!
//! Every generator also has a **streaming form** (see [`source`]): an
//! [`source::EntrySource`] that emits the identical entry sequence in
//! bounded chunks, so the out-of-core build pipeline can index datasets
//! that are never materialized in memory. The `Vec`-returning functions
//! are thin wrappers over the sources.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod continuous;
pub mod join;
pub mod mesh;
pub mod nbody;
pub mod neuron;
pub mod source;
pub mod uniform;
pub mod update;
pub mod workload;

pub use source::{EntryIter, EntrySource, VecSource};

use flat_geom::{Aabb, Point3};

/// The paper's brain-model domain: a cube of side 285 µm (§VII-A, "100'000
/// neurons in a volume of 285 µm³" — the unit refers to the cube side).
/// Coordinates are in micrometres.
pub fn bbp_domain() -> Aabb {
    Aabb::new(Point3::splat(0.0), Point3::splat(285.0))
}

/// The §VII-E synthetic-data domain: 8 mm³ (a 2 mm-sided cube), in
/// micrometres.
pub fn synthetic_domain() -> Aabb {
    Aabb::new(Point3::splat(0.0), Point3::splat(2000.0))
}

/// Derives a stream-specific RNG seed so that independent generator parts
/// (e.g. individual neurons) are reproducible in isolation.
pub(crate) fn substream(seed: u64, index: u64) -> u64 {
    // SplitMix64 step — cheap, well-mixed, and stable across platforms.
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domains_have_expected_sizes() {
        assert_eq!(bbp_domain().extents(), Point3::splat(285.0));
        assert_eq!(synthetic_domain().volume(), 8e9); // (2000 µm)³ = 8 mm³
    }

    #[test]
    fn substreams_differ_and_are_stable() {
        let a = substream(42, 0);
        let b = substream(42, 1);
        assert_ne!(a, b);
        assert_eq!(a, substream(42, 0));
    }
}
