//! Surface-mesh triangle soups (the Brain Mesh / Lucy stand-ins, §VIII).
//!
//! The paper's mesh datasets are dense connected 2-manifold surfaces in
//! 3-D (173 M triangles for the brain mesh, 252 M for the Lucy scan). We
//! generate the same structure at configurable scale: recursively
//! subdivided icospheres whose vertices are displaced radially by smooth
//! deterministic noise, producing organic, bumpy closed surfaces. Several
//! *blobs* can be combined to mimic multi-lobed anatomy.

use crate::source::EntrySource;
use crate::substream;
use flat_geom::{Aabb, Point3, Shape, Triangle};
use flat_rtree::Entry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Parameters for the mesh generator.
#[derive(Debug, Clone)]
pub struct MeshConfig {
    /// Minimum number of triangles to generate (the generator rounds up to
    /// whole subdivision levels per blob).
    pub min_triangles: usize,
    /// Number of separate blobs (closed surfaces).
    pub blobs: usize,
    /// The domain blob centers are placed in.
    pub domain: Aabb,
    /// Radial noise amplitude as a fraction of the blob radius
    /// (0 = perfect spheres).
    pub roughness: f64,
    /// Base seed.
    pub seed: u64,
}

impl MeshConfig {
    /// A single statue-like blob filling most of the domain.
    pub fn statue(min_triangles: usize, seed: u64) -> MeshConfig {
        MeshConfig {
            min_triangles,
            blobs: 1,
            domain: Aabb::cube(Point3::splat(500.0), 1000.0),
            roughness: 0.25,
            seed,
        }
    }

    /// A multi-lobed organic surface (brain-mesh-like).
    pub fn brain(min_triangles: usize, seed: u64) -> MeshConfig {
        MeshConfig {
            min_triangles,
            blobs: 8,
            domain: Aabb::cube(Point3::splat(500.0), 1000.0),
            roughness: 0.35,
            seed,
        }
    }
}

/// Subdivision level and blob radius for `config` (20 · 4^level triangles
/// per blob).
fn blob_geometry(config: &MeshConfig) -> (u32, f64) {
    assert!(config.blobs > 0, "at least one blob required");
    let per_blob = config.min_triangles.div_ceil(config.blobs);
    // Icosahedron subdivision: 20 · 4^k triangles per blob.
    let mut level = 0u32;
    while 20usize << (2 * level) < per_blob {
        level += 1;
    }
    let extent = config.domain.extents();
    let blob_radius = 0.25 * extent.x.min(extent.y).min(extent.z) / (config.blobs as f64).cbrt();
    (level, blob_radius)
}

/// Generates one blob's triangles into `out`.
fn grow_blob(config: &MeshConfig, level: u32, blob_radius: f64, b: usize, out: &mut Vec<Triangle>) {
    let mut rng = StdRng::seed_from_u64(substream(config.seed, b as u64));
    let center = Point3::new(
        rng.gen_range(config.domain.min.x + blob_radius..config.domain.max.x - blob_radius),
        rng.gen_range(config.domain.min.y + blob_radius..config.domain.max.y - blob_radius),
        rng.gen_range(config.domain.min.z + blob_radius..config.domain.max.z - blob_radius),
    );
    blob(center, blob_radius, level, config.roughness, &mut rng, out);
}

/// Generates the triangles.
pub fn mesh_triangles(config: &MeshConfig) -> Vec<Triangle> {
    let (level, blob_radius) = blob_geometry(config);
    let mut triangles = Vec::with_capacity(config.blobs * (20 << (2 * level)));
    for b in 0..config.blobs {
        grow_blob(config, level, blob_radius, b, &mut triangles);
    }
    triangles
}

/// The triangles as index entries (sequential ids); thin wrapper over
/// [`MeshSource`].
pub fn mesh_entries(config: &MeshConfig) -> Vec<Entry> {
    MeshSource::new(config.clone()).collect_entries()
}

/// Streaming form of [`mesh_entries`]: emits one blob per chunk, holding
/// only that blob's triangles in memory. Ids are the same running sequence
/// the `Vec` twin assigns.
pub struct MeshSource {
    config: MeshConfig,
    level: u32,
    blob_radius: f64,
    next_blob: usize,
    next_id: u64,
    buffer: Vec<Triangle>,
}

impl MeshSource {
    /// Creates the source.
    ///
    /// # Panics
    /// Panics if the configuration has no blobs (same contract as
    /// [`mesh_triangles`]).
    pub fn new(config: MeshConfig) -> MeshSource {
        let (level, blob_radius) = blob_geometry(&config);
        MeshSource {
            config,
            level,
            blob_radius,
            next_blob: 0,
            next_id: 0,
            buffer: Vec::new(),
        }
    }
}

impl EntrySource for MeshSource {
    fn len_hint(&self) -> Option<u64> {
        Some((self.config.blobs * (20 << (2 * self.level))) as u64)
    }

    fn next_chunk(&mut self, out: &mut Vec<Entry>) -> bool {
        if self.next_blob >= self.config.blobs {
            return false;
        }
        self.buffer.clear();
        grow_blob(
            &self.config,
            self.level,
            self.blob_radius,
            self.next_blob,
            &mut self.buffer,
        );
        out.extend(self.buffer.iter().map(|t| {
            let entry = Entry::new(self.next_id, t.mbr());
            self.next_id += 1;
            entry
        }));
        self.next_blob += 1;
        true
    }
}

/// Builds one displaced icosphere.
fn blob(
    center: Point3,
    radius: f64,
    level: u32,
    roughness: f64,
    rng: &mut StdRng,
    out: &mut Vec<Triangle>,
) {
    let (mut vertices, mut faces) = icosahedron();
    for _ in 0..level {
        subdivide(&mut vertices, &mut faces);
    }
    // Displace radially with a deterministic smooth field: a sum of a few
    // random low-frequency sinusoids keeps neighboring vertices coherent
    // (no cracks — faces share displaced vertices by construction).
    let waves: Vec<(Point3, f64, f64)> = (0..6)
        .map(|_| {
            let dir = Point3::new(
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
            )
            .normalized()
            .unwrap_or(Point3::new(1.0, 0.0, 0.0));
            (
                dir,
                rng.gen_range(1.0..4.0),
                rng.gen_range(0.0..std::f64::consts::TAU),
            )
        })
        .collect();
    let displaced: Vec<Point3> = vertices
        .iter()
        .map(|v| {
            let mut bump = 0.0;
            for (dir, freq, phase) in &waves {
                bump += (v.dot(dir) * freq + phase).sin();
            }
            let r = radius * (1.0 + roughness * bump / waves.len() as f64);
            center + *v * r
        })
        .collect();
    for [a, b, c] in faces {
        out.push(Triangle::new(displaced[a], displaced[b], displaced[c]));
    }
}

/// Unit icosahedron: 12 vertices, 20 faces.
fn icosahedron() -> (Vec<Point3>, Vec<[usize; 3]>) {
    let phi = (1.0 + 5.0f64.sqrt()) / 2.0;
    let raw = [
        (-1.0, phi, 0.0),
        (1.0, phi, 0.0),
        (-1.0, -phi, 0.0),
        (1.0, -phi, 0.0),
        (0.0, -1.0, phi),
        (0.0, 1.0, phi),
        (0.0, -1.0, -phi),
        (0.0, 1.0, -phi),
        (phi, 0.0, -1.0),
        (phi, 0.0, 1.0),
        (-phi, 0.0, -1.0),
        (-phi, 0.0, 1.0),
    ];
    let vertices: Vec<Point3> = raw
        .iter()
        .map(|&(x, y, z)| Point3::new(x, y, z).normalized().expect("nonzero vertex"))
        .collect();
    let faces = vec![
        [0, 11, 5],
        [0, 5, 1],
        [0, 1, 7],
        [0, 7, 10],
        [0, 10, 11],
        [1, 5, 9],
        [5, 11, 4],
        [11, 10, 2],
        [10, 7, 6],
        [7, 1, 8],
        [3, 9, 4],
        [3, 4, 2],
        [3, 2, 6],
        [3, 6, 8],
        [3, 8, 9],
        [4, 9, 5],
        [2, 4, 11],
        [6, 2, 10],
        [8, 6, 7],
        [9, 8, 1],
    ];
    (vertices, faces)
}

/// One 4-to-1 subdivision step, re-projecting midpoints onto the unit
/// sphere. Midpoints are shared between adjacent faces (keyed by edge) so
/// the mesh stays watertight.
fn subdivide(vertices: &mut Vec<Point3>, faces: &mut Vec<[usize; 3]>) {
    let mut midpoint: HashMap<(usize, usize), usize> = HashMap::new();
    let mut mid = |a: usize, b: usize, vertices: &mut Vec<Point3>| -> usize {
        let key = (a.min(b), a.max(b));
        *midpoint.entry(key).or_insert_with(|| {
            let m = ((vertices[a] + vertices[b]) / 2.0)
                .normalized()
                .expect("midpoint of unit vectors is nonzero");
            vertices.push(m);
            vertices.len() - 1
        })
    };
    let mut next = Vec::with_capacity(faces.len() * 4);
    for &[a, b, c] in faces.iter() {
        let ab = mid(a, b, vertices);
        let bc = mid(b, c, vertices);
        let ca = mid(c, a, vertices);
        next.push([a, ab, ca]);
        next.push([b, bc, ab]);
        next.push([c, ca, bc]);
        next.push([ab, bc, ca]);
    }
    *faces = next;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_count_meets_the_minimum() {
        let config = MeshConfig::statue(5000, 3);
        let triangles = mesh_triangles(&config);
        assert!(triangles.len() >= 5000);
        // Whole subdivision levels: count is blobs · 20 · 4^k.
        assert_eq!(triangles.len(), 20 << (2 * 4)); // k = 4 ⇒ 5120
    }

    #[test]
    fn mesh_is_watertight_every_edge_shared_by_two_faces() {
        let (mut vertices, mut faces) = icosahedron();
        subdivide(&mut vertices, &mut faces);
        subdivide(&mut vertices, &mut faces);
        let mut edge_count: HashMap<(usize, usize), usize> = HashMap::new();
        for &[a, b, c] in &faces {
            for (u, v) in [(a, b), (b, c), (c, a)] {
                *edge_count.entry((u.min(v), u.max(v))).or_default() += 1;
            }
        }
        assert!(edge_count.values().all(|&c| c == 2), "open edge found");
    }

    #[test]
    fn blobs_stay_inside_the_domain_roughly() {
        let config = MeshConfig::brain(10_000, 5);
        let entries = mesh_entries(&config);
        let fence = config.domain.inflate(config.domain.extents().x * 0.2);
        for e in &entries {
            assert!(fence.contains(&e.mbr));
        }
    }

    #[test]
    fn triangles_are_small_relative_to_the_blob() {
        let config = MeshConfig::statue(20_000, 7);
        let triangles = mesh_triangles(&config);
        let surface = Aabb::union_all(triangles.iter().map(|t| t.mbr()));
        let mean_extent: f64 = triangles
            .iter()
            .map(|t| t.mbr().extents().length())
            .sum::<f64>()
            / triangles.len() as f64;
        assert!(
            mean_extent < surface.extents().length() / 20.0,
            "triangles too coarse: {mean_extent}"
        );
    }

    #[test]
    fn source_streams_one_blob_per_chunk() {
        let config = MeshConfig::brain(3000, 13);
        let expected: Vec<Entry> = mesh_triangles(&config)
            .iter()
            .enumerate()
            .map(|(i, t)| Entry::new(i as u64, t.mbr()))
            .collect();
        let mut source = MeshSource::new(config.clone());
        assert_eq!(source.len_hint(), Some(expected.len() as u64));
        let mut streamed = Vec::new();
        let mut chunks = 0;
        while source.next_chunk(&mut streamed) {
            chunks += 1;
        }
        assert_eq!(chunks, config.blobs);
        assert_eq!(streamed, expected);
    }

    #[test]
    fn deterministic() {
        let a = mesh_triangles(&MeshConfig::brain(2000, 9));
        let b = mesh_triangles(&MeshConfig::brain(2000, 9));
        assert_eq!(a.len(), b.len());
        assert_eq!(a[100], b[100]);
    }

    #[test]
    fn roughness_zero_gives_a_sphere() {
        let config = MeshConfig {
            min_triangles: 1000,
            blobs: 1,
            domain: Aabb::cube(Point3::splat(0.0), 100.0),
            roughness: 0.0,
            seed: 1,
        };
        let triangles = mesh_triangles(&config);
        // All vertices equidistant from the blob center.
        let mbr = Aabb::union_all(triangles.iter().map(|t| t.mbr()));
        let center = mbr.center();
        let r0 = triangles[0].a.distance(&center);
        for t in triangles.iter().take(50) {
            assert!((t.a.distance(&center) - r0).abs() < r0 * 0.01);
        }
    }
}
