//! Clustered particle datasets (the Nuage n-body stand-ins, §VIII).
//!
//! The Nuage datasets "model the n-body problem, a simulation of how the
//! universe evolved since the big bang … spatial information modeled with
//! vertices representing dark matter, gas and stars". Gravitational
//! clustering makes such data strongly non-uniform: most particles sit in
//! dense halos. We reproduce that with Plummer-profile clusters — the
//! standard analytic halo model — plus a uniform background field.

use crate::source::{EntrySource, DEFAULT_CHUNK};
use crate::substream;
use flat_geom::{Aabb, Point3};
use flat_rtree::Entry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for the n-body generator.
#[derive(Debug, Clone)]
pub struct NBodyConfig {
    /// Total number of particles.
    pub particles: usize,
    /// Number of halos (clusters).
    pub clusters: usize,
    /// Fraction of particles in the smooth background instead of halos.
    pub background_fraction: f64,
    /// The simulation box.
    pub domain: Aabb,
    /// Plummer scale radius as a fraction of the domain edge.
    pub scale_radius_fraction: f64,
    /// Base seed.
    pub seed: u64,
}

impl NBodyConfig {
    /// A dark-matter-like snapshot: many small dense halos, thin
    /// background.
    pub fn dark_matter(particles: usize, seed: u64) -> NBodyConfig {
        NBodyConfig {
            particles,
            clusters: 64,
            background_fraction: 0.15,
            domain: Aabb::cube(Point3::splat(0.0), 1000.0),
            scale_radius_fraction: 0.015,
            seed,
        }
    }

    /// A gas-like snapshot: fewer, fluffier concentrations, more diffuse
    /// background.
    pub fn gas(particles: usize, seed: u64) -> NBodyConfig {
        NBodyConfig {
            particles,
            clusters: 24,
            background_fraction: 0.4,
            domain: Aabb::cube(Point3::splat(0.0), 1000.0),
            scale_radius_fraction: 0.05,
            seed,
        }
    }

    /// A star-like snapshot: tight clusters, almost no background.
    pub fn stars(particles: usize, seed: u64) -> NBodyConfig {
        NBodyConfig {
            particles,
            clusters: 96,
            background_fraction: 0.05,
            domain: Aabb::cube(Point3::splat(0.0), 1000.0),
            scale_radius_fraction: 0.008,
            seed,
        }
    }
}

/// Validates `config` and derives the cluster centers and Plummer scale
/// radius (one substream per cluster; prefix-stable).
fn cluster_setup(config: &NBodyConfig) -> (Vec<Point3>, f64) {
    assert!(config.clusters > 0, "at least one cluster required");
    assert!(
        (0.0..=1.0).contains(&config.background_fraction),
        "background fraction must be in [0, 1]"
    );
    let domain = &config.domain;
    let edge = domain
        .extents()
        .x
        .min(domain.extents().y)
        .min(domain.extents().z);
    let scale = edge * config.scale_radius_fraction;
    let centers: Vec<Point3> = (0..config.clusters)
        .map(|c| {
            let mut rng = StdRng::seed_from_u64(substream(config.seed, c as u64));
            Point3::new(
                rng.gen_range(domain.min.x..domain.max.x),
                rng.gen_range(domain.min.y..domain.max.y),
                rng.gen_range(domain.min.z..domain.max.z),
            )
        })
        .collect();
    (centers, scale)
}

/// Samples one particle position (background or halo member).
fn sample_particle(
    config: &NBodyConfig,
    centers: &[Point3],
    scale: f64,
    rng: &mut StdRng,
) -> Point3 {
    let domain = &config.domain;
    if rng.gen_bool(config.background_fraction) {
        Point3::new(
            rng.gen_range(domain.min.x..domain.max.x),
            rng.gen_range(domain.min.y..domain.max.y),
            rng.gen_range(domain.min.z..domain.max.z),
        )
    } else {
        let center = centers[rng.gen_range(0..centers.len())];
        let p = center + plummer_offset(rng, scale);
        clamp_to(domain, p)
    }
}

/// Generates the particle positions.
pub fn nbody_points(config: &NBodyConfig) -> Vec<Point3> {
    let (centers, scale) = cluster_setup(config);
    let mut rng = StdRng::seed_from_u64(substream(config.seed, u64::MAX / 2));
    (0..config.particles)
        .map(|_| sample_particle(config, &centers, scale, &mut rng))
        .collect()
}

/// The particles as index entries (degenerate point MBRs, matching the
/// paper's "vertices"); thin wrapper over [`NBodySource`].
pub fn nbody_entries(config: &NBodyConfig) -> Vec<Entry> {
    NBodySource::new(config.clone()).collect_entries()
}

/// Streaming form of [`nbody_entries`]: the particle RNG walks the same
/// sequence as [`nbody_points`], emitted [`DEFAULT_CHUNK`] particles per
/// chunk; memory is the cluster-center table plus one chunk.
pub struct NBodySource {
    config: NBodyConfig,
    centers: Vec<Point3>,
    scale: f64,
    rng: StdRng,
    next: usize,
}

impl NBodySource {
    /// Creates the source.
    ///
    /// # Panics
    /// Panics on an invalid configuration (same contract as
    /// [`nbody_points`]).
    pub fn new(config: NBodyConfig) -> NBodySource {
        let (centers, scale) = cluster_setup(&config);
        let rng = StdRng::seed_from_u64(substream(config.seed, u64::MAX / 2));
        NBodySource {
            config,
            centers,
            scale,
            rng,
            next: 0,
        }
    }
}

impl EntrySource for NBodySource {
    fn len_hint(&self) -> Option<u64> {
        Some(self.config.particles as u64)
    }

    fn next_chunk(&mut self, out: &mut Vec<Entry>) -> bool {
        if self.next >= self.config.particles {
            return false;
        }
        let end = (self.next + DEFAULT_CHUNK).min(self.config.particles);
        for i in self.next..end {
            let p = sample_particle(&self.config, &self.centers, self.scale, &mut self.rng);
            out.push(Entry::new(i as u64, Aabb::point(p)));
        }
        self.next = end;
        true
    }
}

/// Samples a displacement from a Plummer sphere with scale radius `a`,
/// using the standard inverse-CDF for the radius and an isotropic
/// direction.
fn plummer_offset(rng: &mut StdRng, a: f64) -> Point3 {
    // r = a (u^(-2/3) - 1)^(-1/2), u ∈ (0, 1); clamp the heavy tail.
    let u: f64 = rng.gen_range(1e-6..1.0);
    let r = (a / (u.powf(-2.0 / 3.0) - 1.0).sqrt()).min(a * 20.0);
    // Isotropic direction by rejection sampling.
    loop {
        let v = Point3::new(
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
        );
        let len = v.length();
        if len > 1e-9 && len <= 1.0 {
            return v * (r / len);
        }
    }
}

fn clamp_to(domain: &Aabb, p: Point3) -> Point3 {
    Point3::new(
        p.x.clamp(domain.min.x, domain.max.x),
        p.y.clamp(domain.min.y, domain.max.y),
        p.z.clamp(domain.min.z, domain.max.z),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_inside_domain() {
        let config = NBodyConfig::dark_matter(5000, 3);
        let points = nbody_points(&config);
        assert_eq!(points.len(), 5000);
        for p in &points {
            assert!(config.domain.contains_point(p));
        }
    }

    #[test]
    fn data_is_clustered_not_uniform() {
        // Compare the occupancy histogram of an 8×8×8 grid against a
        // uniform draw: clustered data has far higher maximum cell counts.
        let config = NBodyConfig::stars(20_000, 5);
        let points = nbody_points(&config);
        let cell = |p: &Point3| {
            let e = config.domain.extents();
            let gx = (((p.x - config.domain.min.x) / e.x * 8.0) as usize).min(7);
            let gy = (((p.y - config.domain.min.y) / e.y * 8.0) as usize).min(7);
            let gz = (((p.z - config.domain.min.z) / e.z * 8.0) as usize).min(7);
            gx * 64 + gy * 8 + gz
        };
        let mut counts = [0usize; 512];
        for p in &points {
            counts[cell(p)] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let uniform_expectation = 20_000 / 512;
        assert!(
            max > uniform_expectation * 5,
            "max cell {max} not clustered (uniform ≈ {uniform_expectation})"
        );
    }

    #[test]
    fn gas_is_more_diffuse_than_stars() {
        // Mass concentration on a 16³ occupancy grid (Herfindahl index,
        // Σ share²): tight star clusters pile their mass into few cells,
        // fluffy gas halos plus the thick background spread it out. A
        // single seed is noisy, so average over several.
        let concentration = |config: &NBodyConfig| -> f64 {
            let points = nbody_points(config);
            let e = config.domain.extents();
            let mut counts = vec![0usize; 16 * 16 * 16];
            for p in &points {
                let gx = (((p.x - config.domain.min.x) / e.x * 16.0) as usize).min(15);
                let gy = (((p.y - config.domain.min.y) / e.y * 16.0) as usize).min(15);
                let gz = (((p.z - config.domain.min.z) / e.z * 16.0) as usize).min(15);
                counts[gx * 256 + gy * 16 + gz] += 1;
            }
            let total = points.len() as f64;
            counts.iter().map(|&c| (c as f64 / total).powi(2)).sum()
        };
        let mut gas = 0.0;
        let mut stars = 0.0;
        for seed in 7..12 {
            stars += concentration(&NBodyConfig::stars(10_000, seed));
            gas += concentration(&NBodyConfig::gas(10_000, seed));
        }
        // Gas (fluffier halos + more background) is markedly less
        // concentrated than stars.
        assert!(
            gas < stars * 0.8,
            "gas concentration {gas} vs stars {stars}"
        );
    }

    #[test]
    fn entries_are_points() {
        let config = NBodyConfig::gas(100, 9);
        for e in nbody_entries(&config) {
            assert_eq!(e.mbr.volume(), 0.0);
            assert_eq!(e.mbr.min, e.mbr.max);
        }
    }

    #[test]
    fn source_streams_the_same_particles() {
        let config = NBodyConfig::dark_matter(2 * DEFAULT_CHUNK + 77, 21);
        let expected: Vec<Entry> = nbody_points(&config)
            .iter()
            .enumerate()
            .map(|(i, p)| Entry::new(i as u64, Aabb::point(*p)))
            .collect();
        let streamed: Vec<Entry> = NBodySource::new(config).into_entry_iter().collect();
        assert_eq!(streamed, expected);
    }

    #[test]
    fn deterministic() {
        let a = nbody_points(&NBodyConfig::dark_matter(1000, 11));
        let b = nbody_points(&NBodyConfig::dark_matter(1000, 11));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_clusters_rejected() {
        let config = NBodyConfig {
            clusters: 0,
            ..NBodyConfig::gas(10, 1)
        };
        let _ = nbody_points(&config);
    }
}
