//! Synthetic neuron morphologies: branching trees of cylinder segments.
//!
//! The BBP models the paper indexes are "biophysically realistic"
//! morphologies — a soma from which dendrites and an axon grow, branching
//! repeatedly, each branch a chain of short tapered cylinders (Figure 1 of
//! the paper). What matters for *index* behaviour is reproduced here:
//!
//! * elements are short, thin, **elongated** cylinders (high aspect ratio);
//! * fibers wander through the tissue, so the data is **concave** — full of
//!   holes that split query regions into disconnected element groups;
//! * density grows by placing **more neurons in the same volume** (§VII-A),
//!   which is how all the paper's density sweeps are built.
//!
//! Generation is prefix-stable: neuron `i` is derived from `substream(seed,
//! i)`, so a 50-neuron model is exactly the first 50 neurons of a
//! 100-neuron model.

use crate::source::EntrySource;
use crate::substream;
use flat_geom::{Aabb, Cylinder, Point3, Shape};
use flat_rtree::Entry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the morphology generator.
#[derive(Debug, Clone)]
pub struct NeuronConfig {
    /// Number of neurons to place.
    pub neurons: usize,
    /// Cylinder segments per neuron (the paper's models have hundreds to
    /// thousands; 4 500 cylinders per neuron matches the 450 M / 100 k
    /// ratio of §VII-A).
    pub segments_per_neuron: usize,
    /// The tissue volume neurons are packed into.
    pub domain: Aabb,
    /// Mean segment length, in domain units.
    pub segment_length: f64,
    /// Range the per-segment radii start in.
    pub radius_range: (f64, f64),
    /// Probability that a growth step spawns a new branch.
    pub branch_probability: f64,
    /// Probability that a segment is a long straight axonal stretch
    /// (the extreme-aspect-ratio elements that stress R-trees).
    pub long_probability: f64,
    /// Length multiplier range for long stretches.
    pub long_stretch: (f64, f64),
    /// Base seed.
    pub seed: u64,
}

impl NeuronConfig {
    /// A configuration sized like the paper's models, scaled to `neurons`
    /// neurons: the (285 µm)³ domain, ~5 µm segments, branching fibers
    /// with occasional long axonal stretches.
    pub fn bbp(neurons: usize, segments_per_neuron: usize, seed: u64) -> NeuronConfig {
        NeuronConfig {
            neurons,
            segments_per_neuron,
            domain: crate::bbp_domain(),
            segment_length: 5.0,
            radius_range: (0.6, 1.2),
            branch_probability: 0.05,
            long_probability: 0.08,
            long_stretch: (3.0, 6.0),
            seed,
        }
    }

    /// Total number of cylinders the configuration generates.
    pub fn total_segments(&self) -> usize {
        self.neurons * self.segments_per_neuron
    }
}

/// A generated model: all cylinders, grouped by neuron.
#[derive(Debug, Clone)]
pub struct NeuronModel {
    /// All segments, neuron by neuron.
    pub cylinders: Vec<Cylinder>,
    /// `neuron_of[i]` is the index of the neuron segment `i` belongs to.
    pub neuron_of: Vec<u32>,
    /// The domain the model was grown in.
    pub domain: Aabb,
}

impl NeuronModel {
    /// Generates the model.
    pub fn generate(config: &NeuronConfig) -> NeuronModel {
        let mut cylinders = Vec::with_capacity(config.total_segments());
        let mut neuron_of = Vec::with_capacity(config.total_segments());
        for n in 0..config.neurons {
            let mut rng = StdRng::seed_from_u64(substream(config.seed, n as u64));
            grow_neuron(config, &mut rng, &mut cylinders);
            neuron_of.resize(cylinders.len(), n as u32);
        }
        NeuronModel {
            cylinders,
            neuron_of,
            domain: config.domain,
        }
    }

    /// The cylinders as index entries (sequential ids).
    pub fn entries(&self) -> Vec<Entry> {
        self.cylinders
            .iter()
            .enumerate()
            .map(|(i, c)| Entry::new(i as u64, c.mbr()))
            .collect()
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.cylinders.len()
    }

    /// `true` if the model has no segments.
    pub fn is_empty(&self) -> bool {
        self.cylinders.is_empty()
    }
}

/// Streaming form of [`NeuronModel::generate`]`.entries()`: grows one
/// neuron per chunk and emits its segments as entries, holding only that
/// neuron's cylinders in memory. Entry ids are the same running sequence
/// the materialized model assigns, so the streamed sequence is
/// element-for-element identical to `NeuronModel::entries()` (a test pins
/// this) — and, like the model, prefix-stable across neuron counts.
pub struct NeuronSource {
    config: NeuronConfig,
    next_neuron: usize,
    next_id: u64,
    buffer: Vec<Cylinder>,
}

impl NeuronSource {
    /// Creates the source.
    pub fn new(config: NeuronConfig) -> NeuronSource {
        NeuronSource {
            config,
            next_neuron: 0,
            next_id: 0,
            buffer: Vec::new(),
        }
    }
}

impl EntrySource for NeuronSource {
    fn len_hint(&self) -> Option<u64> {
        Some(self.config.total_segments() as u64)
    }

    fn next_chunk(&mut self, out: &mut Vec<Entry>) -> bool {
        if self.next_neuron >= self.config.neurons {
            return false;
        }
        let mut rng = StdRng::seed_from_u64(substream(self.config.seed, self.next_neuron as u64));
        self.buffer.clear();
        grow_neuron(&self.config, &mut rng, &mut self.buffer);
        out.extend(self.buffer.iter().map(|c| {
            let entry = Entry::new(self.next_id, c.mbr());
            self.next_id += 1;
            entry
        }));
        self.next_neuron += 1;
        true
    }
}

/// Grows one neuron: a soma position plus a set of stems growing as
/// branching random walks of tapered cylinder segments.
fn grow_neuron(config: &NeuronConfig, rng: &mut StdRng, out: &mut Vec<Cylinder>) {
    let domain = &config.domain;
    let soma = Point3::new(
        rng.gen_range(domain.min.x..domain.max.x),
        rng.gen_range(domain.min.y..domain.max.y),
        rng.gen_range(domain.min.z..domain.max.z),
    );
    let target = config.segments_per_neuron;
    let mut produced = 0usize;

    // Growth tips: (position, direction, radius). Start with a few stems
    // (dendrites + axon) leaving the soma in random directions.
    let stems = rng.gen_range(3..=6usize);
    let (r_lo, r_hi) = config.radius_range;
    let mut tips: Vec<(Point3, Point3, f64)> = (0..stems)
        .map(|_| {
            let dir = random_unit(rng);
            (soma, dir, rng.gen_range(r_lo..r_hi))
        })
        .collect();

    while produced < target && !tips.is_empty() {
        // Round-robin over the tips so branches grow in parallel.
        let idx = produced % tips.len();
        let (pos, dir, radius) = tips[idx];

        // Perturb the direction (tortuous fibers) and take a step. Most
        // segments are short dendrite pieces; a tail of long segments
        // models straight axonal stretches (these extreme aspect-ratio
        // elements are what makes the data "extreme" for R-trees).
        let new_dir = perturb(rng, dir, 0.4);
        let stretch = if config.long_probability > 0.0 && rng.gen_bool(config.long_probability) {
            rng.gen_range(config.long_stretch.0..config.long_stretch.1)
        } else {
            1.0
        };
        let length = config.segment_length * rng.gen_range(0.6..1.4) * stretch;
        let mut end = pos + new_dir * length;
        let mut out_dir = new_dir;
        // Reflect off the domain walls so fibers stay inside the tissue.
        for axis in flat_geom::Axis::ALL {
            let (lo, hi) = (domain.min.coord(axis), domain.max.coord(axis));
            let v = end.coord(axis);
            if v < lo {
                end = end.with_coord(axis, lo + (lo - v));
                out_dir = out_dir.with_coord(axis, -out_dir.coord(axis));
            } else if v > hi {
                end = end.with_coord(axis, hi - (v - hi));
                out_dir = out_dir.with_coord(axis, -out_dir.coord(axis));
            }
        }

        let new_radius = (radius * rng.gen_range(0.97..1.0)).max(r_lo * 0.25);
        out.push(Cylinder::new(pos, end, radius, new_radius));
        produced += 1;

        tips[idx] = (end, out_dir, new_radius);
        if rng.gen_bool(config.branch_probability) {
            // Spawn a daughter branch at the new tip.
            let branch_dir = perturb(rng, out_dir, 1.2);
            tips.push((end, branch_dir, new_radius * 0.8));
        }
    }
}

fn random_unit(rng: &mut StdRng) -> Point3 {
    // Rejection-sample a direction from the unit ball.
    loop {
        let v = Point3::new(
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
        );
        if let Some(unit) = v.normalized() {
            if v.length() <= 1.0 {
                return unit;
            }
        }
    }
}

fn perturb(rng: &mut StdRng, dir: Point3, amount: f64) -> Point3 {
    (dir + random_unit(rng) * amount)
        .normalized()
        .unwrap_or(dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> NeuronConfig {
        NeuronConfig::bbp(20, 200, 7)
    }

    #[test]
    fn generates_the_requested_number_of_segments() {
        let model = NeuronModel::generate(&small());
        assert_eq!(model.len(), 20 * 200);
        assert_eq!(model.entries().len(), model.len());
        assert_eq!(model.neuron_of.len(), model.len());
    }

    #[test]
    fn segments_stay_inside_an_inflated_domain() {
        let model = NeuronModel::generate(&small());
        // End points are reflected into the domain; MBRs may poke out by
        // at most the radius.
        let fence = model.domain.inflate(2.0);
        for c in &model.cylinders {
            assert!(fence.contains(&c.mbr()), "segment escaped: {:?}", c.mbr());
        }
    }

    #[test]
    fn source_streams_the_model_entries() {
        use crate::source::EntrySource;
        let config = small();
        let model = NeuronModel::generate(&config);
        let streamed: Vec<Entry> = NeuronSource::new(config).into_entry_iter().collect();
        assert_eq!(streamed, model.entries());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = NeuronModel::generate(&small());
        let b = NeuronModel::generate(&small());
        assert_eq!(a.cylinders.len(), b.cylinders.len());
        assert_eq!(a.cylinders[17], b.cylinders[17]);
    }

    #[test]
    fn prefix_stability_across_density_steps() {
        // The paper's density sweep: a denser model extends a sparser one.
        let sparse = NeuronModel::generate(&NeuronConfig::bbp(5, 100, 9));
        let dense = NeuronModel::generate(&NeuronConfig::bbp(10, 100, 9));
        assert_eq!(&dense.cylinders[..sparse.len()], &sparse.cylinders[..]);
    }

    #[test]
    fn segments_are_elongated() {
        let model = NeuronModel::generate(&small());
        let avg_aspect: f64 = model
            .cylinders
            .iter()
            .map(|c| c.length() / (c.r0.max(c.r1) * 2.0))
            .sum::<f64>()
            / model.len() as f64;
        assert!(
            avg_aspect > 1.5,
            "segments should be elongated, got aspect {avg_aspect}"
        );
    }

    #[test]
    fn fibers_are_connected_chains() {
        // Consecutive segments of a branch share an endpoint; verify that
        // a decent share of segments connect to some earlier segment.
        let model = NeuronModel::generate(&NeuronConfig::bbp(3, 150, 11));
        let mut connected = 0;
        for w in model.cylinders.windows(2) {
            // Round-robin growth means adjacency isn't strictly sequential;
            // check endpoint reuse within a window instead.
            if w[1].p0 == w[0].p1 || w[1].p0 == w[0].p0 {
                connected += 1;
            }
        }
        // Chains exist but interleave; just require nonzero connectivity.
        assert!(connected > 0, "no connected segments found");
    }

    #[test]
    fn model_is_concave_leaves_holes() {
        // Probe random points: a neuron model never fills space — many
        // probe points must be far from every segment MBR.
        let model = NeuronModel::generate(&small());
        let entries = model.entries();
        let mut rng = StdRng::seed_from_u64(1);
        let mut empty_probes = 0;
        for _ in 0..200 {
            let p = Point3::new(
                rng.gen_range(0.0..285.0),
                rng.gen_range(0.0..285.0),
                rng.gen_range(0.0..285.0),
            );
            let probe = Aabb::cube(p, 1.0);
            if !entries.iter().any(|e| e.mbr.intersects(&probe)) {
                empty_probes += 1;
            }
        }
        assert!(
            empty_probes > 20,
            "model unexpectedly fills space ({empty_probes} empty probes)"
        );
    }
}
