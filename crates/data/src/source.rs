//! The [`EntrySource`] streaming API: generators emit entries in bounded
//! chunks instead of materializing whole datasets.
//!
//! The paper's datasets are "considerably bigger than main memory"
//! (50–450 M elements); a build pipeline that scales to them can never be
//! handed a `Vec` of everything. Every generator in this crate therefore
//! exposes a *source* — [`UniformSource`](crate::uniform::UniformSource),
//! [`NeuronSource`](crate::neuron::NeuronSource),
//! [`MeshSource`](crate::mesh::MeshSource),
//! [`NBodySource`](crate::nbody::NBodySource) — that emits entries chunk by
//! chunk in the exact order of its `Vec`-returning twin (the `Vec` fns are
//! thin wrappers over the sources, and tests pin the equivalence). Sources
//! are resumable generators: memory is one chunk, not one dataset.
//!
//! [`EntrySource::into_entry_iter`] adapts any source to a plain
//! `Iterator<Item = Entry>`, which is what the streaming index builder
//! (`flat_core::FlatIndexBuilder`) consumes — the builder does not depend
//! on this crate, only on the iterator protocol.

use flat_rtree::Entry;

/// Preferred number of entries per chunk for element-at-a-time sources.
/// Generators with natural unit boundaries (one neuron, one mesh blob)
/// emit one unit per chunk instead.
pub const DEFAULT_CHUNK: usize = 4096;

/// A resumable, chunked producer of index entries.
///
/// Contract: repeated [`EntrySource::next_chunk`] calls append disjoint,
/// consecutive ranges of the dataset to `out` (never clearing it) and
/// return `true` until the dataset is exhausted, after which they return
/// `false` without appending. The concatenation of all chunks is exactly
/// the entry sequence of the generator's `Vec` twin — same entries, same
/// ids, same order.
pub trait EntrySource {
    /// Total number of entries the source will emit, if known up front.
    fn len_hint(&self) -> Option<u64> {
        None
    }

    /// Appends the next chunk to `out`; returns `false` when exhausted.
    fn next_chunk(&mut self, out: &mut Vec<Entry>) -> bool;

    /// Drains the source into a single `Vec` (the `Vec`-twin behaviour).
    fn collect_entries(mut self) -> Vec<Entry>
    where
        Self: Sized,
    {
        let mut out = Vec::with_capacity(self.len_hint().unwrap_or(0) as usize);
        while self.next_chunk(&mut out) {}
        out
    }

    /// Adapts the source into a plain entry iterator (one bounded chunk
    /// buffered at a time).
    fn into_entry_iter(self) -> EntryIter<Self>
    where
        Self: Sized,
    {
        EntryIter {
            source: self,
            buf: Vec::new(),
            pos: 0,
            done: false,
        }
    }
}

/// Iterator adapter over an [`EntrySource`]; holds one chunk in memory.
pub struct EntryIter<S: EntrySource> {
    source: S,
    buf: Vec<Entry>,
    pos: usize,
    done: bool,
}

impl<S: EntrySource> Iterator for EntryIter<S> {
    type Item = Entry;

    fn next(&mut self) -> Option<Entry> {
        loop {
            if self.pos < self.buf.len() {
                let entry = self.buf[self.pos];
                self.pos += 1;
                return Some(entry);
            }
            if self.done {
                return None;
            }
            self.buf.clear();
            self.pos = 0;
            if !self.source.next_chunk(&mut self.buf) {
                self.done = true;
            }
        }
    }
}

/// An [`EntrySource`] over an existing `Vec` — the bridge for callers that
/// already hold their entries in memory.
pub struct VecSource {
    entries: Vec<Entry>,
    next: usize,
}

impl VecSource {
    /// Wraps `entries`.
    pub fn new(entries: Vec<Entry>) -> VecSource {
        VecSource { entries, next: 0 }
    }
}

impl EntrySource for VecSource {
    fn len_hint(&self) -> Option<u64> {
        Some(self.entries.len() as u64)
    }

    fn next_chunk(&mut self, out: &mut Vec<Entry>) -> bool {
        if self.next >= self.entries.len() {
            return false;
        }
        let end = (self.next + DEFAULT_CHUNK).min(self.entries.len());
        out.extend_from_slice(&self.entries[self.next..end]);
        self.next = end;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flat_geom::{Aabb, Point3};

    fn sample(n: usize) -> Vec<Entry> {
        (0..n)
            .map(|i| Entry::new(i as u64, Aabb::cube(Point3::splat(i as f64), 1.0)))
            .collect()
    }

    #[test]
    fn vec_source_round_trips() {
        let entries = sample(10_000);
        let collected = VecSource::new(entries.clone()).collect_entries();
        assert_eq!(collected, entries);
    }

    #[test]
    fn entry_iter_matches_collect() {
        let entries = sample(9001);
        let iterated: Vec<Entry> = VecSource::new(entries.clone()).into_entry_iter().collect();
        assert_eq!(iterated, entries);
    }

    #[test]
    fn chunks_are_bounded() {
        let mut source = VecSource::new(sample(3 * DEFAULT_CHUNK + 1));
        let mut out = Vec::new();
        let mut chunks = 0;
        let mut last = 0;
        while source.next_chunk(&mut out) {
            assert!(out.len() - last <= DEFAULT_CHUNK, "oversized chunk");
            last = out.len();
            chunks += 1;
        }
        assert_eq!(chunks, 4);
        assert_eq!(out.len(), 3 * DEFAULT_CHUNK + 1);
    }

    #[test]
    fn empty_source_is_exhausted_immediately() {
        let mut source = VecSource::new(Vec::new());
        let mut out = Vec::new();
        assert!(!source.next_chunk(&mut out));
        assert!(out.is_empty());
        assert_eq!(VecSource::new(Vec::new()).into_entry_iter().count(), 0);
    }
}
