//! Uniform random element clouds with controlled element volume and aspect
//! ratio.
//!
//! §VII-E of the paper studies FLAT's pointer count on "artificial data
//! sets with 10 million elements which are uniformly randomly distributed
//! in a volume of 8 mm³", varying (a) the element volume and (b) the
//! element aspect ratio ("its length in each dimension is randomly set
//! between 5 and 35 µm … the lengths on all axes are normalized in order to
//! obtain elements of equal volume").

use crate::source::{EntrySource, DEFAULT_CHUNK};
use crate::substream;
use flat_geom::{range_query_with_volume, Aabb, Point3};
use flat_rtree::Entry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for the uniform generator.
#[derive(Debug, Clone)]
pub struct UniformConfig {
    /// Number of elements.
    pub count: usize,
    /// The domain element centers are drawn from.
    pub domain: Aabb,
    /// Volume of every element.
    pub element_volume: f64,
    /// Per-axis length range used to draw the shape before normalizing to
    /// `element_volume`. `(1.0, 1.0)` yields cubes; the paper's aspect
    /// experiment uses `(5.0, 35.0)`.
    pub length_range: (f64, f64),
    /// Base seed.
    pub seed: u64,
}

impl UniformConfig {
    /// The §VII-E baseline: elements of 18 µm³ in the 8 mm³ domain.
    /// (`count` is scaled down from the paper's 10 M by the caller.)
    pub fn paper_baseline(count: usize, seed: u64) -> UniformConfig {
        UniformConfig {
            count,
            domain: crate::synthetic_domain(),
            element_volume: 18.0,
            length_range: (1.0, 1.0),
            seed,
        }
    }

    /// Like [`UniformConfig::paper_baseline`] but with the domain edge
    /// shrunk by ∛(count / 10 M), so the element density in elements per
    /// µm³ — and with it the partition-size-to-element-size ratio that
    /// §VII-E studies — matches the paper's 10 M-element setup at any
    /// element count.
    pub fn scaled_baseline(count: usize, seed: u64) -> UniformConfig {
        let mut config = UniformConfig::paper_baseline(count, seed);
        let edge = 2000.0 * (count as f64 / 10e6).cbrt();
        config.domain = flat_geom::Aabb::new(
            flat_geom::Point3::splat(0.0),
            flat_geom::Point3::splat(edge),
        );
        config
    }
}

/// Generates the element cloud (thin wrapper over [`UniformSource`]).
///
/// Deterministic per element: element `i` depends only on `(seed, i)`, so
/// growing `count` extends the dataset (prefix-stable).
pub fn uniform_entries(config: &UniformConfig) -> Vec<Entry> {
    UniformSource::new(config.clone()).collect_entries()
}

/// One element of the cloud. Depends only on `(config, i)`.
fn entry_at(config: &UniformConfig, i: usize) -> Entry {
    let (lo, hi) = config.length_range;
    let mut rng = StdRng::seed_from_u64(substream(config.seed, i as u64));
    let center = Point3::new(
        rng.gen_range(config.domain.min.x..config.domain.max.x),
        rng.gen_range(config.domain.min.y..config.domain.max.y),
        rng.gen_range(config.domain.min.z..config.domain.max.z),
    );
    let proportions = if lo == hi {
        [1.0, 1.0, 1.0]
    } else {
        [
            rng.gen_range(lo..hi),
            rng.gen_range(lo..hi),
            rng.gen_range(lo..hi),
        ]
    };
    let mbr = range_query_with_volume(center, config.element_volume, proportions);
    Entry::new(i as u64, mbr)
}

/// Streaming form of [`uniform_entries`]: emits the same entries in the
/// same order, [`DEFAULT_CHUNK`] elements per chunk, holding only the
/// current chunk in memory.
pub struct UniformSource {
    config: UniformConfig,
    next: usize,
}

impl UniformSource {
    /// Creates the source.
    ///
    /// # Panics
    /// Panics if the configured length range is invalid (same contract as
    /// [`uniform_entries`]).
    pub fn new(config: UniformConfig) -> UniformSource {
        let (lo, hi) = config.length_range;
        assert!(lo > 0.0 && hi >= lo, "invalid length range ({lo}, {hi})");
        UniformSource { config, next: 0 }
    }
}

impl EntrySource for UniformSource {
    fn len_hint(&self) -> Option<u64> {
        Some(self.config.count as u64)
    }

    fn next_chunk(&mut self, out: &mut Vec<Entry>) -> bool {
        if self.next >= self.config.count {
            return false;
        }
        let end = (self.next + DEFAULT_CHUNK).min(self.config.count);
        out.extend((self.next..end).map(|i| entry_at(&self.config, i)));
        self.next = end;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_volumes_are_exact() {
        let config = UniformConfig {
            count: 500,
            domain: crate::synthetic_domain(),
            element_volume: 18.0,
            length_range: (5.0, 35.0),
            seed: 3,
        };
        for e in uniform_entries(&config) {
            assert!(
                (e.mbr.volume() - 18.0).abs() < 1e-9,
                "volume {}",
                e.mbr.volume()
            );
        }
    }

    #[test]
    fn cubes_when_lengths_are_fixed() {
        let config = UniformConfig::paper_baseline(100, 5);
        for e in uniform_entries(&config) {
            assert!((e.mbr.aspect_ratio() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn aspect_ratio_spreads_with_the_length_range() {
        let stretched = UniformConfig {
            length_range: (5.0, 35.0),
            ..UniformConfig::paper_baseline(2000, 7)
        };
        let entries = uniform_entries(&stretched);
        let mean_aspect: f64 =
            entries.iter().map(|e| e.mbr.aspect_ratio()).sum::<f64>() / entries.len() as f64;
        assert!(
            mean_aspect > 1.5,
            "expected stretched elements, mean aspect {mean_aspect}"
        );
    }

    #[test]
    fn centers_are_inside_the_domain() {
        let config = UniformConfig::paper_baseline(1000, 11);
        for e in uniform_entries(&config) {
            assert!(config.domain.contains_point(&e.mbr.center()));
        }
    }

    #[test]
    fn prefix_stable() {
        let a = uniform_entries(&UniformConfig::paper_baseline(100, 13));
        let b = uniform_entries(&UniformConfig::paper_baseline(200, 13));
        assert_eq!(&b[..100], &a[..]);
    }

    #[test]
    fn source_streams_the_same_entries() {
        let config = UniformConfig {
            length_range: (5.0, 35.0),
            ..UniformConfig::paper_baseline(2 * DEFAULT_CHUNK + 33, 17)
        };
        let vec_path = uniform_entries(&config);
        let streamed: Vec<Entry> = UniformSource::new(config).into_entry_iter().collect();
        assert_eq!(streamed, vec_path);
    }

    #[test]
    #[should_panic(expected = "invalid length range")]
    fn bad_length_range_rejected() {
        let config = UniformConfig {
            length_range: (0.0, 1.0),
            ..UniformConfig::paper_baseline(1, 1)
        };
        let _ = uniform_entries(&config);
    }
}
