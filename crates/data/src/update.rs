//! Update workloads: timestep churn over an evolving model (extension).
//!
//! The paper's datasets are snapshots of a running simulation; between
//! snapshots the model *churns* — elements move, die, and appear. This
//! module turns any entry set (a neuron model, a mesh, a uniform cloud)
//! into a deterministic sequence of update batches for the dynamic index
//! layer: each timestep deletes a sample of live elements and re-inserts
//! displaced replacements under fresh ids, which is exactly the
//! delete-then-reinsert pattern a simulation writing back moved geometry
//! produces.
//!
//! The generator tracks the live population itself, so differential tests
//! and benchmarks can use [`ChurnWorkload::live`] as the ground truth for
//! "the surviving entries" after any prefix of steps.

use flat_geom::{Aabb, Point3};
use flat_rtree::Entry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a churn sequence.
#[derive(Debug, Clone, Copy)]
pub struct ChurnConfig {
    /// Elements replaced (deleted and re-inserted displaced) per timestep.
    pub churn_per_step: usize,
    /// Net growth per timestep: fresh elements inserted on top of the
    /// replacements (`0` keeps the population constant).
    pub growth_per_step: usize,
    /// Maximum per-axis displacement of a replaced element's center, as a
    /// fraction of the corresponding domain extent.
    pub displacement: f64,
    /// RNG seed; the whole sequence is deterministic in it.
    pub seed: u64,
}

impl ChurnConfig {
    /// A constant-population churn of `churn_per_step` elements with mild
    /// (1 % of the domain) displacement.
    pub fn steady(churn_per_step: usize, seed: u64) -> ChurnConfig {
        ChurnConfig {
            churn_per_step,
            growth_per_step: 0,
            displacement: 0.01,
            seed,
        }
    }
}

/// One timestep's update batch: deletes to apply first, then inserts.
#[derive(Debug, Clone)]
pub struct UpdateStep {
    /// Application ids to delete.
    pub deletes: Vec<u64>,
    /// Entries to insert (ids fresh, never colliding with live ones).
    pub inserts: Vec<Entry>,
}

/// A deterministic churn generator over an evolving element population.
#[derive(Debug)]
pub struct ChurnWorkload {
    live: Vec<Entry>,
    domain: Aabb,
    config: ChurnConfig,
    next_id: u64,
    rng: StdRng,
}

impl ChurnWorkload {
    /// Starts a churn over `initial` (the indexed snapshot) inside
    /// `domain`. Initial ids must be unique — they are with every
    /// generator in this crate.
    pub fn new(initial: Vec<Entry>, domain: Aabb, config: ChurnConfig) -> ChurnWorkload {
        let next_id = initial.iter().map(|e| e.id + 1).max().unwrap_or(0);
        ChurnWorkload {
            live: initial,
            domain,
            config,
            next_id,
            rng: StdRng::seed_from_u64(config.seed),
        }
    }

    /// The current live population (the ground truth a differential test
    /// rebuilds from).
    pub fn live(&self) -> &[Entry] {
        &self.live
    }

    /// Generates the next timestep: a sample of live elements is deleted
    /// and re-inserted displaced (same extents, jittered center, fresh
    /// id), plus `growth_per_step` entirely new elements. The internal
    /// population is updated, so consecutive calls model an evolving run.
    pub fn step(&mut self) -> UpdateStep {
        let churn = self.config.churn_per_step.min(self.live.len());
        let mut deletes = Vec::with_capacity(churn);
        let mut inserts = Vec::with_capacity(churn + self.config.growth_per_step);
        for _ in 0..churn {
            // Swap-remove a random live element: O(1) and unbiased.
            let at = self.rng.gen_range(0..self.live.len());
            let victim = self.live.swap_remove(at);
            deletes.push(victim.id);
            inserts.push(self.displaced(victim.mbr));
        }
        for _ in 0..self.config.growth_per_step {
            let mbr = self
                .live
                .get(self.rng.gen_range(0..self.live.len().max(1)))
                .map(|e| e.mbr);
            let template = mbr.unwrap_or_else(|| Aabb::cube(self.domain.center(), 1.0));
            inserts.push(self.displaced(template));
        }
        self.live.extend(inserts.iter().copied());
        UpdateStep { deletes, inserts }
    }

    /// A copy of `mbr` with its center jittered by at most `displacement`
    /// of the domain extent per axis (clamped so the element's center
    /// stays inside the domain), under a fresh id.
    fn displaced(&mut self, mbr: Aabb) -> Entry {
        let extents = self.domain.extents();
        let half = mbr.extents() * 0.5;
        let c = mbr.center();
        let mut jitter = |c: f64, lo: f64, hi: f64, extent: f64| {
            let d = self.config.displacement * extent;
            let offset = if d > 0.0 {
                self.rng.gen_range(-d..d)
            } else {
                0.0
            };
            (c + offset).clamp(lo, hi)
        };
        let center = Point3::new(
            jitter(c.x, self.domain.min.x, self.domain.max.x, extents.x),
            jitter(c.y, self.domain.min.y, self.domain.max.y, extents.y),
            jitter(c.z, self.domain.min.z, self.domain.max.z, extents.z),
        );
        let id = self.next_id;
        self.next_id += 1;
        Entry::new(id, Aabb::centered(center, half * 2.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform::{uniform_entries, UniformConfig};

    fn workload(seed: u64) -> ChurnWorkload {
        let domain = crate::synthetic_domain();
        let entries = uniform_entries(&UniformConfig {
            count: 2_000,
            domain,
            element_volume: 8.0,
            length_range: (1.0, 1.0),
            seed: 7,
        });
        ChurnWorkload::new(entries, domain, ChurnConfig::steady(100, seed))
    }

    #[test]
    fn steps_are_deterministic_in_the_seed() {
        let (mut a, mut b) = (workload(3), workload(3));
        for _ in 0..5 {
            let (sa, sb) = (a.step(), b.step());
            assert_eq!(sa.deletes, sb.deletes);
            assert_eq!(sa.inserts, sb.inserts);
        }
        let mut c = workload(4);
        assert_ne!(a.step().deletes, c.step().deletes);
    }

    #[test]
    fn steady_churn_keeps_the_population_constant() {
        let mut w = workload(5);
        let before = w.live().len();
        for _ in 0..10 {
            let step = w.step();
            assert_eq!(step.deletes.len(), 100);
            assert_eq!(step.inserts.len(), 100);
        }
        assert_eq!(w.live().len(), before);
    }

    #[test]
    fn fresh_ids_never_collide_with_live_ones() {
        let mut w = workload(6);
        let mut live: std::collections::HashSet<u64> = w.live().iter().map(|e| e.id).collect();
        for _ in 0..10 {
            let step = w.step();
            for d in &step.deletes {
                assert!(live.remove(d), "deleted id {d} was not live");
            }
            for e in &step.inserts {
                assert!(live.insert(e.id), "inserted id {} collides", e.id);
            }
        }
    }

    #[test]
    fn displaced_elements_stay_in_the_domain_and_keep_extents() {
        let mut w = workload(8);
        let extents_before: Vec<_> = w.live().iter().map(|e| e.mbr.extents()).collect();
        let step = w.step();
        for e in &step.inserts {
            assert!(w.domain.contains_point(&e.mbr.center()));
            // Extents are preserved from *some* replaced element.
            let ext = e.mbr.extents();
            assert!(
                extents_before.iter().any(|b| (b.x - ext.x).abs() < 1e-9
                    && (b.y - ext.y).abs() < 1e-9
                    && (b.z - ext.z).abs() < 1e-9),
                "displacement changed element extents"
            );
        }
    }

    #[test]
    fn growth_grows_the_population() {
        let domain = crate::synthetic_domain();
        let entries = uniform_entries(&UniformConfig {
            count: 500,
            domain,
            element_volume: 8.0,
            length_range: (1.0, 1.0),
            seed: 7,
        });
        let mut w = ChurnWorkload::new(
            entries,
            domain,
            ChurnConfig {
                churn_per_step: 50,
                growth_per_step: 25,
                displacement: 0.02,
                seed: 9,
            },
        );
        for _ in 0..4 {
            w.step();
        }
        assert_eq!(w.live().len(), 500 + 4 * 25);
    }
}
