//! Query workloads: the SN and LSS micro-benchmarks (§VII-A) and point
//! queries (Figure 2).
//!
//! "The SN benchmark … consecutively executes 200 spatial range queries
//! each with a fixed volume of 5×10⁻⁷ % of the entire data set volume. The
//! LSS benchmark … 200 spatial range queries, but each with a fixed volume
//! of 5×10⁻⁴ % of the entire data set. The location and aspect ratio of all
//! queries is chosen at random."

use flat_geom::{Aabb, Point3, RangeQueryBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The SN (structural neighborhood) query volume, as a *fraction* of the
/// domain volume.
///
/// The paper writes "5×10⁻⁷ % of the space", but its reported result sizes
/// only reconcile with a *fraction* of 5×10⁻⁷: at 450 M elements an SN
/// query returns ≈280 elements (56 000 over 200 queries, §III-A), which is
/// 450e6 · 5e-7 ≈ 225 — while 5e-9 would return ≈2 elements across the
/// whole benchmark. We therefore read the paper's percent sign as sloppy
/// notation for "fraction".
pub const SN_VOLUME_FRACTION: f64 = 5e-7;

/// The LSS (large spatial subvolume) query volume fraction. Same reading
/// as [`SN_VOLUME_FRACTION`]: 450e6 · 5e-4 ≈ 225 k elements per query
/// matches the ≈2.5 GB result sets of Figure 4 (≈52 M × 48 B over 200
/// queries).
pub const LSS_VOLUME_FRACTION: f64 = 5e-4;

/// Number of queries per benchmark run (§VII-A).
pub const QUERIES_PER_RUN: usize = 200;

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Number of queries.
    pub count: usize,
    /// Query volume as a fraction of the domain volume.
    pub volume_fraction: f64,
    /// Range the per-axis proportions are drawn from (aspect ratio
    /// randomization). `(1.0, 4.0)` gives mild elongation like real
    /// analysis queries.
    pub proportion_range: (f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadConfig {
    /// The SN benchmark workload.
    pub fn sn(seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            count: QUERIES_PER_RUN,
            volume_fraction: SN_VOLUME_FRACTION,
            proportion_range: (1.0, 4.0),
            seed,
        }
    }

    /// The LSS benchmark workload.
    pub fn lss(seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            count: QUERIES_PER_RUN,
            volume_fraction: LSS_VOLUME_FRACTION,
            proportion_range: (1.0, 4.0),
            seed,
        }
    }
}

/// Generates range queries of fixed volume, random location and random
/// aspect ratio, clamped inside `domain`.
pub fn range_queries(domain: &Aabb, config: &WorkloadConfig) -> Vec<Aabb> {
    let (lo, hi) = config.proportion_range;
    assert!(
        lo > 0.0 && hi >= lo,
        "invalid proportion range ({lo}, {hi})"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    (0..config.count)
        .map(|_| {
            let center = random_point(&mut rng, domain);
            let proportions = if lo == hi {
                [1.0, 1.0, 1.0]
            } else {
                [
                    rng.gen_range(lo..hi),
                    rng.gen_range(lo..hi),
                    rng.gen_range(lo..hi),
                ]
            };
            RangeQueryBuilder::new(*domain)
                .center(center)
                .volume_fraction(config.volume_fraction)
                .proportions(proportions)
                .build()
        })
        .collect()
}

/// Random point-query locations (the Figure 2 experiment).
pub fn point_queries(domain: &Aabb, count: usize, seed: u64) -> Vec<Point3> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| random_point(&mut rng, domain)).collect()
}

/// Parameters of a k-nearest-neighbor workload (extension): analysis
/// requests of the form "the `k` elements closest to this location", the
/// proximity-driven analogue of the structural-neighborhood accesses of
/// §III-A.
#[derive(Debug, Clone, Copy)]
pub struct KnnConfig {
    /// Number of queries.
    pub count: usize,
    /// Range `k` is drawn from, inclusive. A fixed `k` uses `(k, k)`.
    pub k_range: (usize, usize),
    /// RNG seed.
    pub seed: u64,
}

impl KnnConfig {
    /// The default kNN benchmark workload: 200 queries (matching the SN/LSS
    /// count) with `k` spanning a small structural neighborhood (8) up to a
    /// page-sized one (128).
    pub fn benchmark(seed: u64) -> KnnConfig {
        KnnConfig {
            count: QUERIES_PER_RUN,
            k_range: (8, 128),
            seed,
        }
    }
}

/// Generates `(location, k)` pairs with random locations in `domain` and
/// `k` drawn uniformly from the configured range. Deterministic in the
/// seed, like the range workloads.
pub fn knn_queries(domain: &Aabb, config: &KnnConfig) -> Vec<(Point3, usize)> {
    let (lo, hi) = config.k_range;
    assert!(lo >= 1 && hi >= lo, "invalid k range ({lo}, {hi})");
    let mut rng = StdRng::seed_from_u64(config.seed);
    (0..config.count)
        .map(|_| {
            let p = random_point(&mut rng, domain);
            let k = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
            (p, k)
        })
        .collect()
}

/// Queries centered on the given element positions — the incremental
/// structural-neighborhood access pattern of §III-A ("numerous requests for
/// the immediate neighborhood … along a neuron fiber").
pub fn queries_along(centers: &[Point3], domain: &Aabb, volume_fraction: f64) -> Vec<Aabb> {
    centers
        .iter()
        .map(|c| {
            RangeQueryBuilder::new(*domain)
                .center(*c)
                .volume_fraction(volume_fraction)
                .build()
        })
        .collect()
}

fn random_point(rng: &mut StdRng, domain: &Aabb) -> Point3 {
    Point3::new(
        rng.gen_range(domain.min.x..domain.max.x),
        rng.gen_range(domain.min.y..domain.max.y),
        rng.gen_range(domain.min.z..domain.max.z),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> Aabb {
        crate::bbp_domain()
    }

    #[test]
    fn sn_queries_have_the_paper_volume() {
        let queries = range_queries(&domain(), &WorkloadConfig::sn(1));
        assert_eq!(queries.len(), 200);
        let expected = domain().volume() * SN_VOLUME_FRACTION;
        for q in &queries {
            assert!((q.volume() - expected).abs() < expected * 1e-9);
            assert!(domain().contains(q));
        }
    }

    #[test]
    fn lss_queries_are_1000x_larger_than_sn() {
        let sn = range_queries(&domain(), &WorkloadConfig::sn(2));
        let lss = range_queries(&domain(), &WorkloadConfig::lss(2));
        let ratio = lss[0].volume() / sn[0].volume();
        assert!((ratio - 1000.0).abs() < 1e-6);
        assert!((LSS_VOLUME_FRACTION / SN_VOLUME_FRACTION - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn aspect_ratios_vary() {
        let queries = range_queries(&domain(), &WorkloadConfig::sn(3));
        let aspects: Vec<f64> = queries.iter().map(|q| q.aspect_ratio()).collect();
        let min = aspects.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = aspects.iter().cloned().fold(0.0f64, f64::max);
        assert!(max / min > 1.3, "aspect ratios do not vary: {min}..{max}");
    }

    #[test]
    fn locations_cover_the_domain() {
        let queries = range_queries(&domain(), &WorkloadConfig::lss(4));
        let coverage = Aabb::union_all(queries.iter().cloned());
        assert!(
            coverage.volume() > domain().volume() * 0.5,
            "queries bunched up"
        );
    }

    #[test]
    fn workloads_are_deterministic() {
        let a = range_queries(&domain(), &WorkloadConfig::sn(5));
        let b = range_queries(&domain(), &WorkloadConfig::sn(5));
        assert_eq!(a, b);
        let c = range_queries(&domain(), &WorkloadConfig::sn(6));
        assert_ne!(a, c);
    }

    #[test]
    fn point_queries_are_inside_the_domain() {
        let points = point_queries(&domain(), 100, 7);
        assert_eq!(points.len(), 100);
        for p in &points {
            assert!(domain().contains_point(p));
        }
    }

    #[test]
    fn knn_workload_is_deterministic_and_in_domain() {
        let config = KnnConfig::benchmark(9);
        let a = knn_queries(&domain(), &config);
        let b = knn_queries(&domain(), &config);
        assert_eq!(a.len(), QUERIES_PER_RUN);
        assert_eq!(a, b);
        for (p, k) in &a {
            assert!(domain().contains_point(p));
            assert!((8..=128).contains(k));
        }
        // k actually varies across the workload.
        let ks: std::collections::HashSet<usize> = a.iter().map(|&(_, k)| k).collect();
        assert!(ks.len() > 10, "k barely varies: {} distinct", ks.len());
    }

    #[test]
    fn knn_workload_fixed_k() {
        let config = KnnConfig {
            count: 10,
            k_range: (5, 5),
            seed: 3,
        };
        assert!(knn_queries(&domain(), &config).iter().all(|&(_, k)| k == 5));
    }

    #[test]
    fn queries_along_fiber_centers() {
        let centers = vec![Point3::splat(10.0), Point3::splat(20.0)];
        let queries = queries_along(&centers, &domain(), SN_VOLUME_FRACTION);
        assert_eq!(queries.len(), 2);
        assert_eq!(queries[0].center(), centers[0]);
        for q in &queries {
            assert!(domain().contains(q));
        }
    }
}
