//! Axis-aligned minimum bounding rectangles (the paper's MBRs).

use crate::{Axis, Overlap, Point3};
use std::fmt;

/// An axis-aligned box in 3-D space — the *minimum bounding rectangle* (MBR)
/// of the paper.
///
/// Boxes are **closed**: boxes sharing only a boundary face intersect. FLAT
/// relies on this (partitions tile space and touch at faces; touching
/// partitions are neighbors, §V-A of the paper).
///
/// The invariant `min ≤ max` component-wise is maintained by every
/// constructor; [`Aabb::from_corners`] accepts corners in any order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Corner with the smallest coordinates.
    pub min: Point3,
    /// Corner with the largest coordinates.
    pub max: Point3,
}

impl Aabb {
    /// Creates a box from its extreme corners.
    ///
    /// # Panics
    /// Panics in debug builds if `min` exceeds `max` in any dimension; use
    /// [`Aabb::from_corners`] when the ordering is unknown.
    #[inline]
    pub fn new(min: Point3, max: Point3) -> Aabb {
        debug_assert!(
            min.x <= max.x && min.y <= max.y && min.z <= max.z,
            "Aabb::new called with unordered corners: min={min}, max={max}"
        );
        Aabb { min, max }
    }

    /// Creates a box from two arbitrary opposite corners, ordering the
    /// coordinates as needed.
    #[inline]
    pub fn from_corners(a: Point3, b: Point3) -> Aabb {
        Aabb {
            min: a.min(&b),
            max: a.max(&b),
        }
    }

    /// The degenerate box containing exactly one point.
    #[inline]
    pub fn point(p: Point3) -> Aabb {
        Aabb { min: p, max: p }
    }

    /// A cube centered at `center` with the given side length.
    #[inline]
    pub fn cube(center: Point3, side: f64) -> Aabb {
        let h = side / 2.0;
        Aabb::new(center - Point3::splat(h), center + Point3::splat(h))
    }

    /// A box centered at `center` with the given per-axis extents.
    #[inline]
    pub fn centered(center: Point3, extents: Point3) -> Aabb {
        let h = extents / 2.0;
        Aabb::new(center - h, center + h)
    }

    /// The "empty" box, neutral element of [`Aabb::union`]: its corners are
    /// at +∞/−∞ so that the first union replaces it entirely.
    ///
    /// An empty box intersects nothing and contains nothing.
    #[inline]
    pub fn empty() -> Aabb {
        Aabb {
            min: Point3::splat(f64::INFINITY),
            max: Point3::splat(f64::NEG_INFINITY),
        }
    }

    /// `true` if this is the neutral element produced by [`Aabb::empty`]
    /// (i.e. no point has been accumulated into it yet).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    /// The bounding box of a set of boxes. Returns [`Aabb::empty`] for an
    /// empty iterator.
    pub fn union_all<I: IntoIterator<Item = Aabb>>(boxes: I) -> Aabb {
        boxes
            .into_iter()
            .fold(Aabb::empty(), |acc, b| acc.union(&b))
    }

    /// The geometric center of the box.
    #[inline]
    pub fn center(&self) -> Point3 {
        Point3::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
            (self.min.z + self.max.z) / 2.0,
        )
    }

    /// Edge length along `axis`.
    #[inline]
    pub fn extent(&self, axis: Axis) -> f64 {
        self.max.coord(axis) - self.min.coord(axis)
    }

    /// Edge lengths along all three axes.
    #[inline]
    pub fn extents(&self) -> Point3 {
        self.max - self.min
    }

    /// Volume of the box (0 for degenerate boxes).
    #[inline]
    pub fn volume(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let e = self.extents();
        e.x * e.y * e.z
    }

    /// Surface area of the box (the R*-tree's optimization metric).
    #[inline]
    pub fn surface_area(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let e = self.extents();
        2.0 * (e.x * e.y + e.y * e.z + e.z * e.x)
    }

    /// Sum of the three edge lengths (the *margin* used by R*-style splits).
    #[inline]
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let e = self.extents();
        e.x + e.y + e.z
    }

    /// `true` if the closed boxes share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
            && self.min.z <= other.max.z
            && self.max.z >= other.min.z
    }

    /// `true` if `other` lies entirely inside this box (boundaries count).
    #[inline]
    pub fn contains(&self, other: &Aabb) -> bool {
        self.min.x <= other.min.x
            && self.min.y <= other.min.y
            && self.min.z <= other.min.z
            && self.max.x >= other.max.x
            && self.max.y >= other.max.y
            && self.max.z >= other.max.z
    }

    /// `true` if the point lies inside the closed box.
    #[inline]
    pub fn contains_point(&self, p: &Point3) -> bool {
        self.min.x <= p.x
            && p.x <= self.max.x
            && self.min.y <= p.y
            && p.y <= self.max.y
            && self.min.z <= p.z
            && p.z <= self.max.z
    }

    /// Classifies `other` against this box (used as the query side).
    #[inline]
    pub fn classify(&self, other: &Aabb) -> Overlap {
        if !self.intersects(other) {
            Overlap::None
        } else if self.contains(other) {
            Overlap::Contains
        } else {
            Overlap::Partial
        }
    }

    /// The smallest box containing both inputs.
    #[inline]
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(&other.min),
            max: self.max.max(&other.max),
        }
    }

    /// The common region of both boxes, or `None` if they are disjoint.
    #[inline]
    pub fn intersection(&self, other: &Aabb) -> Option<Aabb> {
        if self.intersects(other) {
            Some(Aabb {
                min: self.min.max(&other.min),
                max: self.max.min(&other.max),
            })
        } else {
            None
        }
    }

    /// By how much the volume grows if `other` is unioned in — the classic
    /// Guttman insertion heuristic.
    #[inline]
    pub fn enlargement(&self, other: &Aabb) -> f64 {
        self.union(other).volume() - self.volume()
    }

    /// Grows the box (in place, returning `self` style) so that it contains
    /// `other`. This is the *stretch* step of Algorithm 1: each partition
    /// MBR is stretched to enclose its page MBR so the crawl-phase invariant
    /// (partition ⊇ page) holds.
    #[inline]
    pub fn stretch_to_contain(&mut self, other: &Aabb) {
        self.min = self.min.min(&other.min);
        self.max = self.max.max(&other.max);
    }

    /// Returns the box expanded by `delta` on every side (shrinks if
    /// negative; collapses to a degenerate box rather than inverting).
    pub fn inflate(&self, delta: f64) -> Aabb {
        let d = Point3::splat(delta);
        let min = self.min - d;
        let max = self.max + d;
        Aabb {
            min: min.min(&max),
            max: max.max(&min),
        }
    }

    /// Returns the box scaled about its center so that its volume is
    /// multiplied by `factor` (edges scale by `factor.cbrt()`).
    ///
    /// Used by the Fig 21 experiment, which inflates partitions to study the
    /// effect of partition volume on the number of neighbor pointers.
    pub fn scale_volume(&self, factor: f64) -> Aabb {
        assert!(factor >= 0.0, "volume scale factor must be non-negative");
        let s = factor.cbrt();
        let c = self.center();
        let h = self.extents() * (s / 2.0);
        Aabb::new(c - h, c + h)
    }

    /// Minimum squared distance from `p` to the closed box (0 if inside).
    pub fn distance_sq_to_point(&self, p: &Point3) -> f64 {
        let mut d = 0.0;
        for axis in Axis::ALL {
            let v = p.coord(axis);
            let lo = self.min.coord(axis);
            let hi = self.max.coord(axis);
            let delta = if v < lo {
                lo - v
            } else if v > hi {
                v - hi
            } else {
                0.0
            };
            d += delta * delta;
        }
        d
    }

    /// Minimum squared distance between two closed boxes (0 if they touch
    /// or overlap).
    pub fn distance_sq(&self, other: &Aabb) -> f64 {
        let mut d = 0.0;
        for axis in Axis::ALL {
            let gap = (other.min.coord(axis) - self.max.coord(axis))
                .max(self.min.coord(axis) - other.max.coord(axis))
                .max(0.0);
            d += gap * gap;
        }
        d
    }

    /// The axis along which the box is longest.
    pub fn longest_axis(&self) -> Axis {
        let e = self.extents();
        if e.x >= e.y && e.x >= e.z {
            Axis::X
        } else if e.y >= e.z {
            Axis::Y
        } else {
            Axis::Z
        }
    }

    /// Aspect ratio: longest extent divided by shortest extent.
    ///
    /// Returns `f64::INFINITY` for boxes degenerate in some dimension, and
    /// 1.0 for points/cubes.
    pub fn aspect_ratio(&self) -> f64 {
        let e = self.extents();
        let lo = e.x.min(e.y).min(e.z);
        let hi = e.x.max(e.y).max(e.z);
        if hi == 0.0 {
            1.0
        } else if lo == 0.0 {
            f64::INFINITY
        } else {
            hi / lo
        }
    }

    /// `true` if all six coordinates are finite (empty boxes are not finite).
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.min.is_finite() && self.max.is_finite()
    }
}

impl fmt::Display for Aabb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} – {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Aabb {
        Aabb::new(Point3::ORIGIN, Point3::splat(1.0))
    }

    #[test]
    fn from_corners_orders_coordinates() {
        let b = Aabb::from_corners(Point3::new(1.0, -2.0, 3.0), Point3::new(-1.0, 2.0, 0.0));
        assert_eq!(b.min, Point3::new(-1.0, -2.0, 0.0));
        assert_eq!(b.max, Point3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn volume_surface_margin_of_unit_cube() {
        let b = unit();
        assert_eq!(b.volume(), 1.0);
        assert_eq!(b.surface_area(), 6.0);
        assert_eq!(b.margin(), 3.0);
    }

    #[test]
    fn touching_boxes_intersect() {
        // Face contact only — closed semantics must report intersection.
        let a = Aabb::new(Point3::ORIGIN, Point3::splat(1.0));
        let b = Aabb::new(Point3::new(1.0, 0.0, 0.0), Point3::new(2.0, 1.0, 1.0));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        // Corner contact.
        let c = Aabb::new(Point3::splat(1.0), Point3::splat(2.0));
        assert!(a.intersects(&c));
        // Separated.
        let d = Aabb::new(Point3::splat(1.001), Point3::splat(2.0));
        assert!(!a.intersects(&d));
    }

    #[test]
    fn containment_includes_boundary() {
        let outer = unit();
        let inner = Aabb::new(Point3::ORIGIN, Point3::new(1.0, 0.5, 0.5));
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert!(outer.contains(&outer));
    }

    #[test]
    fn classify_matches_intersects_and_contains() {
        let q = unit();
        assert_eq!(
            q.classify(&Aabb::cube(Point3::splat(0.5), 0.1)),
            Overlap::Contains
        );
        assert_eq!(
            q.classify(&Aabb::cube(Point3::splat(1.0), 0.5)),
            Overlap::Partial
        );
        assert_eq!(
            q.classify(&Aabb::cube(Point3::splat(5.0), 0.5)),
            Overlap::None
        );
    }

    #[test]
    fn union_contains_both_inputs() {
        let a = Aabb::cube(Point3::splat(0.0), 1.0);
        let b = Aabb::cube(Point3::splat(3.0), 1.0);
        let u = a.union(&b);
        assert!(u.contains(&a));
        assert!(u.contains(&b));
    }

    #[test]
    fn union_all_of_nothing_is_empty() {
        let u = Aabb::union_all(std::iter::empty());
        assert!(u.is_empty());
        assert_eq!(u.volume(), 0.0);
    }

    #[test]
    fn empty_box_is_union_identity() {
        let b = unit();
        assert_eq!(Aabb::empty().union(&b), b);
        assert_eq!(b.union(&Aabb::empty()), b);
    }

    #[test]
    fn empty_box_intersects_nothing() {
        assert!(!Aabb::empty().intersects(&unit()));
        assert!(!unit().intersects(&Aabb::empty()));
    }

    #[test]
    fn intersection_of_overlapping_boxes() {
        let a = Aabb::new(Point3::ORIGIN, Point3::splat(2.0));
        let b = Aabb::new(Point3::splat(1.0), Point3::splat(3.0));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, Aabb::new(Point3::splat(1.0), Point3::splat(2.0)));
        let far = Aabb::cube(Point3::splat(10.0), 1.0);
        assert!(a.intersection(&far).is_none());
    }

    #[test]
    fn enlargement_zero_when_contained() {
        let a = Aabb::new(Point3::ORIGIN, Point3::splat(4.0));
        let inner = Aabb::cube(Point3::splat(2.0), 1.0);
        assert_eq!(a.enlargement(&inner), 0.0);
        let outer = Aabb::cube(Point3::splat(5.0), 1.0);
        assert!(a.enlargement(&outer) > 0.0);
    }

    #[test]
    fn stretch_to_contain_establishes_invariant() {
        // This mirrors Algorithm 1: partition MBR must enclose page MBR.
        let mut partition = Aabb::new(Point3::ORIGIN, Point3::splat(1.0));
        let page = Aabb::new(Point3::new(-0.5, 0.2, 0.2), Point3::new(0.5, 1.5, 0.8));
        partition.stretch_to_contain(&page);
        assert!(partition.contains(&page));
    }

    #[test]
    fn scale_volume_multiplies_volume() {
        let b = Aabb::cube(Point3::splat(1.0), 2.0);
        let scaled = b.scale_volume(8.0);
        assert!((scaled.volume() - 8.0 * b.volume()).abs() < 1e-9);
        assert_eq!(scaled.center(), b.center());
    }

    #[test]
    fn inflate_grows_every_side() {
        let b = unit().inflate(0.5);
        assert_eq!(b.min, Point3::splat(-0.5));
        assert_eq!(b.max, Point3::splat(1.5));
        // Over-shrinking collapses instead of inverting.
        let c = unit().inflate(-10.0);
        assert!(c.min.x <= c.max.x);
    }

    #[test]
    fn distance_sq_to_point_inside_is_zero() {
        let b = unit();
        assert_eq!(b.distance_sq_to_point(&Point3::splat(0.5)), 0.0);
        assert_eq!(b.distance_sq_to_point(&Point3::new(2.0, 0.5, 0.5)), 1.0);
        assert_eq!(b.distance_sq_to_point(&Point3::new(2.0, 2.0, 0.5)), 2.0);
    }

    #[test]
    fn distance_sq_between_boxes() {
        let b = unit();
        // Overlapping and touching boxes are at distance zero.
        assert_eq!(b.distance_sq(&unit()), 0.0);
        let touching = Aabb::new(Point3::new(1.0, 0.0, 0.0), Point3::new(2.0, 1.0, 1.0));
        assert_eq!(b.distance_sq(&touching), 0.0);
        // Separated along one axis: the gap, squared.
        let x_gap = Aabb::new(Point3::new(3.0, 0.0, 0.0), Point3::new(4.0, 1.0, 1.0));
        assert_eq!(b.distance_sq(&x_gap), 4.0);
        assert_eq!(x_gap.distance_sq(&b), 4.0);
        // Separated along two axes: gaps add in quadrature.
        let corner = Aabb::new(Point3::new(2.0, 3.0, 0.0), Point3::new(3.0, 4.0, 1.0));
        assert_eq!(b.distance_sq(&corner), 1.0 + 4.0);
        // Degenerate (point) boxes agree with the point distance.
        let p = Point3::new(2.0, 0.5, 0.5);
        assert_eq!(b.distance_sq(&Aabb::point(p)), b.distance_sq_to_point(&p));
    }

    #[test]
    fn longest_axis_and_aspect_ratio() {
        let b = Aabb::new(Point3::ORIGIN, Point3::new(4.0, 2.0, 1.0));
        assert_eq!(b.longest_axis(), Axis::X);
        assert_eq!(b.aspect_ratio(), 4.0);
        assert_eq!(unit().aspect_ratio(), 1.0);
        assert_eq!(Aabb::point(Point3::ORIGIN).aspect_ratio(), 1.0);
        let flat = Aabb::new(Point3::ORIGIN, Point3::new(1.0, 1.0, 0.0));
        assert_eq!(flat.aspect_ratio(), f64::INFINITY);
    }

    #[test]
    fn point_box_is_contained_where_it_lies() {
        let p = Point3::new(0.25, 0.25, 0.25);
        assert!(unit().contains(&Aabb::point(p)));
        assert!(unit().contains_point(&p));
        assert!(!unit().contains_point(&Point3::splat(2.0)));
    }
}
