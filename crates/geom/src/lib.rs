//! Geometry kernel for the FLAT reproduction.
//!
//! This crate provides the spatial vocabulary shared by every other crate in
//! the workspace: 3-D points ([`Point3`]), axis-aligned minimum bounding
//! rectangles ([`Aabb`], the paper's *MBR*), the concrete element shapes used
//! by the paper's datasets ([`Cylinder`] for neuron morphologies,
//! [`Triangle`] for surface meshes, [`Sphere`] for n-body particles) and
//! range-query construction helpers ([`range_query_with_volume`]).
//!
//! Everything here is pure computational geometry with no I/O; the paged
//! storage layer and the indexes build on top of it.
//!
//! # Conventions
//!
//! * Coordinates are `f64`, matching the paper ("double precision floating
//!   point numbers to represent the coordinates of the MBRs", §VII-A).
//! * An [`Aabb`] is *closed*: two boxes sharing only a face (or an edge or a
//!   corner) intersect. This is load-bearing for FLAT: partitions produced
//!   by the STR tiling touch at faces, and the neighbor relation of the
//!   paper ("adjacent to or overlaps with", §V-A) is exactly closed-box
//!   intersection.
//! * Degenerate boxes (zero extent in some or all dimensions) are valid and
//!   represent points or faces; they intersect anything that contains them.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod aabb;
mod point;
mod query;
mod shapes;

pub use aabb::Aabb;
pub use point::{Axis, Point3};
pub use query::{aspect_ratio_of, range_query_with_volume, RangeQueryBuilder};
pub use shapes::{Cylinder, Shape, Sphere, Triangle};

/// The result of comparing a bounding box against a range query.
///
/// Distinguishing full containment from mere intersection lets index
/// traversals skip per-element tests for fully covered subtrees — an
/// optimization both the R-tree baselines and FLAT benefit from equally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Overlap {
    /// The boxes are disjoint.
    None,
    /// The boxes intersect but neither contains the other.
    Partial,
    /// The query fully contains the tested box.
    Contains,
}
