//! 3-D points and axis identifiers.

use std::fmt;
use std::ops::{Add, Div, Index, Mul, Sub};

/// One of the three coordinate axes.
///
/// STR partitioning (Algorithm 1 of the paper) sorts along X, then Y, then Z;
/// the PR-tree bulkload rotates through axes as it recurses. Both use this
/// enum rather than raw `usize` indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// The x axis (index 0).
    X,
    /// The y axis (index 1).
    Y,
    /// The z axis (index 2).
    Z,
}

impl Axis {
    /// All three axes in canonical order.
    pub const ALL: [Axis; 3] = [Axis::X, Axis::Y, Axis::Z];

    /// The axis following this one, cycling X → Y → Z → X.
    #[inline]
    pub fn next(self) -> Axis {
        match self {
            Axis::X => Axis::Y,
            Axis::Y => Axis::Z,
            Axis::Z => Axis::X,
        }
    }

    /// Numeric index of the axis (X=0, Y=1, Z=2).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Axis::X => 0,
            Axis::Y => 1,
            Axis::Z => 2,
        }
    }

    /// The axis with the given numeric index.
    ///
    /// # Panics
    /// Panics if `i > 2`.
    #[inline]
    pub fn from_index(i: usize) -> Axis {
        match i {
            0 => Axis::X,
            1 => Axis::Y,
            2 => Axis::Z,
            _ => panic!("axis index out of range: {i}"),
        }
    }
}

/// A point in 3-D space with `f64` coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point3 {
    /// x coordinate.
    pub x: f64,
    /// y coordinate.
    pub y: f64,
    /// z coordinate.
    pub z: f64,
}

impl Point3 {
    /// The origin (0, 0, 0).
    pub const ORIGIN: Point3 = Point3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a point from its three coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Point3 {
        Point3 { x, y, z }
    }

    /// A point with all three coordinates equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Point3 {
        Point3 { x: v, y: v, z: v }
    }

    /// The coordinate along `axis`.
    #[inline]
    pub fn coord(&self, axis: Axis) -> f64 {
        match axis {
            Axis::X => self.x,
            Axis::Y => self.y,
            Axis::Z => self.z,
        }
    }

    /// Returns a copy with the coordinate along `axis` replaced by `v`.
    #[inline]
    pub fn with_coord(mut self, axis: Axis, v: f64) -> Point3 {
        match axis {
            Axis::X => self.x = v,
            Axis::Y => self.y = v,
            Axis::Z => self.z = v,
        }
        self
    }

    /// Component-wise minimum of two points.
    #[inline]
    pub fn min(&self, other: &Point3) -> Point3 {
        Point3::new(
            self.x.min(other.x),
            self.y.min(other.y),
            self.z.min(other.z),
        )
    }

    /// Component-wise maximum of two points.
    #[inline]
    pub fn max(&self, other: &Point3) -> Point3 {
        Point3::new(
            self.x.max(other.x),
            self.y.max(other.y),
            self.z.max(other.z),
        )
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(&self, other: &Point3) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (no square root).
    #[inline]
    pub fn distance_sq(&self, other: &Point3) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        dx * dx + dy * dy + dz * dz
    }

    /// Dot product with `other` (treating both as vectors from the origin).
    #[inline]
    pub fn dot(&self, other: &Point3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product with `other` (treating both as vectors).
    #[inline]
    pub fn cross(&self, other: &Point3) -> Point3 {
        Point3::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Euclidean length of the vector from the origin to this point.
    #[inline]
    pub fn length(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Returns the vector scaled to unit length.
    ///
    /// Returns `None` for the zero vector (or one too small to normalize).
    #[inline]
    pub fn normalized(&self) -> Option<Point3> {
        let len = self.length();
        if len <= f64::EPSILON {
            None
        } else {
            Some(*self / len)
        }
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(&self, other: &Point3, t: f64) -> Point3 {
        *self + (*other - *self) * t
    }

    /// `true` if all three coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Point3 {
    type Output = Point3;
    #[inline]
    fn add(self, rhs: Point3) -> Point3 {
        Point3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl Sub for Point3 {
    type Output = Point3;
    #[inline]
    fn sub(self, rhs: Point3) -> Point3 {
        Point3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Mul<f64> for Point3 {
    type Output = Point3;
    #[inline]
    fn mul(self, rhs: f64) -> Point3 {
        Point3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Div<f64> for Point3 {
    type Output = Point3;
    #[inline]
    fn div(self, rhs: f64) -> Point3 {
        Point3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Index<Axis> for Point3 {
    type Output = f64;
    #[inline]
    fn index(&self, axis: Axis) -> &f64 {
        match axis {
            Axis::X => &self.x,
            Axis::Y => &self.y,
            Axis::Z => &self.z,
        }
    }
}

impl From<[f64; 3]> for Point3 {
    #[inline]
    fn from(a: [f64; 3]) -> Point3 {
        Point3::new(a[0], a[1], a[2])
    }
}

impl From<Point3> for [f64; 3] {
    #[inline]
    fn from(p: Point3) -> [f64; 3] {
        [p.x, p.y, p.z]
    }
}

impl fmt::Display for Point3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_cycle_covers_all_axes() {
        assert_eq!(Axis::X.next(), Axis::Y);
        assert_eq!(Axis::Y.next(), Axis::Z);
        assert_eq!(Axis::Z.next(), Axis::X);
    }

    #[test]
    fn axis_index_roundtrip() {
        for axis in Axis::ALL {
            assert_eq!(Axis::from_index(axis.index()), axis);
        }
    }

    #[test]
    #[should_panic(expected = "axis index out of range")]
    fn axis_from_bad_index_panics() {
        let _ = Axis::from_index(3);
    }

    #[test]
    fn coord_and_with_coord_agree() {
        let p = Point3::new(1.0, 2.0, 3.0);
        for axis in Axis::ALL {
            let q = p.with_coord(axis, 9.0);
            assert_eq!(q.coord(axis), 9.0);
            for other in Axis::ALL.into_iter().filter(|a| *a != axis) {
                assert_eq!(q.coord(other), p.coord(other));
            }
        }
    }

    #[test]
    fn arithmetic_operators() {
        let a = Point3::new(1.0, 2.0, 3.0);
        let b = Point3::new(4.0, 6.0, 8.0);
        assert_eq!(a + b, Point3::new(5.0, 8.0, 11.0));
        assert_eq!(b - a, Point3::new(3.0, 4.0, 5.0));
        assert_eq!(a * 2.0, Point3::new(2.0, 4.0, 6.0));
        assert_eq!(b / 2.0, Point3::new(2.0, 3.0, 4.0));
    }

    #[test]
    fn distance_is_symmetric_and_matches_pythagoras() {
        let a = Point3::new(0.0, 0.0, 0.0);
        let b = Point3::new(3.0, 4.0, 12.0);
        assert_eq!(a.distance(&b), 13.0);
        assert_eq!(b.distance(&a), 13.0);
        assert_eq!(a.distance_sq(&b), 169.0);
    }

    #[test]
    fn cross_product_is_orthogonal() {
        let a = Point3::new(1.0, 0.0, 0.0);
        let b = Point3::new(0.0, 1.0, 0.0);
        let c = a.cross(&b);
        assert_eq!(c, Point3::new(0.0, 0.0, 1.0));
        assert_eq!(c.dot(&a), 0.0);
        assert_eq!(c.dot(&b), 0.0);
    }

    #[test]
    fn normalized_unit_length() {
        let v = Point3::new(3.0, 4.0, 0.0).normalized().unwrap();
        assert!((v.length() - 1.0).abs() < 1e-12);
        assert!(Point3::ORIGIN.normalized().is_none());
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point3::new(0.0, 0.0, 0.0);
        let b = Point3::new(2.0, 4.0, 6.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), Point3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn min_max_componentwise() {
        let a = Point3::new(1.0, 5.0, 3.0);
        let b = Point3::new(2.0, 4.0, 3.0);
        assert_eq!(a.min(&b), Point3::new(1.0, 4.0, 3.0));
        assert_eq!(a.max(&b), Point3::new(2.0, 5.0, 3.0));
    }

    #[test]
    fn array_conversion_roundtrip() {
        let p = Point3::new(1.5, -2.5, 3.5);
        let a: [f64; 3] = p.into();
        assert_eq!(Point3::from(a), p);
    }

    #[test]
    fn is_finite_detects_nan_and_inf() {
        assert!(Point3::new(1.0, 2.0, 3.0).is_finite());
        assert!(!Point3::new(f64::NAN, 0.0, 0.0).is_finite());
        assert!(!Point3::new(0.0, f64::INFINITY, 0.0).is_finite());
    }
}
