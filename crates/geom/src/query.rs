//! Range-query construction helpers.
//!
//! The paper's micro-benchmarks issue axis-aligned range queries of a fixed
//! *volume* (a fraction of the dataset volume: 5·10⁻⁷ % for the SN benchmark,
//! 5·10⁻⁴ % for LSS) whose *location and aspect ratio* are random (§VII-A).
//! This module provides the deterministic core of that construction: given a
//! center, a target volume, and relative edge proportions, build the box.
//! Randomness itself lives in `flat-data`'s workload generator so that this
//! crate stays dependency-free.

use crate::{Aabb, Point3};

/// Builds a range query box of an exact volume from a center point and
/// relative edge proportions.
///
/// `proportions` gives the relative lengths of the box edges; they are
/// rescaled uniformly so the final volume equals `volume`. This mirrors the
/// paper's aspect-ratio experiment (§VII-E.1): "its length in each dimension
/// is randomly set … the lengths on all axes are normalized in order to
/// obtain elements of equal volume".
///
/// # Panics
/// Panics if `volume` is negative or any proportion is not strictly
/// positive.
pub fn range_query_with_volume(center: Point3, volume: f64, proportions: [f64; 3]) -> Aabb {
    assert!(volume >= 0.0, "query volume must be non-negative");
    assert!(
        proportions.iter().all(|p| *p > 0.0),
        "edge proportions must be strictly positive, got {proportions:?}"
    );
    let raw = proportions[0] * proportions[1] * proportions[2];
    let scale = (volume / raw).cbrt();
    let extents = Point3::new(
        proportions[0] * scale,
        proportions[1] * scale,
        proportions[2] * scale,
    );
    Aabb::centered(center, extents)
}

/// The aspect ratio (longest/shortest edge) a proportions triple produces.
pub fn aspect_ratio_of(proportions: [f64; 3]) -> f64 {
    let lo = proportions.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = proportions.iter().cloned().fold(0.0f64, f64::max);
    hi / lo
}

/// Fluent construction of range queries against a domain.
///
/// ```
/// use flat_geom::{Aabb, Point3, RangeQueryBuilder};
///
/// let domain = Aabb::cube(Point3::splat(0.0), 100.0);
/// let q = RangeQueryBuilder::new(domain)
///     .volume_fraction(1e-6)
///     .proportions([1.0, 2.0, 4.0])
///     .center(Point3::splat(10.0))
///     .build();
/// assert!((q.volume() - domain.volume() * 1e-6).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct RangeQueryBuilder {
    domain: Aabb,
    center: Point3,
    volume: f64,
    proportions: [f64; 3],
    clamp: bool,
}

impl RangeQueryBuilder {
    /// Starts a builder for queries inside `domain`; defaults to a cubical
    /// query of 10⁻⁶ of the domain volume at the domain center, clamped to
    /// the domain.
    pub fn new(domain: Aabb) -> RangeQueryBuilder {
        RangeQueryBuilder {
            center: domain.center(),
            volume: domain.volume() * 1e-6,
            proportions: [1.0, 1.0, 1.0],
            clamp: true,
            domain,
        }
    }

    /// Sets the query center.
    pub fn center(mut self, center: Point3) -> Self {
        self.center = center;
        self
    }

    /// Sets the absolute query volume.
    pub fn volume(mut self, volume: f64) -> Self {
        self.volume = volume;
        self
    }

    /// Sets the query volume as a fraction of the domain volume.
    ///
    /// Note the paper states fractions as percentages: its "5 × 10⁻⁷ %" is a
    /// fraction of 5 × 10⁻⁹.
    pub fn volume_fraction(mut self, fraction: f64) -> Self {
        self.volume = self.domain.volume() * fraction;
        self
    }

    /// Sets the relative edge proportions (aspect ratio shape).
    pub fn proportions(mut self, proportions: [f64; 3]) -> Self {
        self.proportions = proportions;
        self
    }

    /// Whether to clamp the resulting box to the domain (default: true).
    /// Clamping keeps random queries comparable — a query hanging off the
    /// edge of the domain would cover less data than its nominal volume.
    pub fn clamp_to_domain(mut self, clamp: bool) -> Self {
        self.clamp = clamp;
        self
    }

    /// Builds the query box.
    pub fn build(&self) -> Aabb {
        let q = range_query_with_volume(self.center, self.volume, self.proportions);
        if !self.clamp {
            return q;
        }
        // Translate (not shrink) the box so it fits inside the domain where
        // possible: volume is the controlled variable in the benchmarks.
        let mut min = q.min;
        let mut max = q.max;
        for axis in crate::Axis::ALL {
            let lo = self.domain.min.coord(axis);
            let hi = self.domain.max.coord(axis);
            let len = max.coord(axis) - min.coord(axis);
            if len >= hi - lo {
                min = min.with_coord(axis, lo);
                max = max.with_coord(axis, hi);
            } else if min.coord(axis) < lo {
                min = min.with_coord(axis, lo);
                max = max.with_coord(axis, lo + len);
            } else if max.coord(axis) > hi {
                max = max.with_coord(axis, hi);
                min = min.with_coord(axis, hi - len);
            }
        }
        Aabb::new(min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_is_exact_for_any_proportions() {
        let q = range_query_with_volume(Point3::splat(5.0), 64.0, [1.0, 2.0, 4.0]);
        assert!((q.volume() - 64.0).abs() < 1e-9);
        assert_eq!(q.center(), Point3::splat(5.0));
        // Aspect ratio preserved: extents in proportion 1:2:4.
        let e = q.extents();
        assert!((e.y / e.x - 2.0).abs() < 1e-9);
        assert!((e.z / e.x - 4.0).abs() < 1e-9);
    }

    #[test]
    fn cubical_proportions_give_cube() {
        let q = range_query_with_volume(Point3::ORIGIN, 27.0, [1.0, 1.0, 1.0]);
        let e = q.extents();
        assert!((e.x - 3.0).abs() < 1e-9);
        assert!((e.y - 3.0).abs() < 1e-9);
        assert!((e.z - 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn zero_proportion_rejected() {
        let _ = range_query_with_volume(Point3::ORIGIN, 1.0, [1.0, 0.0, 1.0]);
    }

    #[test]
    fn aspect_ratio_of_proportions() {
        assert_eq!(aspect_ratio_of([1.0, 1.0, 1.0]), 1.0);
        assert_eq!(aspect_ratio_of([1.0, 2.0, 4.0]), 4.0);
        assert_eq!(aspect_ratio_of([5.0, 35.0, 10.0]), 7.0);
    }

    #[test]
    fn builder_volume_fraction_uses_domain_volume() {
        let domain = Aabb::cube(Point3::splat(50.0), 100.0); // volume 1e6
        let q = RangeQueryBuilder::new(domain).volume_fraction(5e-9).build();
        assert!((q.volume() - 5e-3).abs() < 1e-12);
        assert!(domain.contains(&q));
    }

    #[test]
    fn builder_clamps_by_translation_preserving_volume() {
        let domain = Aabb::cube(Point3::splat(50.0), 100.0);
        let q = RangeQueryBuilder::new(domain)
            .volume(1000.0)
            .center(Point3::new(0.5, 50.0, 99.9)) // near two faces
            .build();
        assert!(domain.contains(&q));
        assert!((q.volume() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn builder_unclamped_may_exceed_domain() {
        let domain = Aabb::cube(Point3::splat(50.0), 100.0);
        let q = RangeQueryBuilder::new(domain)
            .volume(1000.0)
            .center(Point3::splat(0.0))
            .clamp_to_domain(false)
            .build();
        assert!(!domain.contains(&q));
    }

    #[test]
    fn builder_query_wider_than_domain_collapses_to_domain_extent() {
        let domain = Aabb::cube(Point3::splat(0.0), 2.0);
        let q = RangeQueryBuilder::new(domain)
            .volume(1e9)
            .proportions([1.0, 1.0, 1.0])
            .build();
        assert_eq!(q, domain);
    }
}
