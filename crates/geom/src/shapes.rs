//! Concrete spatial element shapes used by the paper's datasets.
//!
//! The BBP brain models represent neuron branches as **cylinders** (two end
//! points plus a radius per end point, §VII-A); the Brain Mesh and Lucy
//! datasets are **triangle** soups (§VIII); the Nuage n-body datasets are
//! **vertices**, which we model as tiny [`Sphere`]s. Indexes never see the
//! shapes themselves — like the paper, only the shape MBR is stored on disk
//! ("we only store the MBRs of the cylinders on R-Tree leaf pages and on the
//! FLAT object pages", §VII-A) — but the generators and examples work with
//! real shapes.

use crate::{Aabb, Point3};

/// Anything that can report its minimum bounding rectangle.
pub trait Shape {
    /// The tightest axis-aligned box containing the shape.
    fn mbr(&self) -> Aabb;
}

/// A truncated-cone segment (the paper calls these cylinders): the modeling
/// primitive for neuron dendrites and axons.
///
/// "Each cylinder is described by two end points and a radius for each
/// endpoint" (§VII-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cylinder {
    /// First end point (center of the first cap).
    pub p0: Point3,
    /// Second end point (center of the second cap).
    pub p1: Point3,
    /// Radius at `p0`.
    pub r0: f64,
    /// Radius at `p1`.
    pub r1: f64,
}

impl Cylinder {
    /// Creates a cylinder segment.
    ///
    /// # Panics
    /// Panics if either radius is negative.
    pub fn new(p0: Point3, p1: Point3, r0: f64, r1: f64) -> Cylinder {
        assert!(
            r0 >= 0.0 && r1 >= 0.0,
            "cylinder radii must be non-negative"
        );
        Cylinder { p0, p1, r0, r1 }
    }

    /// Length of the segment axis.
    pub fn length(&self) -> f64 {
        self.p0.distance(&self.p1)
    }

    /// Volume of the truncated cone.
    pub fn volume(&self) -> f64 {
        let h = self.length();
        std::f64::consts::PI / 3.0 * h * (self.r0 * self.r0 + self.r0 * self.r1 + self.r1 * self.r1)
    }
}

impl Shape for Cylinder {
    /// A conservative MBR: the union of the bounding boxes of the two end
    /// caps treated as spheres.
    ///
    /// This is the standard conservative bound used in practice (exact
    /// truncated-cone MBRs are tighter in the axis direction by at most the
    /// cap radius, which is negligible for the long thin segments of neuron
    /// morphologies).
    fn mbr(&self) -> Aabb {
        let a = Aabb::new(
            self.p0 - Point3::splat(self.r0),
            self.p0 + Point3::splat(self.r0),
        );
        let b = Aabb::new(
            self.p1 - Point3::splat(self.r1),
            self.p1 + Point3::splat(self.r1),
        );
        a.union(&b)
    }
}

/// A 3-D triangle, the element of surface-mesh datasets ("9 floats/doubles
/// suffice" per element, §V-B.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangle {
    /// First vertex.
    pub a: Point3,
    /// Second vertex.
    pub b: Point3,
    /// Third vertex.
    pub c: Point3,
}

impl Triangle {
    /// Creates a triangle from its vertices.
    pub fn new(a: Point3, b: Point3, c: Point3) -> Triangle {
        Triangle { a, b, c }
    }

    /// Area of the triangle.
    pub fn area(&self) -> f64 {
        let ab = self.b - self.a;
        let ac = self.c - self.a;
        ab.cross(&ac).length() / 2.0
    }

    /// Centroid (average of the vertices).
    pub fn centroid(&self) -> Point3 {
        (self.a + self.b + self.c) / 3.0
    }
}

impl Shape for Triangle {
    fn mbr(&self) -> Aabb {
        Aabb {
            min: self.a.min(&self.b).min(&self.c),
            max: self.a.max(&self.b).max(&self.c),
        }
    }
}

/// A sphere; used to model n-body vertices (with tiny radii) and query
/// neighborhoods.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sphere {
    /// Center of the sphere.
    pub center: Point3,
    /// Radius.
    pub radius: f64,
}

impl Sphere {
    /// Creates a sphere.
    ///
    /// # Panics
    /// Panics if the radius is negative.
    pub fn new(center: Point3, radius: f64) -> Sphere {
        assert!(radius >= 0.0, "sphere radius must be non-negative");
        Sphere { center, radius }
    }

    /// Volume of the sphere.
    pub fn volume(&self) -> f64 {
        4.0 / 3.0 * std::f64::consts::PI * self.radius.powi(3)
    }

    /// `true` if the sphere intersects the closed box (exact test, not an
    /// MBR approximation).
    pub fn intersects_aabb(&self, aabb: &Aabb) -> bool {
        aabb.distance_sq_to_point(&self.center) <= self.radius * self.radius
    }
}

impl Shape for Sphere {
    fn mbr(&self) -> Aabb {
        Aabb::new(
            self.center - Point3::splat(self.radius),
            self.center + Point3::splat(self.radius),
        )
    }
}

impl Shape for Aabb {
    #[inline]
    fn mbr(&self) -> Aabb {
        *self
    }
}

impl Shape for Point3 {
    #[inline]
    fn mbr(&self) -> Aabb {
        Aabb::point(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cylinder_mbr_contains_both_caps() {
        let c = Cylinder::new(
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(10.0, 0.0, 0.0),
            1.0,
            2.0,
        );
        let mbr = c.mbr();
        assert!(mbr.contains_point(&Point3::new(-1.0, 0.0, 0.0)));
        assert!(mbr.contains_point(&Point3::new(12.0, 0.0, 0.0)));
        assert!(mbr.contains_point(&Point3::new(10.0, 2.0, -2.0)));
        assert!(!mbr.contains_point(&Point3::new(-1.5, 0.0, 0.0)));
    }

    #[test]
    fn cylinder_length_and_volume() {
        let c = Cylinder::new(Point3::ORIGIN, Point3::new(0.0, 0.0, 3.0), 1.0, 1.0);
        assert_eq!(c.length(), 3.0);
        // Constant radius: plain cylinder volume π r² h.
        assert!((c.volume() - std::f64::consts::PI * 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_radius_rejected() {
        let _ = Cylinder::new(Point3::ORIGIN, Point3::ORIGIN, -1.0, 0.0);
    }

    #[test]
    fn degenerate_cylinder_is_sphere_box() {
        let c = Cylinder::new(Point3::splat(1.0), Point3::splat(1.0), 0.5, 0.5);
        assert_eq!(c.mbr(), Aabb::cube(Point3::splat(1.0), 1.0));
    }

    #[test]
    fn triangle_mbr_is_tight() {
        let t = Triangle::new(
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(2.0, 0.0, 1.0),
            Point3::new(1.0, 3.0, -1.0),
        );
        let mbr = t.mbr();
        assert_eq!(mbr.min, Point3::new(0.0, 0.0, -1.0));
        assert_eq!(mbr.max, Point3::new(2.0, 3.0, 1.0));
    }

    #[test]
    fn triangle_area_and_centroid() {
        let t = Triangle::new(
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(4.0, 0.0, 0.0),
            Point3::new(0.0, 3.0, 0.0),
        );
        assert_eq!(t.area(), 6.0);
        assert_eq!(t.centroid(), Point3::new(4.0 / 3.0, 1.0, 0.0));
    }

    #[test]
    fn sphere_aabb_intersection_is_exact() {
        let s = Sphere::new(Point3::ORIGIN, 1.0);
        // Box whose nearest corner is just beyond the radius along a diagonal:
        // the MBRs intersect but the sphere does not reach the corner.
        let corner_box = Aabb::new(Point3::splat(0.9), Point3::splat(2.0));
        assert!(s.mbr().intersects(&corner_box));
        assert!(!s.intersects_aabb(&corner_box)); // dist² = 3·0.81 = 2.43 > 1
        let face_box = Aabb::new(Point3::new(0.9, -0.1, -0.1), Point3::new(2.0, 0.1, 0.1));
        assert!(s.intersects_aabb(&face_box));
    }

    #[test]
    fn sphere_volume_formula() {
        let s = Sphere::new(Point3::ORIGIN, 2.0);
        assert!((s.volume() - 4.0 / 3.0 * std::f64::consts::PI * 8.0).abs() < 1e-12);
    }

    #[test]
    fn aabb_and_point_are_shapes() {
        let b = Aabb::cube(Point3::ORIGIN, 2.0);
        assert_eq!(b.mbr(), b);
        let p = Point3::new(1.0, 2.0, 3.0);
        assert_eq!(p.mbr(), Aabb::point(p));
    }
}
