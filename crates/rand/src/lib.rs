//! Deterministic stand-in for the subset of the `rand` crate API this
//! workspace uses.
//!
//! The build environment is fully offline (no crates.io access), so the
//! workspace vendors the few entry points its generators and tests rely on:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over
//! `f64` and integer ranges, and [`Rng::gen_bool`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — high-quality, fast, and
//! deterministic across platforms, which is all the dataset generators and
//! property tests need. The streams differ from the real `rand` crate's
//! `StdRng` (ChaCha12); nothing in the workspace depends on specific values,
//! only on per-seed determinism.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (only the `u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling helpers over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of [0, 1]"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<G: RngCore + ?Sized> Rng for G {}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(
            self.start < self.end,
            "cannot sample empty range {:?}",
            self
        );
        let v = self.start + (self.end - self.start) * unit_f64(rng.next_u64());
        // Floating rounding can land exactly on `end`; clamp back inside.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range {:?}", self);
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range {:?}", self);
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every u64 is valid.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(u16, u32, u64, usize);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// SplitMix64 step, used to expand the seed into the xoshiro state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&v), "{v} out of range");
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(3..=6usize) - 3] = true;
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
        }
        assert!(
            seen.iter().all(|&s| s),
            "inclusive range missed a value: {seen:?}"
        );
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        let mut rng = StdRng::seed_from_u64(6);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn unit_interval_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut buckets = [0usize; 10];
        for _ in 0..50_000 {
            let v = rng.gen_range(0.0..1.0);
            buckets[(v * 10.0) as usize] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!((4000..6000).contains(&b), "bucket {i} has {b}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(9);
        let _ = rng.gen_range(5.0..5.0);
    }
}
