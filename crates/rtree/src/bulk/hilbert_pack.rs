//! Hilbert-curve packing (Kamel & Faloutsos \[12\]).
//!
//! "Each element needs to be assigned a Hilbert value, the entire data set
//! is sorted once on this value and the tree is built recursively"
//! (§VII-B). Elements are keyed by the Hilbert index of their MBR center on
//! a 2¹⁶-cell-per-dimension lattice spanning the data extent, sorted, and
//! chopped into consecutive full pages.

use super::div_ceil;
use crate::Entry;
use flat_geom::Aabb;
use flat_sfc::Discretizer;

/// Lattice resolution: 16 bits per dimension is finer than any page-level
/// grouping can resolve, and keeps key computation cheap.
const ORDER: u32 = 16;

/// Packs `items` into runs of at most `cap` (callers guarantee
/// `items.len() > cap > 0`).
pub(super) fn pack(mut items: Vec<Entry>, cap: usize) -> Vec<Vec<Entry>> {
    let bounds = Aabb::union_all(items.iter().map(|e| e.mbr));
    let disc = Discretizer::new(bounds.min.into(), bounds.max.into(), ORDER);

    // Decorate–sort–undecorate: the key is 64 bits, so sorting pairs beats
    // recomputing keys in the comparator.
    let mut keyed: Vec<(u64, Entry)> = items
        .drain(..)
        .map(|e| (disc.hilbert_key(e.mbr.center().into()), e))
        .collect();
    keyed.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.id.cmp(&b.1.id)));

    let mut out = Vec::with_capacity(div_ceil(keyed.len(), cap));
    let mut iter = keyed.into_iter().map(|(_, e)| e);
    loop {
        let run: Vec<Entry> = iter.by_ref().take(cap).collect();
        if run.is_empty() {
            break;
        }
        out.push(run);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::random_entries;
    use flat_geom::Point3;

    #[test]
    fn uses_minimal_number_of_pages() {
        for n in [86, 1000, 4999] {
            let runs = pack(random_entries(n, 2), 85);
            assert_eq!(runs.len(), n.div_ceil(85), "n = {n}");
        }
    }

    #[test]
    fn hilbert_pages_are_far_tighter_than_arbitrary_pages() {
        // The locality property that justifies Hilbert packing: pages of
        // curve-consecutive elements have much smaller MBRs than pages of
        // arbitrarily grouped elements. Compare total page-MBR volume
        // against grouping by insertion (id) order, which scatters each
        // page across the whole domain.
        let items = random_entries(5000, 77);
        let page_volume = |runs: &[Vec<Entry>]| -> f64 {
            runs.iter()
                .map(|r| Aabb::union_all(r.iter().map(|e| e.mbr)).volume())
                .sum()
        };
        let hilbert = pack(items.clone(), 85);
        let arbitrary: Vec<Vec<Entry>> = items.chunks(85).map(|c| c.to_vec()).collect();
        let h = page_volume(&hilbert);
        let a = page_volume(&arbitrary);
        assert!(
            h < a / 10.0,
            "hilbert page volume {h} not ≪ arbitrary page volume {a}"
        );
    }

    #[test]
    fn clustered_points_stay_on_the_same_pages() {
        // Two well-separated clusters of 100 points each, capacity 100:
        // each page must contain exactly one cluster.
        let mut items = Vec::new();
        for i in 0..100u64 {
            let jitter = (i % 10) as f64 * 0.001;
            items.push(Entry::new(i, Aabb::point(Point3::splat(jitter))));
            items.push(Entry::new(
                100 + i,
                Aabb::point(Point3::splat(1000.0 + jitter)),
            ));
        }
        let runs = pack(items, 100);
        assert_eq!(runs.len(), 2);
        for run in runs {
            let low = run.iter().filter(|e| e.id < 100).count();
            assert!(low == 0 || low == 100, "clusters were split across pages");
        }
    }

    #[test]
    fn identical_centers_fall_back_to_id_order() {
        let items: Vec<Entry> = (0..20)
            .map(|i| Entry::new(i, Aabb::cube(Point3::splat(5.0), 1.0)))
            .collect();
        let runs = pack(items, 7);
        let flat: Vec<u64> = runs.iter().flatten().map(|e| e.id).collect();
        let mut expected: Vec<u64> = (0..20).collect();
        expected.sort_unstable();
        assert_eq!(flat, expected);
    }
}
