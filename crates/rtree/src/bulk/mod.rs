//! Bulk-loading (packing) strategies.
//!
//! A strategy takes a set of rectangles and groups them into *runs* of at
//! most `cap` elements; each run becomes one node page. The same strategy
//! packs the leaf level (elements) and every directory level (child
//! references), matching how the original algorithms are specified.
//!
//! Implemented strategies, in the order the paper discusses them (§II):
//!
//! * [`BulkLoad::Hilbert`] — sort by the Hilbert value of the MBR center,
//!   chop consecutive elements into pages (Kamel & Faloutsos \[12\]).
//! * [`BulkLoad::Str`] — Sort-Tile-Recursive: tile the space by sorting and
//!   slicing per dimension (Leutenegger et al. \[16\]).
//! * [`BulkLoad::PrTree`] — the Priority R-tree's pseudo-PR-tree
//!   construction: extract per-direction extreme elements into *priority*
//!   pages, median-split the rest, recurse (Arge et al. \[1\]).
//! * [`BulkLoad::Tgs`] — Top-down Greedy Split: recursively pick the
//!   axis/position split minimizing the summed surface area of the two
//!   sides (García et al. \[7\]). An extension — the paper discusses but does
//!   not benchmark it.

mod hilbert_pack;
mod prtree;
mod str_pack;
mod tgs;

use crate::Entry;

/// Selects a bulk-loading strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BulkLoad {
    /// Hilbert-curve packing \[12\].
    Hilbert,
    /// Sort-Tile-Recursive packing \[16\].
    Str,
    /// Priority R-tree packing \[1\].
    PrTree,
    /// Top-down Greedy Split packing \[7\] (extension).
    Tgs,
}

impl BulkLoad {
    /// The three strategies the paper benchmarks, in its plotting order.
    pub const PAPER_BASELINES: [BulkLoad; 3] = [BulkLoad::Hilbert, BulkLoad::Str, BulkLoad::PrTree];

    /// Short display name matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            BulkLoad::Hilbert => "Hilbert R-Tree",
            BulkLoad::Str => "STR R-Tree",
            BulkLoad::PrTree => "PR-Tree",
            BulkLoad::Tgs => "TGS R-Tree",
        }
    }

    /// Groups `items` into runs of at most `cap` elements.
    ///
    /// Every run is non-empty, no run exceeds `cap`, and the concatenation
    /// of all runs is a permutation of the input.
    ///
    /// # Panics
    /// Panics if `cap` is zero.
    pub fn pack(&self, items: Vec<Entry>, cap: usize) -> Vec<Vec<Entry>> {
        assert!(cap > 0, "pack capacity must be positive");
        if items.is_empty() {
            return Vec::new();
        }
        if items.len() <= cap {
            return vec![items];
        }
        match self {
            BulkLoad::Hilbert => hilbert_pack::pack(items, cap),
            BulkLoad::Str => str_pack::pack(items, cap),
            BulkLoad::PrTree => prtree::pack(items, cap),
            BulkLoad::Tgs => tgs::pack(items, cap),
        }
    }
}

/// Integer ceiling division.
pub(crate) fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::random_entries;

    const METHODS: [BulkLoad; 4] = [
        BulkLoad::Hilbert,
        BulkLoad::Str,
        BulkLoad::PrTree,
        BulkLoad::Tgs,
    ];

    fn assert_valid_packing(method: BulkLoad, n: usize, cap: usize) {
        let items = random_entries(n, n as u64 * 31 + cap as u64);
        let runs = method.pack(items.clone(), cap);
        let mut ids: Vec<u64> = Vec::new();
        for run in &runs {
            assert!(!run.is_empty(), "{method:?}: empty run");
            assert!(
                run.len() <= cap,
                "{method:?}: run of {} > cap {cap}",
                run.len()
            );
            ids.extend(run.iter().map(|e| e.id));
        }
        ids.sort_unstable();
        let mut expected: Vec<u64> = items.iter().map(|e| e.id).collect();
        expected.sort_unstable();
        assert_eq!(
            ids, expected,
            "{method:?}: packing lost or duplicated items"
        );
    }

    #[test]
    fn packings_are_partitions_of_the_input() {
        for method in METHODS {
            for (n, cap) in [
                (1, 10),
                (10, 10),
                (11, 10),
                (100, 7),
                (1000, 85),
                (5000, 73),
            ] {
                assert_valid_packing(method, n, cap);
            }
        }
    }

    #[test]
    fn packing_is_space_efficient() {
        // Bulkloads should approach 100 % fill: no more than ~2× the
        // minimum number of runs (STR/Hilbert achieve the minimum; the
        // PR-tree and TGS trade some fill for structure).
        for method in METHODS {
            let n = 10_000;
            let cap = 85;
            let runs = method.pack(random_entries(n, 3), cap);
            let min_runs = n.div_ceil(cap);
            assert!(
                runs.len() <= 2 * min_runs,
                "{method:?} produced {} runs; minimum is {min_runs}",
                runs.len()
            );
        }
    }

    #[test]
    fn str_and_hilbert_packings_are_full() {
        // These two strategies pack every run (except possibly the last or
        // a boundary run) to capacity — that is what "fill factor … set to
        // 100%" (§VII-A) means for bulkloaded trees.
        for method in [BulkLoad::Str, BulkLoad::Hilbert] {
            let n = 10_000;
            let cap = 85;
            let runs = method.pack(random_entries(n, 5), cap);
            assert_eq!(
                runs.len(),
                n.div_ceil(cap),
                "{method:?} must use minimal pages"
            );
        }
    }

    #[test]
    fn pack_of_empty_input_is_empty() {
        for method in METHODS {
            assert!(method.pack(Vec::new(), 10).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = BulkLoad::Str.pack(random_entries(10, 1), 0);
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(BulkLoad::Hilbert.label(), "Hilbert R-Tree");
        assert_eq!(BulkLoad::PrTree.label(), "PR-Tree");
    }
}
