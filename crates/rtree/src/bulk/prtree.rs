//! Priority R-tree packing (Arge, de Berg, Haverkort & Yi \[1\]).
//!
//! The pseudo-PR-tree construction, as the paper summarizes it (§VII-B):
//! at every recursion step, *priority* pages are extracted — for each of
//! the six "directions" of a 3-D rectangle (min-x, min-y, min-z ascending;
//! max-x, max-y, max-z descending), the `cap` most extreme remaining
//! rectangles form one page. The remainder is split at the median along a
//! round-robin direction and both halves are processed recursively. The
//! extracted pages become the tree's leaves; directory levels re-apply the
//! same procedure to the child rectangles (which is what gives the PR-tree
//! its worst-case query bound).

use super::div_ceil;
use crate::Entry;
#[cfg(test)]
use flat_geom::Aabb;

/// The six comparison keys: 0–2 = min coordinate per axis (ascending
/// extremes), 3–5 = max coordinate per axis (descending extremes).
fn key(entry: &Entry, direction: usize) -> f64 {
    match direction {
        0 => entry.mbr.min.x,
        1 => entry.mbr.min.y,
        2 => entry.mbr.min.z,
        3 => -entry.mbr.max.x,
        4 => -entry.mbr.max.y,
        5 => -entry.mbr.max.z,
        _ => unreachable!("direction out of range"),
    }
}

fn compare(a: &Entry, b: &Entry, direction: usize) -> std::cmp::Ordering {
    key(a, direction)
        .total_cmp(&key(b, direction))
        .then_with(|| a.id.cmp(&b.id))
}

/// Packs `items` into runs of at most `cap` (callers guarantee
/// `items.len() > cap > 0`).
pub(super) fn pack(items: Vec<Entry>, cap: usize) -> Vec<Vec<Entry>> {
    let mut out = Vec::with_capacity(div_ceil(items.len(), cap));
    recurse(items, 0, cap, &mut out);
    out
}

fn recurse(mut items: Vec<Entry>, depth: usize, cap: usize, out: &mut Vec<Vec<Entry>>) {
    if items.is_empty() {
        return;
    }
    if items.len() <= cap {
        out.push(items);
        return;
    }

    // Extract the six priority pages.
    for direction in 0..6 {
        if items.len() <= cap {
            out.push(items);
            return;
        }
        // Partition so the `cap` most extreme elements occupy the front.
        items.select_nth_unstable_by(cap - 1, |a, b| compare(a, b, direction));
        let rest = items.split_off(cap);
        let mut page = std::mem::replace(&mut items, rest);
        // Drop the parent's retained capacity before the page goes into
        // the output (split_off keeps the full allocation on the front).
        page.shrink_to_fit();
        out.push(page);
    }

    // Median split along the round-robin direction, recurse on both halves.
    let direction = depth % 6;
    let mid = items.len() / 2;
    items.select_nth_unstable_by(mid, |a, b| compare(a, b, direction));
    let right = items.split_off(mid);
    items.shrink_to_fit();
    recurse(items, depth + 1, cap, out);
    recurse(right, depth + 1, cap, out);
}

/// Exposes the priority-page structure for tests: returns, per direction,
/// the MBR of the first extracted priority page at the top recursion level.
#[cfg(test)]
fn top_level_priority_mbrs(items: Vec<Entry>, cap: usize) -> Vec<Aabb> {
    let mut items = items;
    let mut mbrs = Vec::new();
    for direction in 0..6 {
        if items.len() <= cap {
            break;
        }
        items.select_nth_unstable_by(cap - 1, |a, b| compare(a, b, direction));
        let rest = items.split_off(cap);
        let page = std::mem::replace(&mut items, rest);
        mbrs.push(Aabb::union_all(page.iter().map(|e| e.mbr)));
    }
    mbrs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::random_entries;
    use flat_geom::Point3;

    #[test]
    fn extreme_elements_go_to_priority_pages() {
        let n = 2000;
        let cap = 50;
        let items = random_entries(n, 11);
        // Identify the 50 globally smallest min-x rectangles.
        let mut by_minx = items.clone();
        by_minx.sort_by(|a, b| a.mbr.min.x.total_cmp(&b.mbr.min.x).then(a.id.cmp(&b.id)));
        let extreme_ids: std::collections::HashSet<u64> =
            by_minx[..cap].iter().map(|e| e.id).collect();

        let runs = pack(items, cap);
        // The first emitted run is the min-x priority page.
        let first: std::collections::HashSet<u64> = runs[0].iter().map(|e| e.id).collect();
        assert_eq!(
            first, extreme_ids,
            "min-x priority page holds the min-x extremes"
        );
    }

    #[test]
    fn priority_pages_are_slab_shaped() {
        // Priority pages group boundary elements, so their MBRs hug the
        // data boundary: the min-x page's MBR must start at the global
        // min-x.
        let items = random_entries(3000, 13);
        let global = Aabb::union_all(items.iter().map(|e| e.mbr));
        let mbrs = top_level_priority_mbrs(items, 60);
        assert_eq!(mbrs.len(), 6);
        assert_eq!(mbrs[0].min.x, global.min.x);
        assert_eq!(mbrs[1].min.y, global.min.y);
        assert_eq!(mbrs[2].min.z, global.min.z);
        assert_eq!(mbrs[3].max.x, global.max.x);
        assert_eq!(mbrs[4].max.y, global.max.y);
        assert_eq!(mbrs[5].max.z, global.max.z);
    }

    #[test]
    fn handles_worst_case_aspect_ratios() {
        // The PR-tree's selling point: extreme data. Long skewers along x.
        let items: Vec<Entry> = (0..1000)
            .map(|i| {
                let y = (i % 100) as f64;
                Entry::new(
                    i,
                    Aabb::from_corners(Point3::new(0.0, y, 0.0), Point3::new(1000.0, y + 0.1, 0.1)),
                )
            })
            .collect();
        let runs = pack(items, 40);
        let total: usize = runs.iter().map(|r| r.len()).sum();
        assert_eq!(total, 1000);
        assert!(runs.iter().all(|r| r.len() <= 40));
    }

    #[test]
    fn recursion_terminates_on_duplicate_rectangles() {
        // All-identical rectangles exercise the median split's worst case.
        let items: Vec<Entry> = (0..500)
            .map(|i| Entry::new(i, Aabb::cube(Point3::splat(1.0), 2.0)))
            .collect();
        let runs = pack(items, 30);
        let total: usize = runs.iter().map(|r| r.len()).sum();
        assert_eq!(total, 500);
    }
}
