//! Sort-Tile-Recursive packing (Leutenegger, Lopez & Edgington \[16\]).
//!
//! For `n` rectangles and capacity `c`, STR computes the page count
//! `P = ⌈n/c⌉` and the per-dimension slice count `s = ⌈P^(1/3)⌉`, then:
//!
//! 1. sorts by the x coordinate of the MBR centers and cuts the sequence
//!    into `s` vertical *slabs* of `s²·c` rectangles,
//! 2. sorts each slab by y and cuts it into `s` *runs* of `s·c`,
//! 3. sorts each run by z and chops it into pages of `c`.
//!
//! This is exactly the partitioning loop of the paper's Algorithm 1 —
//! FLAT's partitioning reuses this module through the same code path.

use super::div_ceil;
use crate::Entry;
use flat_geom::Axis;

/// Packs `items` into runs of at most `cap` (callers guarantee
/// `items.len() > cap > 0`).
pub(super) fn pack(items: Vec<Entry>, cap: usize) -> Vec<Vec<Entry>> {
    let mut out = Vec::with_capacity(div_ceil(items.len(), cap));
    pack_into(items, cap, &mut out);
    out
}

/// STR packing that appends the runs (tiles, in x→y→z traversal order) to
/// `out`. Exposed crate-wide so FLAT's Algorithm 1 can reuse the identical
/// tiling.
pub(crate) fn pack_into(mut items: Vec<Entry>, cap: usize, out: &mut Vec<Vec<Entry>>) {
    let n = items.len();
    if n == 0 {
        return;
    }
    if n <= cap {
        out.push(items);
        return;
    }
    let pages = div_ceil(n, cap);
    let s = (pages as f64).cbrt().ceil() as usize;
    let slab_size = s * s * cap; // elements per x-slab
    let run_size = s * cap; // elements per y-run

    sort_by_center(&mut items, Axis::X);
    for slab in take_chunks(items, slab_size) {
        let mut slab = slab;
        sort_by_center(&mut slab, Axis::Y);
        for run in take_chunks(slab, run_size) {
            let mut run = run;
            sort_by_center(&mut run, Axis::Z);
            for page in take_chunks(run, cap) {
                out.push(page);
            }
        }
    }
}

/// Sorts by the MBR center along `axis`. Ties are broken by id so packing
/// is fully deterministic.
fn sort_by_center(items: &mut [Entry], axis: Axis) {
    items.sort_by(|a, b| {
        a.mbr
            .center()
            .coord(axis)
            .total_cmp(&b.mbr.center().coord(axis))
            .then_with(|| a.id.cmp(&b.id))
    });
}

/// Consumes `items` into owned chunks of `size` (the last may be shorter).
fn take_chunks(items: Vec<Entry>, size: usize) -> Vec<Vec<Entry>> {
    let mut chunks = Vec::with_capacity(div_ceil(items.len(), size));
    let mut iter = items.into_iter();
    loop {
        let chunk: Vec<Entry> = iter.by_ref().take(size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::random_entries;
    use flat_geom::{Aabb, Point3};

    #[test]
    fn uses_minimal_number_of_pages() {
        for n in [86, 300, 1000, 12345] {
            let runs = pack(random_entries(n, 1), 85);
            assert_eq!(runs.len(), n.div_ceil(85), "n = {n}");
        }
    }

    #[test]
    fn tiles_do_not_interleave_much() {
        // STR on a uniform grid must produce tiles whose MBRs have low
        // total pairwise overlap volume — the reason it beats Hilbert
        // packing in the paper's experiments. On an exact grid the overlap
        // must be zero (tiles share at most faces).
        let mut items = Vec::new();
        let mut id = 0;
        for x in 0..8 {
            for y in 0..8 {
                for z in 0..8 {
                    items.push(Entry::new(
                        id,
                        Aabb::point(Point3::new(x as f64, y as f64, z as f64)),
                    ));
                    id += 1;
                }
            }
        }
        let runs = pack(items, 8); // 64 pages of 8 → s = 4 slices per dim
        let mbrs: Vec<Aabb> = runs
            .iter()
            .map(|r| Aabb::union_all(r.iter().map(|e| e.mbr)))
            .collect();
        let mut overlap_volume = 0.0;
        for i in 0..mbrs.len() {
            for j in i + 1..mbrs.len() {
                if let Some(common) = mbrs[i].intersection(&mbrs[j]) {
                    overlap_volume += common.volume();
                }
            }
        }
        assert_eq!(overlap_volume, 0.0, "grid tiles must not overlap");
    }

    #[test]
    fn deterministic_given_equal_coordinates() {
        // All-identical centers: the id tiebreak makes packing stable.
        let items: Vec<Entry> = (0..100)
            .map(|i| Entry::new(i, Aabb::cube(Point3::splat(1.0), 1.0)))
            .collect();
        let a = pack(items.clone(), 10);
        let b = pack(items, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn take_chunks_covers_all_items() {
        let items = random_entries(103, 9);
        let chunks = take_chunks(items.clone(), 10);
        assert_eq!(chunks.len(), 11);
        assert_eq!(chunks.last().unwrap().len(), 3);
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total, items.len());
    }
}
