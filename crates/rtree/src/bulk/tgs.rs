//! Top-down Greedy Split packing (García, López & Leutenegger \[7\]).
//!
//! TGS recursively bisects the element set: at each step it considers, for
//! every axis, page-aligned split positions and greedily picks the
//! (axis, position) pair minimizing the sum of the two sides' MBR surface
//! areas. "While bulkloading with TGS takes much longer than with other
//! approaches, the resulting R-Tree outperforms the Hilbert R-Tree and STR
//! on extreme data sets" (§II). This strategy is an extension: the paper
//! discusses but does not benchmark it.
//!
//! # Implementation notes
//!
//! * The work list is explicit (no recursion), so live memory stays O(n)
//!   even when the greedy cost function prefers highly unbalanced "sliver"
//!   splits — which it often does on dense data, and which would make the
//!   naive recursive formulation hold O(n²/capacity) elements alive.
//! * Candidate split positions are capped at [`MAX_CANDIDATES`] evenly
//!   spaced page-aligned positions per axis (all positions when there are
//!   fewer), and both sides of a split must receive at least a quarter of
//!   the pages. Full TGS evaluates every page-aligned position; on dense
//!   data its greedy cost prefers "sliver" cuts, which degenerate into an
//!   O(n²/capacity)-time cascade of one-page splits. The balance floor
//!   bounds the recursion depth logarithmically while preserving the
//!   greedy area-minimization behaviour. This approximation only affects
//!   the TGS extension, not any paper baseline.

use super::div_ceil;
use crate::Entry;
use flat_geom::{Aabb, Axis};

/// Maximum candidate split positions evaluated per axis and step.
const MAX_CANDIDATES: usize = 64;

/// Packs `items` into runs of at most `cap` (callers guarantee
/// `items.len() > cap > 0`).
pub(super) fn pack(items: Vec<Entry>, cap: usize) -> Vec<Vec<Entry>> {
    let mut out = Vec::with_capacity(div_ceil(items.len(), cap));
    let mut work = vec![items];
    while let Some(items) = work.pop() {
        if items.is_empty() {
            continue;
        }
        if items.len() <= cap {
            out.push(items);
            continue;
        }

        let mut best: Option<(f64, Vec<Entry>, usize)> = None;
        for axis in Axis::ALL {
            let mut sorted = items.clone();
            sorted.sort_by(|a, b| {
                a.mbr
                    .center()
                    .coord(axis)
                    .total_cmp(&b.mbr.center().coord(axis))
                    .then_with(|| a.id.cmp(&b.id))
            });
            if let Some((cost, split)) = best_split(&sorted, cap) {
                if best.as_ref().is_none_or(|(c, _, _)| cost < *c) {
                    best = Some((cost, sorted, split));
                }
            }
        }

        let (_, mut sorted, split) = best.expect("a split always exists when items.len() > cap");
        let right = sorted.split_off(split);
        // split_off leaves the parent's full capacity on `sorted`; on
        // sliver-split cascades those retained buffers add up to O(n²/cap)
        // bytes, so release them eagerly.
        sorted.shrink_to_fit();
        work.push(sorted);
        work.push(right);
    }
    out
}

/// Evaluates up to [`MAX_CANDIDATES`] page-aligned split positions on a
/// sorted sequence and returns the cheapest `(cost, split index)`.
fn best_split(sorted: &[Entry], cap: usize) -> Option<(f64, usize)> {
    let n = sorted.len();
    let pages = div_ceil(n, cap);
    if pages < 2 {
        return None;
    }

    // Page-aligned boundaries with a balance floor (each side gets at
    // least a quarter of the pages), thinned to at most MAX_CANDIDATES.
    let lo = (pages / 4).max(1);
    let hi = (pages - pages / 4).min(pages - 1).max(lo);
    let all: Vec<usize> = (lo..=hi).map(|k| k * cap).filter(|&b| b < n).collect();
    let boundaries: Vec<usize> = if all.len() <= MAX_CANDIDATES {
        all
    } else {
        let step = all.len() as f64 / MAX_CANDIDATES as f64;
        (0..MAX_CANDIDATES)
            .map(|i| all[(i as f64 * step) as usize])
            .collect()
    };

    // Prefix and suffix MBRs at the candidate boundaries.
    let mut prefix = Vec::with_capacity(boundaries.len());
    {
        let mut acc = Aabb::empty();
        let mut next = 0;
        for (i, e) in sorted.iter().enumerate() {
            acc.stretch_to_contain(&e.mbr);
            while next < boundaries.len() && i + 1 == boundaries[next] {
                prefix.push(acc);
                next += 1;
            }
        }
    }
    let mut suffix = vec![Aabb::empty(); boundaries.len()];
    {
        let mut acc = Aabb::empty();
        let mut next = boundaries.len();
        for (i, e) in sorted.iter().enumerate().rev() {
            acc.stretch_to_contain(&e.mbr);
            while next > 0 && i == boundaries[next - 1] {
                suffix[next - 1] = acc;
                next -= 1;
            }
        }
    }

    boundaries
        .iter()
        .enumerate()
        .map(|(i, &b)| (prefix[i].surface_area() + suffix[i].surface_area(), b))
        .min_by(|a, b| a.0.total_cmp(&b.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::random_entries;
    use flat_geom::Point3;

    #[test]
    fn splits_are_page_aligned_for_separable_data() {
        // Two distant clusters of exactly 2 pages each: TGS must cut
        // between them, never through one.
        let mut items = Vec::new();
        for i in 0..20u64 {
            items.push(Entry::new(i, Aabb::point(Point3::splat(i as f64 * 0.01))));
            items.push(Entry::new(
                100 + i,
                Aabb::point(Point3::splat(1000.0 + i as f64 * 0.01)),
            ));
        }
        let runs = pack(items, 10);
        assert_eq!(runs.len(), 4);
        for run in runs {
            let low = run.iter().filter(|e| e.id < 100).count();
            assert!(
                low == 0 || low == run.len(),
                "a page mixes the two clusters"
            );
        }
    }

    #[test]
    fn greedy_cost_picks_the_thin_axis() {
        // Data spread along x only: splitting on x gives far smaller
        // surface areas than y/z, so page MBRs must be x-segments.
        let items: Vec<Entry> = (0..200)
            .map(|i| Entry::new(i, Aabb::point(Point3::new(i as f64, 0.0, 0.0))))
            .collect();
        let runs = pack(items, 20);
        let mbrs: Vec<Aabb> = runs
            .iter()
            .map(|r| Aabb::union_all(r.iter().map(|e| e.mbr)))
            .collect();
        let mut sorted = mbrs;
        sorted.sort_by(|a, b| a.min.x.total_cmp(&b.min.x));
        for pair in sorted.windows(2) {
            assert!(
                pair[0].max.x < pair[1].min.x,
                "x-segments must not interleave"
            );
        }
    }

    #[test]
    fn best_split_requires_two_pages() {
        let items = random_entries(5, 1);
        assert!(best_split(&items, 10).is_none());
    }

    #[test]
    fn candidate_thinning_still_covers_extremes() {
        // More boundaries than MAX_CANDIDATES: thinning must keep valid
        // page-aligned positions and produce a legal packing.
        let items = random_entries(MAX_CANDIDATES * 3 * 10, 2);
        let runs = pack(items.clone(), 10);
        let total: usize = runs.iter().map(|r| r.len()).sum();
        assert_eq!(total, items.len());
        assert!(runs.iter().all(|r| !r.is_empty() && r.len() <= 10));
    }

    #[test]
    fn survives_duplicate_coordinates() {
        let items: Vec<Entry> = (0..333)
            .map(|i| Entry::new(i, Aabb::cube(Point3::splat(7.0), 1.0)))
            .collect();
        let runs = pack(items, 10);
        let total: usize = runs.iter().map(|r| r.len()).sum();
        assert_eq!(total, 333);
        assert!(runs.iter().all(|r| r.len() <= 10));
    }

    #[test]
    fn large_input_packs_in_bounded_time_and_memory() {
        // The sliver-split cascade regression test: 200k elements must pack
        // without quadratic blowup (this OOM-killed the naive recursive
        // version).
        let items = random_entries(200_000, 3);
        let runs = pack(items, 85);
        let total: usize = runs.iter().map(|r| r.len()).sum();
        assert_eq!(total, 200_000);
    }
}
