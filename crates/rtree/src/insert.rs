//! Dynamic insertion with Guttman's quadratic split (extension).
//!
//! The paper only considers bulkloading ("we focus on developing a
//! bulkloading approach and do not consider updates", §I) and argues that
//! bulkloaded trees beat insertion-built trees on page utilization
//! (§VII). This module implements the classic dynamic R-tree \[9\] anyway:
//! it lets the test-suite cross-validate the bulkloads against an
//! independently constructed tree, and the ablation benches quantify the
//! paper's utilization claim.

use crate::node::{
    decode_inner, decode_leaf, encode_inner, encode_leaf, inner_capacity, leaf_capacity, ChildRef,
};
use crate::tree::RTree;
use crate::Entry;
use flat_geom::Aabb;
use flat_storage::{BufferPool, Page, PageId, PageStore, StorageError};

/// Minimum fill after a split, as a fraction of capacity (Guttman's `m`).
const MIN_FILL: f64 = 0.4;

trait HasMbr: Clone {
    fn mbr(&self) -> Aabb;
}

impl HasMbr for Entry {
    fn mbr(&self) -> Aabb {
        self.mbr
    }
}

impl HasMbr for ChildRef {
    fn mbr(&self) -> Aabb {
        self.mbr
    }
}

/// Guttman's quadratic split: pick the pair of seeds wasting the most area
/// if grouped together, then greedily assign the rest by least enlargement,
/// honoring the minimum fill.
fn quadratic_split<T: HasMbr>(items: Vec<T>, cap: usize) -> (Vec<T>, Vec<T>) {
    debug_assert!(items.len() > cap);
    let min_fill = ((cap as f64 * MIN_FILL) as usize).max(1);

    // Seed selection: maximize dead space.
    let (mut seed_a, mut seed_b, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..items.len() {
        for j in i + 1..items.len() {
            let a = items[i].mbr();
            let b = items[j].mbr();
            let dead = a.union(&b).volume() - a.volume() - b.volume();
            if dead > worst {
                worst = dead;
                seed_a = i;
                seed_b = j;
            }
        }
    }

    let mut group_a: Vec<T> = vec![items[seed_a].clone()];
    let mut group_b: Vec<T> = vec![items[seed_b].clone()];
    let mut mbr_a = items[seed_a].mbr();
    let mut mbr_b = items[seed_b].mbr();

    let mut rest: Vec<T> = items
        .into_iter()
        .enumerate()
        .filter(|(i, _)| *i != seed_a && *i != seed_b)
        .map(|(_, t)| t)
        .collect();

    while let Some(item) = rest.pop() {
        let remaining = rest.len();
        // Min-fill force-assignment.
        if group_a.len() + remaining + 1 == min_fill {
            mbr_a.stretch_to_contain(&item.mbr());
            group_a.push(item);
            continue;
        }
        if group_b.len() + remaining + 1 == min_fill {
            mbr_b.stretch_to_contain(&item.mbr());
            group_b.push(item);
            continue;
        }
        let grow_a = mbr_a.enlargement(&item.mbr());
        let grow_b = mbr_b.enlargement(&item.mbr());
        let to_a = grow_a < grow_b || (grow_a == grow_b && mbr_a.volume() <= mbr_b.volume());
        if to_a {
            mbr_a.stretch_to_contain(&item.mbr());
            group_a.push(item);
        } else {
            mbr_b.stretch_to_contain(&item.mbr());
            group_b.push(item);
        }
    }
    (group_a, group_b)
}

impl RTree {
    /// Inserts one element, splitting nodes as needed (Guttman \[9\],
    /// quadratic split).
    pub fn insert<S: PageStore>(
        &mut self,
        pool: &mut BufferPool<S>,
        entry: Entry,
    ) -> Result<(), StorageError> {
        let config = *self.config();
        let mut page = Page::new();

        let Some(root) = self.root() else {
            // First element: the root is a single leaf.
            encode_leaf(&[entry], config.layout, &mut page);
            let id = pool.alloc()?;
            pool.write(id, &page, config.leaf_kind)?;
            self.set_root(id, 1);
            self.bump_counts(1, 1, 0);
            return Ok(());
        };

        // Descend to a leaf, remembering the path (node page, its children,
        // index of the chosen child).
        let mut path: Vec<(PageId, Vec<ChildRef>, usize)> = Vec::new();
        let mut current = root;
        for _ in 1..self.height() {
            let node = pool.read(current, config.inner_kind)?;
            let children = decode_inner(node)?;
            // Guttman ChooseLeaf: least enlargement, ties by least volume.
            let (best, _) = children
                .iter()
                .enumerate()
                .map(|(i, c)| (i, (c.mbr.enlargement(&entry.mbr), c.mbr.volume())))
                .min_by(|a, b| a.1 .0.total_cmp(&b.1 .0).then(a.1 .1.total_cmp(&b.1 .1)))
                .expect("inner nodes are never empty");
            let next = children[best].page;
            path.push((current, children, best));
            current = next;
        }

        // Insert into the leaf.
        let leaf_page = pool.read(current, config.leaf_kind)?;
        let (_, mut entries) = decode_leaf(leaf_page)?;
        entries.push(entry);
        self.bump_counts(1, 0, 0);

        let mut split: Option<ChildRef> = if entries.len() <= leaf_capacity(config.layout) {
            encode_leaf(&entries, config.layout, &mut page);
            pool.write(current, &page, config.leaf_kind)?;
            None
        } else {
            let (a, b) = quadratic_split(entries, leaf_capacity(config.layout));
            encode_leaf(&a, config.layout, &mut page);
            pool.write(current, &page, config.leaf_kind)?;
            encode_leaf(&b, config.layout, &mut page);
            let new_id = pool.alloc()?;
            pool.write(new_id, &page, config.leaf_kind)?;
            self.bump_counts(0, 1, 0);
            Some(ChildRef {
                mbr: Aabb::union_all(b.iter().map(|e| e.mbr)),
                page: new_id,
            })
        };
        // The updated MBR of the node we just rewrote.
        let mut updated_mbr = {
            let p = pool.read(current, config.leaf_kind)?;
            let (_, es) = decode_leaf(p)?;
            Aabb::union_all(es.iter().map(|e| e.mbr))
        };

        // Walk back up adjusting MBRs and propagating splits.
        while let Some((node_id, mut children, chosen)) = path.pop() {
            children[chosen].mbr = updated_mbr;
            if let Some(new_child) = split.take() {
                children.push(new_child);
            }
            if children.len() <= inner_capacity() {
                encode_inner(&children, &mut page);
                pool.write(node_id, &page, config.inner_kind)?;
                updated_mbr = Aabb::union_all(children.iter().map(|c| c.mbr));
            } else {
                let (a, b) = quadratic_split(children, inner_capacity());
                encode_inner(&a, &mut page);
                pool.write(node_id, &page, config.inner_kind)?;
                encode_inner(&b, &mut page);
                let new_id = pool.alloc()?;
                pool.write(new_id, &page, config.inner_kind)?;
                self.bump_counts(0, 0, 1);
                updated_mbr = Aabb::union_all(a.iter().map(|c| c.mbr));
                split = Some(ChildRef {
                    mbr: Aabb::union_all(b.iter().map(|c| c.mbr)),
                    page: new_id,
                });
            }
        }

        // Root split: grow the tree by one level.
        if let Some(new_sibling) = split {
            let old_root_ref = ChildRef {
                mbr: updated_mbr,
                page: current_root(self),
            };
            let children = vec![old_root_ref, new_sibling];
            encode_inner(&children, &mut page);
            let new_root = pool.alloc()?;
            pool.write(new_root, &page, config.inner_kind)?;
            let h = self.height();
            self.set_root(new_root, h + 1);
            self.bump_counts(0, 0, 1);
        }
        Ok(())
    }
}

fn current_root(tree: &RTree) -> PageId {
    tree.root().expect("tree is non-empty here")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{brute_force, random_entries};
    use crate::tree::RTreeConfig;
    use crate::validate::check_invariants;
    use crate::LeafLayout;
    use flat_geom::Point3;
    use flat_storage::{BufferPool, MemStore};

    fn insert_all(n: usize) -> (BufferPool<MemStore>, RTree, Vec<Entry>) {
        let entries = random_entries(n, 99);
        let mut pool = BufferPool::new(MemStore::new(), 1 << 16);
        let mut tree = RTree::new_empty(RTreeConfig {
            layout: LeafLayout::WithIds,
            ..RTreeConfig::default()
        });
        for e in &entries {
            tree.insert(&mut pool, *e).unwrap();
        }
        (pool, tree, entries)
    }

    #[test]
    fn first_insert_creates_leaf_root() {
        let mut pool = BufferPool::new(MemStore::new(), 64);
        let mut tree = RTree::new_empty(RTreeConfig::default());
        tree.insert(&mut pool, Entry::new(1, Aabb::cube(Point3::ORIGIN, 1.0)))
            .unwrap();
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.num_elements(), 1);
        assert_eq!(tree.num_leaf_pages(), 1);
    }

    #[test]
    fn inserted_tree_answers_queries_correctly() {
        let (pool, tree, entries) = insert_all(3000);
        for (c, side) in [(25.0, 10.0), (60.0, 30.0), (95.0, 2.0)] {
            let q = Aabb::cube(Point3::splat(c), side);
            let mut got: Vec<u64> = tree
                .range_query(&pool, &q)
                .unwrap()
                .iter()
                .map(|h| h.id)
                .collect();
            got.sort_unstable();
            assert_eq!(got, brute_force(&entries, &q));
        }
    }

    #[test]
    fn tree_grows_in_height_and_stays_valid() {
        let (pool, tree, entries) = insert_all(3000);
        assert!(tree.height() >= 2, "3000 elements must overflow one page");
        assert_eq!(tree.num_elements(), entries.len() as u64);
        let report = check_invariants(&pool, &tree).unwrap();
        assert_eq!(report.elements, entries.len() as u64);
    }

    #[test]
    fn quadratic_split_respects_min_fill() {
        let items: Vec<Entry> = random_entries(11, 5);
        let (a, b) = quadratic_split(items, 10);
        let min = (10.0_f64 * MIN_FILL) as usize;
        assert!(a.len() >= min, "group A has {} < {min}", a.len());
        assert!(b.len() >= min, "group B has {} < {min}", b.len());
        assert_eq!(a.len() + b.len(), 11);
    }

    #[test]
    fn quadratic_split_separates_two_clusters() {
        let mut items = Vec::new();
        for i in 0..6u64 {
            items.push(Entry::new(
                i,
                Aabb::cube(Point3::splat(0.0 + i as f64 * 0.1), 1.0),
            ));
            items.push(Entry::new(
                100 + i,
                Aabb::cube(Point3::splat(100.0 + i as f64 * 0.1), 1.0),
            ));
        }
        // Over-capacity set of 12 with cap 11 → split must not mix clusters.
        let (a, b) = quadratic_split(items, 11);
        for group in [&a, &b] {
            let low = group.iter().filter(|e| e.id < 100).count();
            assert!(low == 0 || low == group.len(), "split mixed the clusters");
        }
    }

    #[test]
    fn mixed_bulkload_and_insert() {
        // Bulkload half, insert the other half: queries stay exact.
        let entries = random_entries(2000, 17);
        let (bulk, dynamic) = entries.split_at(1000);
        let mut pool = BufferPool::new(MemStore::new(), 1 << 16);
        let mut tree = RTree::bulk_load(
            &mut pool,
            bulk.to_vec(),
            crate::BulkLoad::Str,
            RTreeConfig {
                layout: LeafLayout::WithIds,
                ..RTreeConfig::default()
            },
        )
        .unwrap();
        for e in dynamic {
            tree.insert(&mut pool, *e).unwrap();
        }
        let q = Aabb::cube(Point3::splat(50.0), 40.0);
        let mut got: Vec<u64> = tree
            .range_query(&pool, &q)
            .unwrap()
            .iter()
            .map(|h| h.id)
            .collect();
        got.sort_unstable();
        assert_eq!(got, brute_force(&entries, &q));
        check_invariants(&pool, &tree).unwrap();
    }
}
