//! Disk-based R-tree with the paper's bulkloading baselines.
//!
//! The paper compares FLAT against three bulkloaded R-tree variants
//! (§VII-A): the **Hilbert R-tree** \[12\], the **STR** R-tree \[16\] and the
//! **Priority R-tree** \[1\]; the **TGS** R-tree \[7\] is discussed in related
//! work and implemented here as an extension. All variants share one
//! on-disk node format (this crate's [`node`] module) and one query engine
//! ([`RTree`]); they differ only in how the bulkload *packs* rectangles
//! into nodes (the [`bulk`] module).
//!
//! # On-disk format
//!
//! Every node is one 4 KB page ([`flat_storage::PAGE_SIZE`]):
//!
//! * **Leaf pages** store element MBRs. In the paper-faithful
//!   [`LeafLayout::MbrOnly`] layout an entry is 6 × f64 = 48 bytes, giving
//!   the paper's **85 elements per 4 KB page** (§VII-A). The
//!   [`LeafLayout::WithIds`] layout adds a u64 element id (56 bytes per
//!   entry, 73 per page) for applications that need stable identities.
//! * **Inner pages** store (child MBR, child page id) pairs — 56 bytes per
//!   entry, 73 per page.
//!
//! FLAT reuses both formats: object pages are leaf pages (kind
//! [`flat_storage::PageKind::ObjectPage`]) and the seed tree's directory is
//! built with [`build_inner_levels`].
//!
//! # Example
//!
//! ```
//! use flat_geom::{Aabb, Point3};
//! use flat_rtree::{BulkLoad, Entry, RTree, RTreeConfig};
//! use flat_storage::{BufferPool, MemStore};
//!
//! let entries: Vec<Entry> = (0..1000)
//!     .map(|i| Entry::new(i, Aabb::cube(Point3::splat(i as f64), 1.0)))
//!     .collect();
//! let mut pool = BufferPool::new(MemStore::new(), 1024);
//! let tree = RTree::bulk_load(&mut pool, entries, BulkLoad::Str, RTreeConfig::default())
//!     .unwrap();
//!
//! // Queries are shared reads: `&pool`, not `&mut pool`.
//! let query = Aabb::cube(Point3::splat(10.0), 5.0);
//! let hits = tree.range_query(&pool, &query).unwrap();
//! assert!(!hits.is_empty());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bulk;
mod insert;
pub mod node;
mod persist;
mod tree;
pub mod validate;

pub use bulk::BulkLoad;
pub use node::{inner_capacity, leaf_capacity, LeafLayout};
pub use tree::{build_inner_levels, Hit, RTree, RTreeConfig, TraversalStats};

use flat_geom::Aabb;

/// An element to index: its MBR plus an application-level id.
///
/// Under [`LeafLayout::MbrOnly`] the id is not persisted (the paper stores
/// bare MBRs); queries then report synthetic ids derived from the element's
/// physical location (see [`Hit`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Entry {
    /// Application-level identifier.
    pub id: u64,
    /// The element's minimum bounding rectangle.
    pub mbr: Aabb,
}

impl Entry {
    /// Creates an entry.
    pub fn new(id: u64, mbr: Aabb) -> Entry {
        Entry { id, mbr }
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;
    use flat_geom::Point3;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Deterministic cloud of small boxes in `[0, 100)³`.
    pub fn random_entries(n: usize, seed: u64) -> Vec<Entry> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let center = Point3::new(
                    rng.gen_range(0.0..100.0),
                    rng.gen_range(0.0..100.0),
                    rng.gen_range(0.0..100.0),
                );
                let extents = Point3::new(
                    rng.gen_range(0.01..1.0),
                    rng.gen_range(0.01..1.0),
                    rng.gen_range(0.01..1.0),
                );
                Entry::new(i as u64, Aabb::centered(center, extents))
            })
            .collect()
    }

    /// Brute-force oracle for range queries.
    pub fn brute_force(entries: &[Entry], query: &Aabb) -> Vec<u64> {
        let mut ids: Vec<u64> = entries
            .iter()
            .filter(|e| query.intersects(&e.mbr))
            .map(|e| e.id)
            .collect();
        ids.sort_unstable();
        ids
    }
}
