//! On-page node formats shared by every R-tree variant and by FLAT's object
//! pages.
//!
//! A node occupies exactly one 4 KB page:
//!
//! ```text
//! offset 0   u16  node tag (1 = inner, 2 = leaf)
//! offset 2   u16  entry count
//! offset 4   u16  leaf layout tag (leaves only; 0 = MbrOnly, 1 = WithIds)
//! offset 6   u16  reserved
//! offset 8   entries …
//! ```
//!
//! Inner entries are `(mbr: 6×f64, child: u64)` = 56 bytes → **73 per page**.
//! Leaf entries are either bare MBRs (48 bytes → **85 per page**, the
//! paper's number) or `(mbr, id)` (56 bytes → 73 per page).

use crate::Entry;
use flat_geom::{Aabb, Point3};
use flat_storage::{Page, PageId, StorageError, PAGE_SIZE};

/// Size of the fixed node header in bytes.
pub const HEADER_SIZE: usize = 8;

const TAG_INNER: u16 = 1;
const TAG_LEAF: u16 = 2;

const MBR_SIZE: usize = 48;
const INNER_ENTRY_SIZE: usize = MBR_SIZE + 8;

/// How leaf pages (and FLAT object pages) serialize their entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LeafLayout {
    /// Bare 48-byte MBRs; 85 entries per 4 KB page, exactly matching the
    /// paper's setup ("All implementations store 85 spatial elements on a
    /// 4K page", §VII-A). Element ids are not persisted.
    #[default]
    MbrOnly,
    /// MBR + u64 id; 73 entries per page. Use when the application must
    /// map results back to its own objects.
    WithIds,
}

impl LeafLayout {
    fn tag(self) -> u16 {
        match self {
            LeafLayout::MbrOnly => 0,
            LeafLayout::WithIds => 1,
        }
    }

    fn from_tag(tag: u16) -> Result<LeafLayout, StorageError> {
        match tag {
            0 => Ok(LeafLayout::MbrOnly),
            1 => Ok(LeafLayout::WithIds),
            t => Err(StorageError::Corrupt(format!(
                "unknown leaf layout tag {t}"
            ))),
        }
    }

    /// Bytes per entry under this layout.
    pub fn entry_size(self) -> usize {
        match self {
            LeafLayout::MbrOnly => MBR_SIZE,
            LeafLayout::WithIds => MBR_SIZE + 8,
        }
    }
}

/// Maximum number of element entries on a leaf page under `layout`.
pub fn leaf_capacity(layout: LeafLayout) -> usize {
    (PAGE_SIZE - HEADER_SIZE) / layout.entry_size()
}

/// Maximum number of child entries on an inner page.
pub fn inner_capacity() -> usize {
    (PAGE_SIZE - HEADER_SIZE) / INNER_ENTRY_SIZE
}

/// A child reference held by an inner node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChildRef {
    /// MBR of the entire subtree rooted at `page`.
    pub mbr: Aabb,
    /// The child page.
    pub page: PageId,
}

fn put_mbr(page: &mut Page, offset: usize, mbr: &Aabb) {
    page.put_f64(offset, mbr.min.x);
    page.put_f64(offset + 8, mbr.min.y);
    page.put_f64(offset + 16, mbr.min.z);
    page.put_f64(offset + 24, mbr.max.x);
    page.put_f64(offset + 32, mbr.max.y);
    page.put_f64(offset + 40, mbr.max.z);
}

fn get_mbr(page: &Page, offset: usize) -> Aabb {
    Aabb {
        min: Point3::new(
            page.get_f64(offset),
            page.get_f64(offset + 8),
            page.get_f64(offset + 16),
        ),
        max: Point3::new(
            page.get_f64(offset + 24),
            page.get_f64(offset + 32),
            page.get_f64(offset + 40),
        ),
    }
}

/// Serializes an inner node.
///
/// # Panics
/// Panics if `children` exceeds [`inner_capacity`] or is empty.
pub fn encode_inner(children: &[ChildRef], page: &mut Page) {
    assert!(
        !children.is_empty(),
        "inner node must have at least one child"
    );
    assert!(
        children.len() <= inner_capacity(),
        "inner node overflow: {} > {}",
        children.len(),
        inner_capacity()
    );
    page.clear();
    page.put_u16(0, TAG_INNER);
    page.put_u16(2, children.len() as u16);
    let mut offset = HEADER_SIZE;
    for child in children {
        put_mbr(page, offset, &child.mbr);
        page.put_u64(offset + MBR_SIZE, child.page.0);
        offset += INNER_ENTRY_SIZE;
    }
}

/// Deserializes an inner node.
pub fn decode_inner(page: &Page) -> Result<Vec<ChildRef>, StorageError> {
    if page.get_u16(0) != TAG_INNER {
        return Err(StorageError::Corrupt(format!(
            "expected inner node tag, found {}",
            page.get_u16(0)
        )));
    }
    let count = page.get_u16(2) as usize;
    if count > inner_capacity() {
        return Err(StorageError::Corrupt(format!(
            "inner count {count} exceeds capacity"
        )));
    }
    let mut children = Vec::with_capacity(count);
    let mut offset = HEADER_SIZE;
    for _ in 0..count {
        children.push(ChildRef {
            mbr: get_mbr(page, offset),
            page: PageId(page.get_u64(offset + MBR_SIZE)),
        });
        offset += INNER_ENTRY_SIZE;
    }
    Ok(children)
}

/// Serializes a leaf node (also used verbatim for FLAT object pages).
///
/// Under [`LeafLayout::MbrOnly`] the entry ids are discarded.
///
/// # Panics
/// Panics if `entries` exceeds the layout capacity or is empty.
pub fn encode_leaf(entries: &[Entry], layout: LeafLayout, page: &mut Page) {
    assert!(
        !entries.is_empty(),
        "leaf node must have at least one entry"
    );
    assert!(
        entries.len() <= leaf_capacity(layout),
        "leaf overflow: {} > {}",
        entries.len(),
        leaf_capacity(layout)
    );
    page.clear();
    page.put_u16(0, TAG_LEAF);
    page.put_u16(2, entries.len() as u16);
    page.put_u16(4, layout.tag());
    let mut offset = HEADER_SIZE;
    for entry in entries {
        put_mbr(page, offset, &entry.mbr);
        offset += MBR_SIZE;
        if layout == LeafLayout::WithIds {
            page.put_u64(offset, entry.id);
            offset += 8;
        }
    }
}

/// Deserializes a leaf node, reporting which layout it was written with.
///
/// Under [`LeafLayout::MbrOnly`] the returned ids are the slot numbers;
/// callers combine them with the page id for a globally unique reference.
pub fn decode_leaf(page: &Page) -> Result<(LeafLayout, Vec<Entry>), StorageError> {
    if page.get_u16(0) != TAG_LEAF {
        return Err(StorageError::Corrupt(format!(
            "expected leaf node tag, found {}",
            page.get_u16(0)
        )));
    }
    let count = page.get_u16(2) as usize;
    let layout = LeafLayout::from_tag(page.get_u16(4))?;
    if count > leaf_capacity(layout) {
        return Err(StorageError::Corrupt(format!(
            "leaf count {count} exceeds capacity"
        )));
    }
    let mut entries = Vec::with_capacity(count);
    let mut offset = HEADER_SIZE;
    for slot in 0..count {
        let mbr = get_mbr(page, offset);
        offset += MBR_SIZE;
        let id = match layout {
            LeafLayout::MbrOnly => slot as u64,
            LeafLayout::WithIds => {
                let id = page.get_u64(offset);
                offset += 8;
                id
            }
        };
        entries.push(Entry::new(id, mbr));
    }
    Ok((layout, entries))
}

/// `true` if the page holds a leaf node.
pub fn is_leaf(page: &Page) -> bool {
    page.get_u16(0) == TAG_LEAF
}

#[cfg(test)]
mod tests {
    use super::*;
    use flat_geom::Point3;

    fn mk_entries(n: usize) -> Vec<Entry> {
        (0..n)
            .map(|i| Entry::new(1000 + i as u64, Aabb::cube(Point3::splat(i as f64), 0.5)))
            .collect()
    }

    #[test]
    fn capacities_match_the_paper() {
        assert_eq!(
            leaf_capacity(LeafLayout::MbrOnly),
            85,
            "the paper's 85 elements per page"
        );
        assert_eq!(leaf_capacity(LeafLayout::WithIds), 73);
        assert_eq!(inner_capacity(), 73);
    }

    #[test]
    fn inner_roundtrip() {
        let children: Vec<ChildRef> = (0..inner_capacity())
            .map(|i| ChildRef {
                mbr: Aabb::cube(Point3::splat(i as f64), 1.0),
                page: PageId(i as u64 * 7),
            })
            .collect();
        let mut page = Page::new();
        encode_inner(&children, &mut page);
        assert!(!is_leaf(&page));
        assert_eq!(decode_inner(&page).unwrap(), children);
    }

    #[test]
    fn leaf_roundtrip_with_ids() {
        let entries = mk_entries(73);
        let mut page = Page::new();
        encode_leaf(&entries, LeafLayout::WithIds, &mut page);
        assert!(is_leaf(&page));
        let (layout, decoded) = decode_leaf(&page).unwrap();
        assert_eq!(layout, LeafLayout::WithIds);
        assert_eq!(decoded, entries);
    }

    #[test]
    fn leaf_roundtrip_mbr_only_drops_ids_keeps_slots() {
        let entries = mk_entries(85);
        let mut page = Page::new();
        encode_leaf(&entries, LeafLayout::MbrOnly, &mut page);
        let (layout, decoded) = decode_leaf(&page).unwrap();
        assert_eq!(layout, LeafLayout::MbrOnly);
        assert_eq!(decoded.len(), 85);
        for (slot, (dec, orig)) in decoded.iter().zip(entries.iter()).enumerate() {
            assert_eq!(dec.mbr, orig.mbr);
            assert_eq!(dec.id, slot as u64, "MbrOnly ids are slot numbers");
        }
    }

    #[test]
    #[should_panic(expected = "leaf overflow")]
    fn leaf_overflow_panics() {
        let entries = mk_entries(86);
        encode_leaf(&entries, LeafLayout::MbrOnly, &mut Page::new());
    }

    #[test]
    #[should_panic(expected = "inner node overflow")]
    fn inner_overflow_panics() {
        let children: Vec<ChildRef> = (0..inner_capacity() + 1)
            .map(|i| ChildRef {
                mbr: Aabb::cube(Point3::ORIGIN, 1.0),
                page: PageId(i as u64),
            })
            .collect();
        encode_inner(&children, &mut Page::new());
    }

    #[test]
    fn decode_wrong_tag_is_error_not_panic() {
        let entries = mk_entries(3);
        let mut page = Page::new();
        encode_leaf(&entries, LeafLayout::WithIds, &mut page);
        assert!(decode_inner(&page).is_err());
        let children = vec![ChildRef {
            mbr: Aabb::cube(Point3::ORIGIN, 1.0),
            page: PageId(0),
        }];
        encode_inner(&children, &mut page);
        assert!(decode_leaf(&page).is_err());
    }

    #[test]
    fn decode_corrupt_count_is_error() {
        let mut page = Page::new();
        encode_leaf(&mk_entries(3), LeafLayout::MbrOnly, &mut page);
        page.put_u16(2, 999);
        assert!(matches!(decode_leaf(&page), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn full_leaf_fits_exactly_in_page() {
        // 8 + 85·48 = 4088 ≤ 4096 — the last entry must not be truncated.
        let entries = mk_entries(85);
        let mut page = Page::new();
        encode_leaf(&entries, LeafLayout::MbrOnly, &mut page);
        let (_, decoded) = decode_leaf(&page).unwrap();
        assert_eq!(decoded.last().unwrap().mbr, entries.last().unwrap().mbr);
    }

    #[test]
    fn negative_and_extreme_coordinates_roundtrip() {
        let entries = vec![
            Entry::new(
                0,
                Aabb::from_corners(Point3::splat(-1e300), Point3::splat(1e300)),
            ),
            Entry::new(1, Aabb::point(Point3::new(-0.0, f64::MIN_POSITIVE, 1e-308))),
        ];
        let mut page = Page::new();
        encode_leaf(&entries, LeafLayout::WithIds, &mut page);
        let (_, decoded) = decode_leaf(&page).unwrap();
        assert_eq!(decoded[0].mbr, entries[0].mbr);
        assert_eq!(decoded[1].mbr, entries[1].mbr);
    }
}
