//! Saving and loading the R-tree descriptor.
//!
//! All tree *data* already lives in the page store; the only transient
//! state is the small descriptor (root page, height, counters, layout).
//! [`RTree::save`] writes it to a freshly allocated page and returns that
//! page's id; [`RTree::load`] reconstructs the handle from it. Combined
//! with [`flat_storage::FileStore`], this makes indexes durable across
//! process restarts (see the `persistence` integration test).

use crate::tree::{RTree, RTreeConfig};
use crate::LeafLayout;
use flat_storage::{Page, PageId, PageKind, PageRead, PageWrite, StorageError};

const MAGIC: u32 = 0x464C_5254; // "FLRT"
const KIND_RTREE: u16 = 1;
const NO_ROOT: u64 = u64::MAX;

impl RTree {
    /// Writes the tree descriptor to a new page, returning its id.
    ///
    /// The caller records the id out of band (conventionally it is the
    /// store's last page when saving right after a bulkload).
    pub fn save(&self, pool: &mut impl PageWrite) -> Result<PageId, StorageError> {
        let mut page = Page::new();
        page.put_u32(0, MAGIC);
        page.put_u16(4, KIND_RTREE);
        page.put_u16(
            6,
            match self.config().layout {
                LeafLayout::MbrOnly => 0,
                LeafLayout::WithIds => 1,
            },
        );
        page.put_u64(8, self.root().map_or(NO_ROOT, |r| r.0));
        page.put_u32(16, self.height());
        page.put_u64(24, self.num_elements());
        page.put_u64(32, self.num_leaf_pages());
        page.put_u64(40, self.num_inner_pages());
        let id = pool.alloc()?;
        pool.write(id, &page, PageKind::Other)?;
        Ok(id)
    }

    /// Reconstructs a tree handle from a descriptor page written by
    /// [`RTree::save`]. Page-kind accounting reverts to the defaults
    /// ([`PageKind::RTreeInner`]/[`PageKind::RTreeLeaf`]).
    pub fn load(pool: &impl PageRead, descriptor: PageId) -> Result<RTree, StorageError> {
        let page = pool.read_page(descriptor, PageKind::Other)?;
        if page.get_u32(0) != MAGIC || page.get_u16(4) != KIND_RTREE {
            return Err(StorageError::Corrupt(format!(
                "{descriptor} is not an R-tree descriptor"
            )));
        }
        let layout = match page.get_u16(6) {
            0 => LeafLayout::MbrOnly,
            1 => LeafLayout::WithIds,
            t => return Err(StorageError::Corrupt(format!("unknown layout tag {t}"))),
        };
        let root = page.get_u64(8);
        let height = page.get_u32(16);
        let num_elements = page.get_u64(24);
        let num_leaf_pages = page.get_u64(32);
        let num_inner_pages = page.get_u64(40);

        let mut tree = RTree::new_empty(RTreeConfig {
            layout,
            ..RTreeConfig::default()
        });
        if root != NO_ROOT {
            tree.set_root(PageId(root), height);
            tree.bump_counts(
                num_elements as i64,
                num_leaf_pages as i64,
                num_inner_pages as i64,
            );
        } else if num_elements != 0 {
            return Err(StorageError::Corrupt(
                "descriptor has no root but non-zero element count".to_string(),
            ));
        }
        Ok(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{brute_force, random_entries};
    use crate::BulkLoad;
    use flat_geom::{Aabb, Point3};
    use flat_storage::{BufferPool, MemStore};

    #[test]
    fn save_load_roundtrip_preserves_queries() {
        let entries = random_entries(5000, 61);
        let mut pool = BufferPool::new(MemStore::new(), 1 << 14);
        let tree = RTree::bulk_load(
            &mut pool,
            entries.clone(),
            BulkLoad::Str,
            RTreeConfig {
                layout: LeafLayout::WithIds,
                ..RTreeConfig::default()
            },
        )
        .unwrap();
        let descriptor = tree.save(&mut pool).unwrap();

        let loaded = RTree::load(&pool, descriptor).unwrap();
        assert_eq!(loaded.height(), tree.height());
        assert_eq!(loaded.num_elements(), tree.num_elements());
        assert_eq!(loaded.config().layout, LeafLayout::WithIds);

        let q = Aabb::cube(Point3::splat(50.0), 30.0);
        let mut got: Vec<u64> = loaded
            .range_query(&pool, &q)
            .unwrap()
            .iter()
            .map(|h| h.id)
            .collect();
        got.sort_unstable();
        assert_eq!(got, brute_force(&entries, &q));
    }

    #[test]
    fn empty_tree_roundtrips() {
        let mut pool = BufferPool::new(MemStore::new(), 16);
        let tree =
            RTree::bulk_load(&mut pool, Vec::new(), BulkLoad::Str, RTreeConfig::default()).unwrap();
        let descriptor = tree.save(&mut pool).unwrap();
        let loaded = RTree::load(&pool, descriptor).unwrap();
        assert_eq!(loaded.num_elements(), 0);
        assert!(loaded.root().is_none());
    }

    #[test]
    fn loading_garbage_fails_cleanly() {
        let mut pool = BufferPool::new(MemStore::new(), 16);
        let id = pool.alloc().unwrap();
        pool.write(id, &Page::new(), PageKind::Other).unwrap();
        assert!(matches!(
            RTree::load(&pool, id),
            Err(StorageError::Corrupt(_))
        ));
    }
}
