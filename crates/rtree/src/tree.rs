//! The R-tree proper: bulk construction and query evaluation.

use crate::bulk::BulkLoad;
use crate::node::{
    decode_inner, decode_leaf, encode_inner, encode_leaf, inner_capacity, is_leaf, leaf_capacity,
    ChildRef, LeafLayout,
};
use crate::Entry;
use flat_geom::{Aabb, Point3};
use flat_storage::{Page, PageId, PageKind, PageRead, PageWrite, StorageError};

/// Configuration shared by all R-tree variants.
#[derive(Debug, Clone, Copy)]
pub struct RTreeConfig {
    /// Leaf page layout (85 bare MBRs per page by default, like the paper).
    pub layout: LeafLayout,
    /// Page kind charged for non-leaf reads (default
    /// [`PageKind::RTreeInner`]).
    pub inner_kind: PageKind,
    /// Page kind charged for leaf reads (default [`PageKind::RTreeLeaf`]).
    pub leaf_kind: PageKind,
}

impl Default for RTreeConfig {
    fn default() -> Self {
        RTreeConfig {
            layout: LeafLayout::default(),
            inner_kind: PageKind::RTreeInner,
            leaf_kind: PageKind::RTreeLeaf,
        }
    }
}

/// A query result: one element whose MBR intersects the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// The element's MBR as stored.
    pub mbr: Aabb,
    /// Element id. Under [`LeafLayout::WithIds`] this is the application id
    /// given at build time; under [`LeafLayout::MbrOnly`] it is synthesized
    /// from the physical location as `page_id · 2¹⁶ + slot` (unique, stable
    /// for a given build).
    pub id: u64,
    /// Leaf page holding the element.
    pub page: PageId,
    /// Slot within the leaf page.
    pub slot: u16,
}

/// CPU-side counters for a single traversal (the I/O side lives in
/// [`flat_storage::IoStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraversalStats {
    /// Inner nodes visited.
    pub inner_visits: u64,
    /// Leaf nodes visited.
    pub leaf_visits: u64,
    /// MBR–query intersection tests performed.
    pub mbr_tests: u64,
}

/// A disk-resident R-tree.
///
/// The tree does not own its pages; every operation takes the pool the
/// tree was built in. Construction is exclusive ([`PageWrite`]); queries
/// are shared reads ([`PageRead`]), so one tree can serve many threads
/// through a [`flat_storage::ConcurrentBufferPool`] while the benchmark
/// harness clears caches and reads statistics between queries, exactly as
/// the paper's methodology requires.
#[derive(Debug, Clone)]
pub struct RTree {
    root: Option<PageId>,
    height: u32,
    config: RTreeConfig,
    num_elements: u64,
    num_leaf_pages: u64,
    num_inner_pages: u64,
}

impl RTree {
    /// Bulk-loads `entries` with the chosen packing strategy.
    ///
    /// An empty input produces a valid empty tree.
    pub fn bulk_load(
        pool: &mut impl PageWrite,
        entries: Vec<Entry>,
        method: BulkLoad,
        config: RTreeConfig,
    ) -> Result<RTree, StorageError> {
        if entries.is_empty() {
            return Ok(RTree {
                root: None,
                height: 0,
                config,
                num_elements: 0,
                num_leaf_pages: 0,
                num_inner_pages: 0,
            });
        }
        let num_elements = entries.len() as u64;
        let leaf_cap = leaf_capacity(config.layout);
        let runs = method.pack(entries, leaf_cap);

        // Write the leaf level.
        let mut page = Page::new();
        let mut level: Vec<ChildRef> = Vec::with_capacity(runs.len());
        for run in &runs {
            encode_leaf(run, config.layout, &mut page);
            let id = pool.alloc()?;
            pool.write(id, &page, config.leaf_kind)?;
            level.push(ChildRef {
                mbr: Aabb::union_all(run.iter().map(|e| e.mbr)),
                page: id,
            });
        }
        let num_leaf_pages = level.len() as u64;

        // Build the directory bottom-up, packing each level with the same
        // strategy.
        let mut height = 1;
        let mut num_inner_pages = 0;
        while level.len() > 1 {
            let items: Vec<Entry> = level.iter().map(|c| Entry::new(c.page.0, c.mbr)).collect();
            let runs = method.pack(items, inner_capacity());
            let mut next: Vec<ChildRef> = Vec::with_capacity(runs.len());
            for run in &runs {
                let children: Vec<ChildRef> = run
                    .iter()
                    .map(|e| ChildRef {
                        mbr: e.mbr,
                        page: PageId(e.id),
                    })
                    .collect();
                encode_inner(&children, &mut page);
                let id = pool.alloc()?;
                pool.write(id, &page, config.inner_kind)?;
                next.push(ChildRef {
                    mbr: Aabb::union_all(run.iter().map(|e| e.mbr)),
                    page: id,
                });
            }
            num_inner_pages += next.len() as u64;
            level = next;
            height += 1;
        }

        Ok(RTree {
            root: Some(level[0].page),
            height,
            config,
            num_elements,
            num_leaf_pages,
            num_inner_pages,
        })
    }

    /// Root page, if the tree is non-empty.
    pub fn root(&self) -> Option<PageId> {
        self.root
    }

    /// Tree height in levels (0 for an empty tree, 1 when the root is a
    /// leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The configuration the tree was built with.
    pub fn config(&self) -> &RTreeConfig {
        &self.config
    }

    /// Number of indexed elements.
    pub fn num_elements(&self) -> u64 {
        self.num_elements
    }

    /// Number of leaf pages.
    pub fn num_leaf_pages(&self) -> u64 {
        self.num_leaf_pages
    }

    /// Number of non-leaf (directory) pages.
    pub fn num_inner_pages(&self) -> u64 {
        self.num_inner_pages
    }

    /// Total index size in bytes (leaf + inner pages).
    pub fn size_bytes(&self) -> u64 {
        (self.num_leaf_pages + self.num_inner_pages) * flat_storage::PAGE_SIZE as u64
    }

    pub(crate) fn set_root(&mut self, root: PageId, height: u32) {
        self.root = Some(root);
        self.height = height;
    }

    pub(crate) fn bump_counts(&mut self, elements: i64, leaves: i64, inners: i64) {
        self.num_elements = self.num_elements.wrapping_add_signed(elements);
        self.num_leaf_pages = self.num_leaf_pages.wrapping_add_signed(leaves);
        self.num_inner_pages = self.num_inner_pages.wrapping_add_signed(inners);
    }

    /// Creates an empty tree with the given configuration (for dynamic
    /// insertion, see [`RTree::insert`]).
    pub fn new_empty(config: RTreeConfig) -> RTree {
        RTree {
            root: None,
            height: 0,
            config,
            num_elements: 0,
            num_leaf_pages: 0,
            num_inner_pages: 0,
        }
    }

    fn synth_id(layout: LeafLayout, page: PageId, stored_id: u64) -> u64 {
        match layout {
            LeafLayout::MbrOnly => (page.0 << 16) | stored_id,
            LeafLayout::WithIds => stored_id,
        }
    }

    /// Evaluates a range query, returning every element whose MBR
    /// intersects `query`.
    ///
    /// Queries are shared reads: any [`PageRead`] implementation works,
    /// including a [`flat_storage::ConcurrentBufferPool`] queried from many
    /// threads at once.
    pub fn range_query(
        &self,
        pool: &impl PageRead,
        query: &Aabb,
    ) -> Result<Vec<Hit>, StorageError> {
        let mut stats = TraversalStats::default();
        self.range_query_with_stats(pool, query, &mut stats)
    }

    /// Like [`RTree::range_query`] but accumulates traversal counters into
    /// `stats`.
    pub fn range_query_with_stats(
        &self,
        pool: &impl PageRead,
        query: &Aabb,
        stats: &mut TraversalStats,
    ) -> Result<Vec<Hit>, StorageError> {
        let mut hits = Vec::new();
        let Some(root) = self.root else {
            return Ok(hits);
        };
        // Levels are tracked explicitly (1 = leaf level) so each read is
        // charged to the right page kind before the page is even fetched.
        let mut stack = vec![(root, self.height)];
        while let Some((page_id, level)) = stack.pop() {
            if level == 1 {
                self.scan_leaf(pool, page_id, query, stats, &mut hits)?;
                continue;
            }
            let page = pool.read_page(page_id, self.config.inner_kind)?;
            stats.inner_visits += 1;
            debug_assert!(!is_leaf(&page), "tree height bookkeeping out of sync");
            let children = decode_inner(&page)?;
            for child in children {
                stats.mbr_tests += 1;
                if query.intersects(&child.mbr) {
                    stack.push((child.page, level - 1));
                }
            }
        }
        Ok(hits)
    }

    fn scan_leaf(
        &self,
        pool: &impl PageRead,
        page_id: PageId,
        query: &Aabb,
        stats: &mut TraversalStats,
        hits: &mut Vec<Hit>,
    ) -> Result<(), StorageError> {
        let page = pool.read_page(page_id, self.config.leaf_kind)?;
        let (layout, entries) = decode_leaf(&page)?;
        stats.leaf_visits += 1;
        for (slot, entry) in entries.iter().enumerate() {
            stats.mbr_tests += 1;
            if query.intersects(&entry.mbr) {
                hits.push(Hit {
                    mbr: entry.mbr,
                    id: Self::synth_id(layout, page_id, entry.id),
                    page: page_id,
                    slot: slot as u16,
                });
            }
        }
        Ok(())
    }

    /// Evaluates a point query (a degenerate range query).
    pub fn point_query(
        &self,
        pool: &impl PageRead,
        point: Point3,
    ) -> Result<Vec<Hit>, StorageError> {
        self.range_query(pool, &Aabb::point(point))
    }

    /// The *seed* operation (§V-B.1 of the paper): finds one arbitrary
    /// element intersecting `query`, following a single root-to-leaf path
    /// wherever possible. Returns `None` if the query is empty.
    ///
    /// This is the overlap-free primitive FLAT builds its seed phase on:
    /// the cost is O(height) plus any dead-end probes caused by leaf MBRs
    /// that intersect the query while none of their elements do.
    pub fn seed_query(
        &self,
        pool: &impl PageRead,
        query: &Aabb,
    ) -> Result<Option<Hit>, StorageError> {
        let Some(root) = self.root else {
            return Ok(None);
        };
        let mut stack = vec![(root, self.height)];
        while let Some((page_id, level)) = stack.pop() {
            if level == 1 {
                let page = pool.read_page(page_id, self.config.leaf_kind)?;
                let (layout, entries) = decode_leaf(&page)?;
                for (slot, entry) in entries.iter().enumerate() {
                    if query.intersects(&entry.mbr) {
                        return Ok(Some(Hit {
                            mbr: entry.mbr,
                            id: Self::synth_id(layout, page_id, entry.id),
                            page: page_id,
                            slot: slot as u16,
                        }));
                    }
                }
            } else {
                let page = pool.read_page(page_id, self.config.inner_kind)?;
                let children = decode_inner(&page)?;
                for child in children {
                    if query.intersects(&child.mbr) {
                        stack.push((child.page, level - 1));
                    }
                }
            }
        }
        Ok(None)
    }

    /// Batched seed lookup: answers [`RTree::seed_query`] for a whole
    /// batch of queries in **one traversal**, reading every tree page at
    /// most once per batch (the serial loop re-reads shared directory
    /// pages once per query).
    ///
    /// This is the R-tree *baselines'* batching primitive — the analogue,
    /// on a plain R-tree, of what FLAT's batched engine does over its
    /// seed tree (there, via a per-batch page cache so the crawl shares
    /// the same dedup). It lets batched-execution comparisons give the
    /// baselines the same directory-sharing advantage.
    ///
    /// Each node is visited with the list of still-unanswered queries that
    /// reach it; a query leaves the working set the moment any leaf yields
    /// an intersecting element. The returned vector is index-aligned with
    /// `queries`. Because the batch traversal visits nodes in a different
    /// order than each query's private DFS, the element found for a query
    /// is *a* valid seed, not necessarily the one [`RTree::seed_query`]
    /// picks — both are arbitrary by contract.
    pub fn seed_query_batch(
        &self,
        pool: &impl PageRead,
        queries: &[Aabb],
    ) -> Result<Vec<Option<Hit>>, StorageError> {
        let mut found: Vec<Option<Hit>> = vec![None; queries.len()];
        let Some(root) = self.root else {
            return Ok(found);
        };
        let mut remaining = queries.len();
        // Stack of (node, level, pending query indices); a page is pushed
        // at most once per distinct pending set that reaches it, and since
        // sets only shrink along a path, once per batch in practice.
        let all: Vec<usize> = (0..queries.len()).collect();
        let mut stack: Vec<(PageId, u32, Vec<usize>)> = vec![(root, self.height, all)];
        while let Some((page_id, level, pending)) = stack.pop() {
            if remaining == 0 {
                break;
            }
            let pending: Vec<usize> = pending
                .into_iter()
                .filter(|&q| found[q].is_none())
                .collect();
            if pending.is_empty() {
                continue;
            }
            if level == 1 {
                let page = pool.read_page(page_id, self.config.leaf_kind)?;
                let (layout, entries) = decode_leaf(&page)?;
                for q in pending {
                    for (slot, entry) in entries.iter().enumerate() {
                        if queries[q].intersects(&entry.mbr) {
                            found[q] = Some(Hit {
                                mbr: entry.mbr,
                                id: Self::synth_id(layout, page_id, entry.id),
                                page: page_id,
                                slot: slot as u16,
                            });
                            remaining -= 1;
                            break;
                        }
                    }
                }
            } else {
                let page = pool.read_page(page_id, self.config.inner_kind)?;
                for child in decode_inner(&page)? {
                    let down: Vec<usize> = pending
                        .iter()
                        .copied()
                        .filter(|&q| found[q].is_none() && queries[q].intersects(&child.mbr))
                        .collect();
                    if !down.is_empty() {
                        stack.push((child.page, level - 1, down));
                    }
                }
            }
        }
        Ok(found)
    }

    /// Visits every leaf page id (in an unspecified order). Used by
    /// validation and by FLAT's build.
    pub fn for_each_leaf<P, F>(&self, pool: &P, mut f: F) -> Result<(), StorageError>
    where
        P: PageRead,
        F: FnMut(PageId, &[Entry]),
    {
        let Some(root) = self.root else { return Ok(()) };
        let mut stack = vec![(root, self.height)];
        while let Some((page_id, level)) = stack.pop() {
            if level == 1 {
                let page = pool.read_page(page_id, self.config.leaf_kind)?;
                let (_, entries) = decode_leaf(&page)?;
                f(page_id, &entries);
            } else {
                let page = pool.read_page(page_id, self.config.inner_kind)?;
                for child in decode_inner(&page)? {
                    stack.push((child.page, level - 1));
                }
            }
        }
        Ok(())
    }
}

/// Builds the directory levels of an R-tree over pre-written leaf pages,
/// packing upper levels with STR ordering. Returns
/// `(root page, total height, number of inner pages written)`.
///
/// This is how FLAT constructs its seed tree (§V-B.2): the seed tree's
/// leaves are metadata pages with their own format, but its directory is an
/// ordinary R-tree directory over the leaf page MBRs.
pub fn build_inner_levels(
    pool: &mut impl PageWrite,
    leaves: Vec<ChildRef>,
    inner_kind: PageKind,
) -> Result<(PageId, u32, u64), StorageError> {
    assert!(
        !leaves.is_empty(),
        "cannot build a directory over zero leaves"
    );
    let mut level = leaves;
    let mut height = 1;
    let mut inner_pages = 0;
    let mut page = Page::new();
    while level.len() > 1 {
        let items: Vec<Entry> = level.iter().map(|c| Entry::new(c.page.0, c.mbr)).collect();
        let runs = BulkLoad::Str.pack(items, inner_capacity());
        let mut next = Vec::with_capacity(runs.len());
        for run in &runs {
            let children: Vec<ChildRef> = run
                .iter()
                .map(|e| ChildRef {
                    mbr: e.mbr,
                    page: PageId(e.id),
                })
                .collect();
            encode_inner(&children, &mut page);
            let id = pool.alloc()?;
            pool.write(id, &page, inner_kind)?;
            next.push(ChildRef {
                mbr: Aabb::union_all(run.iter().map(|e| e.mbr)),
                page: id,
            });
        }
        inner_pages += next.len() as u64;
        level = next;
        height += 1;
    }
    Ok((level[0].page, height, inner_pages))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{brute_force, random_entries};
    use flat_storage::{BufferPool, MemStore, PageStore};

    fn build(
        n: usize,
        method: BulkLoad,
        layout: LeafLayout,
    ) -> (BufferPool<MemStore>, RTree, Vec<Entry>) {
        let entries = random_entries(n, 42);
        let mut pool = BufferPool::new(MemStore::new(), 1 << 16);
        let tree = RTree::bulk_load(
            &mut pool,
            entries.clone(),
            method,
            RTreeConfig {
                layout,
                ..RTreeConfig::default()
            },
        )
        .unwrap();
        (pool, tree, entries)
    }

    #[test]
    fn empty_tree_handles_queries() {
        let mut pool = BufferPool::new(MemStore::new(), 16);
        let tree =
            RTree::bulk_load(&mut pool, Vec::new(), BulkLoad::Str, RTreeConfig::default()).unwrap();
        assert_eq!(tree.height(), 0);
        let q = Aabb::cube(Point3::ORIGIN, 10.0);
        assert!(tree.range_query(&pool, &q).unwrap().is_empty());
        assert!(tree.seed_query(&pool, &q).unwrap().is_none());
    }

    #[test]
    fn single_page_tree() {
        let (pool, tree, entries) = build(50, BulkLoad::Str, LeafLayout::WithIds);
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.num_leaf_pages(), 1);
        assert_eq!(tree.num_inner_pages(), 0);
        let q = Aabb::cube(Point3::splat(50.0), 100.0);
        let mut ids: Vec<u64> = tree
            .range_query(&pool, &q)
            .unwrap()
            .iter()
            .map(|h| h.id)
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, brute_force(&entries, &q));
    }

    #[test]
    fn range_query_matches_brute_force_all_methods() {
        for method in [
            BulkLoad::Str,
            BulkLoad::Hilbert,
            BulkLoad::PrTree,
            BulkLoad::Tgs,
        ] {
            let (pool, tree, entries) = build(5000, method, LeafLayout::WithIds);
            for (cx, side) in [(20.0, 8.0), (50.0, 20.0), (80.0, 3.0), (0.0, 1.0)] {
                let q = Aabb::cube(Point3::splat(cx), side);
                let mut ids: Vec<u64> = tree
                    .range_query(&pool, &q)
                    .unwrap()
                    .iter()
                    .map(|h| h.id)
                    .collect();
                ids.sort_unstable();
                assert_eq!(ids, brute_force(&entries, &q), "{method:?} query at {cx}");
            }
        }
    }

    #[test]
    fn whole_domain_query_returns_everything() {
        let (pool, tree, entries) = build(3000, BulkLoad::Str, LeafLayout::WithIds);
        let q = Aabb::cube(Point3::splat(50.0), 300.0);
        assert_eq!(tree.range_query(&pool, &q).unwrap().len(), entries.len());
    }

    #[test]
    fn disjoint_query_returns_nothing() {
        let (pool, tree, _) = build(3000, BulkLoad::Hilbert, LeafLayout::MbrOnly);
        let q = Aabb::cube(Point3::splat(500.0), 10.0);
        assert!(tree.range_query(&pool, &q).unwrap().is_empty());
        assert!(tree.seed_query(&pool, &q).unwrap().is_none());
    }

    #[test]
    fn mbr_only_ids_are_unique_and_locate_elements() {
        let (pool, tree, entries) = build(3000, BulkLoad::Str, LeafLayout::MbrOnly);
        let q = Aabb::cube(Point3::splat(50.0), 300.0);
        let hits = tree.range_query(&pool, &q).unwrap();
        assert_eq!(hits.len(), entries.len());
        let mut ids: Vec<u64> = hits.iter().map(|h| h.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), entries.len(), "synthetic ids must be unique");
        for h in hits.iter().take(20) {
            assert_eq!(h.id, (h.page.0 << 16) | h.slot as u64);
        }
    }

    #[test]
    fn seed_query_finds_an_intersecting_element() {
        let (pool, tree, entries) = build(5000, BulkLoad::PrTree, LeafLayout::WithIds);
        let q = Aabb::cube(Point3::splat(30.0), 10.0);
        let expected = brute_force(&entries, &q);
        let hit = tree.seed_query(&pool, &q).unwrap().unwrap();
        assert!(q.intersects(&hit.mbr));
        assert!(expected.contains(&hit.id));
    }

    #[test]
    fn seed_query_cost_is_near_height() {
        let (pool, tree, _) = build(50_000, BulkLoad::Str, LeafLayout::MbrOnly);
        assert!(tree.height() >= 2);
        pool.clear_cache();
        pool.reset_stats();
        let q = Aabb::cube(Point3::splat(50.0), 5.0);
        tree.seed_query(&pool, &q).unwrap().unwrap();
        let reads = pool.stats().total_physical_reads();
        // One path of `height` pages, plus possibly a few dead-end leaf
        // probes. The paper: "the complexity of this operation is typically
        // in the order of the height of the R-Tree".
        assert!(
            reads <= tree.height() as u64 + 4,
            "seed query read {reads} pages for height {}",
            tree.height()
        );
    }

    #[test]
    fn batch_seed_agrees_with_serial_seed_on_emptiness() {
        let (pool, tree, entries) = build(20_000, BulkLoad::Str, LeafLayout::WithIds);
        let queries: Vec<Aabb> = (0..40)
            .map(|i| {
                let c = 2.5 * i as f64; // some inside [0,100), some far out
                Aabb::cube(Point3::splat(c), 4.0)
            })
            .collect();
        let batch = tree.seed_query_batch(&pool, &queries).unwrap();
        assert_eq!(batch.len(), queries.len());
        for (i, q) in queries.iter().enumerate() {
            let serial = tree.seed_query(&pool, q).unwrap();
            assert_eq!(
                batch[i].is_some(),
                serial.is_some(),
                "query {i}: batch and serial disagree on emptiness"
            );
            if let Some(hit) = &batch[i] {
                // Any returned seed must be a genuine intersecting element.
                assert!(q.intersects(&hit.mbr), "query {i}: non-intersecting seed");
                assert!(brute_force(&entries, q).contains(&hit.id));
            }
        }
    }

    #[test]
    fn batch_seed_reads_each_page_at_most_once() {
        let (pool, tree, _) = build(50_000, BulkLoad::Str, LeafLayout::MbrOnly);
        // Clustered queries share directory pages: the batch traversal must
        // not pay for them per query.
        let queries: Vec<Aabb> = (0..32)
            .map(|i| Aabb::cube(Point3::splat(45.0 + 0.3 * i as f64), 3.0))
            .collect();
        pool.clear_cache();
        pool.reset_stats();
        let _ = tree.seed_query_batch(&pool, &queries).unwrap();
        let batch_logical = pool.stats().total_logical_reads();
        let total_pages = tree.num_leaf_pages() + tree.num_inner_pages();
        assert!(
            batch_logical <= total_pages,
            "batch traversal read {batch_logical} pages of a {total_pages}-page tree"
        );

        pool.clear_cache();
        pool.reset_stats();
        for q in &queries {
            let _ = tree.seed_query(&pool, q).unwrap();
        }
        let serial_logical = pool.stats().total_logical_reads();
        assert!(
            batch_logical < serial_logical,
            "batching must beat {serial_logical} serial reads, got {batch_logical}"
        );
    }

    #[test]
    fn batch_seed_on_empty_tree_and_empty_batch() {
        let mut pool = BufferPool::new(MemStore::new(), 16);
        let tree =
            RTree::bulk_load(&mut pool, Vec::new(), BulkLoad::Str, RTreeConfig::default()).unwrap();
        let q = Aabb::cube(Point3::ORIGIN, 10.0);
        assert_eq!(tree.seed_query_batch(&pool, &[q]).unwrap(), vec![None]);
        let (pool, tree, _) = build(100, BulkLoad::Str, LeafLayout::MbrOnly);
        assert!(tree.seed_query_batch(&pool, &[]).unwrap().is_empty());
    }

    #[test]
    fn point_query_equals_degenerate_range() {
        let (pool, tree, entries) = build(4000, BulkLoad::Str, LeafLayout::WithIds);
        let p = Point3::splat(42.0);
        let mut a: Vec<u64> = tree
            .point_query(&pool, p)
            .unwrap()
            .iter()
            .map(|h| h.id)
            .collect();
        a.sort_unstable();
        assert_eq!(a, brute_force(&entries, &Aabb::point(p)));
    }

    #[test]
    fn traversal_stats_count_visits() {
        let (pool, tree, _) = build(20_000, BulkLoad::Str, LeafLayout::MbrOnly);
        let mut stats = TraversalStats::default();
        let q = Aabb::cube(Point3::splat(50.0), 10.0);
        tree.range_query_with_stats(&pool, &q, &mut stats).unwrap();
        assert!(stats.inner_visits >= 1);
        assert!(stats.leaf_visits >= 1);
        assert!(stats.mbr_tests > stats.leaf_visits);
    }

    #[test]
    fn page_accounting_adds_up() {
        let (pool, tree, entries) = build(20_000, BulkLoad::Str, LeafLayout::MbrOnly);
        let cap = leaf_capacity(LeafLayout::MbrOnly) as u64;
        let min_leaves = entries.len() as u64 / cap;
        assert!(tree.num_leaf_pages() >= min_leaves);
        assert_eq!(
            pool.store().num_pages(),
            tree.num_leaf_pages() + tree.num_inner_pages()
        );
        assert_eq!(
            tree.size_bytes(),
            pool.store().num_pages() * flat_storage::PAGE_SIZE as u64
        );
    }

    #[test]
    fn for_each_leaf_visits_every_element_once() {
        let (pool, tree, entries) = build(7000, BulkLoad::Hilbert, LeafLayout::WithIds);
        let mut seen = Vec::new();
        tree.for_each_leaf(&pool, |_, es| seen.extend(es.iter().map(|e| e.id)))
            .unwrap();
        seen.sort_unstable();
        let mut expected: Vec<u64> = entries.iter().map(|e| e.id).collect();
        expected.sort_unstable();
        assert_eq!(seen, expected);
    }

    #[test]
    fn build_inner_levels_produces_searchable_directory() {
        // Build leaves by hand, then a directory, then check reachability.
        let mut pool = BufferPool::new(MemStore::new(), 4096);
        let entries = random_entries(2000, 7);
        let mut leaves = Vec::new();
        let mut page = Page::new();
        for chunk in entries.chunks(85) {
            encode_leaf(chunk, LeafLayout::MbrOnly, &mut page);
            let id = pool.alloc().unwrap();
            pool.write(id, &page, PageKind::SeedLeaf).unwrap();
            leaves.push(ChildRef {
                mbr: Aabb::union_all(chunk.iter().map(|e| e.mbr)),
                page: id,
            });
        }
        let n_leaves = leaves.len();
        let (root, height, inner) =
            build_inner_levels(&mut pool, leaves, PageKind::SeedInner).unwrap();
        assert!(height >= 2);
        assert!(inner >= 1);
        // Walk the directory; count reachable leaves.
        let mut stack = vec![(root, height)];
        let mut found = 0;
        while let Some((pid, level)) = stack.pop() {
            if level == 1 {
                found += 1;
                continue;
            }
            let node = pool.read(pid, PageKind::SeedInner).unwrap();
            for child in decode_inner(node).unwrap() {
                stack.push((child.page, level - 1));
            }
        }
        assert_eq!(found, n_leaves);
    }
}
