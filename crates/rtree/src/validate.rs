//! Structural validation of on-disk trees.
//!
//! Used by the test-suites (including the property tests at the workspace
//! root) to assert the R-tree invariants that query correctness rests on:
//!
//! 1. every inner entry's MBR is exactly the union of its child's MBRs
//!    (tight directory rectangles);
//! 2. all leaves sit at the same depth (the tree is balanced);
//! 3. the tree's cached page/element counters match the pages actually
//!    reachable from the root.

use crate::node::{decode_inner, decode_leaf, is_leaf};
use crate::tree::RTree;
use flat_geom::Aabb;
use flat_storage::{PageRead, StorageError};

/// Summary returned by [`check_invariants`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeReport {
    /// Elements found in reachable leaves.
    pub elements: u64,
    /// Reachable leaf pages.
    pub leaf_pages: u64,
    /// Reachable inner pages.
    pub inner_pages: u64,
}

/// Walks the whole tree, verifying the invariants above.
///
/// Returns an error string describing the first violation found, or the
/// tally of reachable pages.
pub fn check_invariants(pool: &impl PageRead, tree: &RTree) -> Result<TreeReport, String> {
    let Some(root) = tree.root() else {
        return if tree.num_elements() == 0 && tree.height() == 0 {
            Ok(TreeReport {
                elements: 0,
                leaf_pages: 0,
                inner_pages: 0,
            })
        } else {
            Err("empty root but non-zero counters".to_string())
        };
    };

    let mut report = TreeReport {
        elements: 0,
        leaf_pages: 0,
        inner_pages: 0,
    };
    let mbr = visit(pool, tree, root, tree.height(), &mut report)?;
    // The root MBR must be finite for non-empty trees.
    if !mbr.is_finite() {
        return Err("root MBR is not finite".to_string());
    }
    if report.elements != tree.num_elements() {
        return Err(format!(
            "element counter mismatch: reachable {}, cached {}",
            report.elements,
            tree.num_elements()
        ));
    }
    if report.leaf_pages != tree.num_leaf_pages() {
        return Err(format!(
            "leaf page counter mismatch: reachable {}, cached {}",
            report.leaf_pages,
            tree.num_leaf_pages()
        ));
    }
    if report.inner_pages != tree.num_inner_pages() {
        return Err(format!(
            "inner page counter mismatch: reachable {}, cached {}",
            report.inner_pages,
            tree.num_inner_pages()
        ));
    }
    Ok(report)
}

fn io_err(e: StorageError) -> String {
    format!("storage error during validation: {e}")
}

fn visit(
    pool: &impl PageRead,
    tree: &RTree,
    page_id: flat_storage::PageId,
    level: u32,
    report: &mut TreeReport,
) -> Result<Aabb, String> {
    let config = tree.config();
    if level == 1 {
        let page = pool.read_page(page_id, config.leaf_kind).map_err(io_err)?;
        if !is_leaf(&page) {
            return Err(format!("{page_id}: expected a leaf at level 1"));
        }
        let (_, entries) = decode_leaf(&page).map_err(io_err)?;
        if entries.is_empty() {
            return Err(format!("{page_id}: empty leaf"));
        }
        report.elements += entries.len() as u64;
        report.leaf_pages += 1;
        Ok(Aabb::union_all(entries.iter().map(|e| e.mbr)))
    } else {
        let page = pool.read_page(page_id, config.inner_kind).map_err(io_err)?;
        if is_leaf(&page) {
            return Err(format!(
                "{page_id}: leaf found above level 1 — tree is unbalanced"
            ));
        }
        let children = decode_inner(&page).map_err(io_err)?;
        if children.is_empty() {
            return Err(format!("{page_id}: empty inner node"));
        }
        report.inner_pages += 1;
        let mut node_mbr = Aabb::empty();
        for child in children {
            let actual = visit(pool, tree, child.page, level - 1, report)?;
            if actual != child.mbr {
                return Err(format!(
                    "{page_id}: stale child MBR for {}: stored {}, actual {actual}",
                    child.page, child.mbr
                ));
            }
            node_mbr.stretch_to_contain(&actual);
        }
        Ok(node_mbr)
    }
}

/// Measures directory overlap: the summed pairwise intersected volume of
/// sibling MBRs, per level (root level first). This is the quantity whose
/// growth with density drives Figure 2 of the paper.
pub fn sibling_overlap_by_level(
    pool: &impl PageRead,
    tree: &RTree,
) -> Result<Vec<f64>, StorageError> {
    let Some(root) = tree.root() else {
        return Ok(Vec::new());
    };
    let mut overlaps = Vec::new();
    let mut frontier = vec![root];
    let mut level = tree.height();
    while level > 1 {
        let mut next = Vec::new();
        let mut level_overlap = 0.0;
        for page_id in &frontier {
            let page = pool.read_page(*page_id, tree.config().inner_kind)?;
            let children = decode_inner(&page)?;
            for i in 0..children.len() {
                for j in i + 1..children.len() {
                    if let Some(common) = children[i].mbr.intersection(&children[j].mbr) {
                        level_overlap += common.volume();
                    }
                }
            }
            next.extend(children.iter().map(|c| c.page));
        }
        overlaps.push(level_overlap);
        frontier = next;
        level -= 1;
    }
    Ok(overlaps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::random_entries;
    use crate::tree::RTreeConfig;
    use crate::{BulkLoad, LeafLayout};
    use flat_storage::{BufferPool, MemStore};

    #[test]
    fn bulkloaded_trees_pass_validation() {
        for method in [
            BulkLoad::Str,
            BulkLoad::Hilbert,
            BulkLoad::PrTree,
            BulkLoad::Tgs,
        ] {
            let entries = random_entries(10_000, 23);
            let mut pool = BufferPool::new(MemStore::new(), 1 << 16);
            let tree =
                RTree::bulk_load(&mut pool, entries, method, RTreeConfig::default()).unwrap();
            let report = check_invariants(&pool, &tree).unwrap();
            assert_eq!(report.elements, 10_000, "{method:?}");
        }
    }

    #[test]
    fn empty_tree_validates() {
        let mut pool = BufferPool::new(MemStore::new(), 16);
        let tree =
            RTree::bulk_load(&mut pool, Vec::new(), BulkLoad::Str, RTreeConfig::default()).unwrap();
        let report = check_invariants(&pool, &tree).unwrap();
        assert_eq!(
            report,
            TreeReport {
                elements: 0,
                leaf_pages: 0,
                inner_pages: 0
            }
        );
    }

    #[test]
    fn corrupting_a_child_mbr_is_detected() {
        use crate::node::{decode_inner, encode_inner};
        use flat_storage::{Page, PageKind};

        let entries = random_entries(20_000, 29);
        let mut pool = BufferPool::new(MemStore::new(), 1 << 16);
        let tree = RTree::bulk_load(
            &mut pool,
            entries,
            BulkLoad::Str,
            RTreeConfig {
                layout: LeafLayout::MbrOnly,
                ..RTreeConfig::default()
            },
        )
        .unwrap();
        assert!(tree.height() >= 2);
        // Shrink one child MBR of the root — validation must catch it.
        let root = tree.root().unwrap();
        let mut children = {
            let page = pool.read(root, PageKind::RTreeInner).unwrap();
            decode_inner(page).unwrap()
        };
        children[0].mbr = children[0].mbr.scale_volume(0.01);
        let mut page = Page::new();
        encode_inner(&children, &mut page);
        pool.write(root, &page, PageKind::RTreeInner).unwrap();
        pool.clear_cache();

        let err = check_invariants(&pool, &tree).unwrap_err();
        assert!(err.contains("stale child MBR"), "unexpected error: {err}");
    }

    #[test]
    fn overlap_metric_is_zero_for_disjoint_tiles_and_positive_for_dense_data() {
        // Dense random boxes overlap; the metric must see it at some level.
        let entries = random_entries(30_000, 31);
        let mut pool = BufferPool::new(MemStore::new(), 1 << 16);
        let tree = RTree::bulk_load(
            &mut pool,
            entries,
            BulkLoad::Hilbert,
            RTreeConfig::default(),
        )
        .unwrap();
        let overlaps = sibling_overlap_by_level(&pool, &tree).unwrap();
        assert_eq!(overlaps.len() as u32, tree.height() - 1);
        assert!(
            overlaps.iter().any(|v| *v > 0.0),
            "Hilbert packing of dense data overlaps"
        );
    }
}
