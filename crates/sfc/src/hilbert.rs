//! 3-D Hilbert curve via Skilling's transpose algorithm.
//!
//! Reference: John Skilling, "Programming the Hilbert curve", AIP Conference
//! Proceedings 707 (2004). The algorithm converts between lattice
//! coordinates and the *transposed* form of the Hilbert index with two
//! in-place passes (Gray-code undo + axis rotation), in O(order · dims).
//!
//! The Hilbert curve visits every cell of the `[0, 2^order)³` lattice
//! exactly once, and consecutive indexes are always lattice neighbors
//! (Manhattan distance 1) — the locality property the Hilbert R-tree packing
//! relies on.

/// Number of dimensions (this crate is specifically 3-D, like the paper).
const DIMS: u32 = 3;

/// Converts a lattice cell to its Hilbert index.
///
/// `order` is the number of bits per dimension (1..=21); coordinates must be
/// `< 2^order`.
///
/// # Panics
/// Panics if `order` is outside `1..=21` or a coordinate is out of range.
pub fn hilbert_index(cell: [u32; 3], order: u32) -> u64 {
    validate(cell, order);
    let mut x = cell;

    // ---- Skilling: coordinates -> transposed Hilbert index, in place ----
    let m = 1u32 << (order - 1);

    // Inverse undo.
    let mut q = m;
    while q > 1 {
        let p = q - 1;
        for i in 0..DIMS as usize {
            if x[i] & q != 0 {
                x[0] ^= p; // invert
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }

    // Gray encode.
    for i in 1..DIMS as usize {
        x[i] ^= x[i - 1];
    }
    let mut t = 0u32;
    let mut q = m;
    while q > 1 {
        if x[DIMS as usize - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for v in x.iter_mut() {
        *v ^= t;
    }

    untranspose(x, order)
}

/// Converts a Hilbert index back to its lattice cell (inverse of
/// [`hilbert_index`]).
///
/// # Panics
/// Panics if `order` is outside `1..=21` or `index >= 2^(3·order)`.
pub fn hilbert_point(index: u64, order: u32) -> [u32; 3] {
    assert!(
        (1..=21).contains(&order),
        "order must be in 1..=21, got {order}"
    );
    let total_bits = 3 * order;
    assert!(
        total_bits == 64 || index < (1u64 << total_bits),
        "hilbert index {index} out of range for order {order}"
    );
    let mut x = transpose(index, order);

    // ---- Skilling: transposed index -> coordinates, in place ----
    let n = 1u32 << order;

    // Gray decode by H ^ (H/2).
    let mut t = x[DIMS as usize - 1] >> 1;
    for i in (1..DIMS as usize).rev() {
        x[i] ^= x[i - 1];
    }
    x[0] ^= t;

    // Undo excess work.
    let mut q = 2u32;
    while q != n {
        let p = q - 1;
        for i in (0..DIMS as usize).rev() {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q <<= 1;
    }
    x
}

/// Splits an interleaved Hilbert index into its transposed form: bit `3k+j`
/// of the index becomes bit `k` of coordinate `j` (most significant first).
fn transpose(index: u64, order: u32) -> [u32; 3] {
    let mut x = [0u32; 3];
    for bit in 0..order {
        for (d, v) in x.iter_mut().enumerate() {
            let src = (order - 1 - bit) * DIMS + (DIMS - 1 - d as u32);
            if index >> src & 1 != 0 {
                *v |= 1 << (order - 1 - bit);
            }
        }
    }
    x
}

/// Inverse of [`transpose`]: interleaves the per-axis bit planes into one
/// index, most significant plane first.
fn untranspose(x: [u32; 3], order: u32) -> u64 {
    let mut index = 0u64;
    for bit in (0..order).rev() {
        for (d, v) in x.iter().enumerate() {
            if v >> bit & 1 != 0 {
                index |= 1u64 << (bit * DIMS + (DIMS - 1 - d as u32));
            }
        }
    }
    index
}

fn validate(cell: [u32; 3], order: u32) {
    assert!(
        (1..=21).contains(&order),
        "order must be in 1..=21, got {order}"
    );
    let limit = 1u64 << order;
    for (d, c) in cell.iter().enumerate() {
        assert!(
            (*c as u64) < limit,
            "coordinate {c} on axis {d} out of range for order {order}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The canonical order-1 3-D Hilbert curve visits the 8 corners of the
    /// cube in Gray-code order.
    #[test]
    fn order_one_visits_all_corners_with_unit_steps() {
        let mut seen = std::collections::HashSet::new();
        let mut prev: Option<[u32; 3]> = None;
        for h in 0..8u64 {
            let p = hilbert_point(h, 1);
            assert!(seen.insert(p), "corner visited twice: {p:?}");
            if let Some(q) = prev {
                let dist: u32 = (0..3).map(|d| p[d].abs_diff(q[d])).sum();
                assert_eq!(dist, 1, "step from {q:?} to {p:?} is not a unit step");
            }
            prev = Some(p);
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn roundtrip_exhaustive_order_2() {
        for h in 0..64u64 {
            let p = hilbert_point(h, 2);
            assert_eq!(hilbert_index(p, 2), h, "roundtrip failed at {h}");
        }
    }

    #[test]
    fn roundtrip_exhaustive_order_3_and_unit_steps() {
        let mut prev: Option<[u32; 3]> = None;
        for h in 0..512u64 {
            let p = hilbert_point(h, 3);
            assert_eq!(hilbert_index(p, 3), h);
            if let Some(q) = prev {
                let dist: u32 = (0..3).map(|d| p[d].abs_diff(q[d])).sum();
                assert_eq!(dist, 1, "non-adjacent consecutive cells at index {h}");
            }
            prev = Some(p);
        }
    }

    #[test]
    fn curve_is_a_bijection_at_order_3() {
        let mut seen = std::collections::HashSet::new();
        for h in 0..512u64 {
            assert!(seen.insert(hilbert_point(h, 3)));
        }
        assert_eq!(seen.len(), 512);
    }

    #[test]
    fn high_order_roundtrip_spot_checks() {
        for order in [8, 16, 21] {
            let max = (1u32 << order) - 1;
            for cell in [
                [0, 0, 0],
                [max, max, max],
                [max, 0, max],
                [1, 2, 3],
                [max / 2, max / 3, max / 5],
            ] {
                let h = hilbert_index(cell, order);
                assert_eq!(hilbert_point(h, order), cell, "order {order} cell {cell:?}");
            }
        }
    }

    #[test]
    fn origin_maps_to_zero() {
        for order in 1..=21 {
            assert_eq!(hilbert_index([0, 0, 0], order), 0);
            assert_eq!(hilbert_point(0, order), [0, 0, 0]);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_coordinate_rejected() {
        let _ = hilbert_index([4, 0, 0], 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_rejected() {
        let _ = hilbert_point(64, 2);
    }
}
