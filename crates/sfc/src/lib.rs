//! 3-D space-filling curves for spatial packing.
//!
//! The Hilbert R-tree baseline (\[12\] in the paper) orders elements by the
//! Hilbert value of their MBR center before packing consecutive elements
//! onto leaf pages; §V-B.3 also references Z-order (Morton) packing as the
//! locality-inferior alternative. This crate implements both curves for
//! 3-D coordinates:
//!
//! * [`hilbert::hilbert_index`] / [`hilbert::hilbert_point`] — the Hilbert
//!   curve via Skilling's transpose algorithm (arbitrary order up to 21 bits
//!   per dimension so the key fits in a `u64`).
//! * [`morton::morton_index`] / [`morton::morton_point`] — Z-order by bit
//!   interleaving.
//!
//! Both operate on *discretized* coordinates; [`Discretizer`] maps `f64`
//! points in a domain onto the integer lattice.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod hilbert;
pub mod morton;

/// Maps continuous coordinates in a domain onto the `[0, 2^order)` integer
/// lattice used by the curves.
///
/// The mapping is monotone per axis and clamps out-of-domain points to the
/// lattice boundary, so nearby points receive nearby lattice cells.
#[derive(Debug, Clone, Copy)]
pub struct Discretizer {
    min: [f64; 3],
    scale: [f64; 3],
    max_cell: u32,
    order: u32,
}

impl Discretizer {
    /// Creates a discretizer for the axis-aligned domain `[min, max]` with
    /// `order` bits of resolution per dimension.
    ///
    /// # Panics
    /// Panics if `order` is 0 or exceeds 21 (the largest order for which a
    /// 3-D curve key fits in a `u64`), or if the domain is inverted.
    pub fn new(min: [f64; 3], max: [f64; 3], order: u32) -> Discretizer {
        assert!(
            (1..=21).contains(&order),
            "order must be in 1..=21, got {order}"
        );
        let max_cell = (1u32 << order) - 1;
        let mut scale = [0.0; 3];
        for d in 0..3 {
            assert!(
                max[d] >= min[d],
                "inverted domain on axis {d}: [{}, {}]",
                min[d],
                max[d]
            );
            let extent = max[d] - min[d];
            // A degenerate axis maps everything to cell 0.
            scale[d] = if extent > 0.0 {
                (max_cell as f64 + 1.0) / extent
            } else {
                0.0
            };
        }
        Discretizer {
            min,
            scale,
            max_cell,
            order,
        }
    }

    /// The lattice order (bits per dimension).
    pub fn order(&self) -> u32 {
        self.order
    }

    /// Maps a point to its lattice cell.
    pub fn cell(&self, p: [f64; 3]) -> [u32; 3] {
        let mut c = [0u32; 3];
        for d in 0..3 {
            let v = (p[d] - self.min[d]) * self.scale[d];
            c[d] = if v <= 0.0 {
                0
            } else if v >= self.max_cell as f64 {
                self.max_cell
            } else {
                v as u32
            };
        }
        c
    }

    /// Hilbert key of a point (convenience composition with
    /// [`hilbert::hilbert_index`]).
    pub fn hilbert_key(&self, p: [f64; 3]) -> u64 {
        hilbert::hilbert_index(self.cell(p), self.order)
    }

    /// Morton key of a point (convenience composition with
    /// [`morton::morton_index`]).
    pub fn morton_key(&self, p: [f64; 3]) -> u64 {
        morton::morton_index(self.cell(p), self.order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discretizer_maps_corners_to_extreme_cells() {
        let d = Discretizer::new([0.0; 3], [10.0; 3], 8);
        assert_eq!(d.cell([0.0; 3]), [0; 3]);
        assert_eq!(d.cell([10.0; 3]), [255; 3]);
        assert_eq!(d.cell([-5.0, 20.0, 5.0]), [0, 255, 128]);
    }

    #[test]
    fn discretizer_is_monotone_per_axis() {
        let d = Discretizer::new([0.0; 3], [1.0; 3], 10);
        let mut prev = 0;
        for i in 0..=100 {
            let c = d.cell([i as f64 / 100.0, 0.0, 0.0])[0];
            assert!(c >= prev, "cell went backwards at step {i}");
            prev = c;
        }
    }

    #[test]
    fn degenerate_axis_maps_to_zero() {
        let d = Discretizer::new([0.0, 0.0, 5.0], [1.0, 1.0, 5.0], 8);
        assert_eq!(d.cell([0.5, 0.5, 5.0])[2], 0);
    }

    #[test]
    #[should_panic(expected = "order must be in 1..=21")]
    fn order_zero_rejected() {
        let _ = Discretizer::new([0.0; 3], [1.0; 3], 0);
    }

    #[test]
    #[should_panic(expected = "order must be in 1..=21")]
    fn order_too_large_rejected() {
        let _ = Discretizer::new([0.0; 3], [1.0; 3], 22);
    }

    #[test]
    fn keys_fit_in_u64_at_max_order() {
        let d = Discretizer::new([0.0; 3], [1.0; 3], 21);
        // The largest cell yields the largest key; 3 × 21 = 63 bits.
        let k = d.hilbert_key([1.0; 3]);
        let m = d.morton_key([1.0; 3]);
        assert!(k < 1u64 << 63);
        assert_eq!(m, (1u64 << 63) - 1);
    }
}
