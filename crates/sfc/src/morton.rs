//! 3-D Morton (Z-order) curve by bit interleaving.
//!
//! Z-order is the simpler, locality-inferior alternative to the Hilbert
//! curve referenced in §V-B.3 of the paper ("the partitions STR produces
//! preserve spatial locality better than Z-order or Hilbert-packing"). We
//! implement it with the classic parallel-prefix bit-spreading tricks.

/// Interleaves the low `order` bits of the three coordinates into a Morton
/// key: bit `k` of axis `d` lands at key bit `3k + d`.
///
/// # Panics
/// Panics if `order` is outside `1..=21` or a coordinate is out of range.
pub fn morton_index(cell: [u32; 3], order: u32) -> u64 {
    assert!(
        (1..=21).contains(&order),
        "order must be in 1..=21, got {order}"
    );
    let limit = 1u64 << order;
    for (d, c) in cell.iter().enumerate() {
        assert!(
            (*c as u64) < limit,
            "coordinate {c} on axis {d} out of range for order {order}"
        );
    }
    spread(cell[0]) | spread(cell[1]) << 1 | spread(cell[2]) << 2
}

/// Inverse of [`morton_index`].
///
/// # Panics
/// Panics if `order` is outside `1..=21` or `index >= 2^(3·order)`.
pub fn morton_point(index: u64, order: u32) -> [u32; 3] {
    assert!(
        (1..=21).contains(&order),
        "order must be in 1..=21, got {order}"
    );
    let total_bits = 3 * order;
    assert!(
        total_bits == 64 || index < (1u64 << total_bits),
        "morton index {index} out of range for order {order}"
    );
    [compact(index), compact(index >> 1), compact(index >> 2)]
}

/// Spreads the low 21 bits of `v` so each lands 3 positions apart
/// (bit k → bit 3k).
fn spread(v: u32) -> u64 {
    let mut x = v as u64 & 0x1f_ffff; // 21 bits
    x = (x | x << 32) & 0x001f_0000_0000_ffff;
    x = (x | x << 16) & 0x001f_0000_ff00_00ff;
    x = (x | x << 8) & 0x100f_00f0_0f00_f00f;
    x = (x | x << 4) & 0x10c3_0c30_c30c_30c3;
    x = (x | x << 2) & 0x1249_2492_4924_9249;
    x
}

/// Inverse of [`spread`]: gathers every third bit back together.
fn compact(v: u64) -> u32 {
    let mut x = v & 0x1249_2492_4924_9249;
    x = (x | x >> 2) & 0x10c3_0c30_c30c_30c3;
    x = (x | x >> 4) & 0x100f_00f0_0f00_f00f;
    x = (x | x >> 8) & 0x001f_0000_ff00_00ff;
    x = (x | x >> 16) & 0x001f_0000_0000_ffff;
    x = (x | x >> 32) & 0x1f_ffff;
    x as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaving_matches_naive_definition() {
        // Naive bit-by-bit interleave as the specification oracle.
        fn naive(cell: [u32; 3], order: u32) -> u64 {
            let mut key = 0u64;
            for bit in 0..order {
                for (d, c) in cell.iter().enumerate() {
                    if c >> bit & 1 != 0 {
                        key |= 1u64 << (3 * bit + d as u32);
                    }
                }
            }
            key
        }
        for cell in [[0, 0, 0], [1, 2, 3], [7, 7, 7], [5, 0, 6], [100, 200, 300]] {
            assert_eq!(morton_index(cell, 9), naive(cell, 9), "cell {cell:?}");
        }
    }

    #[test]
    fn roundtrip_exhaustive_order_2() {
        for k in 0..64u64 {
            assert_eq!(morton_index(morton_point(k, 2), 2), k);
        }
    }

    #[test]
    fn roundtrip_high_order_spot_checks() {
        let max = (1u32 << 21) - 1;
        for cell in [
            [0, 0, 0],
            [max, max, max],
            [max, 0, 1],
            [12345, 654_321, 999_999],
        ] {
            let k = morton_index(cell, 21);
            assert_eq!(morton_point(k, 21), cell);
        }
    }

    #[test]
    fn z_order_visits_octants_in_order() {
        // At order 1 the Morton curve enumerates the 8 octants in binary
        // counting order: x is the least significant axis.
        let expected = [
            [0, 0, 0],
            [1, 0, 0],
            [0, 1, 0],
            [1, 1, 0],
            [0, 0, 1],
            [1, 0, 1],
            [0, 1, 1],
            [1, 1, 1],
        ];
        for (k, cell) in expected.iter().enumerate() {
            assert_eq!(morton_point(k as u64, 1), *cell);
        }
    }

    #[test]
    fn keys_are_monotone_in_each_axis() {
        // Growing one coordinate (others fixed) must grow the key.
        let base = [10u32, 20, 30];
        let k0 = morton_index(base, 8);
        for d in 0..3 {
            let mut c = base;
            c[d] += 1;
            assert!(morton_index(c, 8) > k0, "axis {d} not monotone");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_coordinate_rejected() {
        let _ = morton_index([8, 0, 0], 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_rejected() {
        let _ = morton_point(1 << 9, 3);
    }
}
