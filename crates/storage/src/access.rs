//! The page-access split: shared reads vs exclusive writes.
//!
//! Query evaluation in this workspace never mutates pages — it only reads
//! them (and updates I/O statistics, which are atomic). Index construction
//! is the opposite: a single-owner bulkload that allocates and writes pages
//! and never races with queries. The two capabilities are therefore split
//! into two traits:
//!
//! * [`PageRead`] — shared, `&self`. Implemented by [`crate::BufferPool`]
//!   (single-threaded interior mutability) and by
//!   [`crate::ConcurrentBufferPool`] (lock-sharded, `Sync`), so the same
//!   query code serves both a private pool and a pool shared across many
//!   threads.
//! * [`PageWrite`] — exclusive, `&mut self`. Implemented by
//!   [`crate::BufferPool`] only; builds keep the exclusive path.
//!
//! Query entry points across the workspace take `&impl PageRead`; build
//! entry points take `&mut impl PageWrite`.

use crate::{Page, PageId, PageKind, StorageError};
use std::sync::Arc;

/// Shared read access to pages, with per-[`PageKind`] I/O accounting.
///
/// Reads return an *owned* copy of the page: the 4 KB memcpy decouples the
/// caller from the cache's locking/borrowing discipline (and is noise next
/// to the I/O the pool is accounting for — index node formats are
/// deserialized into typed structures immediately after the read anyway).
pub trait PageRead {
    /// Reads page `id`, counting the access against `kind`.
    fn read_page(&self, id: PageId, kind: PageKind) -> Result<Page, StorageError>;

    /// Readahead hint: bring page `id` into the cache *speculatively*, ahead
    /// of a demand read that may or may not follow.
    ///
    /// This is the hook batched query execution hangs its crawl-ahead
    /// prefetching on: a reader that knows which pages it will (probably)
    /// touch next issues hints — typically from dedicated readahead threads,
    /// so the device wait overlaps useful work — and the later demand read
    /// becomes a cache hit.
    ///
    /// Semantics:
    /// * purely an optimization — implementations may ignore it (the default
    ///   does nothing), and errors are swallowed: a failed hint must not
    ///   fail the query, the demand read will surface any real error;
    /// * accounted separately from demand I/O: a fetch triggered by a hint
    ///   counts as a *prefetch read*, not a physical (demand) read, and a
    ///   later demand hit on the prefetched page counts as a *prefetch hit*
    ///   (see [`crate::IoStats`]), so benchmark figures can report
    ///   speculative I/O — and the share of it that was wasted — separately
    ///   from useful I/O.
    fn prefetch_page(&self, id: PageId, kind: PageKind) {
        let _ = (id, kind);
    }
}

/// Exclusive build-time access: page allocation, write-through writes, and
/// page reclamation.
pub trait PageWrite {
    /// Allocates a zeroed page (reusing the lowest freed page, if any —
    /// see [`crate::PageStore::alloc`]).
    fn alloc(&mut self) -> Result<PageId, StorageError>;

    /// Writes `page` through to the store, counting it against `kind`.
    fn write(&mut self, id: PageId, page: &Page, kind: PageKind) -> Result<(), StorageError>;

    /// Returns page `id` to the store's free list (dropping any cached
    /// copy). The dynamic-update layer frees object pages of fully deleted
    /// partitions and compaction frees the entire old index; reads of a
    /// freed page fail until it is reallocated.
    fn free(&mut self, id: PageId) -> Result<(), StorageError>;
}

impl<P: PageRead + ?Sized> PageRead for &P {
    fn read_page(&self, id: PageId, kind: PageKind) -> Result<Page, StorageError> {
        (**self).read_page(id, kind)
    }

    fn prefetch_page(&self, id: PageId, kind: PageKind) {
        (**self).prefetch_page(id, kind)
    }
}

impl<P: PageRead + ?Sized> PageRead for Arc<P> {
    fn read_page(&self, id: PageId, kind: PageKind) -> Result<Page, StorageError> {
        (**self).read_page(id, kind)
    }

    fn prefetch_page(&self, id: PageId, kind: PageKind) {
        (**self).prefetch_page(id, kind)
    }
}

impl<P: PageRead + ?Sized> PageRead for Box<P> {
    fn read_page(&self, id: PageId, kind: PageKind) -> Result<Page, StorageError> {
        (**self).read_page(id, kind)
    }

    fn prefetch_page(&self, id: PageId, kind: PageKind) {
        (**self).prefetch_page(id, kind)
    }
}

impl<W: PageWrite + ?Sized> PageWrite for &mut W {
    fn alloc(&mut self) -> Result<PageId, StorageError> {
        (**self).alloc()
    }

    fn write(&mut self, id: PageId, page: &Page, kind: PageKind) -> Result<(), StorageError> {
        (**self).write(id, page, kind)
    }

    fn free(&mut self, id: PageId) -> Result<(), StorageError> {
        (**self).free(id)
    }
}
